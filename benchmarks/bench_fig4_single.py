"""Figure 4: gem, nqueens and hmm at their single evaluated size.

gem (N-Body, Fig. 4a) runs the tiny 4TUT molecule (the only size the
paper could validate); nqueens (Fig. 4b) runs N=18; hmm (Fig. 4c) runs
the tiny 8-state model (likewise the only validated size).
"""

from conftest import emit_figure

from repro.harness import class_means, figure4


def test_figure4(benchmark, output_dir):
    fig = benchmark.pedantic(figure4, kwargs={"samples": 50},
                             iterations=1, rounds=1)
    emit_figure(output_dir, "figure4_single", fig)

    assert set(fig.panels) == {"gem", "nqueens", "hmm"}
    # gem: flop-dense N-body favours GPUs
    gem = class_means(fig, "gem")
    assert min(gem["Consumer GPU"], gem["HPC GPU"]) < gem["CPU"]
    # every panel covers the 14 non-KNL devices
    assert all(len(panel) == 14 for panel in fig.panels.values())
