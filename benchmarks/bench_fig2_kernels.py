"""Figures 2a-2e: kmeans, lud, csr, dwt, fft on the 14 non-KNL devices.

Shapes reproduced per panel:

* 2a kmeans — CPUs stay comparable to GPUs (low FP:mem ratio);
* 2b lud    — the i5-3550's small L3 penalises the medium size;
              HPC GPUs sit between same-generation consumer boards and
              modern GPUs;
* 2c csr    — gather-bound SpMV;
* 2d dwt /
* 2e fft    — Spectral Methods are memory-latency limited: the CPU
              penalty appears at medium (L3 latency) and grows at
              large (main memory), exactly the paper's reading of
              Asanović et al.'s dwarf properties.
"""

import numpy as np
import pytest
from conftest import emit_figure

from repro.harness import check_hpc_vs_consumer, class_means, figure2

SAMPLES = 50


@pytest.mark.parametrize("bench", ["kmeans", "lud", "csr", "dwt", "fft"])
def test_figure2(benchmark, output_dir, bench):
    fig = benchmark.pedantic(figure2, args=(bench,),
                             kwargs={"samples": SAMPLES},
                             iterations=1, rounds=1)
    emit_figure(output_dir, f"figure2_{bench}", fig)

    if bench == "kmeans":
        means = class_means(fig, "large")
        best_gpu = min(means["Consumer GPU"], means["HPC GPU"])
        assert means["CPU"] < 8 * best_gpu
    if bench == "lud":
        assert check_hpc_vs_consumer(fig)
    if bench in ("lud", "dwt", "fft"):
        # i5-3550 (6 MiB L3) degrades harder from small->medium than the
        # 8+ MiB L3 CPUs (paper Figures 2b/2d/2e)
        def jump(device):
            return (fig.panels["medium"][device]["mean"]
                    / fig.panels["small"][device]["mean"])
        assert jump("i5-3550") > jump("i7-6700K")
    if bench in ("dwt", "fft"):
        # spectral methods: the CPU's memory-system penalty grows from
        # medium (L3 latency) to large (main memory), and GPUs are
        # clearly ahead at large
        ratios = []
        for size in ("medium", "large"):
            means = class_means(fig, size)
            gpu = min(means["Consumer GPU"], means["HPC GPU"])
            ratios.append(means["CPU"] / gpu)
        assert ratios[1] >= ratios[0]
        assert ratios[1] > 1.5
