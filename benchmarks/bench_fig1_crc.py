"""Figure 1: crc kernel execution times on all 15 devices x 4 sizes.

Paper finding reproduced: crc (Combinational Logic — a byte-serial
dependent chain with negligible floating-point work) is the one
benchmark where CPUs beat every GPU, and the KNL is poor; this is why
the paper drops the KNL from the remaining figures.
"""

from conftest import emit_figure

from repro.harness import (
    check_cov_tracks_clock,
    check_fig1_cpu_wins,
    class_means,
    figure1_crc,
)


def test_figure1(benchmark, output_dir):
    fig = benchmark.pedantic(figure1_crc, kwargs={"samples": 50},
                             iterations=1, rounds=1)
    emit_figure(output_dir, "figure1_crc", fig)

    # the paper's qualitative findings
    assert check_fig1_cpu_wins(fig)
    assert check_cov_tracks_clock(fig.results)
    for size in fig.panels:
        means = class_means(fig, size)
        assert means["CPU"] == min(means.values()), size
        assert means["MIC"] > means["CPU"], size
