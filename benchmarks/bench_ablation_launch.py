"""Ablation: kernel-launch overhead and the nw AMD divergence.

With launch overheads zeroed, the AMD-vs-NVIDIA gap on nw collapses —
demonstrating that Fig. 3b's shape is a *runtime* effect (per-enqueue
cost), not a compute/bandwidth one.  This is the paper's own reading:
'Dynamic Programming problems have performance results tied to
micro-architecture or OpenCL runtime support'.
"""

import dataclasses

import numpy as np
from conftest import emit

from repro.devices import get_device
from repro.dwarfs import create
from repro.harness import render_table
from repro.perfmodel import iteration_time


def _zero_launch(spec):
    runtime = dataclasses.replace(spec.runtime, kernel_launch_us=0.0,
                                  dispatch_ns_per_group=0.0,
                                  launch_ns_per_mib=0.0)
    return dataclasses.replace(spec, runtime=runtime)


def _nw_ratio(transform):
    """AMD / NVIDIA mean nw-large time under a spec transform."""
    bench = create("nw", "large")
    amd = [transform(get_device(n)) for n in ("R9 290X", "R9 Fury X", "RX 480")]
    nvidia = [transform(get_device(n)) for n in ("GTX 1080", "Titan X", "K40m")]
    amd_t = np.mean([iteration_time(s, bench.profiles()).total_s for s in amd])
    nv_t = np.mean([iteration_time(s, bench.profiles()).total_s for s in nvidia])
    return amd_t / nv_t


def test_launch_overhead_drives_amd_gap(benchmark, output_dir):
    def run():
        return _nw_ratio(lambda s: s), _nw_ratio(_zero_launch)

    with_launch, without_launch = benchmark(run)
    rows = [
        {"launch model": "realistic", "AMD/NVIDIA nw large": round(with_launch, 2)},
        {"launch model": "zeroed", "AMD/NVIDIA nw large": round(without_launch, 2)},
    ]
    emit(output_dir, "ablation_launch",
         render_table(rows, "Ablation: nw large AMD/NVIDIA ratio"))

    assert with_launch > 1.5           # the Fig. 3b gap
    assert without_launch < with_launch * 0.75  # collapses without launches
