"""Memory-transfer times (measured in the paper, §4.3, but unpublished).

"For each benchmark we also measured memory transfer times between
host and device, however, only the kernel execution times and energies
are presented here."  This bench presents them: input/output transfer
times for every benchmark at the small size on a CPU (no bus), a
modern PCIe-3 GPU and an older PCIe-2 GPU.
"""

from conftest import emit

from repro.harness import render_table, transfer_table

BENCHES = ("kmeans", "lud", "csr", "fft", "dwt", "srad", "crc", "nw",
           "gem", "hmm")
DEVICES = ("i7-6700K", "GTX 1080", "K20m")


def test_transfer_times(benchmark, output_dir):
    rows = benchmark.pedantic(
        transfer_table, args=(list(BENCHES),),
        kwargs={"size": "small", "devices": DEVICES},
        iterations=1, rounds=1)
    emit(output_dir, "transfers",
         render_table([r.as_row() for r in rows],
                      "Host<->device transfer times (small size)"))

    by_key = {(r.benchmark, r.device): r for r in rows}
    for bench in BENCHES:
        cpu = by_key[(bench, "i7-6700K")]
        pcie3 = by_key[(bench, "GTX 1080")]
        pcie2 = by_key[(bench, "K20m")]
        # same bytes everywhere; discrete GPUs pay the bus, and the
        # PCIe-2 board pays more than the PCIe-3 board
        assert cpu.bytes_to_device == pcie3.bytes_to_device == pcie2.bytes_to_device
        assert cpu.to_device_s < pcie3.to_device_s <= pcie2.to_device_s
