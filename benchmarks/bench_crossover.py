"""Crossover study: the problem size where the GPU overtakes the CPU.

The paper's core critique of fixed-size suites is that they miss "the
problem sizes where these limitations occur" (§3).  This bench sweeps
each scalable benchmark's size parameter and reports the footprint at
which the GTX 1080 overtakes the i7-6700K — the quantity a scheduler
would key on.  Expected structure: crossovers cluster around the CPU's
cache capacity for memory-bound dwarfs, and crc never crosses at all.
"""

from conftest import emit

from repro.harness import render_table, sweep

BENCHES = ("kmeans", "lud", "csr", "fft", "dwt", "srad", "nw", "crc")


def _study():
    rows, results = [], {}
    for bench in BENCHES:
        result = sweep(bench, "i7-6700K", "GTX 1080", stride=4)
        results[bench] = result
        if result.crossover is not None:
            where = (f"Φ={result.crossover.phi} "
                     f"({result.crossover.footprint_bytes / 1024:.0f} KiB)")
        elif result.challenger_always_wins:
            where = "GPU wins at every size"
        elif not result.challenger_ever_wins:
            where = "CPU wins at every size"
        else:
            where = "unstable"
        rows.append({
            "benchmark": bench,
            "crossover": where,
            "largest-size ratio": round(result.points[-1].ratio, 2),
        })
    return rows, results


def test_crossover_study(benchmark, output_dir):
    rows, results = benchmark.pedantic(_study, iterations=1, rounds=1)
    emit(output_dir, "crossover",
         render_table(rows, "GPU-overtakes-CPU crossover (i7-6700K vs GTX 1080)"))

    # crc is the exception: the CPU holds at every size (Fig. 1)
    assert not results["crc"].challenger_ever_wins
    # memory/compute-bound dwarfs all cross within cache territory
    for bench in ("srad", "fft", "lud", "dwt"):
        x = results[bench].crossover
        assert x is not None, bench
        assert x.footprint_bytes <= 64 << 20, bench
