"""Ablation: the 2-second loop rule (paper §2).

The paper loops every benchmark for at least two seconds per sample
"to ensure that sampling ... was not significantly affected by
operating system noise".  This bench measures the coefficient of
variation of single-shot sampling vs the loop rule across devices and
shows the paper-level noise reduction.
"""

import numpy as np
from conftest import emit

from repro.devices import get_device
from repro.harness import render_table
from repro.perfmodel import noisy_samples


def test_loop_rule_tightens_cov(benchmark, output_dir):
    devices = ("i7-6700K", "GTX 1080", "K20m", "Xeon Phi 7210")
    nominal = 1e-3  # a 1 ms kernel
    rng = np.random.default_rng(2018)

    def run():
        out = {}
        for name in devices:
            spec = get_device(name)
            single = noisy_samples(spec, nominal, 50, rng, loop_iterations=1)
            looped = noisy_samples(spec, nominal, 50, rng,
                                   loop_iterations=2000)
            out[name] = (float(single.std() / single.mean()),
                         float(looped.std() / looped.mean()))
        return out

    covs = benchmark(run)
    rows = [
        {"device": name, "single-shot CoV": round(s, 4),
         "2s-loop CoV": round(l, 5), "reduction": round(s / max(l, 1e-9), 1)}
        for name, (s, l) in covs.items()
    ]
    emit(output_dir, "ablation_looprule",
         render_table(rows, "Ablation: 2-second loop rule"))

    for name, (single, looped) in covs.items():
        assert looped < single / 5, name
