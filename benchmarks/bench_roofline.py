"""Roofline study: 'ideal' performance per benchmark x device (§7).

Emits a roofline chart per reference device with every floating-point
benchmark placed on it, plus the efficiency table — the paper's
future-work notion of per-combination ideal performance, realised.
"""

from conftest import emit

from repro.devices import get_device
from repro.harness import render_table
from repro.perfmodel import ridge_point, save_roofline_html, suite_points

DEVICES = ("i7-6700K", "GTX 1080", "R9 290X", "Xeon Phi 7210")


def _study():
    out = {}
    for name in DEVICES:
        spec = get_device(name)
        out[name] = suite_points(spec, "large")
    return out


def test_roofline_study(benchmark, output_dir):
    per_device = benchmark.pedantic(_study, iterations=1, rounds=1)
    rows = []
    for device, points in per_device.items():
        spec = get_device(device)
        save_roofline_html(
            spec, points,
            output_dir / f"roofline_{device.replace(' ', '_')}.html")
        for p in points:
            rows.append({
                "device": device,
                "kernel": p.label,
                "AI (flop/B)": round(p.arithmetic_intensity, 3),
                "achieved GF/s": round(p.achieved_gflops, 2),
                "attainable GF/s": round(p.attainable_gflops, 2),
                "efficiency": f"{p.efficiency:.0%}",
                "regime": ("compute" if p.arithmetic_intensity
                           > ridge_point(spec) else "memory"),
            })
    emit(output_dir, "roofline",
         render_table(rows, "Roofline positions (large size)"))

    # structural expectations
    for device, points in per_device.items():
        by_label = {p.label: p for p in points}
        spec = get_device(device)
        assert by_label["gem"].arithmetic_intensity > ridge_point(spec)
        assert by_label["csr"].arithmetic_intensity < ridge_point(spec)
        assert all(p.efficiency <= 1.05 for p in points), device
