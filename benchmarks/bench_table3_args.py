"""Table 3: program arguments, and the argument-parsing round trip."""

from conftest import emit

from repro.dwarfs import BENCHMARKS
from repro.harness import table3_text


def _round_trip_all():
    """Render every benchmark's Table 3 arguments and parse them back."""
    built = {}
    for name, cls in BENCHMARKS.items():
        for size in cls.available_sizes():
            text = cls.cli_args(size)
            if hasattr(cls, "from_args"):
                built[(name, size)] = cls.from_args(text.split())
    return built


def test_table3_regeneration(benchmark, output_dir):
    built = benchmark(_round_trip_all)
    emit(output_dir, "table3", table3_text())
    # the parsed instances reproduce the Table 2 scales
    assert built[("kmeans", "medium")].n_points == 65600
    assert built[("lud", "large")].n == 4096
    assert built[("fft", "tiny")].n == 2048
    assert built[("dwt", "large")].width == 3648
    assert built[("srad", "medium")].rows == 1024
    assert built[("crc", "small")].n_bytes == 16000
    assert built[("nw", "medium")].n == 1008
    assert built[("gem", "small")].dataset == "2D3V"
    assert built[("nqueens", "tiny")].n == 18
    assert built[("hmm", "large")].n_states == 2048
