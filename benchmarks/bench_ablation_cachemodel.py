"""Ablation: cache-aware vs flat-bandwidth memory model.

DESIGN.md calls out the cache-aware roofline as the load-bearing design
choice: with every cache level flattened to main-memory bandwidth, the
model can no longer reproduce the i5-3550's small->medium degradation
(Fig. 2b/2d/2e), because that effect exists only if the 6 MiB L3
matters.  This bench quantifies the difference.
"""

import dataclasses

import numpy as np
from conftest import emit

from repro.devices import get_device
from repro.dwarfs import create
from repro.harness import render_table
from repro.perfmodel import iteration_time


def _flatten_caches(spec):
    """All cache levels serve at main-memory bandwidth."""
    flat = tuple(
        dataclasses.replace(level, bandwidth_gbs=spec.memory.bandwidth_gbs,
                            latency_ns=spec.memory.latency_ns)
        for level in spec.caches
    )
    return dataclasses.replace(spec, caches=flat)


def _medium_over_small(spec, bench_name="fft"):
    times = {}
    for size in ("small", "medium"):
        bench = create(bench_name, size)
        times[size] = iteration_time(spec, bench.profiles()).total_s
    return times["medium"] / times["small"]


def test_flat_bandwidth_loses_l3_effect(benchmark, output_dir):
    i5 = get_device("i5-3550")
    i7 = get_device("i7-6700K")

    def run():
        aware = (_medium_over_small(i5), _medium_over_small(i7))
        flat = (_medium_over_small(_flatten_caches(i5)),
                _medium_over_small(_flatten_caches(i7)))
        return aware, flat

    (aware_i5, aware_i7), (flat_i5, flat_i7) = benchmark(run)
    rows = [
        {"model": "cache-aware", "i5-3550 medium/small": round(aware_i5, 2),
         "i7-6700K medium/small": round(aware_i7, 2),
         "i5 penalty vs i7": round(aware_i5 / aware_i7, 2)},
        {"model": "flat-bandwidth", "i5-3550 medium/small": round(flat_i5, 2),
         "i7-6700K medium/small": round(flat_i7, 2),
         "i5 penalty vs i7": round(flat_i5 / flat_i7, 2)},
    ]
    emit(output_dir, "ablation_cachemodel",
         render_table(rows, "Ablation: fft small->medium slowdown"))

    # cache-aware model shows the i5's extra penalty; flat model doesn't
    assert aware_i5 / aware_i7 > 1.5
    assert abs(flat_i5 / flat_i7 - 1.0) < 0.35
