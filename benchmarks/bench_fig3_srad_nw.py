"""Figures 3a/3b: srad (Structured Grid) and nw (Dynamic Programming).

Shapes reproduced:

* 3a srad — memory-bandwidth limited: the CPU-GPU gap widens strictly
  from tiny to large (paper: 'codes representative of structured grid
  dwarfs are well suited to GPUs');
* 3b nw — wavefront code launching 2N/B-1 kernels: performance is tied
  to runtime launch overhead, so AMD GPUs fall progressively behind
  while Intel CPUs and NVIDIA GPUs stay comparable.
"""

import numpy as np
import pytest
from conftest import emit_figure

from repro.devices import Vendor, get_device
from repro.harness import (
    check_fig3a_gap_widens,
    check_fig3b_amd_degrades,
    class_means,
    figure3,
)

SAMPLES = 50


def _vendor_mean(panel, vendor):
    vals = [s["mean"] for d, s in panel.items()
            if get_device(d).vendor == vendor and get_device(d).is_gpu]
    return float(np.mean(vals))


def test_figure3a_srad(benchmark, output_dir):
    fig = benchmark.pedantic(figure3, args=("srad",),
                             kwargs={"samples": SAMPLES},
                             iterations=1, rounds=1)
    emit_figure(output_dir, "figure3a_srad", fig)
    assert check_fig3a_gap_widens(fig)
    means = class_means(fig, "large")
    assert means["CPU"] > 3 * min(means["Consumer GPU"], means["HPC GPU"])


def test_figure3b_nw(benchmark, output_dir):
    fig = benchmark.pedantic(figure3, args=("nw",),
                             kwargs={"samples": SAMPLES},
                             iterations=1, rounds=1)
    emit_figure(output_dir, "figure3b_nw", fig)
    assert check_fig3b_amd_degrades(fig)
    # AMD/NVIDIA ratio grows from tiny to large
    tiny = _vendor_mean(fig.panels["tiny"], Vendor.AMD) / _vendor_mean(
        fig.panels["tiny"], Vendor.NVIDIA)
    large = _vendor_mean(fig.panels["large"], Vendor.AMD) / _vendor_mean(
        fig.panels["large"], Vendor.NVIDIA)
    assert large > tiny
