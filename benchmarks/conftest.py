"""Shared helpers for the table/figure regeneration benches.

Every bench in this directory regenerates one table or figure of the
paper (printed to stdout, written to ``benchmarks/output/``) and times
the regeneration machinery under pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def emit(output_dir: Path, name: str, text: str, csv: str | None = None) -> None:
    """Print a regenerated artifact and persist it."""
    print()
    print(text)
    (output_dir / f"{name}.txt").write_text(text)
    if csv is not None:
        (output_dir / f"{name}.csv").write_text(csv)


def emit_figure(output_dir: Path, name: str, fig, log_scale: bool = False) -> None:
    """Persist a figure's text, CSV and rendered HTML boxplots."""
    from repro.harness import save_figure_html

    emit(output_dir, name, fig.render(), fig.to_csv())
    save_figure_html(fig, output_dir / f"{name}.html", log_scale=log_scale)
