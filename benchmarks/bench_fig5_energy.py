"""Figure 5: kernel execution energy (large size), i7-6700K vs GTX 1080.

Reproduces both panels (the linear 5a view and, numerically, the log
5b view) and the paper's §5.2 findings: every benchmark costs more
energy on the CPU except crc, and energy variance is larger on the CPU.
"""

import numpy as np
from conftest import emit, emit_figure

from repro.harness import (
    ENERGY_BENCHMARKS,
    check_fig5_cpu_energy_higher,
    figure5,
)


def test_figure5(benchmark, output_dir):
    fig = benchmark.pedantic(figure5, kwargs={"samples": 50},
                             iterations=1, rounds=1)
    text = fig.render()
    # the log view of Fig. 5b, as data
    lines = ["", "Figure 5b (log10 J):"]
    for bench, panel in fig.panels.items():
        cpu = np.log10(panel["i7-6700K"]["mean"])
        gpu = np.log10(panel["GTX 1080"]["mean"])
        lines.append(f"  {bench:8s} cpu={cpu:+.3f}  gpu={gpu:+.3f}")
    emit(output_dir, "figure5_energy", text + "\n".join(lines), fig.to_csv())
    emit_figure(output_dir, "figure5_energy_plot", fig, log_scale=True)

    assert list(fig.panels) == list(ENERGY_BENCHMARKS)
    assert check_fig5_cpu_energy_higher(fig)
    # CPU variance larger (paper §5.2)
    cpu_covs = [r.energy_summary.cov for r in fig.results
                if r.device == "i7-6700K"]
    gpu_covs = [r.energy_summary.cov for r in fig.results
                if r.device == "GTX 1080"]
    assert np.median(cpu_covs) > np.median(gpu_covs)
