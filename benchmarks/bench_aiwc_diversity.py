"""AIWC characterization and suite diversity (paper §2 and §7).

Regenerates the diversity analysis that justified the original suite's
composition, over our architecture-independent metrics: crc should be
the structural outlier (hence its unique Fig. 1 behaviour) and the two
Spectral Methods benchmarks should be near neighbours.
"""

from conftest import emit

from repro.aiwc import analyze, characterize_suite
from repro.harness import render_table


def test_aiwc_diversity(benchmark, output_dir):
    metrics = benchmark(characterize_suite, "large")
    report = analyze(metrics)

    text = render_table([m.as_row() for m in metrics],
                        "AIWC metrics (large size)")
    text += "\n" + render_table(report.distinctiveness_rows(),
                                "Distinctiveness (distance to nearest)")
    text += "\nMST: " + ", ".join(f"{a}-{b}({d})" for a, b, d in report.mst_edges)
    emit(output_dir, "aiwc_diversity", text)

    assert report.most_distinct()[0] == "crc"
    assert len(report.mst_edges) == 10
