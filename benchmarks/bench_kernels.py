"""Microbenchmarks of the functional numpy kernels themselves.

These time the *simulator's* execution speed (how fast the suite runs
on the host machine), not the modeled device times; they exist so that
performance regressions in the vectorised kernel implementations are
caught.
"""

import numpy as np
import pytest

from repro import ocl
from repro.dwarfs import create
from repro.dwarfs.crc import make_table
from repro.dwarfs.dwt import lift53_forward
from repro.dwarfs.fft import stockham_stage


@pytest.fixture
def cpu_pair():
    device = ocl.find_device("i7-6700K")
    ctx = ocl.Context(device)
    return ctx, ocl.CommandQueue(ctx)


def test_fft_stage_throughput(benchmark):
    n = 1 << 18
    rng = np.random.default_rng(0)
    src = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(np.complex64)
    dst = np.empty_like(src)
    benchmark(stockham_stage, src, dst, n, 4)


def test_lifting_pass_throughput(benchmark):
    img = np.random.default_rng(0).uniform(0, 255, (864, 1152)).astype(np.float32)
    benchmark(lift53_forward, img, 1)


def test_crc_table_generation(benchmark):
    table = benchmark(make_table)
    assert table[1] == 0x77073096


def test_srad_iteration(benchmark, cpu_pair):
    ctx, queue = cpu_pair
    bench = create("srad", "small")
    bench.host_setup(ctx)
    bench.transfer_inputs(queue)
    benchmark(bench.run_iteration, queue)


def test_nw_full_alignment(benchmark, cpu_pair):
    ctx, queue = cpu_pair
    bench = create("nw", "small")
    bench.host_setup(ctx)
    bench.transfer_inputs(queue)
    benchmark(bench.run_iteration, queue)


def test_kmeans_sweep(benchmark, cpu_pair):
    ctx, queue = cpu_pair
    bench = create("kmeans", "medium")
    bench.host_setup(ctx)
    bench.transfer_inputs(queue)
    benchmark(bench.run_iteration, queue)


def test_spmv(benchmark, cpu_pair):
    ctx, queue = cpu_pair
    bench = create("csr", "medium")
    bench.host_setup(ctx)
    bench.transfer_inputs(queue)
    benchmark(bench.run_iteration, queue)
