"""Table 1: hardware characteristics of the fifteen platforms."""

from conftest import emit

from repro.harness import table1_rows, table1_text


def test_table1_regeneration(benchmark, output_dir):
    rows = benchmark(table1_rows)
    assert len(rows) == 15
    emit(output_dir, "table1", table1_text())
    # spot-check the published cells
    by_name = {r["Name"]: r for r in rows}
    assert by_name["i7-6700K"]["Cache (KiB)"] == "32/256/8192"
    assert by_name["Titan X"]["CoreCount"] == "3584†"
    assert by_name["Xeon Phi 7210"]["TDP (W)"] == 215
