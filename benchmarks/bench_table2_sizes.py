"""Table 2: workload scale parameters Φ.

Regenerates the published table from the benchmark registry and runs
the §4.4 sizing methodology (solver) against the Skylake reference to
show the published values land in the intended cache levels.
"""

from conftest import emit

from repro.devices import get_device
from repro.harness import render_table, table2_text
from repro.sizing import (
    SCALE_GENERATORS,
    preset_fit_report,
    solve_sizes,
)


def test_table2_regeneration(benchmark, output_dir):
    emit(output_dir, "table2", benchmark(table2_text))


def test_table2_presets_fit_skylake_caches(benchmark, output_dir):
    report = benchmark(preset_fit_report)
    rows = []
    for bench, sizes in report.items():
        row = {"Benchmark": bench}
        for size, (kib, fits) in sizes.items():
            row[size] = f"{kib:.1f} KiB -> {fits}"
        rows.append(row)
    emit(output_dir, "table2_fit",
         render_table(rows, "Table 2 presets vs Skylake cache levels"))
    for bench in ("kmeans", "lud", "fft", "dwt", "srad", "nw", "gem"):
        for size in ("tiny", "small", "medium", "large"):
            assert report[bench][size][1] == size, (bench, size)


def test_table2_solver(benchmark, output_dir):
    """Time the sizing solver (kmeans) and report all solved sizes."""
    skylake = get_device("i7-6700K")
    benchmark(solve_sizes, "kmeans", skylake)
    rows = []
    for name in SCALE_GENERATORS:
        sel = solve_sizes(name, skylake)
        rows.append({
            "Benchmark": name,
            **{size: f"{sel.phi(size)} ({sel.footprint(size) / 1024:.1f} KiB)"
               for size in ("tiny", "small", "medium", "large")},
        })
    emit(output_dir, "table2_solved",
         render_table(rows, "Sizes solved by the §4.4 methodology (Skylake)"))
