"""Shim for environments without the ``wheel`` package.

``pip install -e .`` requires building a PEP 660 wheel, which needs the
``wheel`` distribution; on offline machines without it, install with::

    python setup.py develop

Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
