"""crc (CRC-32 + combine) and nw (Needleman-Wunsch) correctness."""

import zlib

import numpy as np
import pytest

from repro.dwarfs.crc import CRC, crc32_bytes, crc32_combine, make_table
from repro.dwarfs.nw import BLOSUM62, NW


class TestCRC32Primitives:
    def test_table_spot_values(self):
        table = make_table()
        assert table[0] == 0
        assert table[1] == 0x77073096  # canonical first entry
        assert table[255] == 0x2D02EF8D

    @pytest.mark.parametrize("payload", [b"", b"a", b"123456789",
                                         b"hello world" * 7])
    def test_reference_matches_zlib(self, payload):
        assert crc32_bytes(payload) == zlib.crc32(payload) & 0xFFFFFFFF

    def test_check_value(self):
        """The CRC-32 'check' value for '123456789' is 0xCBF43926."""
        assert crc32_bytes(b"123456789") == 0xCBF43926

    @pytest.mark.parametrize("split", [0, 1, 5, 9])
    def test_combine(self, split):
        data = b"123456789"
        a, b = data[:split], data[split:]
        combined = crc32_combine(
            zlib.crc32(a) & 0xFFFFFFFF, zlib.crc32(b) & 0xFFFFFFFF, len(b))
        assert combined == zlib.crc32(data) & 0xFFFFFFFF

    def test_combine_matches_zlib_on_random_data(self, rng):
        data = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        for split in (1, 1024, 2500, 4999):
            a, b = data[:split], data[split:]
            combined = crc32_combine(
                zlib.crc32(a) & 0xFFFFFFFF, zlib.crc32(b) & 0xFFFFFFFF, len(b))
            assert combined == zlib.crc32(data) & 0xFFFFFFFF

    def test_combine_zero_length(self):
        assert crc32_combine(0x1234, 0x9999, 0) == 0x1234


class TestCRCBenchmark:
    def test_presets_match_table2(self):
        assert CRC.presets == {
            "tiny": 2000, "small": 16000, "medium": 524000, "large": 4194304}

    def test_from_args(self):
        bench = CRC.from_args(["-i", "1000", "2000.txt"])
        assert bench.n_bytes == 2000
        assert bench.inner_iterations == 1000

    def test_page_crcs_match_zlib(self, cpu_context, cpu_queue):
        CRC(n_bytes=3000).run_complete(cpu_context, cpu_queue)

    def test_non_page_multiple_length(self, cpu_context, cpu_queue):
        """Last page is short; its CRC must still be correct."""
        bench = CRC(n_bytes=2500, page_bytes=1024)
        bench.run_complete(cpu_context, cpu_queue)
        assert bench.lengths[-1] == 2500 - 2 * 1024

    def test_combined_crc_equals_whole_message(self, cpu_context, cpu_queue):
        bench = CRC(n_bytes=5000)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        assert bench.combined_crc() == zlib.crc32(bench.message.tobytes())

    def test_profile_is_chain_dominated(self):
        """The model sees crc as a dependent chain with one work item —
        the structure that makes CPUs fastest (Fig. 1)."""
        p = CRC.from_size("large").profiles()[0]
        assert p.chain_ops > 0
        assert p.work_items == 1
        assert p.flops == 0


class TestNW:
    def test_presets_match_table2(self):
        assert NW.presets == {
            "tiny": 48, "small": 176, "medium": 1008, "large": 4096}

    def test_blosum62_properties(self):
        assert BLOSUM62.shape == (24, 24)
        assert (BLOSUM62 == BLOSUM62.T).all()       # symmetric
        assert (np.diag(BLOSUM62)[:20] > 0).all()   # self-match positive

    def test_from_args(self):
        bench = NW.from_args(["176", "10"])
        assert bench.n == 176
        assert bench.penalty == 10

    def test_size_must_be_block_multiple(self):
        with pytest.raises(ValueError):
            NW(n=100)

    def test_matches_antidiagonal_reference(self, cpu_context, cpu_queue):
        NW(n=64).run_complete(cpu_context, cpu_queue)

    def test_matches_pure_python_reference(self, cpu_context, cpu_queue):
        bench = NW(n=48)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        np.testing.assert_array_equal(
            bench.score_out.astype(np.int64), bench.reference_serial())

    def test_identical_sequences_score_high(self, cpu_context, cpu_queue):
        bench = NW(n=32, seed=4)
        bench.host_setup(cpu_context)
        bench.seq2 = bench.seq1.copy()
        bench.similarity = BLOSUM62[
            bench.seq1[:, None], bench.seq2[None, :]].astype(np.int32)
        bench.buf_similarity.array[...] = bench.similarity
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        diag_score = int(BLOSUM62[bench.seq1, bench.seq1].sum())
        assert bench.alignment_score() == diag_score

    def test_launch_count_is_block_diagonals(self, cpu_context, cpu_queue):
        bench = NW(n=64)  # 4x4 blocks -> 7 diagonals
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        assert len(events) == 7
        assert bench.n_diagonals == 7

    def test_gap_penalty_affects_boundary(self, cpu_context, cpu_queue):
        bench = NW(n=32, penalty=25)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        assert bench.buf_score.array[0, 5] == -125

    def test_profile_launch_heavy(self):
        """nw at large is the launch-overhead stress test (Fig. 3b)."""
        p = NW.from_size("large").profiles()[0]
        assert p.launches == 2 * (4096 // 16) - 1

    def test_amd_slower_than_nvidia_at_large(self):
        from repro.devices import get_device
        from repro.perfmodel import iteration_time
        bench = NW.from_size("large")
        amd = iteration_time(get_device("R9 290X"), bench.profiles())
        nvidia = iteration_time(get_device("GTX 1080"), bench.profiles())
        assert amd.total_s > 1.5 * nvidia.total_s
