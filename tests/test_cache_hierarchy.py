"""Multi-level hierarchy, TLB and branch predictor."""

import numpy as np
import pytest

from repro.cache import BranchPredictor, CacheHierarchy, SetAssociativeCache, TLB


def small_hierarchy():
    return CacheHierarchy([
        SetAssociativeCache(1024, 64, 2, name="L1"),
        SetAssociativeCache(8192, 64, 4, name="L2"),
        SetAssociativeCache(65536, 64, 8, name="L3"),
    ])


class TestHierarchy:
    def test_levels_must_grow(self):
        with pytest.raises(ValueError):
            CacheHierarchy([
                SetAssociativeCache(8192, 64, 2),
                SetAssociativeCache(1024, 64, 2),
            ])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_miss_fills_all_levels(self):
        h = small_hierarchy()
        assert h.access(0) == 3          # memory
        assert h.access(0) == 0          # now L1-resident
        assert h.memory_accesses == 1

    def test_l1_eviction_falls_to_l2(self):
        h = small_hierarchy()
        # fill far beyond L1 (1 KiB) but within L2 (8 KiB)
        addrs = np.arange(0, 4096, 64)
        h.access_many(addrs)
        h.levels[0].flush()
        level = h.access(0)
        assert level == 1  # L2 hit

    def test_working_set_classification(self, skylake):
        """On the Skylake hierarchy, a working set that fits L2 misses
        L1 but not L3 when streamed cyclically — the basis of the
        problem-size verification."""
        h = CacheHierarchy.for_device(skylake)
        addrs = np.arange(0, 128 * 1024, 64)  # 128 KiB: fits L2 only
        h.access_many(addrs)
        before_l2 = h.levels[1].stats.misses
        h.access_many(addrs)
        assert h.levels[1].stats.misses == before_l2  # L2 absorbs repeats

    def test_for_device_names(self, skylake):
        h = CacheHierarchy.for_device(skylake)
        assert [c.name for c in h.levels] == ["L1", "L2", "L3"]

    def test_for_device_gpu_two_levels(self, gtx1080):
        h = CacheHierarchy.for_device(gtx1080)
        assert len(h.levels) == 2

    def test_miss_counts_and_rates(self):
        h = small_hierarchy()
        h.access_many([0, 64, 0])
        counts = h.miss_counts()
        assert counts["L1"] == 2
        rates = h.miss_rates()
        assert rates["L1"] == pytest.approx(2 / 3)

    def test_reset(self):
        h = small_hierarchy()
        h.access_many([0, 64])
        h.reset()
        assert h.memory_accesses == 0
        assert h.miss_counts() == {"L1": 0, "L2": 0, "L3": 0}


class TestTLB:
    def test_page_hit(self):
        tlb = TLB(entries=4, page_bytes=4096)
        assert tlb.access(0) is False
        assert tlb.access(100) is True      # same page
        assert tlb.access(4096) is False    # next page

    def test_lru_eviction(self):
        tlb = TLB(entries=2, page_bytes=4096)
        tlb.access(0)
        tlb.access(4096)
        tlb.access(0)          # refresh page 0
        tlb.access(2 * 4096)   # evicts page 1
        assert tlb.access(0) is True
        assert tlb.access(4096) is False

    def test_reach(self):
        tlb = TLB(entries=64, page_bytes=4096)
        assert tlb.reach_bytes == 64 * 4096

    def test_working_set_beyond_reach_thrashes(self):
        tlb = TLB(entries=8, page_bytes=4096)
        pages = [i * 4096 for i in range(16)]
        tlb.access_many(pages)
        assert tlb.access_many(pages) == 16

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TLB(entries=0)
        with pytest.raises(ValueError):
            TLB(page_bytes=1000)

    def test_reset(self):
        tlb = TLB(entries=4)
        tlb.access(0)
        tlb.reset()
        assert tlb.stats.accesses == 0
        assert tlb.access(0) is False


class TestBranchPredictor:
    def test_learns_steady_branch(self):
        bp = BranchPredictor(64)
        for _ in range(100):
            bp.predict_and_update(0x400, True)
        assert bp.misprediction_rate < 0.05

    def test_alternating_branch_confuses_bimodal(self):
        bp = BranchPredictor(64)
        for i in range(200):
            bp.predict_and_update(0x400, i % 2 == 0)
        assert bp.misprediction_rate > 0.4

    def test_distinct_pcs_do_not_interfere(self):
        bp = BranchPredictor(1024)
        for _ in range(50):
            bp.predict_and_update(0x100, True)
            bp.predict_and_update(0x200, False)
        assert bp.misprediction_rate < 0.1

    def test_run_trace_shape_mismatch(self):
        bp = BranchPredictor(64)
        with pytest.raises(ValueError):
            bp.run_trace([1, 2, 3], [True])

    def test_table_size_pow2(self):
        with pytest.raises(ValueError):
            BranchPredictor(100)

    def test_reset(self):
        bp = BranchPredictor(64)
        bp.predict_and_update(0, True)
        bp.reset()
        assert bp.branches == 0
        assert bp.mispredictions == 0
