"""LibSciBench-style stats, timers and recorder."""

import time

import numpy as np
import pytest

from repro import ocl
from repro.scibench import (
    DeviceClock,
    REGION_KERNEL,
    REGION_TRANSFER,
    Recorder,
    WallClock,
    achieved_power,
    coefficient_of_variation,
    required_sample_size,
    summarize,
    welch_t_test,
)


class TestSampleSize:
    def test_paper_sample_size_is_50(self):
        """beta=0.8 at half-sigma separation -> n=50 (paper §4.3)."""
        assert required_sample_size(effect_size=0.5, power=0.8, alpha=0.05) == 50

    def test_larger_effect_needs_fewer(self):
        assert required_sample_size(effect_size=1.0) < required_sample_size(0.5)

    def test_two_sided_needs_more(self):
        assert (required_sample_size(two_sided=True)
                > required_sample_size(two_sided=False))

    def test_achieved_power_at_50(self):
        assert achieved_power(50) == pytest.approx(0.8, abs=0.02)

    def test_achieved_power_tiny_n(self):
        assert achieved_power(1) == 0.0

    def test_invalid_params(self):
        for kwargs in (dict(alpha=0.0), dict(alpha=1.5), dict(power=0.0),
                       dict(effect_size=-1.0)):
            with pytest.raises(ValueError):
                required_sample_size(**kwargs)


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0
        assert s.iqr == 2.0

    def test_ci_contains_mean(self):
        s = summarize(np.random.default_rng(0).normal(10, 1, 100))
        assert s.ci_low < s.mean < s.ci_high

    def test_ci_narrows_with_n(self):
        rng = np.random.default_rng(0)
        wide = summarize(rng.normal(10, 1, 10))
        narrow = summarize(rng.normal(10, 1, 1000))
        assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_cov(self):
        assert summarize([2.0, 2.0, 2.0]).cov == 0.0
        assert coefficient_of_variation([1.0]) == 0.0
        assert coefficient_of_variation([1.0, 3.0]) > 0

    def test_cov_zero_mean_zero_spread(self):
        # all-zero samples: no spread, cov is a well-defined 0
        assert summarize([0.0, 0.0, 0.0]).cov == 0.0
        assert coefficient_of_variation([0.0, 0.0]) == 0.0

    def test_cov_zero_mean_nonzero_spread_is_nan(self):
        # mean 0 with real spread: cov is undefined, not an inf/crash
        import math
        assert math.isnan(summarize([-1.0, 1.0]).cov)
        assert math.isnan(coefficient_of_variation([-1.0, 1.0]))


class TestWelch:
    def test_detects_difference(self, rng):
        a = rng.normal(10.0, 1.0, 50)
        b = rng.normal(10.5, 1.0, 50)  # half-sigma shift: the paper's target
        _, p = welch_t_test(a, b)
        assert p < 0.2  # detectable most of the time at n=50

    def test_same_distribution_high_p(self, rng):
        a = rng.normal(10.0, 1.0, 50)
        _, p = welch_t_test(a, a)
        assert p == pytest.approx(1.0)


class TestTimers:
    def test_wall_clock_measures(self):
        clock = WallClock()
        with clock:
            time.sleep(0.01)
        assert clock.elapsed_ns >= 9_000_000

    def test_wall_clock_accumulates(self):
        clock = WallClock()
        for _ in range(3):
            with clock:
                pass
        assert clock.elapsed_ns >= 0
        clock.reset()
        assert clock.elapsed_ns == 0

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            WallClock().stop()

    def test_device_clock_brackets_commands(self, cpu_context):
        queue = ocl.CommandQueue(cpu_context)
        buf = cpu_context.create_buffer(size=1 << 20)
        clock = DeviceClock(queue)
        with clock:
            queue.enqueue_fill_buffer(buf, 0)
        assert clock.elapsed_ns > 0

    def test_device_clock_idle_is_zero(self, cpu_context):
        queue = ocl.CommandQueue(cpu_context)
        clock = DeviceClock(queue)
        with clock:
            pass
        assert clock.elapsed_ns == 0


class TestRecorder:
    def test_record_and_summarise(self):
        rec = Recorder("t")
        for v in (1.0, 2.0, 3.0):
            rec.record(REGION_KERNEL, v)
        assert rec.count(REGION_KERNEL) == 3
        assert rec.summary(REGION_KERNEL).mean == 2.0

    def test_regions_kept_separate(self):
        rec = Recorder()
        rec.record(REGION_KERNEL, 1.0)
        rec.record(REGION_TRANSFER, 9.0)
        assert rec.regions == (REGION_KERNEL, REGION_TRANSFER)
        assert rec.summary(REGION_TRANSFER).mean == 9.0

    def test_energy_summary(self):
        rec = Recorder()
        rec.record(REGION_KERNEL, 1.0, energy_j=5.0)
        rec.record(REGION_KERNEL, 1.0)  # no energy
        assert rec.energy_summary(REGION_KERNEL).n == 1

    def test_missing_region_raises(self):
        with pytest.raises(KeyError):
            Recorder().summary("nope")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Recorder().record(REGION_KERNEL, -1.0)

    def test_record_event(self, cpu_context):
        queue = ocl.CommandQueue(cpu_context)
        buf = cpu_context.create_buffer(size=1024)
        event = queue.enqueue_fill_buffer(buf, 0)
        rec = Recorder()
        rec.record_event(REGION_TRANSFER, event)
        assert rec.count(REGION_TRANSFER) == 1

    def test_csv_export(self):
        rec = Recorder()
        rec.record(REGION_KERNEL, 0.5, energy_j=2.0)
        csv = rec.to_csv()
        assert "region,time_s,energy_j" in csv
        assert "kernel,0.5,2" in csv

    def test_clear(self):
        rec = Recorder()
        rec.record(REGION_KERNEL, 1.0)
        rec.clear()
        assert len(rec) == 0
