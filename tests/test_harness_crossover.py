"""Crossover sweeps: where the GPU overtakes the CPU."""

import pytest

from repro.harness import CrossoverResult, crossover_footprint_kib, sweep


class TestSweep:
    @pytest.fixture(scope="class")
    def srad_sweep(self):
        return sweep("srad", "i7-6700K", "GTX 1080", stride=4)

    def test_points_monotone_footprint(self, srad_sweep):
        fps = [p.footprint_bytes for p in srad_sweep.points]
        assert fps == sorted(fps)

    def test_crossover_found_for_bandwidth_bound(self, srad_sweep):
        """srad: CPU wins cache-resident sizes, GPU wins beyond — the
        crossover falls near the CPU's cache capacity."""
        assert srad_sweep.crossover is not None
        kib = srad_sweep.crossover.footprint_bytes / 1024
        assert 16 <= kib <= 16 * 1024  # between L1 and 2x L3

    def test_challenger_wins_at_large(self, srad_sweep):
        assert srad_sweep.points[-1].ratio > 2.0

    def test_baseline_wins_at_tiny(self, srad_sweep):
        assert srad_sweep.points[0].ratio < 1.0

    def test_rows_mark_crossover(self, srad_sweep):
        rows = srad_sweep.rows()
        marked = [r for r in rows if r["x"]]
        assert len(marked) == 1

    def test_crc_gpu_never_wins(self):
        """crc's serial chain: no problem size favours the GPU."""
        result = sweep("crc", "i7-6700K", "GTX 1080", stride=8)
        assert not result.challenger_ever_wins
        assert result.crossover is None

    def test_device_order_matters(self):
        forward = sweep("fft", "i7-6700K", "GTX 1080", stride=4)
        backward = sweep("fft", "GTX 1080", "i7-6700K", stride=4)
        assert forward.challenger_ever_wins
        assert not backward.challenger_always_wins

    def test_convenience_footprint(self):
        kib = crossover_footprint_kib("fft", "i7-6700K", "GTX 1080", stride=4)
        assert kib is not None and kib > 0

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            sweep("gem", "i7-6700K", "GTX 1080")  # fixed-size: no generator

    def test_result_types(self, srad_sweep):
        assert isinstance(srad_sweep, CrossoverResult)
        assert srad_sweep.baseline == "i7-6700K"
        assert srad_sweep.challenger == "GTX 1080"
