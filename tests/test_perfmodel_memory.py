"""Memory-system model: pattern-dependent effective bandwidths."""

import pytest

from repro.perfmodel import (
    memory_level_parallelism,
    memory_time_s,
    random_bandwidth_gbs,
    sequential_bandwidth_gbs,
    strided_bandwidth_gbs,
)


class TestSequential:
    def test_l1_resident_fastest(self, skylake):
        assert (sequential_bandwidth_gbs(skylake, 16 * 1024)
                > sequential_bandwidth_gbs(skylake, 64 * 1024 * 1024))

    def test_monotone_nonincreasing_with_working_set(self, skylake):
        sizes = [2**k for k in range(10, 28)]
        bws = [sequential_bandwidth_gbs(skylake, s) for s in sizes]
        assert all(a >= b for a, b in zip(bws, bws[1:]))


class TestStrided:
    def test_cpu_prefetchers_mostly_hide_stride(self, skylake):
        seq = sequential_bandwidth_gbs(skylake, 1 << 20)
        strided = strided_bandwidth_gbs(skylake, 1 << 20)
        assert 0.5 * seq < strided < seq

    def test_gpu_loses_coalescing(self, gtx1080):
        seq = sequential_bandwidth_gbs(gtx1080, 1 << 26)
        strided = strided_bandwidth_gbs(gtx1080, 1 << 26)
        assert strided == pytest.approx(seq / 4.0)

    def test_gpu_stride_penalty_worse_than_cpu(self, skylake, gtx1080):
        cpu_ratio = (strided_bandwidth_gbs(skylake, 1 << 26)
                     / sequential_bandwidth_gbs(skylake, 1 << 26))
        gpu_ratio = (strided_bandwidth_gbs(gtx1080, 1 << 26)
                     / sequential_bandwidth_gbs(gtx1080, 1 << 26))
        assert gpu_ratio < cpu_ratio


class TestRandom:
    def test_random_slowest_pattern(self, skylake):
        ws = 1 << 26
        assert (random_bandwidth_gbs(skylake, ws)
                < strided_bandwidth_gbs(skylake, ws)
                < sequential_bandwidth_gbs(skylake, ws))

    def test_gpu_mlp_exceeds_cpu(self, skylake, gtx1080):
        assert (memory_level_parallelism(gtx1080)
                > memory_level_parallelism(skylake))

    def test_gpu_random_absolute_bandwidth_higher(self, skylake, gtx1080):
        """GPUs hide random-access latency with massive MLP — the reason
        spectral-methods codes favour GPUs at large sizes (paper §5.1)."""
        ws = 64 << 20
        assert random_bandwidth_gbs(gtx1080, ws) > random_bandwidth_gbs(skylake, ws)


class TestMemoryTime:
    def test_zero_bytes_zero_time(self, skylake):
        assert memory_time_s(skylake, 0, 1024, 1.0, 0.0, 0.0) == 0.0

    def test_pure_sequential_matches_bandwidth(self, skylake):
        ws = 64 << 20
        t = memory_time_s(skylake, 1e9, ws, 1.0, 0.0, 0.0)
        assert t == pytest.approx(1e9 / (skylake.memory.bandwidth_gbs * 1e9))

    def test_mixed_pattern_slower_than_sequential(self, skylake):
        ws = 64 << 20
        t_seq = memory_time_s(skylake, 1e8, ws, 1.0, 0.0, 0.0)
        t_mixed = memory_time_s(skylake, 1e8, ws, 0.5, 0.0, 0.5)
        assert t_mixed > t_seq

    def test_low_utilization_derates(self, gtx1080):
        ws = 1 << 26
        full = memory_time_s(gtx1080, 1e8, ws, 1.0, 0.0, 0.0, 1.0)
        starved = memory_time_s(gtx1080, 1e8, ws, 1.0, 0.0, 0.0, 0.25)
        assert starved == pytest.approx(4 * full)
