"""LSB file round-trips and Event profiling error paths (satellites)."""

import numpy as np
import pytest

from repro import ocl
from repro.ocl.errors import ProfilingInfoNotAvailable
from repro.scibench import lsb
from repro.scibench.recorder import (
    REGION_KERNEL,
    REGION_SETUP,
    REGION_TRANSFER,
    Recorder,
)


class TestLsbRoundTrip:
    def make_recorder(self):
        rec = Recorder("kmeans/tiny/i7-6700K")
        rec.record(REGION_SETUP, 1e-3)
        rec.record(REGION_KERNEL, 2e-3, energy_j=0.125)
        rec.record(REGION_TRANSFER, 3e-3)
        rec.record(REGION_KERNEL, 4e-3, energy_j=0.0625)
        return rec

    def test_energy_values_preserved(self):
        rec = self.make_recorder()
        back = lsb.loads(lsb.dumps(rec))
        assert back.energies_j(REGION_KERNEL) == [0.125, 0.0625]
        # energy-less records stay energy-less
        assert back.energies_j(REGION_SETUP) == []
        assert back.energies_j(REGION_TRANSFER) == []

    def test_region_order_and_times_preserved(self):
        rec = self.make_recorder()
        back = lsb.loads(lsb.dumps(rec))
        assert back.regions == (REGION_SETUP, REGION_KERNEL, REGION_TRANSFER)
        assert [m.region for m in back._measurements] == [
            m.region for m in rec._measurements]
        for original, parsed in zip(rec._measurements, back._measurements):
            assert parsed.time_s == pytest.approx(original.time_s, rel=1e-9)

    def test_name_survives_and_file_round_trip(self, tmp_path):
        rec = self.make_recorder()
        path = tmp_path / lsb.default_filename("kmeans")
        lsb.save(path, rec, system="skylake")
        back = lsb.load(path)
        assert back.name == "kmeans/tiny/i7-6700K"
        assert len(back) == len(rec)
        text = path.read_text()
        assert "# System: skylake" in text
        assert "energy_j" in text

    def test_legacy_four_column_files_still_parse(self):
        text = (
            "# LibSciBench version 0.2.2\n"
            f"{'id':>8} {'region':>16} {'time_us':>18} {'overhead_ns':>12}\n"
            f"{0:>8} {'kernel':>16} {1500.0:>18.6f} {6:>12}\n"
        )
        rec = lsb.loads(text)
        assert rec.times_s("kernel") == [pytest.approx(1.5e-3)]
        assert rec.energies_j("kernel") == []

    def test_malformed_records_rejected(self):
        with pytest.raises(ValueError, match="expected header"):
            lsb.loads("0 kernel 1.0 6\n")
        header = f"{'id':>8} {'region':>16} {'time_us':>18} {'overhead_ns':>12}\n"
        with pytest.raises(ValueError, match="malformed LSB record"):
            lsb.loads(header + "0 kernel 1.0\n")
        with pytest.raises(ValueError, match="malformed LSB record"):
            lsb.loads(header + "0 kernel 1.0 6 0.5 extra extra\n")


class TestEventProfilingErrorPaths:
    def test_queue_delay_is_queued_to_start(self, cpu_context):
        queue = ocl.CommandQueue(cpu_context)
        buf = cpu_context.create_buffer(size=1024)
        event = queue.enqueue_fill_buffer(buf, 0)
        assert event.queue_delay_ns == event.start_ns - event.queued_ns
        assert event.queue_delay_ns >= ocl.ENQUEUE_OVERHEAD_NS

    def test_profiling_disabled_queue_raises(self, cpu_context):
        queue = ocl.CommandQueue(cpu_context,
                                 properties=ocl.QueueProperties.NONE)
        buf = cpu_context.create_buffer(size=1024)
        event = queue.enqueue_fill_buffer(buf, 0)
        assert not event.profiling_enabled
        for accessor in (
            lambda: event.get_profiling_info(ocl.ProfilingInfo.START),
            lambda: event.duration_ns,
            lambda: event.queue_delay_ns,
        ):
            with pytest.raises(ProfilingInfoNotAvailable,
                               match="PROFILING_ENABLE"):
                accessor()

    def test_unreached_timestamp_raises_even_with_profiling(self):
        event = ocl.Event(command_type=ocl.CommandType.MARKER,
                          profiling_enabled=True)
        with pytest.raises(ProfilingInfoNotAvailable,
                           match="not yet available"):
            event.get_profiling_info(ocl.ProfilingInfo.END)
        with pytest.raises(RuntimeError, match="never completed"):
            event.wait()

    def test_recorder_tags_carry_kernel_and_bytes(self, cpu_context):
        """record_event no longer drops event.info detail."""
        queue = ocl.CommandQueue(cpu_context)
        buf = cpu_context.create_buffer(size=2048)
        rec = Recorder()
        rec.record_event(REGION_TRANSFER, queue.enqueue_fill_buffer(buf, 0))
        transfer = rec._measurements[0]
        assert transfer.tags["command"] == "fill_buffer"
        assert transfer.tags["bytes"] == 2048

        program = ocl.Program(
            cpu_context,
            [ocl.KernelSource("noop", lambda nd, b: None)]).build()
        kernel = program.create_kernel("noop").set_args(buf)
        rec.record_event(REGION_KERNEL,
                         queue.enqueue_nd_range_kernel(kernel, (16,)))
        measured = rec._measurements[1]
        assert measured.tags["kernel"] == "noop"
        assert measured.tags["command"] == "ndrange_kernel"

    def test_csv_has_tags_column(self, cpu_context):
        queue = ocl.CommandQueue(cpu_context)
        buf = cpu_context.create_buffer(size=512)
        rec = Recorder()
        rec.record_event(REGION_TRANSFER, queue.enqueue_fill_buffer(buf, 0))
        csv = rec.to_csv()
        header, row = csv.splitlines()[:2]
        assert header == "region,time_s,energy_j,tags"
        assert "bytes=512" in row
        assert "command=fill_buffer" in row
