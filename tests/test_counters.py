"""PAPI event sets and the RAPL/NVML sensor facades."""

import numpy as np
import pytest

from repro.counters import (
    COUNTER_NAMES,
    NvmlSensor,
    PapiEventSet,
    POWER_ACCURACY_W,
    RaplSensor,
)
from repro.devices import get_device
from repro.perfmodel import mean_power_w


class TestPapiEventSet:
    def test_lifecycle(self, skylake):
        events = PapiEventSet(skylake)
        events.start()
        events.record_memory_trace(np.arange(0, 4096, 64))
        report = events.stop()
        assert report["PAPI_TOT_INS"] == 64
        assert report["PAPI_L1_DCM"] == 64  # all cold misses

    def test_requires_start(self, skylake):
        events = PapiEventSet(skylake)
        with pytest.raises(RuntimeError):
            events.record_instructions(10)

    def test_stop_requires_running(self, skylake):
        events = PapiEventSet(skylake)
        events.start()
        events.stop()
        with pytest.raises(RuntimeError):
            events.stop()

    def test_counter_names_present(self, skylake):
        events = PapiEventSet(skylake)
        events.start()
        events.record_memory_trace(np.arange(0, 1024, 64))
        events.record_branch_trace([0x40] * 10, [True] * 10)
        report = events.stop()
        for name in COUNTER_NAMES:
            assert name in report.counts

    def test_rates_normalised_by_instructions(self, skylake):
        events = PapiEventSet(skylake)
        events.start()
        events.record_memory_trace(np.arange(0, 4096, 64))
        events.record_instructions(936)  # 64 + 936 = 1000 total
        report = events.stop()
        assert report.rate("PAPI_L1_DCM") == pytest.approx(64 / 1000)
        percentages = report.as_percentages()
        assert percentages["PAPI_L1_DCM"] == pytest.approx(6.4)

    def test_l3_miss_ratio(self, skylake):
        events = PapiEventSet(skylake)
        events.start()
        events.record_memory_trace(np.arange(0, 64 * 1024 * 1024, 4096))
        report = events.stop()
        assert 0.0 < report.l3_miss_ratio() <= 1.0

    def test_branch_counters(self, skylake):
        events = PapiEventSet(skylake)
        events.start()
        events.record_branch_trace([0x10] * 100, [True] * 100)
        report = events.stop()
        assert report["PAPI_BR_INS"] == 100
        assert report["PAPI_BR_MSP"] < 10

    def test_working_set_transition_visible(self, skylake):
        """L1 misses jump when the working set crosses 32 KiB."""
        def miss_rate(ws):
            events = PapiEventSet(skylake)
            events.start()
            addrs = np.tile(np.arange(0, ws, 64), 4)
            events.record_memory_trace(addrs)
            return events.stop().rate("PAPI_L1_DCM")
        fits = miss_rate(16 * 1024)
        spills = miss_rate(256 * 1024)
        assert spills > 2 * fits


class TestRapl:
    def test_intel_only(self, gtx1080):
        with pytest.raises(ValueError):
            RaplSensor(gtx1080)

    def test_measure_matches_power_model(self, skylake):
        sensor = RaplSensor(skylake)
        e = sensor.measure(2.0, 0.5)
        assert e == pytest.approx(2.0 * mean_power_w(skylake, 0.5), rel=1e-6)

    def test_cumulative_counter(self, skylake):
        sensor = RaplSensor(skylake)
        sensor.accumulate(1.0, 1.0)
        first = sensor.read_j()
        sensor.accumulate(1.0, 1.0)
        assert sensor.read_j() == pytest.approx(2 * first)

    def test_negative_duration_rejected(self, skylake):
        with pytest.raises(ValueError):
            RaplSensor(skylake).accumulate(-1.0, 0.5)


class TestNvml:
    def test_nvidia_only(self, skylake):
        with pytest.raises(ValueError):
            NvmlSensor(skylake)

    def test_deterministic_without_rng(self, gtx1080):
        sensor = NvmlSensor(gtx1080)
        assert sensor.power_w(0.7) == sensor.power_w(0.7)

    def test_noise_within_accuracy_band(self, gtx1080, rng):
        sensor = NvmlSensor(gtx1080, rng=rng)
        nominal = mean_power_w(gtx1080, 0.7)
        readings = [sensor.power_w(0.7) for _ in range(200)]
        assert all(abs(r - nominal) <= POWER_ACCURACY_W + 1e-9 for r in readings)

    def test_measure_integrates(self, gtx1080):
        sensor = NvmlSensor(gtx1080)
        e = sensor.measure(3.0, 1.0, samples=10)
        assert e == pytest.approx(3.0 * mean_power_w(gtx1080, 1.0), rel=0.01)

    def test_amd_has_no_energy_module(self):
        amd = get_device("R9 290X")
        with pytest.raises(ValueError):
            NvmlSensor(amd)
        with pytest.raises(ValueError):
            RaplSensor(amd)
