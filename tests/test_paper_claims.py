"""End-to-end reproduction of the paper's qualitative findings.

Each test asserts one claim from §5 of the paper against the full
simulated harness (small sample counts keep the suite fast; the
benchmark harness in benchmarks/ runs the full 50-sample protocol).
"""

import numpy as np
import pytest

from repro.devices import DeviceClass, get_device
from repro.harness import (
    ResultSet,
    check_cov_tracks_clock,
    check_fig1_cpu_wins,
    check_fig3a_gap_widens,
    check_fig3b_amd_degrades,
    check_fig5_cpu_energy_higher,
    check_hpc_vs_consumer,
    class_means,
    figure1_crc,
    figure2,
    figure3,
    figure4,
    figure5,
    run_matrix,
)

SAMPLES = 12  # enough for stable means; the benches use the full 50


@pytest.fixture(scope="module")
def fig1():
    return figure1_crc(samples=SAMPLES)


@pytest.fixture(scope="module")
def fig3a():
    return figure3("srad", samples=SAMPLES)


@pytest.fixture(scope="module")
def fig3b():
    return figure3("nw", samples=SAMPLES)


@pytest.fixture(scope="module")
def fig5():
    return figure5(samples=SAMPLES)


class TestFigure1:
    def test_cpu_class_fastest_for_crc(self, fig1):
        """§5.1: 'Execution times for crc are lowest on CPU-type
        architectures' — at every problem size, KNL worst."""
        assert check_fig1_cpu_wins(fig1)

    def test_knl_poor_everywhere(self, fig1):
        for size in fig1.panels:
            means = class_means(fig1, size)
            assert means["MIC"] > means["CPU"]

    def test_all_fifteen_devices_present(self, fig1):
        assert all(len(panel) == 15 for panel in fig1.panels.values())

    def test_cov_larger_on_lower_clocks(self, fig1):
        """§5.1: CoV 'much greater for devices with a lower clock
        frequency, regardless of accelerator type'."""
        assert check_cov_tracks_clock(fig1.results)


class TestFigure2:
    def test_kmeans_cpu_competitive(self):
        """§5.1: kmeans CPU times comparable to GPU (low FP:mem ratio)."""
        fig = figure2("kmeans", samples=SAMPLES)
        means = class_means(fig, "large")
        best_gpu = min(means["Consumer GPU"], means["HPC GPU"])
        assert means["CPU"] < 8 * best_gpu  # same order of magnitude

    def test_i5_penalty_at_medium(self):
        """§5.1: the i5-3550's smaller L3 hurts when moving from small
        to medium (sized for an 8 MiB L3; the i5 has 6 MiB)."""
        fig = figure2("fft", samples=SAMPLES)
        def jump(device):
            return (fig.panels["medium"][device]["mean"]
                    / fig.panels["small"][device]["mean"])
        assert jump("i5-3550") > 1.5 * jump("i7-6700K")
        assert jump("i5-3550") > 1.5 * jump("Xeon E5-2697 v2")

    def test_hpc_gpus_between_same_gen_and_modern(self):
        """§5.1: HPC GPUs beat same-generation consumer GPUs but are
        'always beaten by more modern GPUs'."""
        fig = figure2("lud", samples=SAMPLES)
        assert check_hpc_vs_consumer(fig)

    def test_spectral_methods_cpu_penalty_grows(self):
        """§5.1: for dwt/fft the CPU's memory-latency disadvantage
        grows from medium to large."""
        for bench in ("dwt", "fft"):
            fig = figure2(bench, samples=SAMPLES)
            ratios = []
            for size in ("medium", "large"):
                means = class_means(fig, size)
                gpu = min(means["Consumer GPU"], means["HPC GPU"])
                ratios.append(means["CPU"] / gpu)
            assert ratios[1] >= ratios[0] * 0.9, bench
            assert ratios[1] > 1.5, bench  # GPUs clearly ahead at large


class TestFigure3:
    def test_srad_gap_widens(self, fig3a):
        """§5.1: 'the performance gap between CPU and GPU architectures
        widening for srad' — structured grid suits GPUs."""
        assert check_fig3a_gap_widens(fig3a)

    def test_srad_gpu_wins_at_large(self, fig3a):
        means = class_means(fig3a, "large")
        assert means["CPU"] > 3 * min(means["Consumer GPU"], means["HPC GPU"])

    def test_nw_amd_degrades_with_size(self, fig3b):
        """§5.1: 'a widening performance gap over each increase in
        problem size between AMD GPUs and the other devices'."""
        assert check_fig3b_amd_degrades(fig3b)

    def test_nw_cpu_nvidia_comparable(self, fig3b):
        """§5.1: 'Intel CPUs and NVIDIA GPUs perform comparably over
        all problem sizes' for nw."""
        for size in fig3b.panels:
            means = class_means(fig3b, size)
            nvidia = np.mean([fig3b.panels[size][d]["mean"]
                              for d in ("Titan X", "GTX 1080", "GTX 1080 Ti",
                                        "K20m", "K40m")])
            ratio = means["CPU"] / nvidia
            assert 1 / 4 < ratio < 4, size


class TestFigure4:
    def test_single_size_benchmarks_run(self):
        fig = figure4(samples=SAMPLES)
        assert set(fig.panels) == {"gem", "nqueens", "hmm"}

    def test_gem_gpu_advantage(self):
        """gem is the flop-dense N-body kernel: GPUs win."""
        fig = figure4(samples=SAMPLES)
        means = class_means(fig, "gem")
        assert min(means["Consumer GPU"], means["HPC GPU"]) < means["CPU"]


class TestFigure5:
    def test_cpu_energy_higher_except_crc(self, fig5):
        """§5.2: 'All the benchmarks use more energy on the CPU, with
        the exception of crc'."""
        assert check_fig5_cpu_energy_higher(fig5)

    def test_energy_devices_are_the_instrumented_pair(self, fig5):
        for panel in fig5.panels.values():
            assert set(panel) == {"i7-6700K", "GTX 1080"}

    def test_cpu_energy_variance_larger(self, fig5):
        """§5.2: 'Variance with respect to energy usage is larger on
        the CPU' (consistent with the timing results)."""
        cpu_covs, gpu_covs = [], []
        for r in fig5.results:
            (cpu_covs if r.device == "i7-6700K" else gpu_covs).append(
                r.energy_summary.cov)
        assert np.median(cpu_covs) > np.median(gpu_covs)


class TestCrossCutting:
    def test_modern_gpus_relatively_better_at_large(self):
        """§5.1: modern GPUs (bigger L2) gain ground at large sizes."""
        fig = figure2("fft", samples=SAMPLES)
        modern = ("Titan X", "GTX 1080", "GTX 1080 Ti", "R9 Fury X", "RX 480")
        old = ("K20m", "K40m", "HD 7970", "R9 290X")
        def ratio(size):
            p = fig.panels[size]
            return (np.mean([p[d]["mean"] for d in old])
                    / np.mean([p[d]["mean"] for d in modern]))
        assert ratio("large") > ratio("tiny")

    def test_execution_time_increases_with_size_everywhere(self):
        """§5.1: 'execution time increases with problem size for all
        benchmarks and platforms'."""
        for bench in ("kmeans", "srad", "crc"):
            results = ResultSet(run_matrix(
                bench, devices=["i7-6700K", "GTX 1080", "R9 290X"],
                samples=6))
            for device in results.devices():
                means = [results.get(bench, s, device).mean_ms
                         for s in ("tiny", "small", "medium", "large")]
                assert means == sorted(means), (bench, device)

    def test_all_problem_sizes_fit_every_gpu_global_memory(self):
        """§5.1: 'all selected problem sizes fit within the global
        memory of all devices'."""
        from repro.dwarfs import BENCHMARKS
        min_mem = min(s.memory.size_mib for s in
                      (get_device(n) for n in
                       ("HD 7970", "R9 290X", "K20m"))) * 1024 * 1024
        for name, cls in BENCHMARKS.items():
            for size in cls.available_sizes():
                assert cls.from_size(size).footprint_bytes() < min_mem, (
                    name, size)
