"""Shared fixtures for the Extended OpenDwarfs test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ocl
from repro.devices import get_device


@pytest.fixture
def skylake():
    """The paper's reference CPU spec (i7-6700K)."""
    return get_device("i7-6700K")


@pytest.fixture
def gtx1080():
    """The paper's reference GPU spec."""
    return get_device("GTX 1080")


@pytest.fixture
def knl():
    return get_device("Xeon Phi 7210")


@pytest.fixture
def cpu_context(skylake):
    device = ocl.find_device(skylake.name)
    ctx = ocl.Context(device)
    yield ctx
    ctx.release_all()


@pytest.fixture
def gpu_context(gtx1080):
    device = ocl.find_device(gtx1080.name)
    ctx = ocl.Context(device)
    yield ctx
    ctx.release_all()


@pytest.fixture
def cpu_queue(cpu_context):
    return ocl.CommandQueue(cpu_context)


@pytest.fixture
def gpu_queue(gpu_context):
    return ocl.CommandQueue(gpu_context)


@pytest.fixture
def rng():
    return np.random.default_rng(1337)
