"""Problem-size methodology: footprints, solver, presets, verification."""

import pytest

from repro.devices import get_device
from repro.sizing import (
    FIXED_SIZE_BENCHMARKS,
    LARGE_FACTOR,
    PAPER_TABLE2,
    SCALE_GENERATORS,
    classify_footprint,
    footprint_for,
    footprint_kib,
    preset_fit_report,
    solve_sizes,
    transition_detected,
    verify_benchmark_sizes,
)
from repro.dwarfs import BENCHMARKS


class TestFootprints:
    def test_footprint_for_matches_instance(self):
        from repro.dwarfs.kmeans import KMeans
        assert footprint_for("kmeans", 256) == KMeans(256).footprint_bytes()

    def test_kib_conversion(self):
        assert footprint_kib("fft", 2048) == 32.0

    def test_generators_monotone(self):
        for name, gen in SCALE_GENERATORS.items():
            it = gen()
            phis = [next(it) for _ in range(8)]
            fps = [footprint_for(name, phi) for phi in phis]
            assert fps == sorted(fps), name

    def test_fixed_size_benchmarks_have_no_generator(self):
        for name in FIXED_SIZE_BENCHMARKS:
            assert name not in SCALE_GENERATORS


class TestClassify:
    def test_levels(self, skylake):
        assert classify_footprint(skylake, 16 * 1024) == "tiny"
        assert classify_footprint(skylake, 200 * 1024) == "small"
        assert classify_footprint(skylake, 4 << 20) == "medium"
        assert classify_footprint(skylake, 64 << 20) == "large"

    def test_gpu_has_no_medium(self, gtx1080):
        # two cache levels: tiny / small / large
        assert classify_footprint(gtx1080, 8 << 20) == "large"


class TestSolver:
    def test_kmeans_on_skylake(self, skylake):
        sel = solve_sizes("kmeans", skylake)
        l1, l2, l3 = (c.size_bytes for c in skylake.caches)
        assert sel.footprint("tiny") <= l1
        assert sel.footprint("small") <= l2
        assert sel.footprint("medium") <= l3
        assert sel.footprint("large") >= LARGE_FACTOR * l3

    def test_solved_sizes_near_paper_values(self, skylake):
        """Our solver lands near Table 2 for the cache-fitted benchmarks
        (the paper rounds to convenient values)."""
        sel = solve_sizes("kmeans", skylake)
        assert sel.phi("tiny") == pytest.approx(256, rel=0.25)
        assert sel.phi("medium") == pytest.approx(65600, rel=0.25)

    def test_retargetable_to_other_devices(self):
        """Paper §6: sizes 'can now be easily adjusted for next
        generation accelerator systems'."""
        e5 = get_device("Xeon E5-2697 v2")  # 30 MiB L3
        sky = solve_sizes("fft", get_device("i7-6700K"))
        big = solve_sizes("fft", e5)
        assert big.phi("medium") > sky.phi("medium")

    def test_fft_sizes_are_pow2(self, skylake):
        sel = solve_sizes("fft", skylake)
        for size in ("tiny", "small", "medium", "large"):
            phi = sel.phi(size)
            assert phi & (phi - 1) == 0

    def test_unknown_benchmark(self, skylake):
        with pytest.raises(ValueError):
            solve_sizes("gem", skylake)


class TestPresets:
    def test_presets_agree_with_benchmark_classes(self):
        for name, sizes in PAPER_TABLE2.items():
            assert BENCHMARKS[name].presets == sizes, name

    def test_fit_report_cache_fitted_benchmarks(self):
        """tiny/small/medium/large land in L1/L2/L3/memory on the
        Skylake for the benchmarks the paper sized to its caches."""
        report = preset_fit_report()
        for name in ("kmeans", "lud", "fft", "dwt", "srad", "nw", "gem"):
            per_size = report[name]
            assert per_size["tiny"][1] == "tiny", name
            assert per_size["small"][1] == "small", name
            assert per_size["medium"][1] == "medium", name
            assert per_size["large"][1] == "large", name

    def test_fft_tiny_is_exactly_l1(self):
        report = preset_fit_report()
        assert report["fft"]["tiny"][0] == 32.0

    def test_known_non_fitted_presets(self):
        """crc and hmm Table 2 values do not track the cache hierarchy
        (crc is compute-bound; hmm only validates at tiny) — recorded
        here so a regression in *our* formulas is distinguishable from
        the paper's own choices."""
        report = preset_fit_report()
        assert report["crc"]["small"][1] == "tiny"       # 17 KiB
        assert report["crc"]["large"][1] == "medium"     # 4 MiB < L3
        assert report["hmm"]["small"][1] == "medium"     # 6.6 MiB


class TestVerification:
    def test_kmeans_transitions(self):
        v = verify_benchmark_sizes("kmeans", trace_len=60_000)
        assert transition_detected(v, "PAPI_L1_DCM", "tiny", "small")
        # with a 2-pass trace, half the medium-size L3 events are already
        # cold misses, so the spill to memory shows as ~1.9x, not 2x
        assert transition_detected(v, "PAPI_L3_TCM", "medium", "large",
                                   factor=1.5)

    def test_fft_l1_transition(self):
        v = verify_benchmark_sizes("fft", sizes=("tiny", "small"),
                                   trace_len=50_000)
        assert transition_detected(v, "PAPI_L1_DCM", "tiny", "small")

    def test_summary_rows_structure(self):
        v = verify_benchmark_sizes("nw", sizes=("tiny",), trace_len=20_000)
        rows = v.summary_rows()
        assert rows[0]["size"] == "tiny"
        assert "L1 miss %" in rows[0]

    def test_miss_percent_accessor(self):
        v = verify_benchmark_sizes("crc", sizes=("tiny",), trace_len=20_000)
        assert v.miss_percent("tiny", "PAPI_L1_DCM") >= 0
