"""Command queue execution, ordering and profiling-event semantics."""

import numpy as np
import pytest

from repro import ocl
from repro.ocl import (
    CommandType,
    InvalidContext,
    InvalidValue,
    KernelSource,
    ProfilingInfo,
    ProfilingInfoNotAvailable,
    Program,
    QueueProperties,
)


def _scale_program(ctx):
    def body(nd, arr, factor):
        arr *= factor
    return Program(ctx, [KernelSource("scale", body)]).build()


class TestTransfers:
    def test_write_read_roundtrip(self, cpu_context, cpu_queue):
        data = np.arange(64, dtype=np.float32)
        buf = cpu_context.create_buffer(size=data.nbytes)
        cpu_queue.enqueue_write_buffer(buf, data)
        out = np.empty_like(data)
        cpu_queue.enqueue_read_buffer(buf, out)
        np.testing.assert_array_equal(out, data)

    def test_write_size_mismatch(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=64)
        with pytest.raises(InvalidValue):
            cpu_queue.enqueue_write_buffer(buf, np.zeros(100, np.uint8))

    def test_copy_buffer(self, cpu_context, cpu_queue):
        src = cpu_context.buffer_like(np.arange(10, dtype=np.int32))
        dst = cpu_context.buffer_like(np.zeros(10, dtype=np.int32))
        cpu_queue.enqueue_copy_buffer(src, dst)
        np.testing.assert_array_equal(dst.array, np.arange(10))

    def test_copy_size_mismatch(self, cpu_context, cpu_queue):
        src = cpu_context.create_buffer(size=16)
        dst = cpu_context.create_buffer(size=32)
        with pytest.raises(InvalidValue):
            cpu_queue.enqueue_copy_buffer(src, dst)

    def test_fill_buffer(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=32)
        cpu_queue.enqueue_fill_buffer(buf, 0xAB)
        assert (buf.array.view(np.uint8) == 0xAB).all()

    def test_foreign_buffer_rejected(self, cpu_context, gpu_context, cpu_queue):
        foreign = gpu_context.create_buffer(size=16)
        with pytest.raises(InvalidContext):
            cpu_queue.enqueue_read_buffer(foreign, np.zeros(16, np.uint8))

    def test_gpu_transfer_slower_than_cpu(self, cpu_context, gpu_context):
        """PCIe transfers cost more than host-local memcpy."""
        data = np.zeros(1 << 20, dtype=np.uint8)
        cq = ocl.CommandQueue(cpu_context)
        gq = ocl.CommandQueue(gpu_context)
        cbuf = cpu_context.create_buffer(size=data.nbytes)
        gbuf = gpu_context.create_buffer(size=data.nbytes)
        ce = cq.enqueue_write_buffer(cbuf, data)
        ge = gq.enqueue_write_buffer(gbuf, data)
        assert ge.duration_ns > ce.duration_ns


class TestKernelExecution:
    def test_kernel_mutates_buffer(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.arange(8, dtype=np.float32))
        k = _scale_program(cpu_context).create_kernel("scale")
        k.set_args(buf, np.float32(3.0))
        cpu_queue.enqueue_nd_range_kernel(k, (8,))
        np.testing.assert_allclose(buf.array, np.arange(8) * 3.0)

    def test_int_global_size_accepted(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.ones(4, dtype=np.float32))
        k = _scale_program(cpu_context).create_kernel("scale")
        k.set_args(buf, np.float32(2.0))
        event = cpu_queue.enqueue_nd_range_kernel(k, 4)
        assert event.info["work_items"] == 4

    def test_foreign_kernel_rejected(self, cpu_context, gpu_context):
        k = _scale_program(gpu_context).create_kernel("scale")
        k.set_args(gpu_context.create_buffer(size=16), np.float32(1.0))
        q = ocl.CommandQueue(cpu_context)
        with pytest.raises(InvalidContext):
            q.enqueue_nd_range_kernel(k, (4,))

    def test_kernel_event_info(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.ones(64, dtype=np.float32))
        k = _scale_program(cpu_context).create_kernel("scale")
        k.set_args(buf, np.float32(1.0))
        event = cpu_queue.enqueue_nd_range_kernel(k, (64,))
        assert event.info["kernel"] == "scale"
        assert event.info["work_items"] == 64
        assert event.info["energy_j"] > 0


class TestProfiling:
    def test_timestamps_ordered(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=1024)
        event = cpu_queue.enqueue_fill_buffer(buf, 0)
        q = event.get_profiling_info(ProfilingInfo.QUEUED)
        s = event.get_profiling_info(ProfilingInfo.SUBMIT)
        st = event.get_profiling_info(ProfilingInfo.START)
        e = event.get_profiling_info(ProfilingInfo.END)
        assert q <= s <= st < e

    def test_device_clock_monotone(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=1024)
        e1 = cpu_queue.enqueue_fill_buffer(buf, 1)
        e2 = cpu_queue.enqueue_fill_buffer(buf, 2)
        assert e2.start_ns >= e1.end_ns  # in-order queue

    def test_profiling_disabled_raises(self, cpu_context):
        q = ocl.CommandQueue(cpu_context, properties=QueueProperties.NONE)
        buf = cpu_context.create_buffer(size=64)
        event = q.enqueue_fill_buffer(buf, 0)
        with pytest.raises(ProfilingInfoNotAvailable):
            event.get_profiling_info(ProfilingInfo.START)

    def test_wait_for_dependency_ordering(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=64)
        dep = cpu_queue.enqueue_fill_buffer(buf, 0)
        marker = cpu_queue.enqueue_marker(wait_for=[dep])
        assert marker.start_ns >= dep.end_ns

    def test_duration_properties(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=1 << 16)
        event = cpu_queue.enqueue_fill_buffer(buf, 0)
        assert event.duration_ns == event.end_ns - event.start_ns
        assert event.duration_s == pytest.approx(event.duration_ns * 1e-9)
        assert event.queue_delay_ns >= 0

    def test_finish_and_kernel_accounting(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.ones(16, dtype=np.float32))
        k = _scale_program(cpu_context).create_kernel("scale")
        k.set_args(buf, np.float32(2.0))
        cpu_queue.enqueue_nd_range_kernel(k, (16,))
        cpu_queue.enqueue_fill_buffer(buf, 0)
        cpu_queue.finish()
        assert len(cpu_queue.kernel_events()) == 1
        assert cpu_queue.total_kernel_time_s() > 0
        assert cpu_queue.total_kernel_energy_j() > 0

    def test_reset_events(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=64)
        cpu_queue.enqueue_fill_buffer(buf, 0)
        cpu_queue.reset_events()
        assert cpu_queue.events == []

    def test_noise_scatters_durations(self, cpu_context, rng):
        q = ocl.CommandQueue(cpu_context, rng=rng)
        buf = cpu_context.create_buffer(size=1 << 20)
        durations = {q.enqueue_fill_buffer(buf, 0).duration_ns for _ in range(10)}
        assert len(durations) > 1  # noisy queue produces scatter

    def test_no_noise_is_deterministic(self, cpu_context):
        q = ocl.CommandQueue(cpu_context)
        buf = cpu_context.create_buffer(size=1 << 20)
        durations = {q.enqueue_fill_buffer(buf, 0).duration_ns for _ in range(10)}
        assert len(durations) == 1
