"""gem (N-body), nqueens (branch & bound), hmm (Baum-Welch)."""

import numpy as np
import pytest

from repro.dwarfs.gem import GEM
from repro.dwarfs.hmm import HMM
from repro.dwarfs.nqueens import (
    KNOWN_SOLUTIONS,
    MAX_EXACT_N,
    NQueens,
    expand_prefixes,
    knuth_walk,
    solve_subproblem,
)


class TestGEM:
    def test_presets_are_molecules(self):
        assert GEM.presets == {"tiny": "4TUT", "small": "2D3V",
                               "medium": "nucleosome", "large": "1KX5"}

    def test_unknown_molecule(self):
        with pytest.raises(ValueError):
            GEM(dataset="9XYZ")

    def test_from_args(self):
        assert GEM.from_args(["2D3V", "80", "1", "0"]).dataset == "2D3V"

    def test_tiny_footprint_fits_l1(self, skylake):
        """4TUT: 31.3 KiB, inside the Skylake 32 KiB L1 (paper §4.4.4)."""
        bench = GEM.from_size("tiny")
        assert bench.footprint_bytes() <= skylake.caches[0].size_bytes

    def test_potential_matches_float64(self, cpu_context, cpu_queue):
        GEM.from_size("tiny").run_complete(cpu_context, cpu_queue)

    def test_single_positive_charge_coulomb_law(self, cpu_context, cpu_queue):
        """A lone +1 charge at the origin gives phi = 1/r everywhere."""
        bench = GEM.from_size("tiny")
        bench.host_setup(cpu_context)
        bench.molecule.atoms = np.zeros((1, 4), dtype=np.float32)
        bench.molecule.atoms[0, 3] = 1.0
        bench.buf_atoms.release()
        bench.buf_atoms = cpu_context.buffer_like(bench.molecule.atoms)
        bench.kernel.set_args(bench.buf_atoms, bench.buf_vertices,
                              bench.buf_potential)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        r = np.linalg.norm(bench.molecule.vertices, axis=1)
        np.testing.assert_allclose(bench.potential_out, 1.0 / r, rtol=1e-3)

    def test_profile_compute_bound_on_gpu(self, gtx1080):
        from repro.perfmodel import iteration_time
        bench = GEM.from_size("tiny")
        assert iteration_time(gtx1080, bench.profiles()).bound == "compute"


class TestNQueensPrimitives:
    @pytest.mark.parametrize("n,expected", [(4, 2), (5, 10), (6, 4),
                                            (7, 40), (8, 92), (9, 352)])
    def test_exact_solver(self, n, expected):
        assert solve_subproblem(n, 0, 0, 0, 0) == expected

    def test_prefix_expansion_counts(self):
        # depth-1 prefixes: n placements
        assert len(expand_prefixes(8, 1)) == 8
        # depth-2: n^2 minus attacked squares
        depth2 = expand_prefixes(8, 2)
        assert len(depth2) == 8 * 8 - 8 - 2 * 7  # columns + two diagonals

    def test_prefix_subtrees_sum_to_total(self):
        total = sum(solve_subproblem(7, c, dl, dr, 2)
                    for c, dl, dr in expand_prefixes(7, 2))
        assert total == 40

    def test_knuth_walk_unbiased(self, rng):
        """Mean of Knuth estimates converges to the solution count."""
        estimates = [knuth_walk(6, rng) for _ in range(20000)]
        assert np.mean(estimates) == pytest.approx(4, rel=0.3)

    def test_knuth_walk_zero_for_dead_end(self, rng):
        # n=3 has no solutions: every walk dies
        assert all(knuth_walk(3, rng) == 0 for _ in range(50))


class TestNQueensBenchmark:
    def test_preset_is_single_size_18(self):
        assert NQueens.presets == {"tiny": 18}

    def test_exact_mode_small_board(self, cpu_context, cpu_queue):
        bench = NQueens(n=8)
        assert bench.exact
        bench.run_complete(cpu_context, cpu_queue)
        assert bench.solutions == 92

    def test_exact_boundary(self):
        assert NQueens(n=MAX_EXACT_N).exact
        assert not NQueens(n=MAX_EXACT_N + 1).exact

    @pytest.mark.slow
    def test_estimator_mode_n18(self, cpu_context, cpu_queue):
        bench = NQueens(n=18)
        bench.run_complete(cpu_context, cpu_queue)
        assert not bench.exact
        rel = abs(bench.solutions - KNOWN_SOLUTIONS[18]) / KNOWN_SOLUTIONS[18]
        assert rel < 0.5

    def test_wrong_count_detected(self, cpu_context, cpu_queue):
        from repro.dwarfs.base import ValidationError
        bench = NQueens(n=8)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        bench.solutions = 93  # corrupt
        with pytest.raises(ValidationError):
            bench.validate()

    def test_board_size_bounds(self):
        with pytest.raises(ValueError):
            NQueens(n=0)
        with pytest.raises(ValueError):
            NQueens(n=40)

    def test_profile_compute_only(self):
        p = NQueens(n=18).profiles()[0]
        assert p.bytes_total < 1e5  # slow-scaling footprint (paper §4.4.4)
        assert p.int_ops > 0


class TestHMM:
    def test_presets_match_table2(self):
        assert HMM.presets == {
            "tiny": (8, 1), "small": (900, 1), "medium": (1012, 1024),
            "large": (2048, 2048)}

    def test_from_args(self):
        bench = HMM.from_args(["-n", "8", "-s", "1", "-v", "s"])
        assert (bench.n_states, bench.n_symbols) == (8, 1)

    def test_from_args_requires_states(self):
        with pytest.raises(ValueError):
            HMM.from_args(["-s", "4"])

    def test_tiny_matches_reference(self, cpu_context, cpu_queue):
        HMM.from_size("tiny").run_complete(cpu_context, cpu_queue)

    def test_multi_symbol_model(self, cpu_context, cpu_queue):
        HMM(n_states=6, n_symbols=4, t_observations=32).run_complete(
            cpu_context, cpu_queue)

    def test_reestimates_are_stochastic(self, cpu_context, cpu_queue):
        bench = HMM(n_states=5, n_symbols=3, t_observations=24)
        bench.run_complete(cpu_context, cpu_queue)
        np.testing.assert_allclose(bench.a_out.sum(axis=1), 1.0, atol=1e-5)
        np.testing.assert_allclose(bench.b_out.sum(axis=1), 1.0, atol=1e-4)
        assert bench.pi_out.sum() == pytest.approx(1.0, abs=1e-5)
        assert (bench.a_out >= 0).all() and (bench.b_out >= 0).all()

    def test_baum_welch_increases_likelihood(self, cpu_context, cpu_queue):
        """A re-estimation step never decreases log P(O | model)."""
        bench = HMM(n_states=4, n_symbols=3, t_observations=40)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        before = bench.log_likelihood()
        # run a second step from the re-estimated model
        bench.a0, bench.b0, bench.pi0 = bench.a_out, bench.b_out, bench.pi_out
        bench.buf_a.array[...] = bench.a0
        bench.buf_b.array[...] = bench.b0
        bench.buf_pi.array[...] = bench.pi0
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        assert bench.log_likelihood() >= before - 1e-3

    def test_launch_structure(self, cpu_context, cpu_queue):
        bench = HMM(n_states=4, n_symbols=2, t_observations=10)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        assert len(events) == 2 * 10 + 3  # forward + backward + 3 estimators

    def test_degenerate_single_symbol(self, cpu_context, cpu_queue):
        """S=1 (the paper's tiny/small): B collapses to a column of ones."""
        bench = HMM(n_states=4, n_symbols=1, t_observations=16)
        bench.run_complete(cpu_context, cpu_queue)
        np.testing.assert_allclose(bench.b_out, 1.0, atol=1e-5)
