"""cwt — the continuous wavelet transform extension benchmark."""

import numpy as np
import pytest

from repro.dwarfs import get_benchmark
from repro.dwarfs.cwt import (
    CWT,
    OMEGA0,
    default_scales,
    morlet_spectrum,
    morlet_time,
)
from repro.dwarfs.registry import BENCHMARKS, EXTENSIONS


class TestRegistration:
    def test_cwt_is_extension_not_paper_set(self):
        assert "cwt" in EXTENSIONS
        assert "cwt" not in BENCHMARKS
        assert get_benchmark("cwt") is CWT

    def test_table2_unaffected(self):
        from repro.dwarfs import scale_parameters_table
        assert "cwt" not in scale_parameters_table()


class TestMorlet:
    def test_spectrum_is_analytic(self):
        psi = morlet_spectrum(256, 8.0)
        omega = 2 * np.pi * np.fft.fftfreq(256)
        assert (psi[omega <= 0] == 0).all()   # no negative frequencies
        assert psi.max() > 0

    def test_spectrum_peaks_at_centre_frequency(self):
        n, scale = 4096, 16.0
        psi = morlet_spectrum(n, scale)
        omega = 2 * np.pi * np.fft.fftfreq(n)
        peak = omega[np.argmax(psi)]
        assert peak == pytest.approx(OMEGA0 / scale, rel=0.02)

    def test_time_wavelet_is_localised(self):
        wave = morlet_time(8.0, 512)
        centre_energy = np.abs(wave[192:320]) ** 2
        tail_energy = np.abs(wave[:64]) ** 2
        assert centre_energy.sum() > 100 * tail_energy.sum()

    def test_scale_bank_geometric(self):
        scales = default_scales(9)
        ratios = scales[1:] / scales[:-1]
        assert np.allclose(ratios, 2 ** 0.25)


class TestCWTBenchmark:
    def test_pow2_required(self):
        with pytest.raises(ValueError):
            CWT(n=1000)

    def test_from_args(self):
        bench = CWT.from_args(["8192", "16"])
        assert bench.n == 8192 and bench.n_scales == 16

    def test_end_to_end(self, cpu_context, cpu_queue):
        CWT(n=1024, n_scales=12).run_complete(cpu_context, cpu_queue)

    def test_launch_structure(self, cpu_context, cpu_queue):
        bench = CWT(n=512, n_scales=8)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        assert len(events) == 1 + 8  # FFT + one per scale

    def test_chirp_ridge_moves_with_time(self, cpu_context, cpu_queue):
        """For a rising chirp, the dominant scale decreases with time."""
        bench = CWT(n=2048, n_scales=20)
        bench.run_complete(cpu_context, cpu_queue)
        power = bench.power_spectrum()
        early = power[:, 256].argmax()
        late = power[:, 1792].argmax()
        assert late < early  # higher frequency -> smaller scale

    def test_footprint_scales_with_plane(self):
        assert CWT(n=2048, n_scales=8).footprint_bytes() < \
            CWT(n=2048, n_scales=32).footprint_bytes()

    def test_runs_under_harness(self):
        from repro.harness import RunConfig, run_benchmark
        r = run_benchmark(RunConfig("cwt", "tiny", "GTX 1080", samples=5))
        assert r.validated
        assert r.nominal_s > 0
