"""NDRange decomposition semantics."""

import math

import pytest

from repro.ocl import InvalidValue, InvalidWorkGroupSize, NDRange, ndrange
from repro.ocl.ndrange import MAX_WORK_GROUP_SIZE


class TestConstruction:
    def test_1d(self):
        nd = ndrange(1024)
        assert nd.dimensions == 1
        assert nd.work_items == 1024

    def test_2d(self):
        nd = ndrange(64, 32)
        assert nd.dimensions == 2
        assert nd.work_items == 64 * 32

    def test_3d(self):
        nd = ndrange(8, 8, 8)
        assert nd.work_items == 512

    def test_zero_dimensional_rejected(self):
        with pytest.raises(InvalidValue):
            NDRange(())

    def test_4d_rejected(self):
        with pytest.raises(InvalidValue):
            NDRange((2, 2, 2, 2))

    def test_nonpositive_global_rejected(self):
        with pytest.raises(InvalidValue):
            ndrange(0)
        with pytest.raises(InvalidValue):
            ndrange(-5)

    def test_local_dimensionality_must_match(self):
        with pytest.raises(InvalidWorkGroupSize):
            NDRange((64, 64), local_size=(8,))

    def test_local_must_divide_global(self):
        with pytest.raises(InvalidWorkGroupSize):
            NDRange((100,), local_size=(64,))

    def test_local_size_limit(self):
        with pytest.raises(InvalidWorkGroupSize):
            NDRange((4096,), local_size=(MAX_WORK_GROUP_SIZE * 2,))

    def test_local_nonpositive_rejected(self):
        with pytest.raises(InvalidWorkGroupSize):
            NDRange((64,), local_size=(0,))


class TestWorkGroups:
    def test_explicit_local(self):
        nd = NDRange((1024,), local_size=(64,))
        assert nd.work_groups == 16
        assert nd.group_shape == (16,)

    def test_default_local_is_64(self):
        nd = ndrange(1024)
        assert nd.effective_local_size == (64,)
        assert nd.work_groups == 16

    def test_default_local_shrinks_to_divide(self):
        nd = ndrange(100)  # 64 does not divide 100; falls back to 50
        ls = nd.effective_local_size[0]
        assert 100 % ls == 0
        assert ls <= 64

    def test_default_local_2d_inner_dimension(self):
        nd = ndrange(32, 128)
        ls = nd.effective_local_size
        assert ls[0] == 1
        assert 128 % ls[1] == 0

    def test_group_count_times_size_covers_range(self):
        nd = NDRange((256, 64), local_size=(16, 8))
        assert nd.work_groups * 16 * 8 == nd.work_items


class TestIteration:
    def test_global_ids_cover_range_exactly_once(self):
        nd = ndrange(4, 3)
        ids = list(nd.global_ids())
        assert len(ids) == 12
        assert len(set(ids)) == 12
        assert (0, 0) in ids and (3, 2) in ids

    def test_group_ids(self):
        nd = NDRange((8, 8), local_size=(4, 4))
        groups = list(nd.group_ids())
        assert len(groups) == 4

    def test_row_major_order(self):
        nd = ndrange(2, 2)
        assert list(nd.global_ids()) == [(0, 0), (0, 1), (1, 0), (1, 1)]
