"""Runtime sanitizer: each seeded defect is detected with its location."""

import numpy as np
import pytest

from repro.analysis import Sanitizer, sanitized
from repro.ocl import (
    CommandQueue,
    InvalidCommandQueue,
    InvalidMemObject,
    KernelSource,
    Program,
    work_group_barrier,
    work_item_kernel,
)


def by_check(findings, check):
    return [f for f in findings if f.check == check]


def make_kernel(context, name, body, cl_source=None):
    return Program(context, [
        KernelSource(name, body, cl_source=cl_source)
    ]).build().create_kernel(name)


# ---------------------------------------------------------------------------
class TestOutOfBounds:
    def test_seeded_oob_read_detected(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.arange(8, dtype=np.float32))

        def body(nd, x):
            _ = x[12]  # one past the end and then some

        kernel = make_kernel(cpu_context, "oob_read", body).set_args(buf)
        with sanitized(cpu_context, benchmark="seeded") as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (4,))
        hits = by_check(san.findings, "oob-access")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert hits[0].kernel == "oob_read"
        assert "12" in hits[0].location
        # the guard aborted the kernel, and the abort is also recorded
        aborts = by_check(san.findings, "kernel-abort")
        assert len(aborts) == 1 and aborts[0].kernel == "oob_read"

    def test_seeded_oob_write_detected(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.zeros(4, dtype=np.int64))

        def body(nd, x):
            x[9] = 1

        kernel = make_kernel(cpu_context, "oob_write", body).set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (4,))
        hits = by_check(san.findings, "oob-access")
        assert len(hits) == 1
        assert "9" in hits[0].location

    def test_negative_index_is_a_note(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.arange(4, dtype=np.float32))

        def body(nd, x):
            _ = x[-1]  # legal numpy wrap, OOB in OpenCL C

        kernel = make_kernel(cpu_context, "neg", body).set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (1,))
        hits = by_check(san.findings, "oob-access")
        assert len(hits) == 1
        assert hits[0].severity == "note"

    def test_in_bounds_run_is_clean(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.arange(8, dtype=np.float32))

        def body(nd, x):
            x[: nd.work_items] = x[: nd.work_items] * 2.0

        kernel = make_kernel(cpu_context, "scale2", body).set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (8,))
        assert san.findings == []
        np.testing.assert_array_equal(buf.array, np.arange(8) * 2.0)


# ---------------------------------------------------------------------------
class TestUninitializedReads:
    def test_seeded_uninit_read_detected(self, cpu_context, cpu_queue):
        # size-only allocation: contents undefined on a real device
        buf = cpu_context.create_buffer(size=32)

        def body(nd, x):
            _ = x[5]

        kernel = make_kernel(cpu_context, "uninit", body).set_args(buf)
        with sanitized(cpu_context, benchmark="seeded") as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (1,))
        hits = by_check(san.findings, "uninit-read")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert hits[0].kernel == "uninit"
        assert hits[0].location == "element 5"

    def test_write_then_read_is_clean(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=16)

        def body(nd, x):
            x[3] = 7
            _ = x[3]

        kernel = make_kernel(cpu_context, "wr", body).set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (1,))
        assert by_check(san.findings, "uninit-read") == []

    def test_host_write_initializes(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=16)

        def body(nd, x):
            _ = x[0]

        kernel = make_kernel(cpu_context, "r0", body).set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_write_buffer(buf, np.zeros(16, np.uint8))
            cpu_queue.enqueue_nd_range_kernel(kernel, (1,))
        assert by_check(san.findings, "uninit-read") == []

    def test_fill_initializes(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=16)

        def body(nd, x):
            _ = x[0]

        kernel = make_kernel(cpu_context, "rf", body).set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_fill_buffer(buf, 0)
            cpu_queue.enqueue_nd_range_kernel(kernel, (1,))
        assert by_check(san.findings, "uninit-read") == []

    def test_host_readback_of_uninit_buffer(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=8)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_read_buffer(buf, np.empty(8, np.uint8))
        hits = by_check(san.findings, "uninit-read")
        assert len(hits) == 1
        assert "element 0" in hits[0].location

    def test_hostbuf_backed_buffer_is_initialized(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.ones(4, np.float32))

        def body(nd, x):
            _ = x[2]

        kernel = make_kernel(cpu_context, "init", body).set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (1,))
        assert san.findings == []


# ---------------------------------------------------------------------------
class TestDataRaces:
    def test_seeded_write_write_race(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.zeros(4, dtype=np.int64))

        def item(gid, x):
            x[0] = gid  # every work item stores to the same element

        kernel = make_kernel(cpu_context, "race", work_item_kernel(item))
        kernel.set_args(buf)
        with sanitized(cpu_context, benchmark="seeded") as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (4,))
        hits = by_check(san.findings, "data-race")
        assert len(hits) == 1  # deduplicated per element
        assert hits[0].severity == "error"
        assert hits[0].kernel == "race"
        assert hits[0].location == "element 0"
        assert "write/write" in hits[0].message

    def test_seeded_read_write_race(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.zeros(8, dtype=np.int64))

        def item(gid, x):
            if gid == 0:
                _ = x[7]
            if gid == 7:
                x[7] = 1

        kernel = make_kernel(cpu_context, "rw", work_item_kernel(item))
        kernel.set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (8,))
        hits = by_check(san.findings, "data-race")
        assert len(hits) == 1
        assert "read/write" in hits[0].message

    def test_disjoint_writes_are_clean(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.zeros(8, dtype=np.int64))

        def item(gid, x):
            x[gid] = gid

        kernel = make_kernel(cpu_context, "disjoint", work_item_kernel(item))
        kernel.set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (8,))
        assert san.findings == []
        np.testing.assert_array_equal(buf.array, np.arange(8))

    def test_barrier_orders_same_group_accesses(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.zeros(4, dtype=np.int64))

        def item(gid, x):
            x[gid] = gid          # phase 1: disjoint
            work_group_barrier()
            _ = x[(gid + 1) % 4]  # phase 2: reads a neighbour's slot

        kernel = make_kernel(cpu_context, "staged", work_item_kernel(item))
        kernel.set_args(buf)
        with sanitized(cpu_context) as san:
            # one work group: the barrier orders phase 1 before phase 2
            cpu_queue.enqueue_nd_range_kernel(kernel, (4,), (4,))
        assert by_check(san.findings, "data-race") == []

    def test_barrier_does_not_order_across_groups(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.zeros(4, dtype=np.int64))

        def item(gid, x):
            x[gid] = gid
            work_group_barrier()
            _ = x[(gid + 1) % 4]

        kernel = make_kernel(cpu_context, "xgroup", work_item_kernel(item))
        kernel.set_args(buf)
        with sanitized(cpu_context) as san:
            # two groups of two: neighbour reads cross the group boundary
            cpu_queue.enqueue_nd_range_kernel(kernel, (4,), (2,))
        assert by_check(san.findings, "data-race") != []

    def test_race_state_resets_between_launches(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.zeros(4, dtype=np.int64))

        def item(gid, x):
            x[gid] = gid

        kernel = make_kernel(cpu_context, "twice", work_item_kernel(item))
        kernel.set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (4,))
            cpu_queue.enqueue_nd_range_kernel(kernel, (4,))
        # same elements written by the same items in separate launches:
        # launches are ordered by the in-order queue, not a race
        assert by_check(san.findings, "data-race") == []

    def test_vectorised_kernel_cannot_race(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.zeros(4, dtype=np.int64))

        def body(nd, x):
            x[0] = 1
            x[0] = 2  # same "actor": program order, not a race

        kernel = make_kernel(cpu_context, "vec", body).set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (4,))
        assert by_check(san.findings, "data-race") == []


# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_seeded_buffer_leak_detected(self, cpu_context):
        with sanitized(cpu_context, benchmark="seeded") as san:
            cpu_context.create_buffer(size=640)
            leaks = san.check_leaks()
        hits = by_check(leaks, "buffer-leak")
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert "640" in hits[0].message

    def test_released_buffers_do_not_leak(self, cpu_context):
        with sanitized(cpu_context) as san:
            buf = cpu_context.create_buffer(size=64)
            buf.release()
            assert by_check(san.check_leaks(), "buffer-leak") == []

    def test_queue_leak_detected(self, cpu_context):
        with sanitized(cpu_context) as san:
            CommandQueue(cpu_context)
            hits = by_check(san.check_leaks(), "queue-leak")
        assert len(hits) >= 1
        assert hits[0].severity == "note"

    def test_use_after_release_detected(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.zeros(4, np.float32))

        def body(nd, x):
            pass

        kernel = make_kernel(cpu_context, "uar", body).set_args(buf)
        buf.release()
        with sanitized(cpu_context, benchmark="seeded") as san:
            with pytest.raises(InvalidMemObject):
                cpu_queue.enqueue_nd_range_kernel(kernel, (4,))
        hits = by_check(san.findings, "use-after-release")
        assert len(hits) == 1
        assert hits[0].kernel == "uar"

    def test_release_is_idempotent(self, cpu_context):
        buf = cpu_context.create_buffer(size=16)
        buf.release()
        buf.release()  # second release is a no-op, not an error
        assert buf.released
        with pytest.raises(InvalidMemObject):
            _ = buf.array

    def test_released_queue_rejects_enqueues(self, cpu_context):
        queue = CommandQueue(cpu_context)
        queue.release()
        with pytest.raises(InvalidCommandQueue):
            queue.enqueue_marker()

    def test_queue_release_idempotent(self, cpu_context):
        queue = CommandQueue(cpu_context)
        queue.release()
        queue.release()
        assert queue.released


# ---------------------------------------------------------------------------
class TestAttachment:
    def test_unattached_context_pays_nothing(self, cpu_context, cpu_queue):
        buf = cpu_context.buffer_like(np.zeros(4, np.float32))
        seen = []

        def body(nd, x):
            seen.append(type(x))

        kernel = make_kernel(cpu_context, "plain", body).set_args(buf)
        cpu_queue.enqueue_nd_range_kernel(kernel, (4,))
        assert seen == [np.ndarray]

    def test_double_attach_rejected(self, cpu_context):
        san = Sanitizer().attach(cpu_context)
        try:
            with pytest.raises(ValueError):
                Sanitizer().attach(cpu_context)
        finally:
            san.detach()

    def test_detach_restores_context(self, cpu_context):
        with sanitized(cpu_context):
            assert cpu_context.sanitizer is not None
        assert cpu_context.sanitizer is None

    def test_guard_views_degrade(self, cpu_context, cpu_queue):
        # derived arrays (slices, ufunc results) drop guarding but
        # still behave as ndarrays; results stay correct
        buf = cpu_context.buffer_like(np.arange(6, dtype=np.float32))

        def body(nd, x):
            half = x[0:3]
            total = (x * 2.0).sum()
            x[0] = float(total) + float(half[1])

        kernel = make_kernel(cpu_context, "derived", body).set_args(buf)
        with sanitized(cpu_context) as san:
            cpu_queue.enqueue_nd_range_kernel(kernel, (1,))
        assert by_check(san.findings, "oob-access") == []
        assert buf.array[0] == 31.0  # 2*(0+..+5) + 1
