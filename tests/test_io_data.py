"""Synthetic data generators: images, molecules, CSR matrices."""

import numpy as np
import pytest

from repro.io import csrfile, images, molecules


class TestGumLeaf:
    def test_deterministic(self):
        a = images.gum_leaf(64, 48)
        b = images.gum_leaf(64, 48)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_image(self):
        a = images.gum_leaf(64, 48, seed=1)
        b = images.gum_leaf(64, 48, seed=2)
        assert (a != b).any()

    def test_shape_and_dtype(self):
        img = images.gum_leaf(72, 54)
        assert img.shape == (54, 72)
        assert img.dtype == np.uint8

    def test_has_structure(self):
        """Leaf + background: substantial dynamic range and edges."""
        img = images.gum_leaf(200, 150)
        assert img.std() > 20
        assert int(img.max()) - int(img.min()) > 80

    def test_memoised_copies_are_independent(self):
        a = images.gum_leaf(32, 32)
        a[:] = 0
        b = images.gum_leaf(32, 32)
        assert b.any()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            images.gum_leaf(0, 10)


class TestResize:
    def test_downsample_shape(self):
        img = images.gum_leaf(64, 64)
        out = images.resize_box(img, 16, 16)
        assert out.shape == (16, 16)

    def test_preserves_mean_roughly(self):
        img = images.gum_leaf(128, 128)
        out = images.resize_box(img, 32, 32)
        assert abs(float(out.mean()) - float(img.mean())) < 3.0

    def test_constant_image_exact(self):
        img = np.full((40, 40), 77, dtype=np.uint8)
        out = images.resize_box(img, 13, 7)
        assert (out == 77).all()

    def test_upsample(self):
        img = np.arange(16, dtype=np.uint8).reshape(4, 4)
        out = images.resize_box(img, 8, 8)
        assert out.shape == (8, 8)

    def test_non_integer_ratio(self):
        img = images.gum_leaf(100, 60)
        out = images.resize_box(img, 33, 17)
        assert out.shape == (17, 33)

    def test_at_scale_matches_paper_sizes(self):
        img = images.gum_leaf_at_scale(72, 54)
        assert img.shape == (54, 72)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            images.resize_box(np.zeros((4, 4), np.uint8), 0, 4)


class TestMolecules:
    @pytest.mark.parametrize("name,kib", [
        ("4TUT", 31.3), ("2D3V", 252.0), ("nucleosome", 7498.0),
        ("1KX5", 10970.2),
    ])
    def test_footprints_match_paper(self, name, kib):
        """§4.4.4 reports these device-side footprints exactly."""
        spec = molecules.MOLECULES[name]
        assert spec.footprint_kib == pytest.approx(kib, rel=0.01)

    def test_generate_counts(self):
        mol = molecules.generate("4TUT")
        assert mol.atoms.shape == (mol.spec.n_atoms, 4)
        assert mol.vertices.shape == (mol.spec.n_vertices, 3)
        assert mol.atoms.dtype == np.float32

    def test_near_neutral_charge(self):
        mol = molecules.generate("2D3V")
        assert abs(mol.atoms[:, 3].sum()) < 1.0

    def test_vertices_outside_atoms(self):
        """The surface shell encloses the atom cloud."""
        mol = molecules.generate("4TUT")
        atom_extent = np.abs(mol.atoms[:, :3]).max()
        vertex_radii = np.linalg.norm(mol.vertices, axis=1)
        assert vertex_radii.min() > atom_extent * 0.9

    def test_pqr_round_trip(self):
        mol = molecules.generate("4TUT")
        text = molecules.to_pqr(mol)
        atoms = molecules.from_pqr(text)
        np.testing.assert_allclose(atoms[:, :3], mol.atoms[:, :3], atol=5e-4)
        np.testing.assert_allclose(atoms[:, 3], mol.atoms[:, 3], atol=5e-5)

    def test_deterministic(self):
        a = molecules.generate("4TUT")
        b = molecules.generate("4TUT")
        np.testing.assert_array_equal(a.atoms, b.atoms)


class TestCreateCSR:
    def test_density_honours_table3(self):
        """-d 5000 means 0.5% dense."""
        m = csrfile.createcsr(1000, 5000)
        assert m.density == pytest.approx(0.005, rel=0.15)

    def test_structure_valid(self):
        m = csrfile.createcsr(200, 5000)
        m.validate_structure()  # no raise
        assert m.row_ptr[0] == 0
        assert m.nnz == len(m.values)

    def test_no_empty_rows(self):
        m = csrfile.createcsr(500, 100)  # very sparse
        assert (np.diff(m.row_ptr) >= 1).all()

    def test_columns_sorted_within_rows(self):
        m = csrfile.createcsr(100, 20000)
        for row in range(m.n):
            cols = m.col_idx[m.row_ptr[row]:m.row_ptr[row + 1]]
            assert (np.diff(cols) > 0).all()

    def test_matvec_reference_matches_dense(self):
        m = csrfile.createcsr(64, 50000)
        x = np.random.default_rng(0).uniform(-1, 1, 64)
        np.testing.assert_allclose(
            m.matvec_reference(x), m.to_dense() @ x, rtol=1e-10)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            csrfile.createcsr(0)
        with pytest.raises(ValueError):
            csrfile.createcsr(10, 0)
        with pytest.raises(ValueError):
            csrfile.createcsr(10, 2_000_000)

    def test_serialisation_round_trip(self, tmp_path):
        m = csrfile.createcsr(128, 10000)
        path = tmp_path / "m.csr"
        csrfile.save(path, m)
        loaded = csrfile.load(path)
        assert loaded.n == m.n
        np.testing.assert_array_equal(loaded.row_ptr, m.row_ptr)
        np.testing.assert_array_equal(loaded.col_idx, m.col_idx)
        np.testing.assert_array_equal(loaded.values, m.values)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            csrfile.loads(b"NOPE" + b"\0" * 32)

    def test_corrupt_structure_detected(self):
        m = csrfile.createcsr(16, 50000)
        m.row_ptr[0] = 5
        with pytest.raises(ValueError):
            m.validate_structure()
