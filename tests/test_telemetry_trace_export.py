"""Chrome trace-event export: structure, slice accounting, properties."""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ocl
from repro.harness import RunConfig, run_benchmark
from repro.scibench.recorder import REGION_KERNEL, REGION_TRANSFER, Recorder
from contextlib import contextmanager

from repro.telemetry import (
    ChromeTraceExporter,
    GLOBAL_EVENT_BUS,
    Tracer,
    trace_from_recorder,
)


@contextmanager
def _capture(into):
    with GLOBAL_EVENT_BUS.subscribed(lambda q, e: into.append(e)):
        yield

#: command types drawn as duration slices (ph == "X")
SLICE_COMMANDS = {
    ocl.CommandType.ND_RANGE_KERNEL,
    ocl.CommandType.TASK,
    ocl.CommandType.READ_BUFFER,
    ocl.CommandType.WRITE_BUFFER,
    ocl.CommandType.COPY_BUFFER,
    ocl.CommandType.FILL_BUFFER,
}


def run_with_exporter(benchmark="kmeans", size="tiny", device="i7-6700K"):
    exporter = ChromeTraceExporter()
    captured = []
    with exporter.attached(), _capture(captured):
        result = run_benchmark(RunConfig(benchmark, size, device, samples=3))
    return exporter, captured, result


class TestChromeTraceExport:
    def test_trace_structure_is_perfetto_loadable(self):
        exporter, events, _ = run_with_exporter()
        doc = json.loads(exporter.dumps())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        for e in doc["traceEvents"]:
            assert "ph" in e and "pid" in e
            if e["ph"] == "X":
                assert e["ts"] >= 0
                assert e["dur"] > 0
                assert "tid" in e and "name" in e

    def test_slice_count_matches_kernel_plus_transfer_events(self):
        """Acceptance: one X slice per recorded kernel/transfer command."""
        exporter, events, _ = run_with_exporter()
        expected = sum(1 for e in events if e.command_type in SLICE_COMMANDS)
        assert expected > 0
        assert exporter.slice_count == expected

    def test_devices_become_processes_queues_become_threads(self):
        exporter, _, _ = run_with_exporter(device="GTX 1080")
        meta = [e for e in exporter.trace_events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
        assert "GTX 1080" in names
        assert any(e["name"] == "thread_name" for e in meta)

    def test_queue_delay_async_slices_pair_up(self):
        exporter, _, _ = run_with_exporter()
        begins = [e for e in exporter.trace_events
                  if e["ph"] == "b" and e["cat"] == "queue_delay"]
        ends = [e for e in exporter.trace_events
                if e["ph"] == "e" and e["cat"] == "queue_delay"]
        assert len(begins) == len(ends) > 0
        by_id = {e["id"]: e for e in ends}
        for b in begins:
            assert b["id"] in by_id
            assert by_id[b["id"]]["ts"] >= b["ts"]

    def test_energy_and_occupancy_counter_tracks(self):
        exporter, _, _ = run_with_exporter()
        counters = [e for e in exporter.trace_events if e["ph"] == "C"]
        assert {"energy (J)", "occupancy"} <= {e["name"] for e in counters}
        joules = [e["args"]["J"] for e in counters
                  if e["name"] == "energy (J)"]
        assert all(j >= 0 for j in joules)

    def test_kernel_slices_carry_kernel_names(self):
        exporter, events, _ = run_with_exporter(benchmark="fft")
        kernel_names = {e.info["kernel"] for e in events
                        if e.command_type == ocl.CommandType.ND_RANGE_KERNEL}
        slice_names = {e["name"] for e in exporter.trace_events
                       if e["ph"] == "X" and e["cat"] == "kernel"}
        assert slice_names == kernel_names

    def test_timestamps_sorted_and_nonnegative(self):
        exporter, _, _ = run_with_exporter()
        ts = [e.get("ts", 0) for e in exporter.to_dict()["traceEvents"]
              if e["ph"] != "M"]
        assert all(t >= 0 for t in ts)
        assert ts == sorted(ts)

    def test_tracer_spans_exported_as_async_slices(self):
        exporter = ChromeTraceExporter()
        ticks = iter(range(0, 10**6, 1000))
        tracer = Tracer(enabled=True, clock=lambda: next(ticks))
        with tracer.span("outer"):
            with tracer.span("inner", benchmark="fft"):
                pass
        assert exporter.add_tracer(tracer) == 2
        spans = [e for e in exporter.trace_events if e.get("cat") == "span"]
        assert {e["name"] for e in spans} == {"outer", "inner"}
        # X-slice accounting must not be polluted by spans
        assert exporter.slice_count == 0
        assert min(e["ts"] for e in spans) == 0  # rebased to origin

    def test_marker_becomes_instant_not_slice(self, cpu_queue):
        exporter = ChromeTraceExporter()
        with exporter.attached(cpu_queue.event_bus):
            cpu_queue.enqueue_marker()
        assert exporter.slice_count == 0
        assert any(e["ph"] == "i" for e in exporter.trace_events)


class TestTraceFromRecorder:
    def test_replay_lays_samples_end_to_end(self):
        rec = Recorder("kmeans/tiny/i7-6700K")
        rec.record(REGION_TRANSFER, 1e-4, command="write_buffer")
        rec.record(REGION_KERNEL, 2e-4, energy_j=0.5, kernel="kmeans_assign")
        rec.record(REGION_KERNEL, 3e-4, energy_j=0.25)
        exporter = trace_from_recorder(rec)
        slices = [e for e in exporter.trace_events if e["ph"] == "X"]
        assert len(slices) == len(rec)
        assert [s["ts"] for s in slices] == sorted(s["ts"] for s in slices)
        # slices must not overlap on the shared timeline
        for a, b in zip(slices, slices[1:]):
            assert a["ts"] + a["dur"] <= b["ts"] + 1e-9
        assert slices[1]["name"] == "kmeans_assign"
        counters = [e for e in exporter.trace_events if e["ph"] == "C"]
        assert [c["args"]["J"] for c in counters] == [0.5, 0.25]

    def test_lsb_file_round_trips_into_trace(self, tmp_path):
        from repro.scibench import lsb
        rec = Recorder("fft/small/GTX 1080")
        rec.record(REGION_KERNEL, 5e-3, energy_j=1.25)
        rec.record(REGION_TRANSFER, 1e-3)
        path = tmp_path / "lsb.fft.r0"
        lsb.save(path, rec)
        exporter = trace_from_recorder(lsb.load(path))
        assert exporter.slice_count == 2
        doc = json.loads(exporter.dumps())
        assert len(doc["traceEvents"]) >= 2


# ----------------------------------------------------------------------
# Property tests (hypothesis)
# ----------------------------------------------------------------------
COMMANDS = st.sampled_from(["kernel", "write", "read", "copy", "fill",
                            "marker"])


class TestTraceProperties:
    @given(ops=st.lists(COMMANDS, min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_command_streams_export_consistently(self, ops):
        """Valid JSON, monotone non-negative timestamps, every kernel
        event appearing exactly once — for arbitrary command mixes."""
        device = ocl.find_device("i7-6700K")
        ctx = ocl.Context(device)
        queue = ocl.CommandQueue(ctx)
        a = ctx.buffer_like(np.zeros(64, np.float32))
        b = ctx.buffer_like(np.zeros(64, np.float32))
        host = np.zeros(64, np.float32)
        # profile=None → launch-overhead-only timing, which is all the
        # trace cares about
        program = ocl.Program(
            ctx, [ocl.KernelSource("touch", lambda nd, buf: None)]).build()
        kernel = program.create_kernel("touch").set_args(a)

        exporter = ChromeTraceExporter()
        n_kernels = 0
        n_sliceable = 0
        with exporter.attached(queue.event_bus):
            for op in ops:
                if op == "kernel":
                    queue.enqueue_nd_range_kernel(kernel, (64,))
                    n_kernels += 1
                elif op == "write":
                    queue.enqueue_write_buffer(a, host)
                elif op == "read":
                    queue.enqueue_read_buffer(a, host)
                elif op == "copy":
                    queue.enqueue_copy_buffer(a, b)
                elif op == "fill":
                    queue.enqueue_fill_buffer(b, 3)
                if op != "marker":
                    n_sliceable += 1
                else:
                    queue.enqueue_marker()

        doc = json.loads(exporter.dumps())  # valid JSON by construction
        non_meta = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        ts = [e["ts"] for e in non_meta]
        assert all(t >= 0 for t in ts)
        assert ts == sorted(ts)
        assert exporter.slice_count == n_sliceable
        kernel_slices = [e for e in non_meta
                         if e["ph"] == "X" and e["cat"] == "kernel"]
        assert len(kernel_slices) == n_kernels
        # exactly once: distinct start timestamps, one slice per event
        assert len({(e["ts"], e["tid"]) for e in kernel_slices}) == n_kernels
        ctx.release_all()

    @given(times=st.lists(
        st.floats(min_value=1e-9, max_value=10.0, allow_nan=False,
                  allow_infinity=False),
        min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_recorder_replay_monotone_for_any_durations(self, times):
        rec = Recorder("prop")
        for i, t in enumerate(times):
            rec.record(REGION_KERNEL if i % 2 else REGION_TRANSFER, t)
        doc = json.loads(trace_from_recorder(rec).dumps())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(times)
        ts = [e["ts"] for e in slices]
        assert all(t >= 0 for t in ts)
        assert ts == sorted(ts)
