"""Property-based tests (hypothesis) on core data structures and
algorithm invariants."""

import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cache import SetAssociativeCache, TLB
from repro.dwarfs.crc import crc32_bytes, crc32_combine
from repro.dwarfs.dwt import lift53_forward, lift53_inverse
from repro.dwarfs.fft import stockham_stage
from repro.io import csrfile, ppm
from repro.perfmodel import KernelProfile, kernel_time
from repro.devices import get_device
from repro.scibench import summarize

SLOW = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Cache invariants
# ----------------------------------------------------------------------
@st.composite
def cache_and_trace(draw):
    size_kib = draw(st.sampled_from([1, 4, 16]))
    ways = draw(st.sampled_from([1, 2, 4, 8]))
    addresses = draw(st.lists(st.integers(0, 1 << 20), min_size=1,
                              max_size=300))
    return SetAssociativeCache(size_kib * 1024, 64, ways), addresses


@SLOW
@given(cache_and_trace())
def test_cache_accounting_invariants(ct):
    cache, addresses = ct
    for a in addresses:
        cache.access(a)
    s = cache.stats
    assert s.hits + s.misses == s.accesses == len(addresses)
    assert 0 <= cache.lines_resident <= cache.n_sets * cache.associativity


@SLOW
@given(cache_and_trace())
def test_cache_repeat_access_hits(ct):
    """Immediately re-accessing any address must hit."""
    cache, addresses = ct
    for a in addresses:
        cache.access(a)
        assert cache.access(a) is True


@SLOW
@given(st.lists(st.integers(0, 1 << 24), min_size=1, max_size=200))
def test_tlb_never_more_resident_than_entries(addresses):
    tlb = TLB(entries=8)
    for a in addresses:
        tlb.access(a)
    assert len(tlb._pages) <= 8


# ----------------------------------------------------------------------
# DWT: perfect reconstruction for arbitrary shapes
# ----------------------------------------------------------------------
@SLOW
@given(hnp.arrays(np.float32, st.integers(2, 200),
                  elements=st.floats(-1e3, 1e3, width=32)))
def test_lifting_inverts_any_signal(x):
    recon = lift53_inverse(lift53_forward(x, 0), 0)
    np.testing.assert_allclose(recon, x, atol=1e-2, rtol=1e-4)


@SLOW
@given(st.integers(2, 60), st.integers(2, 60))
def test_lifting_2d_inverts(h, w):
    rng = np.random.default_rng(h * 100 + w)
    img = rng.uniform(0, 255, (h, w)).astype(np.float32)
    f = lift53_forward(lift53_forward(img, 0), 1)
    b = lift53_inverse(lift53_inverse(f, 1), 0)
    np.testing.assert_allclose(b, img, atol=1e-2)


# ----------------------------------------------------------------------
# FFT: linearity and agreement with numpy for arbitrary signals
# ----------------------------------------------------------------------
def _fft(x):
    n = len(x)
    a, b = x.astype(np.complex64).copy(), np.empty(n, np.complex64)
    for stage in range(n.bit_length() - 1):
        stockham_stage(a, b, n, stage)
        a, b = b, a
    return a


@SLOW
@given(st.integers(1, 9).map(lambda k: 2**k), st.integers(0, 2**31))
def test_fft_matches_numpy_random_signals(n, seed):
    rng = np.random.default_rng(seed)
    x = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(np.complex64)
    np.testing.assert_allclose(_fft(x), np.fft.fft(x), rtol=1e-3, atol=1e-3)


@SLOW
@given(st.integers(2, 8).map(lambda k: 2**k), st.integers(0, 2**31))
def test_fft_linearity(n, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n).astype(np.complex64)
    y = rng.standard_normal(n).astype(np.complex64)
    lhs = _fft(x + y)
    rhs = _fft(x) + _fft(y)
    np.testing.assert_allclose(lhs, rhs, rtol=1e-3, atol=1e-3)


# ----------------------------------------------------------------------
# CRC: agreement with zlib and the combine identity
# ----------------------------------------------------------------------
@SLOW
@given(st.binary(min_size=0, max_size=500))
def test_crc_matches_zlib(payload):
    assert crc32_bytes(payload) == zlib.crc32(payload) & 0xFFFFFFFF


@SLOW
@given(st.binary(min_size=0, max_size=300), st.binary(min_size=0, max_size=300))
def test_crc_combine_identity(a, b):
    combined = crc32_combine(zlib.crc32(a) & 0xFFFFFFFF,
                             zlib.crc32(b) & 0xFFFFFFFF, len(b))
    assert combined == zlib.crc32(a + b) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# PNM codec round trip
# ----------------------------------------------------------------------
@SLOW
@given(hnp.arrays(np.uint8, st.tuples(st.integers(1, 20), st.integers(1, 20))),
       st.booleans())
def test_pnm_round_trip_any_image(img, binary):
    np.testing.assert_array_equal(ppm.loads(ppm.dumps(img, binary=binary)), img)


# ----------------------------------------------------------------------
# CSR: structure and SpMV consistency
# ----------------------------------------------------------------------
@SLOW
@given(st.integers(4, 80), st.integers(1000, 500_000), st.integers(0, 10_000))
def test_createcsr_structure_and_matvec(n, d, seed):
    m = csrfile.createcsr(n, d, seed=seed)
    m.validate_structure()
    x = np.random.default_rng(seed).uniform(-1, 1, n)
    np.testing.assert_allclose(m.matvec_reference(x), m.to_dense() @ x,
                               rtol=1e-9, atol=1e-12)


@SLOW
@given(st.integers(4, 60), st.integers(1000, 300_000), st.integers(0, 1000))
def test_csr_serialisation_round_trip(n, d, seed):
    m = csrfile.createcsr(n, d, seed=seed)
    out = csrfile.loads(csrfile.dumps(m))
    np.testing.assert_array_equal(out.row_ptr, m.row_ptr)
    np.testing.assert_array_equal(out.col_idx, m.col_idx)
    np.testing.assert_array_equal(out.values, m.values)


# ----------------------------------------------------------------------
# Performance model invariants
# ----------------------------------------------------------------------
@st.composite
def profiles(draw):
    total = draw(st.floats(0.0, 1.0))
    seq = draw(st.floats(0.0, 1.0))
    strided = draw(st.floats(0.0, 1.0 - min(seq, 1.0))) if seq < 1 else 0.0
    seq, strided = seq, min(strided, 1.0 - seq)
    return KernelProfile(
        name="p",
        flops=draw(st.floats(0, 1e10)),
        int_ops=draw(st.floats(0, 1e9)),
        bytes_read=draw(st.floats(0, 1e9)),
        bytes_written=draw(st.floats(0, 1e8)),
        working_set_bytes=draw(st.floats(64, 1e9)),
        work_items=draw(st.integers(1, 1 << 22)),
        seq_fraction=seq,
        strided_fraction=strided,
        random_fraction=1.0 - seq - strided,
        branch_fraction=draw(st.floats(0, 1)),
        serial_ops=draw(st.floats(0, 1e6)),
        chain_ops=draw(st.floats(0, 1e6)),
        launches=draw(st.integers(1, 100)),
    )


@SLOW
@given(profiles(), st.sampled_from(["i7-6700K", "GTX 1080", "R9 290X",
                                    "Xeon Phi 7210"]))
def test_kernel_time_finite_positive(profile, device):
    tb = kernel_time(get_device(device), profile)
    assert np.isfinite(tb.total_s)
    assert tb.total_s > 0
    assert tb.body_s <= tb.total_s
    assert 0.0 <= tb.utilization <= 1.0


@SLOW
@given(profiles())
def test_more_flops_never_faster(profile):
    """Monotonicity: adding work cannot reduce predicted time."""
    import dataclasses
    spec = get_device("GTX 1080")
    heavier = dataclasses.replace(profile, flops=profile.flops * 2 + 1)
    assert kernel_time(spec, heavier).total_s >= kernel_time(spec, profile).total_s


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
@SLOW
@given(st.lists(st.floats(1e-6, 1e6), min_size=1, max_size=200))
def test_summary_invariants(samples):
    s = summarize(samples)
    assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
    assert s.minimum <= s.mean <= s.maximum
    assert s.ci_low <= s.mean <= s.ci_high
    assert s.n == len(samples)


# ----------------------------------------------------------------------
# NW alignment-score properties
# ----------------------------------------------------------------------
@SLOW
@given(st.integers(0, 2**31), st.integers(1, 3).map(lambda k: 16 * k))
def test_nw_score_bounded_by_perfect_match(seed, n):
    """The alignment score never exceeds the diagonal self-match bound."""
    from repro import ocl
    from repro.dwarfs.nw import BLOSUM62, NW

    bench = NW(n=n, seed=seed % 10_000)
    ctx = ocl.Context(ocl.find_device("i7-6700K"))
    q = ocl.CommandQueue(ctx)
    bench.host_setup(ctx)
    bench.transfer_inputs(q)
    bench.run_iteration(q)
    bench.collect_results(q)
    bench.validate()
    upper = int(np.maximum(BLOSUM62[bench.seq1, bench.seq1],
                           BLOSUM62[bench.seq2, bench.seq2]).sum())
    assert bench.alignment_score() <= upper
    ctx.release_all()


# ----------------------------------------------------------------------
# Scheduling invariants
# ----------------------------------------------------------------------
@SLOW
@given(st.lists(st.sampled_from(["crc", "srad", "fft", "csr", "kmeans"]),
                min_size=1, max_size=6),
       st.lists(st.sampled_from(["i7-6700K", "GTX 1080", "R9 290X", "K40m"]),
                min_size=1, max_size=3, unique=True))
def test_lpt_schedule_guarantees(names, devices):
    """Provable properties of earliest-finish LPT on unrelated devices:
    every task is placed exactly once, and the makespan never exceeds
    the serialise-everything-on-its-best-device bound (by induction on
    the greedy step).  Stronger bounds do not hold on unrelated
    machines — piling several CPU-friendly tasks on one CPU can be
    optimal yet exceed the sum/m 'lower bound'."""
    from repro.dwarfs import create
    from repro.scheduling import Task, schedule_lpt

    tasks = [Task(f"{n}#{i}", create(n, "small")) for i, n in enumerate(names)]
    lpt = schedule_lpt(tasks, devices)
    placed = sorted(l for d in lpt.placements.values() for l, _ in d)
    assert placed == sorted(t.label for t in tasks)
    best = [min(t.time_on(d) for d in devices) for t in tasks]
    assert lpt.makespan <= sum(best) * (1 + 1e-9)


# ----------------------------------------------------------------------
# OpenCL C parser round trip
# ----------------------------------------------------------------------
_ident = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)


@SLOW
@given(st.lists(_ident, min_size=1, max_size=5, unique=True),
       st.lists(st.integers(0, 5), min_size=1, max_size=5))
def test_clsource_parser_roundtrip(names, arities):
    from repro.ocl.clsource import parse_kernels
    arities = (arities * len(names))[: len(names)]
    chunks = []
    for name, arity in zip(names, arities):
        params = ", ".join(f"__global float *p{i}" for i in range(arity))
        chunks.append(f"__kernel void {name}({params}) {{ }}")
    sigs = parse_kernels("\n".join(chunks))
    assert set(sigs) == set(names)
    for name, arity in zip(names, arities):
        assert sigs[name].arity == arity


# ----------------------------------------------------------------------
# Regression-gate statistics (paper §4.3 discipline between runs)
# ----------------------------------------------------------------------
_group = st.lists(st.floats(1e-3, 1e3), min_size=3, max_size=40)


@SLOW
@given(_group, _group)
def test_welch_antisymmetric_in_group_order(a, b):
    from repro.scibench.stats import welch_t_test
    t_ab, p_ab = welch_t_test(a, b)
    t_ba, p_ba = welch_t_test(b, a)
    if np.isnan(t_ab):
        assert np.isnan(t_ba)
    else:
        assert t_ab == pytest.approx(-t_ba, rel=1e-9, abs=1e-12)
        assert p_ab == pytest.approx(p_ba, rel=1e-9, abs=1e-12)


@SLOW
@given(_group, _group, st.floats(1e-3, 1e3))
def test_welch_scale_invariant(a, b, k):
    """Rescaling both groups (unit change) must not move t or p."""
    from repro.scibench.stats import welch_t_test
    t1, p1 = welch_t_test(a, b)
    t2, p2 = welch_t_test([k * x for x in a], [k * x for x in b])
    if np.isnan(t1):
        assert np.isnan(t2)
    else:
        assert t1 == pytest.approx(t2, rel=1e-6, abs=1e-9)
        assert p1 == pytest.approx(p2, rel=1e-6, abs=1e-9)


@SLOW
@given(_group, _group)
def test_cohens_d_antisymmetric(a, b):
    from repro.scibench.stats import cohens_d
    d_ab, d_ba = cohens_d(a, b), cohens_d(b, a)
    if np.isinf(d_ab):
        assert d_ba == -d_ab
    else:
        assert d_ab == pytest.approx(-d_ba, rel=1e-9, abs=1e-12)


@SLOW
@given(_group, _group, st.floats(1e-3, 1e3))
def test_cohens_d_scale_invariant(a, b, k):
    from repro.scibench.stats import cohens_d
    d1 = cohens_d(a, b)
    d2 = cohens_d([k * x for x in a], [k * x for x in b])
    if np.isinf(d1) or np.isinf(d2):
        assert d1 == d2
    else:
        assert d1 == pytest.approx(d2, rel=1e-6, abs=1e-9)


@SLOW
@given(_group)
def test_identical_samples_never_regress(samples):
    """A cell re-measured bit-identically must classify as unchanged."""
    from repro.regress import classify
    status, stats = classify(samples, samples)
    assert status == "unchanged"
    assert stats["effect_size"] == 0.0 or np.isnan(stats["effect_size"])


@SLOW
@given(_group, _group, st.floats(1e-3, 1e3), st.integers(0, 2**31))
def test_bootstrap_ci_ordered_and_scale_invariant(a, b, k, seed):
    """lo <= hi always; rescaling both groups leaves the ratio CI alone."""
    from repro.scibench.stats import bootstrap_ratio_ci
    lo, hi = bootstrap_ratio_ci(a, b, n_boot=200, seed=seed)
    assert lo <= hi
    lo2, hi2 = bootstrap_ratio_ci([k * x for x in a], [k * x for x in b],
                                  n_boot=200, seed=seed)
    assert lo == pytest.approx(lo2, rel=1e-6)
    assert hi == pytest.approx(hi2, rel=1e-6)


# ----------------------------------------------------------------------
# Static AIWC invariants
# ----------------------------------------------------------------------
_weights = st.lists(
    st.floats(min_value=0.0, max_value=1e12,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=16)


@given(_weights)
def test_pattern_entropy_bounded(weights):
    """0 <= H <= log2(k) for any k-element non-negative weight vector."""
    from repro.aiwc.metrics import pattern_entropy_from_weights
    h = pattern_entropy_from_weights(weights)
    assert 0.0 <= h <= np.log2(len(weights)) + 1e-9


@given(_weights, st.randoms(use_true_random=False))
def test_pattern_entropy_permutation_invariant(weights, rng):
    """Entropy is a function of the multiset, not the order."""
    from repro.aiwc.metrics import pattern_entropy_from_weights
    shuffled = list(weights)
    rng.shuffle(shuffled)
    assert pattern_entropy_from_weights(shuffled) == pytest.approx(
        pattern_entropy_from_weights(weights), abs=1e-9)


@given(_weights)
def test_pattern_entropy_ignores_degenerate_entries(weights):
    """NaN/inf/negative entries carry no information."""
    from repro.aiwc.metrics import pattern_entropy_from_weights
    noisy = weights + [float("nan"), float("inf"), -1.0]
    assert pattern_entropy_from_weights(noisy) == pytest.approx(
        pattern_entropy_from_weights(weights), abs=1e-9)


@SLOW
@given(st.sampled_from(["kmeans", "lud", "fft", "nw", "srad", "umesh"]))
def test_static_opcode_counts_monotone_in_size(name):
    """Growing the problem never shrinks the static op count or footprint."""
    from repro.analysis.staticaiwc import characterize_static
    from repro.dwarfs import registry
    cls = registry.get_benchmark(name)
    metrics = [characterize_static(cls.from_size(s))
               for s in cls.available_sizes()]
    ops = [m.opcode_total for m in metrics]
    footprints = [m.unique_footprint_log for m in metrics]
    assert all(a <= b + 1e-9 for a, b in zip(ops, ops[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(footprints, footprints[1:]))
