"""Trace builders: coverage, length caps, composition."""

import numpy as np
import pytest

from repro.cache import trace


class TestSequential:
    def test_covers_working_set(self):
        t = trace.sequential(1024, element_bytes=4, passes=1)
        assert t.min() == 0
        assert t.max() <= 1024 - 4

    def test_passes_repeat(self):
        one = trace.sequential(1024, passes=1)
        two = trace.sequential(1024, passes=2)
        assert len(two) == 2 * len(one)
        np.testing.assert_array_equal(two[: len(one)], two[len(one):])

    def test_length_cap_preserves_footprint(self):
        t = trace.sequential(100 * 1024 * 1024, passes=2, max_len=1000)
        assert len(t) <= 1100
        assert t.max() > 90 * 1024 * 1024  # stride raised, span kept

    def test_empty(self):
        assert len(trace.sequential(0)) == 0


class TestStrided:
    def test_respects_stride(self):
        t = trace.strided(1024, stride_bytes=128, passes=1)
        assert set(np.diff(t)) == {128}

    def test_cap(self):
        t = trace.strided(10**8, stride_bytes=8, passes=2, max_len=500)
        assert len(t) <= 500


class TestRandom:
    def test_bounds(self, rng):
        t = trace.random_uniform(4096, 1000, rng)
        assert len(t) == 1000
        assert t.min() >= 0
        assert t.max() <= 4092

    def test_alignment(self, rng):
        t = trace.random_uniform(4096, 100, rng, element_bytes=8)
        assert (t % 8 == 0).all()

    def test_empty(self, rng):
        assert len(trace.random_uniform(0, 10, rng)) == 0
        assert len(trace.random_uniform(100, 0, rng)) == 0


class TestBlocked:
    def test_blocks_revisited(self):
        t = trace.blocked(4096, block_bytes=1024, reuse=3, max_len=10000)
        # first block's addresses appear `reuse` times before block 2 starts
        first_block = t[t < 1024]
        beyond = np.nonzero(t >= 1024)[0]
        assert len(first_block) > 0
        if len(beyond):
            assert (t[: beyond[0]] < 1024).all()

    def test_covers_all_blocks(self):
        t = trace.blocked(8192, block_bytes=2048, reuse=2)
        for b in range(4):
            assert ((t >= b * 2048) & (t < (b + 1) * 2048)).any()


class TestComposition:
    def test_interleaved_round_robin(self):
        a = np.array([0, 1, 2], dtype=np.int64)
        b = np.array([100, 101], dtype=np.int64)
        out = trace.interleaved([a, b])
        assert out.tolist() == [0, 100, 1, 101, 2]

    def test_interleaved_empty(self):
        assert len(trace.interleaved([])) == 0
        assert len(trace.interleaved([np.empty(0, np.int64)])) == 0

    def test_offset(self):
        t = trace.offset_trace(np.array([0, 4], dtype=np.int64), 1000)
        assert t.tolist() == [1000, 1004]

    def test_offset_empty(self):
        assert len(trace.offset_trace(np.empty(0, np.int64), 10)) == 0
