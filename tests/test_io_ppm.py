"""PNM codec: round trips, headers, error handling."""

import numpy as np
import pytest

from repro.io import ppm


class TestRoundTrip:
    def test_binary_pgm(self, rng):
        img = rng.integers(0, 256, size=(13, 17), dtype=np.uint8)
        out = ppm.loads(ppm.dumps(img, binary=True))
        np.testing.assert_array_equal(out, img)

    def test_ascii_pgm(self, rng):
        img = rng.integers(0, 256, size=(5, 7), dtype=np.uint8)
        out = ppm.loads(ppm.dumps(img, binary=False))
        np.testing.assert_array_equal(out, img)

    def test_binary_ppm_rgb(self, rng):
        img = rng.integers(0, 256, size=(6, 4, 3), dtype=np.uint8)
        out = ppm.loads(ppm.dumps(img, binary=True))
        np.testing.assert_array_equal(out, img)

    def test_ascii_ppm_rgb(self, rng):
        img = rng.integers(0, 256, size=(3, 3, 3), dtype=np.uint8)
        out = ppm.loads(ppm.dumps(img, binary=False))
        np.testing.assert_array_equal(out, img)

    def test_16bit_pgm(self, rng):
        img = rng.integers(0, 65536, size=(4, 4)).astype(np.uint16)
        out = ppm.loads(ppm.dumps(img, maxval=65535))
        np.testing.assert_array_equal(out, img)

    def test_file_io(self, tmp_path, rng):
        img = rng.integers(0, 256, size=(8, 8), dtype=np.uint8)
        path = tmp_path / "x.pgm"
        ppm.save(path, img)
        np.testing.assert_array_equal(ppm.load(path), img)


class TestHeaders:
    def test_magic_numbers(self):
        img = np.zeros((2, 2), dtype=np.uint8)
        assert ppm.dumps(img, binary=True).startswith(b"P5")
        assert ppm.dumps(img, binary=False).startswith(b"P2")
        rgb = np.zeros((2, 2, 3), dtype=np.uint8)
        assert ppm.dumps(rgb, binary=True).startswith(b"P6")
        assert ppm.dumps(rgb, binary=False).startswith(b"P3")

    def test_comments_skipped(self):
        data = b"P2\n# a comment\n2 2\n# another\n255\n1 2 3 4\n"
        out = ppm.loads(data)
        np.testing.assert_array_equal(out, [[1, 2], [3, 4]])

    def test_dimensions_parsed(self):
        img = np.zeros((3, 5), dtype=np.uint8)
        assert ppm.loads(ppm.dumps(img)).shape == (3, 5)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ppm.PNMError):
            ppm.loads(b"JUNK")

    def test_truncated_raster(self):
        data = ppm.dumps(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(ppm.PNMError):
            ppm.loads(data[:-3])

    def test_bad_shape(self):
        with pytest.raises(ppm.PNMError):
            ppm.dumps(np.zeros((2, 2, 4), dtype=np.uint8))

    def test_out_of_range_values(self):
        with pytest.raises(ppm.PNMError):
            ppm.dumps(np.full((2, 2), 300, dtype=np.uint16), maxval=255)

    def test_invalid_maxval(self):
        with pytest.raises(ppm.PNMError):
            ppm.loads(b"P5\n2 2\n0\n    ")


class TestGrayscale:
    def test_rgb_to_gray(self):
        rgb = np.zeros((2, 2, 3), dtype=np.uint8)
        rgb[..., 1] = 255  # pure green
        gray = ppm.to_grayscale(rgb)
        assert gray.shape == (2, 2)
        assert abs(int(gray[0, 0]) - 150) <= 1  # 0.587 * 255

    def test_gray_passthrough(self):
        img = np.arange(4, dtype=np.uint8).reshape(2, 2)
        np.testing.assert_array_equal(ppm.to_grayscale(img), img)
