"""lud: blocked LU factorisation correctness and kernel structure."""

import numpy as np
import pytest

from repro.dwarfs.lud import BLOCK, LUD


class TestConstruction:
    def test_presets_match_table2(self):
        assert LUD.presets == {
            "tiny": 80, "small": 240, "medium": 1440, "large": 4096}

    def test_from_args(self):
        assert LUD.from_args(["-s", "240"]).n == 240

    def test_from_args_malformed(self):
        with pytest.raises(ValueError):
            LUD.from_args(["240"])

    def test_size_must_be_block_multiple(self):
        with pytest.raises(ValueError):
            LUD(n=100)

    def test_footprint_is_matrix(self):
        assert LUD(n=80).footprint_bytes() == 80 * 80 * 4


class TestFactorisation:
    def test_reconstruction(self, cpu_context, cpu_queue):
        bench = LUD(n=64)
        bench.run_complete(cpu_context, cpu_queue)

    def test_lu_against_scipy(self, cpu_context, cpu_queue):
        """Blocked no-pivot LU on a diagonally dominant matrix equals
        scipy's unpivoted factorisation."""
        from scipy.linalg import lu_factor
        bench = LUD(n=32, seed=2)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        ours = bench.result.astype(np.float64)
        # scipy pivots, but a strictly diagonally dominant matrix keeps
        # the identity permutation
        lu, piv = lu_factor(bench.matrix.astype(np.float64))
        assert (piv == np.arange(32)).all()
        np.testing.assert_allclose(ours, lu, rtol=5e-4, atol=5e-4)

    def test_unit_lower_diagonal_convention(self, cpu_context, cpu_queue):
        bench = LUD(n=32)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        # U's diagonal is stored; L's implicit unit diagonal is not
        lu = bench.result
        upper = np.triu(lu)
        assert (np.abs(np.diag(upper)) > 0.5).all()  # dominant pivots

    def test_diagonal_dominance_generated(self, cpu_context):
        bench = LUD(n=48)
        bench.host_setup(cpu_context)
        a = bench.matrix
        off_diag = np.abs(a).sum(axis=1) - np.abs(np.diag(a))
        assert (np.abs(np.diag(a)) > off_diag).all()


class TestKernelStructure:
    def test_three_kernels_per_step(self, cpu_context, cpu_queue):
        n, b = 64, BLOCK
        bench = LUD(n=n)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        steps = n // b
        # last step has no perimeter/internal
        assert len(events) == 3 * (steps - 1) + 1

    def test_kernel_names(self, cpu_context, cpu_queue):
        bench = LUD(n=32)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        names = {e.info["kernel"] for e in events}
        assert names == {"lud_diagonal", "lud_perimeter", "lud_internal"}

    def test_flop_total_near_two_thirds_n_cubed(self):
        bench = LUD(n=512)
        total = sum(p.flops * p.launches for p in bench.profiles())
        assert total == pytest.approx((2 / 3) * 512**3, rel=0.15)

    def test_internal_kernel_dominates(self):
        profiles = {p.name: p for p in LUD(n=512).profiles()}
        internal = profiles["lud_internal"]
        diagonal = profiles["lud_diagonal"]
        assert (internal.flops * internal.launches
                > 10 * diagonal.flops * diagonal.launches)
