"""Tables 1-3 regeneration and figure data structure."""

import pytest

from repro.harness import (
    figure2,
    figure4,
    render_table,
    table1_rows,
    table1_text,
    table2_rows,
    table2_text,
    table3_rows,
    table3_text,
)
from repro.harness.figures import DEVICES_NO_KNL, FigureData


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table([{"a": 1, "bb": "xy"}, {"a": 22, "bb": "z"}], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", "+"}

    def test_empty(self):
        assert "(empty)" in render_table([], "T")


class TestTable1:
    def test_fifteen_rows(self):
        assert len(table1_rows()) == 15

    def test_contains_key_cells(self):
        text = table1_text()
        for cell in ("Xeon E5-2697 v2", "800/4000/4300", "32/256/8192",
                     "2816∥", "3584†", "256‡", "Q2 2016"):
            assert cell in text, cell


class TestTable2:
    def test_all_benchmarks_in_order(self):
        rows = table2_rows()
        assert [r["Benchmark"] for r in rows] == [
            "kmeans", "lud", "csr", "fft", "dwt", "srad", "crc", "nw",
            "gem", "nqueens", "hmm"]

    def test_paper_values_rendered(self):
        text = table2_text()
        for cell in ("65600", "2097152", "72x54", "3648x2736", "80,16",
                     "4194304", "4TUT", "1KX5", "2048,2048"):
            assert cell in text, cell

    def test_nqueens_dashes(self):
        row = [r for r in table2_rows() if r["Benchmark"] == "nqueens"][0]
        assert row["tiny"] == "18"
        assert row["small"] == row["medium"] == row["large"] == "–"


class TestTable3:
    def test_argument_templates(self):
        text = table3_text()
        for cell in ("-g -f 26 -p {phi}", "-s {phi}", "-l 3",
                     "-i 1000 {phi}.txt", "{phi} 10", "-n {phi1} -s {phi2}"):
            assert cell in text, cell

    def test_row_per_benchmark(self):
        assert len(table3_rows()) == 11


class TestFigureData:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure2("csr", samples=5)

    def test_panels_are_sizes(self, fig):
        assert list(fig.panels) == ["tiny", "small", "medium", "large"]

    def test_devices_exclude_knl(self, fig):
        for panel in fig.panels.values():
            assert "Xeon Phi 7210" not in panel
            assert len(panel) == 14

    def test_box_statistics_ordered(self, fig):
        for panel in fig.panels.values():
            for stats in panel.values():
                assert (stats["min"] <= stats["q1"] <= stats["median"]
                        <= stats["q3"] <= stats["max"])

    def test_normalised_rel(self, fig):
        for panel in fig.panels.values():
            rels = [s["rel"] for s in panel.values()]
            assert max(rels) == pytest.approx(1.0)
            assert min(rels) > 0

    def test_csv_export(self, fig):
        csv = fig.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("figure,panel,device")
        assert len(lines) == 1 + 4 * 14

    def test_render_text(self, fig):
        text = fig.render()
        assert "Figure 2c" in text
        assert "GTX 1080" in text

    def test_unknown_benchmark_for_figure(self):
        with pytest.raises(ValueError):
            figure2("srad", samples=2)

    def test_figure4_three_panels(self):
        fig = figure4(samples=3)
        assert list(fig.panels) == ["gem", "nqueens", "hmm"]
        assert all(len(p) == len(DEVICES_NO_KNL) for p in fig.panels.values())
