"""Functional validation matrix: benchmarks x problem sizes.

The tiny size of every benchmark is validated in
``test_dwarfs_common``; this matrix pushes functional execution +
serial-reference validation through the *small and medium* problem
sizes too (the paper's correctness methodology applies at every size),
and through a GPU-class device to cover the second platform path.
Combinations whose functional execution is genuinely expensive in
numpy are marked ``slow``.
"""

import pytest

from repro import ocl
from repro.dwarfs import create

#: (benchmark, size) pairs cheap enough for the default suite.
FAST_MATRIX = [
    ("kmeans", "small"), ("kmeans", "medium"),
    ("lud", "small"), ("lud", "medium"),
    ("csr", "small"), ("csr", "medium"),
    ("fft", "small"), ("fft", "medium"),
    ("dwt", "small"),
    ("srad", "small"), ("srad", "medium"),
    ("crc", "small"),
    ("nw", "small"), ("nw", "medium"),
    ("gem", "small"),
    ("hmm", "small"),
    ("cwt", "small"),
    ("bfs", "small"), ("bfs", "medium"),
    ("fsm", "small"),
    ("umesh", "small"), ("umesh", "medium"),
]

#: Expensive functional executions, still covered under -m slow.
SLOW_MATRIX = [
    ("kmeans", "large"),
    ("lud", "large"),
    ("csr", "large"),
    ("fft", "large"),
    ("dwt", "medium"),
    ("srad", "large"),
    ("crc", "medium"),
    ("nw", "large"),
    ("hmm", "medium"),
    ("cwt", "medium"),
    ("fsm", "medium"),
    ("bfs", "large"),
    ("umesh", "large"),
]


def _run(name, size, device_name):
    device = ocl.find_device(device_name)
    context = ocl.Context(device)
    queue = ocl.CommandQueue(context)
    bench = create(name, size)
    try:
        bench.run_complete(context, queue)
        assert queue.total_kernel_time_s() > 0
        assert context.peak_allocated_bytes == pytest.approx(
            bench.footprint_bytes(), rel=0.02)
    finally:
        bench.teardown()


@pytest.mark.parametrize("name,size", FAST_MATRIX,
                         ids=[f"{n}-{s}" for n, s in FAST_MATRIX])
def test_validates_on_cpu(name, size):
    _run(name, size, "i7-6700K")


@pytest.mark.parametrize("name,size", FAST_MATRIX[::3],
                         ids=[f"{n}-{s}" for n, s in FAST_MATRIX[::3]])
def test_validates_on_gpu(name, size):
    """Spot-check the GPU device path (results are device-independent
    in the functional simulation; this guards the queue/buffer path)."""
    _run(name, size, "R9 Fury X")


@pytest.mark.slow
@pytest.mark.parametrize("name,size", SLOW_MATRIX,
                         ids=[f"{n}-{s}" for n, s in SLOW_MATRIX])
def test_validates_slow_sizes(name, size):
    _run(name, size, "GTX 1080")
