"""Self-profiling layer: phase attribution, propagation, histograms.

Pins the PR 6 acceptance criteria: cross-process span propagation
(parent/child ids survive worker IPC, parallel == serial topology),
the profiler's no-op path (zero spans, <5% overhead), deterministic
folded-stack output, bucketed histograms, cache-key tagging and the
BENCH phase-timing trajectory field.
"""

import json
import time

import pytest

from repro.harness.cli import main
from repro.harness.runner import RunConfig, run_benchmark
from repro.harness.sweep import SweepCache, run_sweep
from repro.telemetry import (
    BucketHistogram,
    ChromeTraceExporter,
    MetricsRegistry,
    ProfileSession,
    Span,
    Tracer,
    default_registry,
    folded_stacks,
    get_tracer,
    memory_runlog,
    phase_summary,
    set_default_runlog,
    set_tracer,
    summarize_trace_events,
    tracing,
)
from repro.telemetry.profile import PHASE_MEASURE, PHASE_OTHER, PHASE_SWEEP
from repro.telemetry.tracer import NOOP_SPAN


def _configs(benchmarks=("fft", "crc"), samples=6):
    return [RunConfig(b, size, "i7-6700K", samples=samples,
                      execute=False, validate=False)
            for b in benchmarks for size in ("tiny", "small")]


def _paths(spans) -> list[str]:
    """Name paths (root;...;leaf) of a span set, sorted."""
    dicts = [s.to_dict() if isinstance(s, Span) else s for s in spans]
    by_id = {d["span_id"]: d for d in dicts}
    out = []
    for d in dicts:
        names = [d["name"]]
        parent = d.get("parent_id")
        while parent in by_id:
            names.append(by_id[parent]["name"])
            parent = by_id[parent].get("parent_id")
        out.append(";".join(reversed(names)))
    return sorted(out)


# ----------------------------------------------------------------------
# Cross-process trace propagation
# ----------------------------------------------------------------------
class TestPropagation:
    def test_context_roundtrip_and_disabled_passthrough(self):
        parent = Tracer(enabled=True)
        worker = Tracer.from_context(parent.propagation_context())
        assert worker.enabled
        assert worker.trace_id == parent.trace_id
        off = Tracer.from_context(Tracer(enabled=False).propagation_context())
        assert not off.enabled

    def test_graft_remaps_ids_and_reparents(self):
        worker = Tracer(enabled=True)
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent = Tracer(enabled=True)
        with parent.span("cell") as cell:
            grafted = parent.graft(worker.to_dicts())
        inner = next(s for s in grafted if s.name == "inner")
        outer = next(s for s in grafted if s.name == "outer")
        # relative link preserved, root reparented under the open span
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == cell.span_id
        assert outer.depth == cell.depth + 1
        # remapped into the parent tracer's id space: no collisions
        ids = [s.span_id for s in parent.finished]
        assert len(ids) == len(set(ids))
        assert all(s.trace_id == parent.trace_id or s.trace_id is not None
                   for s in grafted)

    def test_parallel_sweep_ships_worker_spans(self):
        configs = _configs()
        with tracing() as tracer:
            run_sweep(configs, jobs=2)
        names = [s.name for s in tracer.finished]
        assert names.count("run_benchmark") == len(configs)
        bench_spans = [s for s in tracer.finished
                       if s.name == "run_benchmark"]
        cell_ids = {s.span_id for s in tracer.finished
                    if s.name == "sweep_cell"}
        for span in bench_spans:
            assert span.attributes["worker_pid"] > 0
            assert span.trace_id == tracer.trace_id
            assert span.parent_id in cell_ids  # nested under its cell

    def test_parallel_topology_equals_serial(self):
        configs = _configs()
        with tracing() as serial:
            serial_results = run_sweep(configs, jobs=1).results
        with tracing() as parallel:
            parallel_results = run_sweep(configs, jobs=2).results
        assert _paths(serial.finished) == _paths(parallel.finished)
        # and the engine's headline guarantee still holds alongside
        for a, b in zip(serial_results, parallel_results):
            assert (a.times_s == b.times_s).all()

    def test_disabled_tracer_ships_nothing(self):
        prev = set_tracer(Tracer(enabled=False))
        try:
            run_sweep(_configs(benchmarks=("fft",)), jobs=2)
            assert len(get_tracer().finished) == 0
        finally:
            set_tracer(prev)


# ----------------------------------------------------------------------
# Phase attribution + folded stacks
# ----------------------------------------------------------------------
def _fake_clock_tracer(ticks):
    it = iter(ticks)
    return Tracer(enabled=True, clock=lambda: next(it))


class TestPhaseSummary:
    def test_self_time_and_inheritance(self):
        # sweep [0..100us]; measure child [10..90us]; unphased
        # grandchild [20..40us] inherits "measure"
        t = _fake_clock_tracer([0, 10_000, 20_000, 40_000, 90_000, 100_000])
        with t.span("run_sweep", phase=PHASE_SWEEP):
            with t.span("run_benchmark", phase=PHASE_MEASURE):
                with t.span("sample_timings"):
                    pass
        summary = phase_summary(t.finished)
        sweep = summary.stat(PHASE_SWEEP)
        measure = summary.stat(PHASE_MEASURE)
        assert sweep.self_s == pytest.approx(20e-6)
        assert measure.self_s == pytest.approx(80e-6)  # child included
        assert measure.count == 1  # sample_timings inherits, not introduces
        assert summary.wall_s == pytest.approx(100e-6)
        assert summary.attributed_fraction == pytest.approx(1.0)
        assert summary.stat(PHASE_OTHER) is None

    def test_unphased_root_is_other(self):
        t = _fake_clock_tracer([0, 1000])
        with t.span("loose"):
            pass
        summary = phase_summary(t.finished)
        assert summary.stat(PHASE_OTHER).self_s == pytest.approx(1e-6)
        assert summary.attributed_fraction == 0.0

    def test_folded_stacks_golden(self):
        t = _fake_clock_tracer([0, 10_000, 30_000, 40_000, 80_000, 100_000])
        with t.span("root"):
            with t.span("child"):
                with t.span("leaf"):
                    pass
        # root: 100us total - 70us child = 30us self; child: 70 - 10 = 60
        assert folded_stacks(t.finished) == (
            "root 30\n"
            "root;child 60\n"
            "root;child;leaf 10"
        )

    def test_folded_stacks_aggregate_repeated_paths(self):
        t = _fake_clock_tracer([0, 1_000, 5_000, 6_000, 9_000, 10_000])
        with t.span("root"):
            with t.span("work"):
                pass
            with t.span("work"):
                pass
        assert folded_stacks(t.finished) == (
            "root 3\n"
            "root;work 7"
        )


# ----------------------------------------------------------------------
# Profiler sessions + the no-op path
# ----------------------------------------------------------------------
class TestProfileSession:
    def test_report_attributes_and_hotspots(self):
        with ProfileSession(memory=True) as session:
            run_sweep(_configs(benchmarks=("fft",)), jobs=1)
        report = session.report(top=5)
        assert report.span_count > 0
        assert report.phases.attributed_fraction >= 0.9
        assert report.trace_id == session.tracer.trace_id
        assert len(report.hotspots) == 5
        assert "run_sweep" in report.to_folded()
        assert report.memory.peak_bytes > 0
        assert any("fft" in cell for cell, _ in report.memory.cells)
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["phase"]["attributed_fraction"] >= 0.9
        table = report.to_table()
        assert "Phases" in table and "Hotspots" in table

    def test_reuses_enabled_global_tracer(self):
        with tracing() as tracer:
            with ProfileSession() as session:
                assert session.tracer is tracer
                with get_tracer().span("inside"):
                    pass
            assert get_tracer() is tracer
        assert "inside" in [s.name for s in tracer.finished]

    def test_disabled_session_is_strict_noop(self):
        before = get_tracer()
        with ProfileSession(enabled=False) as session:
            assert get_tracer() is before
            assert get_tracer().span("x") is NOOP_SPAN
        report = session.report()
        assert report.span_count == 0
        assert report.folded == ""
        assert report.hotspots == []

    def test_disabled_instrumentation_overhead_under_5_percent(self):
        """Acceptance: the no-op path costs <5% of a tiny run."""
        config = RunConfig("fft", "tiny", "i7-6700K", samples=6,
                           execute=False, validate=False)
        # spans a traced tiny run produces
        with tracing() as tracer:
            run_benchmark(config)
        span_count = len(tracer.finished)
        assert span_count > 0
        # per-call cost of the disabled fast path
        off = Tracer(enabled=False)
        reps = 10_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with off.span("x", benchmark="fft"):
                pass
        per_span = (time.perf_counter() - t0) / reps
        assert len(off.finished) == 0
        # untraced run wall time
        t0 = time.perf_counter()
        run_benchmark(config)
        wall = time.perf_counter() - t0
        assert span_count * per_span < 0.05 * wall


# ----------------------------------------------------------------------
# Bucketed histograms
# ----------------------------------------------------------------------
class TestBucketHistogram:
    def test_observe_buckets_cumulatively(self):
        reg = MetricsRegistry()
        h = reg.bucket_histogram("d_seconds", "Durations",
                                 buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        counts = h.bucket_counts()
        assert counts[0.1] == 1
        assert counts[1.0] == 3
        assert counts[10.0] == 4
        assert counts[float("inf")] == 5
        assert h.count() == 5
        assert h.sum() == pytest.approx(56.05)

    def test_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.bucket_histogram("bad", buckets=())
        with pytest.raises(ValueError):
            reg.bucket_histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            reg.bucket_histogram("bad", buckets=(1.0, float("inf")))

    def test_exposition_is_prometheus_histogram(self):
        from tests.test_telemetry import parse_prometheus
        reg = MetricsRegistry()
        h = reg.bucket_histogram("lat_seconds", "Latency",
                                 buckets=(0.1, 1.0))
        h.observe(0.05, op="get")
        h.observe(0.5, op="get")
        families = parse_prometheus(reg.expose())
        assert families["lat_seconds"]["type"] == "histogram"
        samples = families["lat_seconds"]["samples"]
        assert samples['lat_seconds_bucket{op="get",le="0.1"}'] == 1.0
        assert samples['lat_seconds_bucket{op="get",le="1.0"}'] == 2.0
        assert samples['lat_seconds_bucket{op="get",le="+Inf"}'] == 2.0
        assert samples['lat_seconds_count{op="get"}'] == 2.0
        assert samples['lat_seconds_sum{op="get"}'] == pytest.approx(0.55)

    def test_snapshot_merge_adds_counts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.bucket_histogram("x_seconds", buckets=(1.0,)).observe(0.5)
        b.bucket_histogram("x_seconds", buckets=(1.0,)).observe(2.0)
        a.merge_snapshot(b.snapshot())
        h = a.bucket_histogram("x_seconds", buckets=(1.0,))
        assert h.count() == 2
        assert h.bucket_counts()[1.0] == 1

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.bucket_histogram("x_seconds", buckets=(1.0,)).observe(0.5)
        b.bucket_histogram("x_seconds", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())

    def test_runner_records_cell_durations(self):
        reg = default_registry()
        h = reg.bucket_histogram("harness_cell_duration_seconds")
        before = h.total_count
        run_benchmark(RunConfig("fft", "tiny", "i7-6700K", samples=3,
                                execute=False, validate=False))
        assert h.total_count == before + 1
        assert h.count(benchmark="fft", size="tiny") >= 1

    def test_parallel_sweep_merges_cell_durations(self):
        reg = default_registry()
        h = reg.bucket_histogram("harness_cell_duration_seconds")
        before = h.total_count
        configs = _configs(benchmarks=("fft",))
        run_sweep(configs, jobs=2)
        assert h.total_count == before + len(configs)


# ----------------------------------------------------------------------
# Cache key tagging (spans + JSONL)
# ----------------------------------------------------------------------
class TestCacheKeyTagging:
    def test_spans_and_runlog_carry_cell_key(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        configs = _configs(benchmarks=("fft",))
        runlog, buffer = memory_runlog()
        prev = set_default_runlog(runlog)
        try:
            with tracing() as tracer:
                run_sweep(configs, jobs=1, cache=cache)     # cold: compute
                run_sweep(configs, jobs=1, cache=cache)     # warm: cached
        finally:
            set_default_runlog(prev)
        records = [json.loads(l) for l in buffer.getvalue().splitlines()]
        computed = [r for r in records if r["event"] == "cell_computed"]
        cached = [r for r in records if r["event"] == "cell_cached"]
        assert len(computed) == len(configs)
        assert len(cached) == len(configs)
        keys = {r["key"] for r in computed}
        assert keys == {r["key"] for r in cached}
        assert all(len(k) == 64 for k in keys)  # SHA-256 hex
        cells = [s for s in tracer.finished if s.name == "sweep_cell"]
        assert {s.attributes["key"] for s in cells} == keys
        gets = [s for s in tracer.finished if s.name == "sweep_cache_get"]
        assert {s.attributes["phase"] for s in gets} == {"cache_io"}
        assert {s.attributes["hit"] for s in gets} == {True, False}
        puts = [s for s in tracer.finished if s.name == "sweep_cache_put"]
        assert len(puts) == len(configs)
        assert set(s.attributes["key"] for s in puts) == keys


# ----------------------------------------------------------------------
# Instrumented cost centers
# ----------------------------------------------------------------------
class TestCostCenterSpans:
    def test_cache_simulator_spans(self):
        from repro.cache.hierarchy import CacheHierarchy
        from repro.cache.tlb import TLB
        from repro.devices.catalog import get_device
        with tracing() as tracer:
            CacheHierarchy.for_device(get_device("i7-6700K")).access_many(
                range(0, 4096, 64))
            TLB().access_many(range(0, 8192, 4096))
        by_name = {s.name: s for s in tracer.finished}
        assert by_name["cache_sim_trace"].attributes["phase"] == "cache_sim"
        assert by_name["cache_sim_trace"].attributes["accesses"] == 64
        assert by_name["tlb_trace"].attributes["accesses"] == 2

    def test_absint_spans(self):
        from repro.analysis.absint import interpret_kernel
        from repro.analysis.frontend import parse_source
        src = "__kernel void k(__global float* a) { a[get_global_id(0)] = 1.0f; }"
        kernel = parse_source(src).kernels[0]
        with tracing() as tracer:
            interpret_kernel(kernel)
        span, = [s for s in tracer.finished if s.name == "absint_interpret"]
        assert span.attributes == {"phase": "absint", "kernel": "k"}


# ----------------------------------------------------------------------
# Trace summaries
# ----------------------------------------------------------------------
class TestTraceSummary:
    def test_exact_self_time_from_span_ids(self):
        t = _fake_clock_tracer([0, 10_000, 90_000, 100_000])
        with t.span("outer"):
            with t.span("inner"):
                pass
        exporter = ChromeTraceExporter()
        exporter.add_tracer(t)
        summary = summarize_trace_events(exporter.to_dict()["traceEvents"])
        assert summary.span_count == 2
        by_name = {n.name: n for n in summary.names}
        assert by_name["outer"].total_s == pytest.approx(100e-6)
        assert by_name["outer"].self_s == pytest.approx(20e-6)
        assert by_name["inner"].self_s == pytest.approx(80e-6)
        assert "2 spans" in summary.render()

    def test_x_slices_containment(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 100.0,
             "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 10.0, "dur": 50.0,
             "pid": 1, "tid": 1},
        ]
        summary = summarize_trace_events(events)
        by_name = {n.name: n for n in summary.names}
        assert by_name["a"].self_s == pytest.approx(50e-6)
        assert by_name["b"].self_s == pytest.approx(50e-6)

    def test_cli_trace_summary_on_chrome_json(self, tmp_path, capsys):
        with tracing() as t:
            with t.span("run_benchmark"):
                with t.span("sample_timings"):
                    pass
        exporter = ChromeTraceExporter()
        exporter.add_tracer(t)
        path = tmp_path / "run.trace.json"
        exporter.write(path)
        assert main(["trace", str(path), "--summary", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "run_benchmark" in out
        assert "sample_timings" in out
        assert "spans/slices" in out


# ----------------------------------------------------------------------
# CLI: repro profile run|all, run --profile
# ----------------------------------------------------------------------
class TestProfileCli:
    def test_profile_all_tiny(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["profile", "all", "--size", "tiny",
                   "--device", "i7-6700K", "--samples", "6",
                   "--no-execute", "--jobs", "2", "--format", "json",
                   "-o", "profile.json"])
        assert rc == 0
        report = json.loads((tmp_path / "profile.json").read_text())
        # acceptance: >=90% of wall time attributed to named phases
        assert report["phase"]["attributed_fraction"] >= 0.9
        assert report["span_count"] > 0
        folded = (tmp_path / "profile.folded").read_text()
        assert "run_sweep" in folded
        trace = json.loads((tmp_path / "profile.trace.json").read_text())
        events = trace["traceEvents"]
        begins = [e for e in events if e.get("ph") == "b"]
        # one coherent trace: worker run_benchmark spans nest under the
        # parent sweep via parent_id args
        ids = {e["args"]["span_id"]: e for e in begins}
        bench = [e for e in begins if e["name"] == "run_benchmark"]
        assert bench, "no worker spans in merged trace"
        for e in bench:
            parent = ids[e["args"]["parent_id"]]
            assert parent["name"] == "sweep_cell"
        assert len({e["args"].get("trace_id") for e in begins}) == 1

    def test_profile_run_table(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["profile", "run", "fft", "--size", "tiny",
                   "--device", "i7-6700K", "--samples", "6",
                   "--no-execute", "--jobs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Phases" in out and "Hotspots" in out
        assert "measure" in out

    def test_run_profile_flag(self, capsys):
        rc = main(["run", "fft", "--size", "tiny", "--device", "i7-6700K",
                   "--samples", "6", "--no-execute", "--no-cache",
                   "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Phases" in out and "Hotspots" in out


# ----------------------------------------------------------------------
# Trajectory phase seeding
# ----------------------------------------------------------------------
class TestTrajectoryPhases:
    def test_point_roundtrips_phases(self):
        from repro.regress import TrajectoryPoint
        phases = {"measure": {"total_s": 1.0, "self_s": 0.9, "count": 4}}
        point = TrajectoryPoint(index=0, label="seed", phases=phases)
        again = TrajectoryPoint.from_json(point.to_json())
        assert again.phases == phases

    def test_missing_phases_load_as_none(self):
        from repro.regress import TrajectoryPoint
        point = TrajectoryPoint(index=0, label="old")
        payload = json.loads(point.to_json())
        del payload["phases"]
        again = TrajectoryPoint.from_json(json.dumps(payload))
        assert again.phases is None

    def test_regress_record_writes_phase_summary(self, tmp_path):
        rc = main(["regress", "record", "--name", "seed",
                   "--benchmark", "fft", "--size", "tiny",
                   "--device", "i7-6700K", "--samples", "6",
                   "--no-execute", "--no-cache", "--jobs", "1",
                   "--baseline-dir", str(tmp_path / "baselines"),
                   "--trajectory-dir", str(tmp_path / "trajectory"),
                   "--bench-index", "0"])
        assert rc == 0
        entry = json.loads(
            (tmp_path / "trajectory" / "BENCH_0.json").read_text())
        assert entry["phases"], "BENCH entry is missing phase timings"
        assert "measure" in entry["phases"]
        assert entry["phases"]["measure"]["self_s"] > 0
        assert entry["phases"]["measure"]["count"] == 1
