"""Set-associative cache: geometry, LRU behaviour, counters."""

import numpy as np
import pytest

from repro.cache import SetAssociativeCache


class TestGeometry:
    def test_basic(self):
        c = SetAssociativeCache(32 * 1024, line_bytes=64, associativity=8)
        assert c.n_sets == 64
        assert c.lines_resident == 0

    def test_non_pow2_line_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, line_bytes=48)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(256, line_bytes=64, associativity=8)

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(3 * 64 * 8, line_bytes=64, associativity=8)

    def test_fully_associative_single_set(self):
        c = SetAssociativeCache(64 * 16, line_bytes=64, associativity=16)
        assert c.n_sets == 1


class TestHitsAndMisses:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, line_bytes=64, associativity=2)
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(63) is True   # same line
        assert c.access(64) is False  # next line

    def test_counters(self):
        c = SetAssociativeCache(1024, line_bytes=64, associativity=2)
        for a in (0, 0, 64, 0):
            c.access(a)
        assert c.stats.accesses == 4
        assert c.stats.hits == 2
        assert c.stats.misses == 2
        assert c.stats.miss_rate == 0.5
        assert c.stats.hit_rate == 0.5

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        c = SetAssociativeCache(4096, line_bytes=64, associativity=8)
        addrs = np.arange(0, 4096, 64)
        c.access_many(addrs)          # warm-up: all cold misses
        misses = c.access_many(addrs)  # resident now
        assert misses == 0

    def test_working_set_over_capacity_thrashes(self):
        c = SetAssociativeCache(4096, line_bytes=64, associativity=8)
        addrs = np.arange(0, 16384, 64)  # 4x capacity, cyclic
        c.access_many(addrs)
        misses = c.access_many(addrs)
        assert misses == len(addrs)  # LRU + cyclic sweep = all misses

    def test_access_many_returns_added_misses(self):
        c = SetAssociativeCache(1024, line_bytes=64, associativity=2)
        assert c.access_many([0, 64, 128]) == 3
        assert c.access_many([0, 64, 128]) == 0


class TestLRU:
    def test_lru_eviction_order(self):
        # one set: capacity 2 lines
        c = SetAssociativeCache(128, line_bytes=64, associativity=2)
        c.access(0)      # line A
        c.access(64)     # line B  (A is LRU)
        c.access(0)      # touch A (B is LRU)
        c.access(128)    # evicts B
        assert c.contains(0)
        assert not c.contains(64)
        assert c.contains(128)

    def test_conflict_misses_within_set(self):
        """Addresses mapping to one set thrash even under capacity."""
        c = SetAssociativeCache(8192, line_bytes=64, associativity=2)
        stride = c.n_sets * 64  # same set index every time
        c.access_many([i * stride for i in range(4)])
        misses = c.access_many([i * stride for i in range(4)])
        assert misses == 4  # only 2 ways for 4 hot lines

    def test_contains_does_not_touch_lru(self):
        c = SetAssociativeCache(128, line_bytes=64, associativity=2)
        c.access(0)
        c.access(64)
        c.contains(0)    # must NOT promote line A
        c.access(128)    # evicts A (still LRU)
        assert not c.contains(0)


class TestMaintenance:
    def test_flush_keeps_counters(self):
        c = SetAssociativeCache(1024, line_bytes=64, associativity=2)
        c.access(0)
        c.flush()
        assert c.stats.accesses == 1
        assert c.lines_resident == 0
        assert c.access(0) is False

    def test_reset_clears_everything(self):
        c = SetAssociativeCache(1024, line_bytes=64, associativity=2)
        c.access(0)
        c.reset()
        assert c.stats.accesses == 0
        assert c.lines_resident == 0
