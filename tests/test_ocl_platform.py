"""Platform enumeration and the -p/-d/-t device selection triple."""

import pytest

from repro.devices import CATALOG, Vendor
from repro.ocl import (
    DeviceNotFound,
    DeviceType,
    InvalidValue,
    find_device,
    get_platforms,
    select_device,
)


class TestPlatforms:
    def test_three_vendor_platforms(self):
        platforms = get_platforms()
        assert [p.vendor for p in platforms] == [
            Vendor.INTEL, Vendor.NVIDIA, Vendor.AMD,
        ]

    def test_all_catalog_devices_exposed(self):
        total = sum(len(p.devices) for p in get_platforms())
        assert total == len(CATALOG)

    def test_subset_machine(self):
        specs = tuple(s for s in CATALOG if s.vendor == Vendor.NVIDIA)
        platforms = get_platforms(specs)
        assert len(platforms) == 1
        assert platforms[0].vendor == Vendor.NVIDIA

    def test_get_devices_by_type(self):
        intel = get_platforms()[0]
        cpus = intel.get_devices(DeviceType.CPU)
        assert all(d.device_type == DeviceType.CPU for d in cpus)
        assert len(cpus) == 3

    def test_get_devices_no_match(self):
        nvidia = get_platforms()[1]
        with pytest.raises(DeviceNotFound):
            nvidia.get_devices(DeviceType.CPU)


class TestSelectDevice:
    def test_paper_example_cpu(self):
        # paper §4.4.5: "-p 1 -d 0 -t 0" selects an Intel CPU on the
        # paper's system; on our canonical platform order Intel is 0
        device = select_device(0, 0, 0)
        assert device.device_type == DeviceType.CPU
        assert device.name == "Xeon E5-2697 v2"

    def test_select_gpu(self):
        device = select_device(1, 1, 1)
        assert device.name == "GTX 1080"

    def test_select_mic(self):
        device = select_device(0, 0, 2)
        assert device.name == "Xeon Phi 7210"

    def test_platform_out_of_range(self):
        with pytest.raises(InvalidValue):
            select_device(9, 0, 0)

    def test_device_out_of_range(self):
        with pytest.raises(DeviceNotFound):
            select_device(0, 99, 0)

    def test_bad_type_flag(self):
        with pytest.raises(InvalidValue):
            select_device(0, 0, 7)


class TestFindDevice:
    def test_find_by_name(self):
        assert find_device("GTX 1080").name == "GTX 1080"

    def test_case_insensitive(self):
        assert find_device("gtx 1080").name == "GTX 1080"

    def test_unknown_name(self):
        with pytest.raises(DeviceNotFound):
            find_device("Voodoo 2")


class TestDeviceInfo:
    def test_get_info_table(self):
        device = find_device("i7-6700K")
        assert device.get_info("CL_DEVICE_NAME") == "i7-6700K"
        assert device.get_info("CL_DEVICE_VENDOR") == "Intel"
        assert device.get_info("CL_DEVICE_MAX_COMPUTE_UNITS") == 8
        assert device.get_info("CL_DEVICE_GLOBAL_MEM_SIZE") > 0

    def test_get_info_unknown_param(self):
        device = find_device("i7-6700K")
        with pytest.raises(InvalidValue):
            device.get_info("CL_DEVICE_FLUX_CAPACITANCE")
