"""The results board: job-history aggregation + --board CLI wiring."""

import json

import pytest

from repro.harness.cli import EXIT_OK, EXIT_USAGE, main
from repro.regress import CellPoint, Trajectory, TrajectoryPoint
from repro.service.board import (
    load_job_history,
    render_board,
    render_job_section,
    summarize_jobs,
)


def _job_log(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


def _done(benchmark="fft", size="tiny", device="dev0", cached=False,
          elapsed_s=0.25):
    return {"event": "job_done", "ts": 1_754_000_000.0,
            "benchmark": benchmark, "size": size, "device": device,
            "cached": cached, "elapsed_s": elapsed_s, "job_id": 1,
            "key": "ab" * 32, "state": "done"}


def _point(index, label="seed"):
    cell = CellPoint(benchmark="crc", size="tiny", device="dev0",
                     mean_s=1e-3, std_s=5e-5, n=50)
    return TrajectoryPoint(index=index, label=label,
                           created_unix=1_754_000_000.0 + index,
                           cells=[cell])


class TestSummarize:
    def test_counts_and_cells(self):
        records = [
            {"event": "job_submitted"},
            {"event": "job_submitted"},
            {"event": "job_deduped"},
            _done(cached=False, elapsed_s=0.2),
            _done(cached=True, elapsed_s=0.01),
            _done(benchmark="csr", cached=False, elapsed_s=0.4),
            {"event": "job_failed"},
            {"event": "job_cancelled"},
        ]
        summary = summarize_jobs(records)
        assert summary["submitted"] == 2
        assert summary["deduped"] == 1
        assert summary["done"] == 3
        assert summary["cached"] == 1
        assert summary["failed"] == 1
        assert summary["cancelled"] == 1
        fft = summary["cells"][("fft", "tiny", "dev0")]
        assert fft["jobs"] == 2 and fft["cached"] == 1

    def test_load_filters_foreign_records(self, tmp_path):
        log = _job_log(tmp_path / "svc.jsonl", [
            {"event": "sweep_start", "cells": 3},
            _done(),
            {"event": "run_complete", "benchmark": "fft"},
            {"event": "job_deduped"},
        ])
        records = load_job_history(log)
        assert [r["event"] for r in records] == ["job_done", "job_deduped"]


class TestRenderBoard:
    def test_board_composes_trajectory_and_jobs(self):
        text = render_board([_point(0)], [_done(), _done(cached=True)])
        assert text.startswith("# Benchmarking Results")
        assert "## Trajectory" in text
        assert "## Served jobs" in text
        assert "2 completed (1 from cache, 1 computed)" in text
        assert "| fft | tiny | dev0 | 2 | 1 |" in text

    def test_board_without_history(self):
        text = render_board([_point(0)], [])
        assert "No served-job history recorded yet." in text

    def test_job_section_deterministic(self):
        records = [_done(), _done(benchmark="csr"), {"event": "job_deduped"}]
        assert render_job_section(records) == render_job_section(records)


class TestBoardCli:
    def _trajectory(self, tmp_path):
        trajectory = Trajectory(tmp_path / "traj")
        trajectory.append(_point(0))
        return tmp_path / "traj"

    def test_render_board_flag(self, tmp_path, capsys):
        traj = self._trajectory(tmp_path)
        log = _job_log(tmp_path / "svc.jsonl", [_done()])
        status = main(["regress", "render", "--trajectory-dir", str(traj),
                       "--board", "--job-log", str(log)])
        out = capsys.readouterr().out
        assert status == EXIT_OK
        assert "## Served jobs" in out
        assert "1 completed" in out

    def test_board_writes_output_file(self, tmp_path):
        traj = self._trajectory(tmp_path)
        log = _job_log(tmp_path / "svc.jsonl", [_done()])
        out_path = tmp_path / "BOARD.md"
        status = main(["regress", "render", "--trajectory-dir", str(traj),
                       "--board", "--job-log", str(log),
                       "-o", str(out_path)])
        assert status == EXIT_OK
        assert "## Served jobs" in out_path.read_text()

    def test_job_log_requires_board(self, tmp_path):
        traj = self._trajectory(tmp_path)
        status = main(["regress", "render", "--trajectory-dir", str(traj),
                       "--job-log", "whatever.jsonl"])
        assert status == EXIT_USAGE

    def test_missing_job_log_is_usage_error(self, tmp_path):
        traj = self._trajectory(tmp_path)
        status = main(["regress", "render", "--trajectory-dir", str(traj),
                       "--board", "--job-log", str(tmp_path / "nope.jsonl")])
        assert status == EXIT_USAGE

    def test_plain_render_unchanged(self, tmp_path, capsys):
        traj = self._trajectory(tmp_path)
        status = main(["regress", "render", "--trajectory-dir", str(traj)])
        out = capsys.readouterr().out
        assert status == EXIT_OK
        assert "## Served jobs" not in out
