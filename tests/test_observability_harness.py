"""Harness-level observability: CLI flags, trace subcommand, metrics
exposition after sweeps (the acceptance criteria of the telemetry PR)."""

import json

import pytest

from repro.harness import run_matrix
from repro.harness.cli import main
from repro.telemetry import default_registry, get_tracer
from repro.telemetry.tracer import NOOP_SPAN

from tests.test_telemetry import parse_prometheus


class TestCliObservability:
    def test_run_writes_trace_metrics_and_log(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        prom = tmp_path / "m.prom"
        log = tmp_path / "r.jsonl"
        rc = main(["run", "kmeans", "--size", "tiny", "--device", "i7-6700K",
                   "--samples", "3", "--trace", str(trace),
                   "--metrics", str(prom), "--log-jsonl", str(log)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"wrote {trace}" in out

        doc = json.loads(trace.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices, "trace must contain duration slices"
        for s in slices:
            assert s["ts"] >= 0 and s["dur"] > 0
        # harness spans rode along as async events on their own process
        assert any(e.get("cat") == "span" for e in doc["traceEvents"])

        families = parse_prometheus(prom.read_text())
        assert "ocl_commands_enqueued_total" in families
        assert "harness_runs_total" in families

        records = [json.loads(l) for l in log.read_text().splitlines()]
        assert [r["event"] for r in records] == ["run_start", "run_complete"]

    def test_trace_slice_count_matches_recorded_events(self, tmp_path):
        """Acceptance: slice count == kernel + transfer events recorded."""
        from repro.telemetry import GLOBAL_EVENT_BUS
        counted = []
        trace = tmp_path / "t.json"
        with GLOBAL_EVENT_BUS.subscribed(lambda q, e: counted.append(e)):
            rc = main(["run", "kmeans", "--size", "tiny", "--device",
                       "i7-6700K", "--samples", "3", "--trace", str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        sliceable = [e for e in counted
                     if e.command_type.value not in ("marker", "barrier")]
        assert len(slices) == len(sliceable) > 0

    def test_trace_subcommand_replays_lsb_file(self, tmp_path, capsys):
        from repro.scibench import lsb
        from repro.scibench.recorder import REGION_KERNEL, Recorder
        rec = Recorder("fft/tiny/GTX 1080")
        rec.record(REGION_KERNEL, 1e-3, energy_j=0.5)
        rec.record(REGION_KERNEL, 2e-3)
        src = tmp_path / "lsb.fft.r0"
        lsb.save(src, rec)

        out = tmp_path / "fft.trace.json"
        assert main(["trace", str(src), "-o", str(out)]) == 0
        assert "2 slices" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert sum(1 for e in doc["traceEvents"] if e["ph"] == "X") == 2

    def test_trace_subcommand_default_output_name(self, tmp_path, capsys,
                                                  monkeypatch):
        from repro.scibench import lsb
        from repro.scibench.recorder import REGION_KERNEL, Recorder
        rec = Recorder()
        rec.record(REGION_KERNEL, 1e-3)
        src = tmp_path / "lsb.crc.r0"
        lsb.save(src, rec)
        assert main(["trace", str(src)]) == 0
        assert (tmp_path / "lsb.crc.r0.trace.json").exists()

    def test_trace_subcommand_missing_file_fails_cleanly(self, capsys):
        assert main(["trace", "/nonexistent/lsb.r0"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_figure_with_metrics_and_log(self, tmp_path, capsys):
        prom = tmp_path / "fig.prom"
        log = tmp_path / "fig.jsonl"
        rc = main(["figure", "1", "--samples", "3",
                   "--metrics", str(prom), "--log-jsonl", str(log)])
        assert rc == 0
        assert "harness_runs_total" in prom.read_text()
        events = [json.loads(l)["event"]
                  for l in log.read_text().splitlines()]
        assert "matrix_start" in events and "matrix_complete" in events
        assert events.count("run_complete") >= 1

    def test_flags_absent_leaves_globals_untouched(self, capsys):
        from repro.telemetry import GLOBAL_EVENT_BUS, get_default_runlog
        assert main(["run", "fft", "--size", "tiny", "--device", "i7-6700K",
                     "--samples", "3"]) == 0
        assert not GLOBAL_EVENT_BUS.has_subscribers
        assert get_default_runlog() is None
        assert get_tracer().span("x") is NOOP_SPAN


class TestMetricsAfterSweep:
    def test_run_matrix_populates_at_least_five_families(self):
        """Acceptance: ≥ 5 distinct metric families after a sweep, all
        parseable as Prometheus text."""
        registry = default_registry()
        registry.reset()
        run_matrix("fft", sizes=["tiny"],
                   devices=["i7-6700K", "GTX 1080"],
                   execute=True, samples=3)
        text = registry.expose()
        families = parse_prometheus(text)
        populated = {name for name, fam in families.items()
                     if fam["samples"]}
        assert len(populated) >= 5, sorted(populated)
        assert {"ocl_commands_enqueued_total", "ocl_bytes_moved_total",
                "harness_runs_total", "harness_samples_total",
                "harness_run_mean_seconds"} <= populated
        # counts are consistent: 2 groups ran, 3 samples each
        assert families["harness_runs_total"]["samples"] and (
            registry.counter("harness_runs_total").total == 2)
        assert registry.counter("harness_samples_total").total == 6

    def test_scheduler_metrics_and_exposition(self):
        from repro.dwarfs.registry import get_benchmark
        from repro.scheduling.scheduler import (
            Task,
            schedule_lpt,
            schedule_round_robin,
        )
        registry = default_registry()
        tasks = [Task("fft-tiny", get_benchmark("fft").from_size("tiny")),
                 Task("crc-tiny", get_benchmark("crc").from_size("tiny"))]
        before = registry.counter("scheduler_tasks_assigned_total").total
        a = schedule_lpt(tasks, ["i7-6700K", "GTX 1080"])
        b = schedule_round_robin(tasks, ["i7-6700K", "GTX 1080"])
        assert registry.counter(
            "scheduler_tasks_assigned_total").total == before + 4
        assert registry.gauge("scheduler_makespan_seconds").value(
            policy="lpt") == pytest.approx(a.makespan)
        assert registry.gauge("scheduler_makespan_seconds").value(
            policy="round_robin") == pytest.approx(b.makespan)
        parse_prometheus(registry.expose())  # must not raise
