"""ServiceEngine semantics: dedup, cancellation, backpressure, telemetry."""

import asyncio

import numpy as np
import pytest

from repro.harness.runner import run_matrix
from repro.harness.sweep import SweepCache
from repro.service.jobs import (
    CANCELLED,
    PENDING,
    QueueFull,
    ServiceEngine,
    expand_matrix,
)
from repro.telemetry.metrics import MetricsRegistry

DEVICE = "i7-6700K"
SAMPLES = 4


def _engine(**kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    engine = ServiceEngine(**kwargs)
    engine.runlog = None  # keep tests independent of the global runlog
    return engine


class TestDedup:
    def test_concurrent_identical_submits_compute_once(self, tmp_path):
        """The acceptance cell: N concurrent submits for one cell key
        collapse to one computation, and every subscriber's payload is
        bit-identical to the serial run_matrix answer."""
        registry = MetricsRegistry()

        async def main():
            engine = _engine(jobs=2, registry=registry,
                             cache=SweepCache(tmp_path))
            jobs, deduped = [], []
            for subscriber in (1, 2, 3):
                job, dup = engine.submit(
                    "fft", "tiny", DEVICE, subscriber,
                    samples=SAMPLES)
                jobs.append(job)
                deduped.append(dup)
            await engine.start()
            payloads = await asyncio.gather(*[j.future for j in jobs])
            await engine.stop()
            return jobs, deduped, payloads

        jobs, deduped, payloads = asyncio.run(main())
        assert deduped == [False, True, True]
        assert jobs[0] is jobs[1] is jobs[2]
        assert registry.counter("sweep_cells_computed_total").value() == 1
        assert registry.counter("service_dedup_hits_total").value() == 2
        assert registry.counter("service_requests_total").value(
            type="submit") == 3
        # all three subscribers see the same payload object/value
        assert payloads[0] == payloads[1] == payloads[2]

        serial = run_matrix("fft", sizes=["tiny"], devices=[DEVICE],
                            samples=SAMPLES, jobs=1)[0]
        np.testing.assert_array_equal(
            np.asarray(payloads[0]["times_s"]), serial.times_s)
        np.testing.assert_array_equal(
            np.asarray(payloads[0]["energies_j"]), serial.energies_j)

    def test_distinct_cells_not_deduped(self):
        async def main():
            engine = _engine(jobs=1)
            j1, d1 = engine.submit("fft", "tiny", DEVICE, 1,
                                   samples=SAMPLES)
            j2, d2 = engine.submit("fft", "small", DEVICE, 1,
                                   samples=SAMPLES)
            return j1, d1, j2, d2

        j1, d1, j2, d2 = asyncio.run(main())
        assert not d1 and not d2
        assert j1.key != j2.key

    def test_completed_job_not_joined(self, tmp_path):
        """Dedup is in-flight only: a finished job's key goes back to
        the cache, not to the dead Job object."""
        registry = MetricsRegistry()

        async def main():
            engine = _engine(jobs=1, registry=registry,
                             cache=SweepCache(tmp_path))
            job, _ = engine.submit("fft", "tiny", DEVICE, 1,
                                   samples=SAMPLES)
            await engine.start()
            await job.future
            job2, dup = engine.submit("fft", "tiny", DEVICE, 2,
                                      samples=SAMPLES)
            payload2 = await job2.future
            await engine.stop()
            return job, job2, dup

        job, job2, dup = asyncio.run(main())
        assert not dup and job2 is not job
        assert job2.cached is True
        assert registry.counter("sweep_cells_computed_total").value() == 1
        assert registry.counter("service_cache_hits_total").value() == 1


class TestCancellation:
    def test_sole_subscriber_cancel_drops_pending_job(self):
        async def main():
            engine = _engine(jobs=1)  # never started: job stays pending
            job, _ = engine.submit("fft", "tiny", DEVICE, 1,
                                   samples=SAMPLES)
            status = engine.cancel(job.job_id, 1)
            return job, status, await job.future

        job, status, payload = asyncio.run(main())
        assert status == "cancelled"
        assert job.state == CANCELLED
        assert payload is None

    def test_cancel_does_not_kill_shared_job(self):
        """One subscriber bailing must not starve the other."""
        async def main():
            engine = _engine(jobs=1)
            job, _ = engine.submit("fft", "tiny", DEVICE, 1,
                                   samples=SAMPLES)
            job2, dup = engine.submit("fft", "tiny", DEVICE, 2,
                                      samples=SAMPLES)
            assert dup and job2 is job
            status = engine.cancel(job.job_id, 1)
            assert status == "detached"
            assert job.state == PENDING
            await engine.start()
            payload = await job.future
            await engine.stop()
            return payload

        payload = asyncio.run(main())
        assert payload is not None and "times_s" in payload

    def test_cancel_running_job_completes_anyway(self, tmp_path):
        """Too late to cancel: a dispatched job always completes and
        caches (the next requester gets a hit, not a recompute)."""
        cache = SweepCache(tmp_path)

        async def main():
            engine = _engine(jobs=1, cache=cache)
            job, _ = engine.submit("fft", "tiny", DEVICE, 1,
                                   samples=SAMPLES)
            await engine.start()
            while job.state == PENDING:  # wait for dispatch
                await asyncio.sleep(0.001)
            status = engine.cancel(job.job_id, 1)
            await job.future
            await engine.stop()
            return job, status

        job, status = asyncio.run(main())
        assert status in ("running", "done")
        assert job.state == "done"
        assert len(cache) == 1  # the result landed despite the cancel

    def test_cancel_unknown_job(self):
        async def main():
            return _engine(jobs=1).cancel(999, 1)

        assert asyncio.run(main()) == "unknown"


class TestBackpressure:
    def test_queue_full_raises_with_retry_after(self):
        async def main():
            engine = _engine(jobs=1, queue_limit=2)  # not started
            engine.submit("fft", "tiny", DEVICE, 1, samples=SAMPLES)
            engine.submit("fft", "small", DEVICE, 1, samples=SAMPLES)
            with pytest.raises(QueueFull) as excinfo:
                engine.submit("fft", "large", DEVICE, 1, samples=SAMPLES)
            return engine, excinfo.value

        engine, exc = asyncio.run(main())
        assert exc.retry_after_s >= 1.0
        assert exc.depth == 2 and exc.limit == 2
        assert engine.registry.gauge("service_queue_depth").value() == 2

    def test_dedup_bypasses_the_bound(self):
        """Joining an in-flight job adds no queue entry, so it must
        succeed even when the queue is full."""
        async def main():
            engine = _engine(jobs=1, queue_limit=1)
            job, _ = engine.submit("fft", "tiny", DEVICE, 1,
                                   samples=SAMPLES)
            job2, dup = engine.submit("fft", "tiny", DEVICE, 2,
                                      samples=SAMPLES)
            return job, job2, dup

        job, job2, dup = asyncio.run(main())
        assert dup and job2 is job


class TestValidation:
    def test_unknown_benchmark_size_device(self):
        async def main():
            engine = _engine(jobs=1)
            with pytest.raises(ValueError, match="unknown benchmark"):
                engine.submit("nope", "tiny", DEVICE, 1)
            with pytest.raises(ValueError, match="unknown size"):
                engine.submit("fft", "nope", DEVICE, 1)
            with pytest.raises(KeyError):
                engine.submit("fft", "tiny", "not-a-device", 1)

        asyncio.run(main())


class TestExpandMatrix:
    def test_explicit_cells(self):
        cells = expand_matrix(["fft"], ["tiny", "small"], [DEVICE])
        assert cells == [("fft", "tiny", DEVICE), ("fft", "small", DEVICE)]

    def test_defaults_cover_everything(self):
        from repro.devices.catalog import device_names
        from repro.dwarfs.base import SIZES
        from repro.dwarfs.registry import BENCHMARKS

        cells = expand_matrix()
        assert len(cells) == (len(BENCHMARKS) * len(SIZES)
                              * len(device_names()))


class TestServedTraceCoherence:
    def test_served_matrix_yields_one_coherent_trace(self):
        """The trace acceptance test: a tiny matrix served with two
        workers produces ONE trace — every span shares the parent's
        trace id, worker spans are grafted under completion-time
        ``service_job`` spans, and >=90% of the extent is attributed
        to named phases."""
        from repro.telemetry.profile import phase_summary
        from repro.telemetry.tracer import Tracer, set_tracer

        tracer = Tracer(enabled=True)
        previous = set_tracer(tracer)
        try:
            async def main():
                engine = _engine(jobs=2)
                cells = [("fft", "tiny"), ("csr", "tiny"),
                         ("dwt", "tiny"), ("gem", "tiny")]
                jobs = [
                    engine.submit(b, s, DEVICE, 1, samples=SAMPLES)[0]
                    for b, s in cells
                ]
                await engine.start()
                await asyncio.gather(*[j.future for j in jobs])
                await engine.stop()

            asyncio.run(main())
        finally:
            set_tracer(previous)

        spans = tracer.to_dicts()
        assert spans
        assert {s["trace_id"] for s in spans} == {tracer.trace_id}
        job_spans = [s for s in spans if s["name"] == "service_job"]
        assert len(job_spans) == 4
        worker_pids = {
            s["attributes"].get("worker_pid") for s in spans
            if "worker_pid" in s.get("attributes", {})
        }
        assert worker_pids, "no worker spans were grafted"
        job_ids = {s["span_id"] for s in job_spans}
        assert any(s.get("parent_id") in job_ids for s in spans), (
            "worker spans are not parented under service_job spans")
        summary = phase_summary(spans)
        assert summary.attributed_fraction >= 0.9

    def test_service_metrics_exposed(self):
        """The instrument set the ISSUE names, in one exposition."""
        registry = MetricsRegistry()

        async def main():
            engine = _engine(jobs=1, registry=registry)
            job, _ = engine.submit("fft", "tiny", DEVICE, 1,
                                   samples=SAMPLES)
            await engine.start()
            await job.future
            await engine.stop()

        asyncio.run(main())
        text = registry.expose()
        for name in ("service_queue_depth", "service_jobs_inflight",
                     "service_requests_total",
                     "service_dedup_hits_total",
                     "service_cell_latency_seconds"):
            assert name in text, f"{name} missing from exposition"
        assert registry.gauge("service_jobs_inflight").value() == 0.0


class TestGaugeTrackInprogress:
    def test_track_inprogress_balanced(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        with gauge.track_inprogress():
            assert gauge.value() == 1.0
            with gauge.track_inprogress():
                assert gauge.value() == 2.0
        assert gauge.value() == 0.0

    def test_track_inprogress_survives_exceptions(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        with pytest.raises(RuntimeError):
            with gauge.track_inprogress(kind="x"):
                raise RuntimeError("boom")
        assert gauge.value(kind="x") == 0.0

    def test_gauge_snapshot_merge_parity(self):
        """A gauge round-tripped through snapshot/merge_snapshot is
        value-identical, and merge is last-writer-wins."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(7.0)
        a.gauge("depth").set(3.0, queue="svc")
        b.gauge("depth").set(99.0)
        b.merge_snapshot(a.snapshot())
        assert b.gauge("depth").value() == 7.0  # last writer wins
        assert b.gauge("depth").value(queue="svc") == 3.0
        assert a.snapshot()["depth"] == b.snapshot()["depth"]
