"""Miscellaneous semantics: flags, enums, events, edge behaviours."""

import numpy as np
import pytest

from repro import ocl
from repro.ocl.types import (
    CommandExecutionStatus,
    CommandType,
    DeviceType,
    MemFlags,
    QueueProperties,
)
from repro.scheduling import Assignment
from repro.scibench.recorder import Recorder


class TestTypeSemantics:
    def test_device_type_all_covers_everything(self):
        for member in (DeviceType.CPU, DeviceType.GPU, DeviceType.ACCELERATOR,
                       DeviceType.CUSTOM):
            assert member & DeviceType.ALL

    def test_device_type_default_not_in_all(self):
        assert not (DeviceType.DEFAULT & DeviceType.ALL)

    def test_mem_flags_combine(self):
        flags = MemFlags.READ_ONLY | MemFlags.COPY_HOST_PTR
        assert MemFlags.READ_ONLY in flags
        assert MemFlags.WRITE_ONLY not in flags

    def test_queue_properties_none_is_falsy(self):
        assert not QueueProperties.NONE
        assert QueueProperties.PROFILING_ENABLE

    def test_complete_status_is_zero(self):
        """OpenCL defines CL_COMPLETE == 0; code relies on ordering."""
        assert CommandExecutionStatus.COMPLETE == 0
        assert (CommandExecutionStatus.QUEUED
                > CommandExecutionStatus.SUBMITTED
                > CommandExecutionStatus.RUNNING
                > CommandExecutionStatus.COMPLETE)


class TestEventEdgeCases:
    def test_incomplete_event_wait_raises(self):
        event = ocl.Event(command_type=CommandType.MARKER,
                          status=CommandExecutionStatus.QUEUED)
        with pytest.raises(RuntimeError, match="never completed"):
            event.wait()

    def test_missing_timestamp_raises(self):
        event = ocl.Event(command_type=CommandType.MARKER,
                          status=CommandExecutionStatus.COMPLETE)
        from repro.ocl import ProfilingInfo, ProfilingInfoNotAvailable
        with pytest.raises(ProfilingInfoNotAvailable):
            event.get_profiling_info(ProfilingInfo.START)

    def test_command_types_recorded(self, cpu_context, cpu_queue):
        buf = cpu_context.create_buffer(size=64)
        cpu_queue.enqueue_fill_buffer(buf, 0)
        src = cpu_context.create_buffer(size=64)
        cpu_queue.enqueue_copy_buffer(src, buf)
        cpu_queue.enqueue_barrier()
        kinds = [e.command_type for e in cpu_queue.events]
        assert kinds == [CommandType.FILL_BUFFER, CommandType.COPY_BUFFER,
                         CommandType.BARRIER]


class TestSchedulerEdgeCases:
    def test_empty_assignment(self):
        a = Assignment()
        assert a.makespan == 0.0
        assert a.total_device_seconds == 0.0
        assert a.rows() == []

    def test_load_accumulates(self):
        a = Assignment()
        a.add("dev", "t1", 0.5)
        a.add("dev", "t2", 0.25)
        assert a.load("dev") == pytest.approx(0.75)
        assert a.load("other") == 0.0

    def test_empty_task_list_schedules_nothing(self):
        from repro.scheduling import schedule_lpt
        a = schedule_lpt([], ["i7-6700K"])
        assert a.makespan == 0.0


class TestRecorderRepr:
    def test_repr_counts_regions(self):
        rec = Recorder("x")
        rec.record("kernel", 1.0)
        rec.record("kernel", 2.0)
        rec.record("transfer", 0.1)
        text = repr(rec)
        assert "kernel: 2" in text and "transfer: 1" in text

    def test_empty_repr(self):
        assert "empty" in repr(Recorder())


class TestBufferReprAndViews:
    def test_buffer_repr_states(self, cpu_context):
        buf = cpu_context.create_buffer(size=64)
        assert "64 bytes" in repr(buf)
        buf.release()
        assert "released" in repr(buf)

    def test_subbuffer_repr(self, cpu_context):
        parent = cpu_context.create_buffer(size=2048)
        sub = parent.create_sub_buffer(1024, 512)
        assert "[1024, 1536)" in repr(sub)

    def test_view_roundtrip_dtype(self, cpu_context):
        buf = cpu_context.buffer_like(np.arange(6, dtype=np.int64))
        v = buf.view(np.int64, shape=(2, 3))
        assert v[1, 2] == 5


class TestContextRepr:
    def test_context_repr(self, cpu_context):
        cpu_context.create_buffer(size=100)
        text = repr(cpu_context)
        assert "1 buffers" in text and "100 bytes" in text
