"""The parallel sweep engine: determinism, caching, resume, telemetry.

Acceptance pins for ISSUE 2's tentpole:

* a parallel sweep produces samples **bit-identical** to a serial one
  (the process-stable ``cell_seed`` derivation);
* the content-addressed cache turns a repeated sweep into 0 computed
  cells, misses on any config/model change, and survives corruption;
* ``--resume`` (cache reuse) continues an interrupted matrix, only
  computing the missing cells — counter-verified.
"""

import json

import numpy as np
import pytest

from repro.harness.runner import RunConfig, cell_seed, run_benchmark, run_matrix
from repro.harness import sweep as crossover_sweep_function  # legacy name
from repro.harness.sweep import (
    CACHE_FORMAT,
    SweepCache,
    default_cache_dir,
    result_from_payload,
    result_to_payload,
    run_sweep,
)
from repro.scheduling import sweep_execution_order
from repro.telemetry.metrics import default_registry
from repro.telemetry.runlog import memory_runlog


def _configs(samples=6, execute=False):
    return [
        RunConfig("fft", "tiny", "i7-6700K", samples=samples,
                  execute=execute, validate=execute),
        RunConfig("fft", "tiny", "GTX 1080", samples=samples,
                  execute=execute, validate=execute),
        RunConfig("crc", "tiny", "R9 290X", samples=samples,
                  execute=execute, validate=execute),
        RunConfig("srad", "small", "K20m", samples=samples,
                  execute=execute, validate=execute),
    ]


class TestCellSeed:
    def test_stable_value(self):
        """The derivation is frozen: same inputs, same 64-bit seed,
        in every process regardless of PYTHONHASHSEED."""
        assert cell_seed(12345, "fft", "tiny", "GTX 1080") == \
            cell_seed(12345, "fft", "tiny", "GTX 1080")

    def test_distinct_per_coordinate(self):
        base = cell_seed(1, "fft", "tiny", "GTX 1080")
        assert cell_seed(2, "fft", "tiny", "GTX 1080") != base
        assert cell_seed(1, "crc", "tiny", "GTX 1080") != base
        assert cell_seed(1, "fft", "small", "GTX 1080") != base
        assert cell_seed(1, "fft", "tiny", "K20m") != base


class TestParallelDeterminism:
    def test_parallel_equals_serial(self):
        """Same seed => identical samples, any number of workers."""
        configs = _configs()
        serial = run_sweep(configs, jobs=1)
        parallel = run_sweep(configs, jobs=2)
        assert serial.computed == parallel.computed == len(configs)
        for a, b in zip(serial.results, parallel.results):
            np.testing.assert_array_equal(a.times_s, b.times_s)
            np.testing.assert_array_equal(a.energies_j, b.energies_j)
            assert a.loop_iterations == b.loop_iterations
            assert a.nominal_s == b.nominal_s

    def test_results_in_input_order(self):
        configs = _configs()
        outcome = run_sweep(configs, jobs=2)
        got = [(r.benchmark, r.size, r.device) for r in outcome.results]
        assert got == [(c.benchmark, c.size, c.device) for c in configs]

    def test_parallel_matches_direct_run_benchmark(self):
        config = RunConfig("csr", "tiny", "K40m", samples=5)
        direct = run_benchmark(config)
        pooled = run_sweep([config], jobs=2).results[0]
        np.testing.assert_array_equal(direct.times_s, pooled.times_s)

    def test_worker_logs_merged_into_parent(self):
        runlog, buffer = memory_runlog()
        run_sweep(_configs()[:2], jobs=2, runlog=runlog)
        records = [json.loads(l) for l in buffer.getvalue().splitlines()]
        events = [r["event"] for r in records]
        assert events[0] == "sweep_start" and events[-1] == "sweep_complete"
        completes = [r for r in records if r["event"] == "run_complete"]
        assert len(completes) == 2
        assert all("worker_pid" in r for r in completes)

    def test_worker_metrics_merged_into_parent(self):
        registry = default_registry()
        registry.reset()
        run_sweep(_configs()[:2], jobs=2)
        assert registry.counter("harness_runs_total").total == 2
        assert registry.counter("harness_samples_total").total == 12


class TestSweepCache:
    def test_miss_then_hit(self, tmp_path):
        cache = SweepCache(tmp_path)
        registry = default_registry()
        registry.reset()
        configs = _configs()
        first = run_sweep(configs, jobs=1, cache=cache)
        assert (first.computed, first.cached) == (4, 0)
        assert len(cache) == 4
        second = run_sweep(configs, jobs=1, cache=cache)
        assert (second.computed, second.cached) == (0, 4)
        assert registry.counter("sweep_cells_computed_total").total == 4
        assert registry.counter("sweep_cells_cached_total").total == 4
        for a, b in zip(first.results, second.results):
            np.testing.assert_array_equal(a.times_s, b.times_s)
            np.testing.assert_array_equal(a.energies_j, b.energies_j)

    def test_key_sensitivity(self, tmp_path):
        """Any config coordinate change re-addresses the cell."""
        cache = SweepCache(tmp_path)
        base = RunConfig("fft", "tiny", "i7-6700K", samples=5)
        key = cache.key(base)
        assert cache.key(RunConfig("fft", "tiny", "i7-6700K", samples=6)) != key
        assert cache.key(RunConfig("fft", "small", "i7-6700K", samples=5)) != key
        assert cache.key(RunConfig("fft", "tiny", "GTX 1080", samples=5)) != key
        variant = RunConfig("fft", "tiny", "i7-6700K", samples=5, seed=7)
        assert cache.key(variant) != key
        # canonicalisation: device name case does not split the cache
        assert cache.key(RunConfig("fft", "tiny", "I7-6700K", samples=5)) == key

    def test_model_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path)
        configs = _configs()[:2]
        run_sweep(configs, jobs=1, cache=cache)
        import sys
        sweep_module = sys.modules["repro.harness.sweep"]
        monkeypatch.setattr(sweep_module, "MODEL_VERSION", "999-test")
        outcome = run_sweep(configs, jobs=1, cache=cache)
        assert (outcome.computed, outcome.cached) == (2, 0)

    def test_corrupt_entry_is_a_miss(self, tmp_path, caplog):
        cache = SweepCache(tmp_path)
        config = RunConfig("fft", "tiny", "i7-6700K", samples=4)
        run_sweep([config], jobs=1, cache=cache)
        key = cache.key(config)
        cache.path_for(key).write_text("{ truncated garbage")
        with caplog.at_level("WARNING", logger="repro.harness.sweep"):
            assert cache.get(key) is None
        assert any("miss" in r.message for r in caplog.records)
        outcome = run_sweep([config], jobs=1, cache=cache)
        assert outcome.computed == 1  # recomputed and healed
        assert cache.get(key) is not None

    def test_torn_npz_entry_is_a_logged_miss(self, tmp_path, caplog):
        """A partially-written npz (killed mid-write, full disk) must
        read as a miss with a warning, never crash the sweep."""
        cache = SweepCache(tmp_path)
        config = RunConfig("fft", "tiny", "i7-6700K", samples=4)
        run_sweep([config], jobs=1, cache=cache)
        key = cache.key(config)
        path = cache.path_for(key)
        blob = path.read_bytes()
        assert blob[:2] == b"PK" and path.suffix == ".npz"
        path.write_bytes(blob[: len(blob) // 2])  # torn: half the zip
        with caplog.at_level("WARNING", logger="repro.harness.sweep"):
            assert cache.get(key) is None
        assert any("corrupt" in r.message for r in caplog.records)
        outcome = run_sweep([config], jobs=1, cache=cache)
        assert outcome.computed == 1  # recomputed and healed
        assert cache.get(key) is not None

    def test_refresh_recomputes_and_overwrites(self, tmp_path):
        cache = SweepCache(tmp_path)
        configs = _configs()[:2]
        run_sweep(configs, jobs=1, cache=cache)
        outcome = run_sweep(configs, jobs=1, cache=cache, refresh=True)
        assert (outcome.computed, outcome.cached) == (2, 0)
        assert len(cache) == 2

    def test_format_stamp_checked(self, tmp_path):
        from repro.harness.sweep import (
            _decode_result_entry,
            _encode_result_entry,
        )
        cache = SweepCache(tmp_path)
        config = RunConfig("fft", "tiny", "i7-6700K", samples=4)
        run_sweep([config], jobs=1, cache=cache)
        key = cache.key(config)
        entry = _decode_result_entry(cache.path_for(key).read_bytes())
        assert entry["format"] == CACHE_FORMAT
        entry["format"] = CACHE_FORMAT + 1
        cache.path_for(key).write_bytes(_encode_result_entry(entry))
        assert cache.get(key) is None

    def test_legacy_json_layouts_served(self, tmp_path):
        """Entries written by the pre-npz layouts — sharded and flat
        JSON — are still served transparently."""
        import dataclasses

        from repro.harness.sweep import LEGACY_CACHE_FORMAT, MODEL_VERSION

        cache = SweepCache(tmp_path)
        configs = _configs()[:2]
        fresh = run_sweep(configs, jobs=1)
        for layout, (config, result) in zip(
                ("sharded", "flat"), zip(configs, fresh.results)):
            key = cache.key(config)
            entry = json.dumps({
                "format": LEGACY_CACHE_FORMAT,
                "model_version": MODEL_VERSION,
                "key": key,
                "config": dataclasses.asdict(config),
                "created_unix": 0.0,
                "result": result_to_payload(result),
            }, default=str)
            if layout == "sharded":
                path = tmp_path / key[:2] / f"{key}.json"
                path.parent.mkdir(parents=True, exist_ok=True)
            else:
                path = tmp_path / f"{key}.json"
            path.write_text(entry)
        assert len(cache) == 2
        outcome = run_sweep(configs, jobs=1, cache=cache)
        assert (outcome.computed, outcome.cached) == (0, 2)
        for a, b in zip(fresh.results, outcome.results):
            np.testing.assert_array_equal(a.times_s, b.times_s)
            np.testing.assert_array_equal(a.energies_j, b.energies_j)

    def test_entries_land_in_sharded_npz_layout(self, tmp_path):
        cache = SweepCache(tmp_path)
        config = RunConfig("fft", "tiny", "i7-6700K", samples=4)
        run_sweep([config], jobs=1, cache=cache)
        key = cache.key(config)
        path = cache.path_for(key)
        assert path == tmp_path / key[:2] / f"{key}.npz"
        assert path.exists()

    def test_clear(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(_configs()[:2], jobs=1, cache=cache)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestResume:
    def test_resume_after_simulated_crash(self, tmp_path):
        """A sweep killed mid-matrix resumes: only missing cells run."""
        cache = SweepCache(tmp_path)
        configs = _configs()
        # the "crashed" first invocation persisted 2 of 4 cells
        interrupted = run_sweep(configs[:2], jobs=1, cache=cache)
        assert interrupted.computed == 2
        registry = default_registry()
        registry.reset()
        resumed = run_sweep(configs, jobs=1, cache=cache)
        assert (resumed.computed, resumed.cached) == (2, 2)
        assert registry.counter("sweep_cells_computed_total").total == 2
        assert registry.counter("sweep_cells_cached_total").total == 2
        # and the restored cells equal what a fresh serial run produces
        fresh = run_sweep(configs, jobs=1)
        for a, b in zip(resumed.results, fresh.results):
            np.testing.assert_array_equal(a.times_s, b.times_s)

    def test_cached_cells_logged(self, tmp_path):
        cache = SweepCache(tmp_path)
        configs = _configs()[:2]
        run_sweep(configs, jobs=1, cache=cache)
        runlog, buffer = memory_runlog()
        run_sweep(configs, jobs=1, cache=cache, runlog=runlog)
        events = [json.loads(l)["event"]
                  for l in buffer.getvalue().splitlines()]
        assert events.count("cell_cached") == 2
        assert events.count("run_complete") == 0


class TestSerialization:
    def test_result_payload_roundtrip(self):
        result = run_benchmark(RunConfig("fft", "tiny", "i7-6700K", samples=5))
        back = result_from_payload(
            json.loads(json.dumps(result_to_payload(result))))
        np.testing.assert_array_equal(result.times_s, back.times_s)
        np.testing.assert_array_equal(result.energies_j, back.energies_j)
        assert back.validated == result.validated
        assert back.breakdown.bound == result.breakdown.bound
        assert back.breakdown.total_s == pytest.approx(result.breakdown.total_s)
        assert len(back.recorder) == len(result.recorder)
        assert back.recorder.regions == result.recorder.regions
        assert back.footprint_bytes == result.footprint_bytes

    def test_recorder_tags_survive(self):
        result = run_benchmark(RunConfig("fft", "tiny", "i7-6700K", samples=3))
        back = result_from_payload(result_to_payload(result))
        assert back.recorder.to_csv() == result.recorder.to_csv()

    def test_none_recorder_roundtrips(self):
        result = run_benchmark(RunConfig("fft", "tiny", "i7-6700K", samples=3))
        result.recorder = None
        assert result_from_payload(result_to_payload(result)).recorder is None


class TestExecutionOrder:
    def test_lpt_order_longest_first(self):
        configs = [
            RunConfig("fft", "tiny", "GTX 1080"),
            RunConfig("fft", "large", "GTX 1080"),
            RunConfig("fft", "medium", "GTX 1080"),
        ]
        order = sweep_execution_order(configs)
        assert order[0] == 1  # large is the most expensive cell
        assert order[-1] == 0

    def test_deterministic_and_complete(self):
        configs = _configs()
        order = sweep_execution_order(configs)
        assert sorted(order) == list(range(len(configs)))
        assert order == sweep_execution_order(configs)


class TestMatrixIntegration:
    def test_run_matrix_cache_and_jobs_passthrough(self, tmp_path):
        cache = SweepCache(tmp_path)
        a = run_matrix("fft", ["tiny"], ["i7-6700K", "GTX 1080"],
                       samples=4, cache=cache)
        b = run_matrix("fft", ["tiny"], ["i7-6700K", "GTX 1080"],
                       samples=4, cache=cache, jobs=2)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.times_s, y.times_s)
        assert len(cache) == 2

    def test_legacy_sweep_name_still_crossover(self):
        """`from repro.harness import sweep` keeps meaning the
        crossover sweep function, not the new engine module."""
        assert callable(crossover_sweep_function)
        assert crossover_sweep_function.__module__ == \
            "repro.harness.crossover"


class TestCLI:
    def test_run_all_sweeps_and_summarises(self, tmp_path, capsys):
        from repro.harness.cli import main
        rc = main(["run", "all", "--size", "tiny", "--samples", "3",
                   "--device", "i7-6700K", "--no-execute",
                   "--jobs", "1", "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fastest device per benchmark x size" in out
        assert "computed" in out and "cached" in out
        # second invocation completes from cache alone
        rc = main(["run", "all", "--size", "tiny", "--samples", "3",
                   "--device", "i7-6700K", "--no-execute",
                   "--jobs", "1", "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 computed" in out

    def test_run_single_with_cache_dir(self, tmp_path, capsys):
        from repro.harness.cli import main
        argv = ["run", "fft", "--size", "tiny", "--device", "i7-6700K",
                "--samples", "3", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "1 computed" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "1 cached" in second
        # the printed measurement is identical, cache or not
        assert first.splitlines()[:8] == second.splitlines()[:8]

    def test_resume_contradicts_no_cache(self, capsys):
        from repro.harness.cli import EXIT_USAGE, main
        rc = main(["run", "all", "--size", "tiny", "--resume", "--no-cache"])
        assert rc == EXIT_USAGE
        assert "--resume" in capsys.readouterr().err

    def test_figure_with_cache(self, tmp_path, capsys):
        from repro.harness.cli import main
        argv = ["figure", "5", "--samples", "3", "--jobs", "1",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        registry = default_registry()
        before = registry.counter("sweep_cells_computed_total").total
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert registry.counter("sweep_cells_computed_total").total == before
        assert first == second

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
