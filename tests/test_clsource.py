"""OpenCL C sources: parser correctness and host/kernel consistency."""

import pytest

from repro import ocl
from repro.dwarfs import create
from repro.dwarfs.kernels_cl import SOURCES
from repro.dwarfs.registry import BENCHMARKS, EXTENSIONS
from repro.ocl import BuildProgramFailure, InvalidKernelArgs, KernelSource, Program
from repro.ocl.clsource import (
    CLKernelSignature,
    CLSourceError,
    check_arguments,
    parse_kernels,
)


class TestParser:
    def test_simple_kernel(self):
        sigs = parse_kernels(
            "__kernel void f(__global float *x, int n) { }")
        assert set(sigs) == {"f"}
        sig = sigs["f"]
        assert sig.arity == 2
        assert sig.params[0].name == "x"
        assert sig.params[0].is_pointer
        assert sig.params[0].address_space == "global"
        assert sig.params[1].name == "n"
        assert not sig.params[1].is_pointer

    def test_multiple_kernels(self):
        src = ("__kernel void a(int x) {}\n"
               "__kernel void b(__global int *y, float z) {}\n")
        sigs = parse_kernels(src)
        assert sigs["a"].arity == 1
        assert sigs["b"].arity == 2

    def test_qualifiers_stripped(self):
        sigs = parse_kernels(
            "__kernel void f(__global const float * restrict x,"
            " __constant uint *t, __local float *scratch) {}")
        p = sigs["f"].params
        assert p[0].address_space == "global"
        assert p[1].address_space == "constant"
        assert p[2].address_space == "local"
        assert [q.is_buffer for q in p] == [True, True, False]

    def test_comments_ignored(self):
        src = ("/* __kernel void fake(int a, int b, int c) */\n"
               "// __kernel void also_fake(int q)\n"
               "__kernel void real(int x) {}\n")
        assert set(parse_kernels(src)) == {"real"}

    def test_vector_types(self):
        sigs = parse_kernels(
            "__kernel void f(__global float2 *src, __global float4 *v) {}")
        assert sigs["f"].params[0].type_name == "float2"

    def test_empty_params(self):
        assert parse_kernels("__kernel void f() {}")["f"].arity == 0
        assert parse_kernels("__kernel void f(void) {}")["f"].arity == 0

    def test_no_kernels_rejected(self):
        with pytest.raises(CLSourceError):
            parse_kernels("void helper(int x) {}")

    def test_duplicate_kernel_rejected(self):
        with pytest.raises(CLSourceError):
            parse_kernels("__kernel void f(int a) {}\n"
                          "__kernel void f(int b) {}")

    def test_check_arguments(self):
        sig = CLKernelSignature("f", params=())
        check_arguments(sig, 0)
        with pytest.raises(CLSourceError):
            check_arguments(sig, 1)


class TestSourceCatalog:
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_every_source_parses(self, name):
        sigs = parse_kernels(SOURCES[name])
        assert sigs  # at least one kernel per benchmark

    def test_catalog_covers_all_benchmarks(self):
        assert set(SOURCES) == set(BENCHMARKS) | set(EXTENSIONS)


class TestHostKernelConsistency:
    @pytest.mark.parametrize("name", sorted(set(BENCHMARKS) | set(EXTENSIONS)))
    def test_enqueued_arity_matches_cl_signature(self, name, cpu_context,
                                                 cpu_queue):
        """Run each benchmark and cross-check every kernel launch's
        bound-argument count against the parsed __kernel signature."""
        signatures = parse_kernels(SOURCES[name])
        bench = create(name, "tiny")
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        seen = set()
        for e in events:
            kernel_name = e.info["kernel"]
            # profile callables may rename (e.g. dwt_pass); map via source
            if kernel_name in signatures:
                assert e.info["n_args"] == signatures[kernel_name].arity, (
                    name, kernel_name)
                seen.add(kernel_name)
        assert seen  # at least one kernel cross-checked
        bench.teardown()


class TestRuntimeEnforcement:
    def test_build_rejects_missing_kernel(self, cpu_context):
        with pytest.raises(BuildProgramFailure, match="no matching __kernel"):
            Program(cpu_context, [KernelSource(
                "nope", lambda nd: None,
                cl_source="__kernel void other(int x) {}")]).build()

    def test_build_rejects_bad_source(self, cpu_context):
        with pytest.raises(BuildProgramFailure, match="bad OpenCL C"):
            Program(cpu_context, [KernelSource(
                "f", lambda nd: None, cl_source="int not_a_kernel;")]).build()

    def test_enqueue_rejects_wrong_arity(self, cpu_context, cpu_queue):
        program = Program(cpu_context, [KernelSource(
            "f", lambda nd, a, b: None,
            cl_source="__kernel void f(__global float *x, int n) {}",
        )]).build()
        kernel = program.create_kernel("f")
        kernel.set_args(1, 2, 3)  # three args; signature says two
        with pytest.raises(InvalidKernelArgs, match="takes 2 arguments"):
            cpu_queue.enqueue_nd_range_kernel(kernel, (4,))

    def test_correct_arity_passes(self, cpu_context, cpu_queue):
        program = Program(cpu_context, [KernelSource(
            "f", lambda nd, a, b: None,
            cl_source="__kernel void f(__global float *x, int n) {}",
        )]).build()
        kernel = program.create_kernel("f").set_args(1, 2)
        event = cpu_queue.enqueue_nd_range_kernel(kernel, (4,))
        assert event.info["n_args"] == 2


class TestParserEdgeCases:
    def test_preprocessor_lines_stripped(self):
        src = ("#define WIDTH 64\n"
               "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n"
               "#include \"common.h\"\n"
               "__kernel void f(__global float *x, int n) { }\n")
        sigs = parse_kernels(src)
        assert set(sigs) == {"f"}
        assert sigs["f"].arity == 2

    def test_macro_body_does_not_confuse_parser(self):
        src = ("#define HELPER(a, b) ((a) + (b))\n"
               "__kernel void f(int n) { }\n")
        sigs = parse_kernels(src)
        assert sigs["f"].arity == 1
        assert sigs["f"].params[0].name == "n"

    def test_vector_pointer_types(self):
        sigs = parse_kernels(
            "__kernel void f(__global float4 *v, __global int2 *pairs) {}")
        v, pairs = sigs["f"].params
        assert v.type_name == "float4" and v.is_pointer
        assert pairs.type_name == "int2" and pairs.is_pointer
        assert v.address_space == "global"

    def test_multiline_parameter_list(self):
        src = ("__kernel void f(__global const float *a,\n"
               "                __global float *b,\n"
               "                int rows,\n"
               "                int cols)\n"
               "{ }\n")
        sig = parse_kernels(src)["f"]
        assert [p.name for p in sig.params] == ["a", "b", "rows", "cols"]

    def test_comments_inside_signature(self):
        src = ("__kernel void f(__global float *x, /* data */\n"
               "                int n /* length */) { }")
        sig = parse_kernels(src)["f"]
        assert [p.name for p in sig.params] == ["x", "n"]

    def test_line_comment_between_params(self):
        src = ("__kernel void f(__global float *x, // the data\n"
               "                int n) { }")
        sig = parse_kernels(src)["f"]
        assert sig.arity == 2

    def test_multiword_scalar_types(self):
        sig = parse_kernels(
            "__kernel void f(unsigned int n, long m) { }")["f"]
        assert sig.params[0].type_name == "unsigned int"
        assert sig.params[1].type_name == "long"


class TestScalarKind:
    def test_families(self):
        from repro.ocl.clsource import scalar_kind
        assert scalar_kind("int") == "int"
        assert scalar_kind("unsigned int") == "int"
        assert scalar_kind("size_t") == "int"
        assert scalar_kind("float") == "float"
        assert scalar_kind("double") == "float"
        assert scalar_kind("float4") == "other"
        assert scalar_kind("my_struct_t") == "other"


class TestKernelBodies:
    def test_bodies_extracted(self):
        from repro.ocl.clsource import kernel_bodies
        src = ("__kernel void a(int n) { int x = n; }\n"
               "__kernel void b(int m) { if (m) { m += 1; } }\n")
        bodies = kernel_bodies(src)
        assert "int x = n;" in bodies["a"]
        assert "m += 1;" in bodies["b"]  # nested braces matched

    def test_comments_blanked_in_bodies(self):
        from repro.ocl.clsource import kernel_bodies
        src = "__kernel void a(int n) { /* uses n? no */ }\n"
        assert "n" not in kernel_bodies(src)["a"].replace("int n", "")

    def test_suppressions_parsed(self):
        from repro.ocl.clsource import kernel_suppressions
        src = ("__kernel void a(int n) {\n"
               "  // repro-lint: allow(unused-param: n)\n"
               "  // repro-lint: allow(barrier-divergence)\n"
               "}\n"
               "__kernel void b(int m) { }\n")
        allows = kernel_suppressions(src)
        assert allows["a"] == {("unused-param", "n"), ("barrier-divergence", None)}
        assert "b" not in allows
