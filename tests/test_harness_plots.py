"""HTML/SVG figure rendering: structure, geometry and accessibility."""

import re

import pytest

from repro.harness import figure3, figure5, render_figure_html, save_figure_html
from repro.harness.plots import (
    CLASS_SLOTS,
    DARK_COLORS,
    LIGHT_COLORS,
    _fmt,
    _ticks,
)


@pytest.fixture(scope="module")
def fig():
    return figure3("srad", samples=10)


@pytest.fixture(scope="module")
def html_text(fig):
    return render_figure_html(fig)


class TestTicks:
    def test_linear_ticks_cover_range(self):
        ticks = _ticks(0.3, 8.7, log_scale=False)
        assert ticks[0] <= 0.3
        assert ticks[-1] >= 8.7
        assert len(ticks) >= 4

    def test_linear_ticks_clean_steps(self):
        steps = {round(b - a, 10) for a, b in zip(*[iter_ for iter_ in
                 (_ticks(0, 100, False)[:-1], _ticks(0, 100, False)[1:])])}
        assert len(steps) == 1  # uniform step

    def test_log_ticks_are_decades(self):
        ticks = _ticks(0.02, 150.0, log_scale=True)
        assert all(abs(t - 10 ** round(__import__("math").log10(t))) < 1e-9
                   for t in ticks)

    def test_degenerate_range(self):
        assert len(_ticks(5.0, 5.0, False)) >= 1

    def test_fmt(self):
        assert _fmt(0) == "0"
        assert _fmt(1500) == "1,500"
        assert _fmt(0.00123) == "0.00123"


class TestDocument:
    def test_standalone_html(self, html_text):
        assert html_text.startswith("<!doctype html>")
        assert "<svg" in html_text
        assert "</html>" in html_text

    def test_one_panel_per_size(self, html_text):
        assert html_text.count("<svg") == 4  # tiny/small/medium/large

    def test_legend_present_with_all_classes(self, html_text, fig):
        classes = {s["class"] for p in fig.panels.values() for s in p.values()}
        for name in classes:
            assert f"</span>{name}</span>" in html_text

    def test_table_view_ships(self, html_text):
        """Relief rule: two light categorical steps are sub-3:1, so the
        table view is mandatory, not optional."""
        assert "<table>" in html_text
        assert html_text.count("<tr>") >= 1 + 4 * 14  # header + rows

    def test_device_rows_direct_labeled(self, html_text):
        for device in ("i7-6700K", "GTX 1080", "R9 Fury X"):
            assert device in html_text

    def test_native_tooltips(self, html_text):
        assert html_text.count("<title>") >= 4 * 14
        assert "median" in html_text

    def test_dark_mode_selected_not_flipped(self, html_text):
        assert "prefers-color-scheme: dark" in html_text
        for hex_code in DARK_COLORS.values():
            assert hex_code in html_text

    def test_text_uses_text_tokens_not_series_color(self, html_text):
        # axis/tick text styled via CSS vars, never a series hex directly
        assert 'class="tick-label"' in html_text
        for hex_code in LIGHT_COLORS.values():
            assert f'<text fill="{hex_code}"' not in html_text


class TestGeometry:
    def test_no_negative_box_widths(self, html_text):
        widths = [float(w) for w in
                  re.findall(r'<rect[^>]*width="([-0-9.]+)"', html_text)]
        assert widths and all(w > 0 for w in widths)

    def test_box_thickness_capped(self, html_text):
        heights = {float(h) for h in
                   re.findall(r'<rect[^>]*height="([0-9.]+)"', html_text)}
        assert all(h <= 24 for h in heights)

    def test_marks_within_viewbox(self, html_text):
        view = re.search(r'viewBox="0 0 ([0-9.]+) ([0-9.]+)"', html_text)
        vw = float(view.group(1))
        xs = [float(x) for x in re.findall(r'x1="([-0-9.]+)"', html_text)]
        xs += [float(x) for x in re.findall(r'x2="([-0-9.]+)"', html_text)]
        assert all(0 <= x <= vw for x in xs)

    def test_class_slot_order_fixed(self):
        assert CLASS_SLOTS == ("CPU", "Consumer GPU", "HPC GPU", "MIC")


class TestLogScale:
    def test_fig5_log_rendering(self):
        f5 = figure5(samples=8)
        text = render_figure_html(f5, log_scale=True)
        assert "(log)" in text
        assert "<svg" in text

    def test_save(self, tmp_path, fig):
        path = save_figure_html(fig, tmp_path / "f.html")
        assert path.exists()
        assert path.read_text().startswith("<!doctype html>")
