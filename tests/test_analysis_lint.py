"""Static lint pass: finding model, each check, suppression, CLI gate."""

import json

import numpy as np
import pytest

from repro.analysis import (
    Finding,
    Report,
    lint_cl_source,
    lint_program,
    run_suite,
    severity_rank,
)
from repro.harness.cli import main as cli_main
from repro.ocl import KernelSource, Program


def checks(findings):
    return {f.check for f in findings}


def by_check(findings, check):
    return [f for f in findings if f.check == check]


def _noop(nd, *args):
    pass


# ---------------------------------------------------------------------------
class TestFindingModel:
    def test_severity_validated(self):
        with pytest.raises(ValueError):
            Finding(check="x", severity="fatal", message="m")

    def test_where_and_format(self):
        f = Finding(check="oob-access", severity="error", message="boom",
                    benchmark="lud", kernel="lud_diagonal",
                    argument="matrix", location="element 3", hint="fix it")
        assert f.where == "lud/lud_diagonal/matrix/element 3"
        line = f.format()
        assert line.startswith("error: [oob-access]")
        assert "(hint: fix it)" in line

    def test_to_dict_omits_unset(self):
        f = Finding(check="x", severity="note", message="m")
        assert set(f.to_dict()) == {"check", "severity", "message"}

    def test_severity_rank_ordering(self):
        assert severity_rank("note") < severity_rank("warning") < severity_rank("error")
        with pytest.raises(ValueError):
            severity_rank("bogus")

    def test_report_gating_and_counts(self):
        report = Report(emit_metrics=False)
        report.add(Finding(check="a", severity="note", message="m"))
        report.add(Finding(check="b", severity="warning", message="m"))
        assert report.worst() == "warning"
        assert not report.fails("error")
        assert report.fails("warning")
        assert report.count("note") == 1
        assert len(report) == 2

    def test_report_json_schema(self):
        report = Report(emit_metrics=False)
        report.add(Finding(check="a", severity="error", message="m",
                           benchmark="fft"))
        doc = json.loads(report.to_json())
        assert doc["schema_version"] == 2
        assert doc["summary"]["error"] == 1
        assert doc["findings"][0]["benchmark"] == "fft"

    def test_v2_schema_is_additive(self):
        """Every v1 key survives; v2 additions are optional."""
        report = Report(emit_metrics=False)
        report.add(Finding(check="a", severity="warning", message="m"))
        doc = json.loads(report.to_json())
        # the complete v1 surface, as a v1 consumer reads it
        assert {"schema_version", "summary", "findings"} <= set(doc)
        assert {"note", "warning", "error"} <= set(doc["summary"])
        assert {"check", "severity", "message"} <= set(doc["findings"][0])
        # extras is absent until populated, so v1 parsers never see it
        assert "extras" not in doc
        report.extras["probe"] = {"k": 1}
        assert json.loads(report.to_json())["extras"] == {"probe": {"k": 1}}

    def test_info_severity_and_fail_on_any(self):
        report = Report(emit_metrics=False)
        report.add(Finding(check="access-stride", severity="info", message="m"))
        assert report.count("info") == 1
        assert not report.fails("note")   # info ranks below note
        assert report.fails("any")        # but 'any' trips on everything
        assert severity_rank("any") <= severity_rank("info")

    def test_report_metric_emission(self):
        from repro.telemetry.metrics import default_registry

        report = Report()  # metrics on: lands in the global registry
        report.add(Finding(check="metric-probe", severity="note", message="m",
                           benchmark="fft"))
        exposed = default_registry().expose()
        assert "analysis_findings_total" in exposed
        assert "metric-probe" in exposed


# ---------------------------------------------------------------------------
class TestStaticChecks:
    def test_unused_param(self):
        findings = lint_cl_source(
            "__kernel void f(__global float *x, int n) { x[0] = 1.0f; }")
        hits = by_check(findings, "unused-param")
        assert len(hits) == 1
        assert hits[0].kernel == "f"
        assert hits[0].argument == "n"
        assert hits[0].location == "argument 1"
        assert hits[0].severity == "warning"

    def test_unused_param_suppressed_by_name(self):
        findings = lint_cl_source(
            "__kernel void f(__global float *x, int n) {\n"
            "  // repro-lint: allow(unused-param: n)\n"
            "  x[0] = 1.0f;\n"
            "}")
        assert "unused-param" not in checks(findings)

    def test_unused_param_suppressed_kernel_wide(self):
        findings = lint_cl_source(
            "__kernel void f(int a, int b) {\n"
            "  // repro-lint: allow(unused-param)\n"
            "}")
        assert "unused-param" not in checks(findings)

    def test_constant_write(self):
        findings = lint_cl_source(
            "__kernel void f(__constant float *lut, __global float *y) {\n"
            "  lut[get_global_id(0)] = 0.0f;\n"
            "  y[0] = lut[0];\n"
            "}")
        hits = by_check(findings, "constant-write")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert hits[0].argument == "lut"

    def test_constant_read_is_clean(self):
        findings = lint_cl_source(
            "__kernel void f(__constant float *lut, __global float *y) {\n"
            "  y[0] = lut[0] + lut[1];\n"
            "}")
        assert "constant-write" not in checks(findings)

    def test_constant_compound_assign_detected(self):
        findings = lint_cl_source(
            "__kernel void f(__constant int *t) { t[0] += 1; }")
        assert "constant-write" in checks(findings)

    def test_barrier_in_divergent_if(self):
        findings = lint_cl_source(
            "__kernel void f(__global float *x) {\n"
            "  int gid = get_global_id(0);\n"
            "  if (gid < 16) {\n"
            "    x[gid] *= 2.0f;\n"
            "    barrier(CLK_GLOBAL_MEM_FENCE);\n"
            "  }\n"
            "}")
        hits = by_check(findings, "barrier-divergence")
        assert len(hits) == 1
        assert hits[0].kernel == "f"

    def test_barrier_after_early_exit_is_clean(self):
        findings = lint_cl_source(
            "__kernel void f(__global float *x, int n) {\n"
            "  int gid = get_global_id(0);\n"
            "  if (gid >= n) return;\n"
            "  x[gid] = 1.0f;\n"
            "  barrier(CLK_GLOBAL_MEM_FENCE);\n"
            "}")
        assert "barrier-divergence" not in checks(findings)

    def test_barrier_in_uniform_if_is_clean(self):
        findings = lint_cl_source(
            "__kernel void f(__global float *x, int n) {\n"
            "  int gid = get_global_id(0);\n"
            "  if (n > 4) {\n"
            "    barrier(CLK_GLOBAL_MEM_FENCE);\n"
            "  }\n"
            "  x[gid] = 1.0f;\n"
            "}")
        assert "barrier-divergence" not in checks(findings)

    def test_param_named_only_in_comment_is_unused(self):
        """PR 3 false positive: a comment mention is not a use."""
        findings = lint_cl_source(
            "__kernel void f(__global float *x, int n) {\n"
            "  // the caller derives n from the buffer size\n"
            "  x[0] = 1.0f;\n"
            "}")
        hits = by_check(findings, "unused-param")
        assert [h.argument for h in hits] == ["n"]

    def test_param_named_only_in_string_is_unused(self):
        findings = lint_cl_source(
            '__kernel void f(__global float *x, int n) {\n'
            '  printf("n goes here");\n'
            '  x[0] = 1.0f;\n'
            '}')
        assert [h.argument for h in by_check(findings, "unused-param")] == ["n"]

    def test_param_used_in_code_not_flagged_despite_comment(self):
        findings = lint_cl_source(
            "__kernel void f(__global float *x, int n) {\n"
            "  /* n bounds the write */\n"
            "  if (get_global_id(0) < n) x[get_global_id(0)] = 1.0f;\n"
            "}")
        assert "unused-param" not in checks(findings)

    def test_constant_write_in_comment_is_clean(self):
        findings = lint_cl_source(
            "__kernel void f(__constant float *lut, __global float *y) {\n"
            "  // never do lut[0] = 1.0f here\n"
            "  y[0] = lut[0];\n"
            "}")
        assert "constant-write" not in checks(findings)

    def test_barrier_in_comment_is_clean(self):
        findings = lint_cl_source(
            "__kernel void f(__global float *x) {\n"
            "  int gid = get_global_id(0);\n"
            "  if (gid < 16) {\n"
            "    // a barrier(CLK_LOCAL_MEM_FENCE) here would deadlock\n"
            "    x[gid] = 1.0f;\n"
            "  }\n"
            "}")
        assert "barrier-divergence" not in checks(findings)


# ---------------------------------------------------------------------------
class TestProgramLint:
    def test_missing_kernel_body(self, cpu_context):
        src = ("__kernel void used(__global float *x) { x[0] = 1.0f; }\n"
               "__kernel void orphan(__global float *x) { x[0] = 2.0f; }\n")
        program = Program(cpu_context, [
            KernelSource("used", _noop, cl_source=src)
        ]).build()
        hits = by_check(lint_program(program), "missing-kernel-body")
        assert len(hits) == 1
        assert hits[0].kernel == "orphan"

    def test_missing_cl_source(self, cpu_context):
        program = Program(cpu_context, [KernelSource("bare", _noop)]).build()
        hits = by_check(lint_program(program), "missing-cl-source")
        assert len(hits) == 1
        assert hits[0].severity == "note"
        assert hits[0].kernel == "bare"

    def test_local_from_global_buffer(self, cpu_context):
        src = ("__kernel void f(__global float *x, __local float *scratch) "
               "{ x[0] = scratch[0]; }")
        program = Program(cpu_context, [
            KernelSource("f", _noop, cl_source=src)
        ]).build()
        kernel = program.create_kernel("f")
        buf = cpu_context.buffer_like(np.zeros(4, np.float32))
        scratch = cpu_context.buffer_like(np.zeros(4, np.float32))
        kernel.set_args(buf, scratch)
        hits = by_check(lint_program(program), "local-from-global")
        assert len(hits) == 1
        assert hits[0].kernel == "f"
        assert hits[0].argument == "scratch"
        assert hits[0].severity == "error"

    def test_shared_source_linted_once(self, cpu_context):
        src = ("__kernel void a(int unused_one) {}\n"
               "__kernel void b(int unused_two) {}\n")
        program = Program(cpu_context, [
            KernelSource("a", _noop, cl_source=src),
            KernelSource("b", _noop, cl_source=src),
        ]).build()
        hits = by_check(lint_program(program), "unused-param")
        assert {h.argument for h in hits} == {"unused_one", "unused_two"}
        assert len(hits) == 2  # not doubled by the shared source


# ---------------------------------------------------------------------------
class TestSuiteAndCLI:
    def test_full_suite_is_clean(self):
        report = run_suite(emit_metrics=False)
        assert not report.fails("note"), report.render_text()

    def test_single_benchmark(self):
        report = run_suite(benchmarks=["lud"], emit_metrics=False)
        assert not report.fails("note")

    def test_ignore_drops_check(self):
        report = run_suite(benchmarks=["lud"], emit_metrics=False,
                           ignore=("missing-cl-source",))
        assert "missing-cl-source" not in {f.check for f in report}

    def test_cli_lint_exit_zero(self, capsys):
        assert cli_main(["lint", "--benchmark", "fft"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_cli_lint_json(self, capsys):
        assert cli_main(["lint", "--benchmark", "fft", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 2

    def test_cli_lint_sanitize(self, capsys):
        assert cli_main(["lint", "--benchmark", "nw", "--sanitize"]) == 0
