"""IR-derived access model: trace synthesis, race/coalescing/bank
lints, reuse distances and the differential trace gate."""

import json

import numpy as np
import pytest

from repro.analysis import run_deep_suite
from repro.analysis.accessmodel import (
    GATE_TRACE_LEN,
    LINE_BYTES,
    TRACE_SOURCES,
    access_model_findings,
    buffer_layout,
    compare_benchmark_traces,
    ir_access_trace,
    ir_stride_classes,
    resolve_access_trace,
    reuse_distance_summary,
    stack_distances,
    synthesize_trace,
    trace_source,
)
from repro.analysis.deep import deep_lint_model
from repro.cache.trace import DEFAULT_MAX_LEN, TraceSpec
from repro.devices import get_device
from repro.dwarfs import registry
from repro.dwarfs.base import StaticBuffer, StaticLaunch, StaticLaunchModel
from repro.harness.artifacts import _compute, simulate_cell_counters
from repro.harness.cli import main as cli_main
from repro.ocl.clsource import kernel_suppressions

ALL_BENCHMARKS = sorted([*registry.BENCHMARKS, *registry.EXTENSIONS])


def _model(source: str, n_items: int = 256,
           local_size=None) -> StaticLaunchModel:
    """A two-buffer fixture model launching kernel ``k`` once."""
    return StaticLaunchModel(
        source=source,
        buffers={"a": StaticBuffer("a", 64 * 1024),
                 "out": StaticBuffer("out", 64 * 1024)},
        launches=(StaticLaunch("k", (n_items,), scalars={},
                               buffers={"a": ("a", 0), "out": ("out", 0)},
                               local_size=local_size),),
    )


RACY_CL = """
__kernel void k(__global float *a, __global float *out) {
    int gid = get_global_id(0);
    a[gid] = out[gid];
    out[gid] = a[gid + 1];
}
"""

BARRIERED_CL = """
__kernel void k(__global float *a, __global float *out) {
    int gid = get_global_id(0);
    a[gid] = out[gid];
    barrier(CLK_GLOBAL_MEM_FENCE);
    out[gid] = a[gid + 1];
}
"""

UNIFORM_WRITE_CL = """
__kernel void k(__global float *a, __global float *out) {
    int gid = get_global_id(0);
    out[0] = a[gid];
}
"""

PINNED_WRITE_CL = """
__kernel void k(__global float *a, __global float *out) {
    int gid = get_global_id(0);
    if (gid == 0) {
        out[0] = a[gid];
    }
}
"""

INDIRECT_WRITE_CL = """
__kernel void k(__global int *a, __global float *out) {
    int gid = get_global_id(0);
    out[a[gid]] = 1.0f;
}
"""

UNCOALESCED_CL = """
__kernel void k(__global float *a, __global float *out) {
    int gid = get_global_id(0);
    out[gid] = a[gid * 32];
}
"""

BANK_CONFLICT_CL = """
__kernel void k(__global float *a, __global float *out) {
    int lid = get_local_id(0);
    __local float tile[512];
    tile[lid * 2] = a[lid];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[lid] = tile[lid * 2];
}
"""

SUPPRESSED_RACY_CL = """
__kernel void k(__global float *a, __global float *out) {
    int gid = get_global_id(0);
    // repro-lint: allow(data-race: a)
    a[gid] = out[gid];
    out[gid] = a[gid + 1];
}
"""


def _checks(findings):
    return [(f.check, f.argument) for f in findings]


# ---------------------------------------------------------------------------
class TestRaceDetection:
    """Inter-work-item race checks over fixture launch models."""

    def test_shifted_affine_overlap_is_a_race(self):
        findings = access_model_findings(_model(RACY_CL), benchmark="fx")
        assert ("data-race", "a") in _checks(findings)
        race = next(f for f in findings if f.check == "data-race")
        assert race.severity == "error"
        assert race.kernel == "k"

    def test_barrier_epoch_separates_the_accesses(self):
        assert access_model_findings(_model(BARRIERED_CL)) == []

    def test_uniform_index_write_races(self):
        findings = access_model_findings(_model(UNIFORM_WRITE_CL))
        assert _checks(findings) == [("data-race", "out")]

    def test_single_work_item_launch_is_clean(self):
        assert access_model_findings(_model(UNIFORM_WRITE_CL,
                                            n_items=1)) == []

    def test_equality_guard_pins_the_store(self):
        assert access_model_findings(_model(PINNED_WRITE_CL)) == []

    def test_indirect_write_is_a_potential_race(self):
        findings = access_model_findings(_model(INDIRECT_WRITE_CL))
        assert _checks(findings) == [("data-race", "out")]
        assert findings[0].severity == "warning"


# ---------------------------------------------------------------------------
class TestCoalescingAndBankChecks:
    def test_line_sized_stride_is_uncoalesced(self):
        findings = access_model_findings(_model(UNCOALESCED_CL))
        assert _checks(findings) == [("uncoalesced-access", "a")]
        assert "128 bytes apart" in findings[0].message

    def test_unit_stride_is_clean(self):
        clean = RACY_CL.replace("a[gid + 1]", "a[gid]")
        assert access_model_findings(_model(clean)) == []

    def test_two_way_bank_conflict_on_local_tile(self):
        findings = access_model_findings(
            _model(BANK_CONFLICT_CL, local_size=(64,)))
        assert _checks(findings) == [("bank-conflict", "tile")]
        assert "2-way bank conflict" in findings[0].message


# ---------------------------------------------------------------------------
class TestSuppressions:
    """``// repro-lint: allow(...)`` silences access-model findings."""

    def test_allow_directive_suppresses_the_race(self):
        model = _model(SUPPRESSED_RACY_CL)
        allows = kernel_suppressions(model.source)
        assert ("data-race", "a") in allows["k"]
        findings = access_model_findings(model, suppressions=allows)
        assert findings == []
        # without the parsed directives the defect is still found
        assert access_model_findings(model) != []

    def test_deep_lint_model_applies_source_suppressions(self):
        assert deep_lint_model(_model(SUPPRESSED_RACY_CL)) == []
        checks = [f.check for f in deep_lint_model(_model(RACY_CL))]
        assert "data-race" in checks

    def test_shipped_kmeans_layout_is_suppressed_in_source(self):
        """The in-tree suppression of an IR-exact finding works."""
        bench = registry.get_benchmark("kmeans").from_size("tiny")
        model = bench.static_launches()
        allows = kernel_suppressions(model.source)
        assert ("uncoalesced-access", "features") in allows["kmeans_assign"]
        # stripping the suppressions resurfaces the finding
        raw = access_model_findings(model, benchmark="kmeans")
        assert ("uncoalesced-access", "features") in _checks(raw)
        assert access_model_findings(model, benchmark="kmeans",
                                     suppressions=allows) == []


# ---------------------------------------------------------------------------
class TestTraceSynthesis:
    def test_layout_is_back_to_back_declaration_order(self):
        model = _model(RACY_CL)
        layout = buffer_layout(model)
        assert layout == {"a": (0, 64 * 1024), "out": (64 * 1024, 64 * 1024)}

    def test_synthesized_trace_shape_and_determinism(self):
        model = registry.get_benchmark("csr").from_size(
            "tiny").static_launches()
        trace, layout = synthesize_trace(model, max_len=4096)
        again, _ = synthesize_trace(model, max_len=4096)
        assert trace.dtype == np.int64
        assert 0 < trace.size <= 4096
        total = sum(nbytes for _base, nbytes in layout.values())
        assert trace.min() >= 0 and trace.max() < total
        assert np.array_equal(trace, again)

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_every_benchmark_synthesizes(self, name):
        bench = registry.get_benchmark(name).from_size("tiny")
        trace = ir_access_trace(bench, max_len=2048)
        assert trace is not None and trace.size > 0
        assert ir_stride_classes(bench.static_launches())

    def test_resolve_follows_the_env_toggle(self, monkeypatch):
        bench = registry.get_benchmark("kmeans").from_size("tiny")
        monkeypatch.delenv("REPRO_TRACE_SOURCE", raising=False)
        assert trace_source() == "handwritten"
        hand = resolve_access_trace(bench, max_len=2048)
        assert np.array_equal(hand, bench.access_trace(max_len=2048))
        monkeypatch.setenv("REPRO_TRACE_SOURCE", "ir")
        assert trace_source() == "ir"
        ir = resolve_access_trace(bench, max_len=2048)
        assert np.array_equal(ir, ir_access_trace(bench, max_len=2048))
        assert not np.array_equal(ir, hand)

    def test_explicit_source_overrides_the_env(self, monkeypatch):
        bench = registry.get_benchmark("crc").from_size("tiny")
        monkeypatch.setenv("REPRO_TRACE_SOURCE", "ir")
        forced = resolve_access_trace(bench, max_len=2048,
                                      source="handwritten")
        assert np.array_equal(forced, bench.access_trace(max_len=2048))

    def test_invalid_source_raises(self, monkeypatch):
        bench = registry.get_benchmark("crc").from_size("tiny")
        with pytest.raises(ValueError):
            resolve_access_trace(bench, source="oracle")
        monkeypatch.setenv("REPRO_TRACE_SOURCE", "psychic")
        with pytest.raises(ValueError):
            trace_source()


# ---------------------------------------------------------------------------
class TestDeclarativeTraceSpecs:
    """Satellite of the access model: every dwarf declares its trace."""

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_spec_builds_the_access_trace(self, name):
        bench = registry.get_benchmark(name).from_size("tiny")
        spec = bench.trace_spec()
        assert isinstance(spec, TraceSpec)
        assert spec.components()
        built = spec.build(max_len=DEFAULT_MAX_LEN,
                           seed=getattr(bench, "seed", 0))
        assert np.array_equal(built, bench.access_trace())

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_spec_metadata_is_consistent(self, name):
        bench = registry.get_benchmark(name).from_size("tiny")
        spec = bench.trace_spec()
        classes = spec.stride_classes()
        assert classes <= {"unit", "strided", "indirect"}
        assert spec.span_bytes() > 0


# ---------------------------------------------------------------------------
class TestDifferentialGate:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_ir_and_hand_traces_agree_at_every_size(self, name):
        findings, table = compare_benchmark_traces(name)
        assert findings == [], [f.format() for f in findings]
        sizes = registry.get_benchmark(name).available_sizes()
        assert set(table) == set(sizes)
        for size, row in table.items():
            assert row["ok"], f"{name}/{size}: {row}"
            assert row["footprint_bytes"] > 0
            assert row["span_ir"] > 0 and row["span_hand"] > 0

    def test_corrupted_oracle_trips_the_gate(self, monkeypatch):
        """A hand trace that ignores the footprint must diverge."""
        import repro.cache.trace as trace_mod

        cls = registry.get_benchmark("kmeans")

        class BrokenKMeans(cls):
            def trace_spec(self):
                # spans 64 bytes where the footprint is tens of KiB
                return trace_mod.TraceSpec.single(
                    trace_mod.seq(64, passes=2))

        monkeypatch.setitem(registry.BENCHMARKS, "kmeans", BrokenKMeans)
        findings, table = compare_benchmark_traces("kmeans",
                                                   sizes=("tiny",))
        assert [f.check for f in findings] == ["trace-divergence"]
        assert findings[0].severity == "error"
        assert not table["tiny"]["ok"]

    def test_gate_trace_len_is_bounded(self):
        # the gate must stay cheap enough to run 15 benchmarks x sizes
        assert GATE_TRACE_LEN <= DEFAULT_MAX_LEN


# ---------------------------------------------------------------------------
class TestStackDistances:
    def test_textbook_example(self):
        lines = np.array([0, 1, 0, 1, 2, 0])
        assert stack_distances(lines).tolist() == [-1, -1, 1, 1, -1, 2]

    def test_cyclic_sweep_distance_is_set_size(self):
        n = 37
        lines = np.tile(np.arange(n), 3)
        dist = stack_distances(lines)
        assert (dist[:n] == -1).all()
        assert (dist[n:] == n - 1).all()

    def test_repeated_line_has_distance_zero(self):
        assert stack_distances(np.array([5, 5, 5])).tolist() == [-1, 0, 0]


# ---------------------------------------------------------------------------
class TestReuseDistanceSummary:
    def test_kmeans_buffers_are_summarised(self):
        model = registry.get_benchmark("kmeans").from_size(
            "tiny").static_launches()
        summary = reuse_distance_summary(model)
        assert set(summary) == {"features", "clusters", "membership"}
        for stats in summary.values():
            assert stats["accesses"] > 0
            assert stats["lines"] > 0
            assert 0.0 <= stats["cold_fraction"] <= 1.0
            if stats["mean"] is not None:
                assert stats["mean"] >= 0

    def test_clusters_are_hotter_than_features(self):
        """The small cluster table is re-swept; the point matrix streams."""
        model = registry.get_benchmark("kmeans").from_size(
            "tiny").static_launches()
        summary = reuse_distance_summary(model)
        assert summary["clusters"]["lines"] < summary["features"]["lines"]


# ---------------------------------------------------------------------------
class TestCounterEquivalence:
    """IR traces drive the counter simulation to comparable results."""

    #: Miss counts from the two provenances must agree within this
    #: factor (+1-smoothed); empirically the worst tiny-shape ratio is
    #: ~3x (kmeans L1), so 8x catches real divergence without flaking.
    TOLERANCE = 8.0

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_tiny_counters_within_tolerance(self, name):
        spec = get_device("i7-6700K")
        hand = _compute(name, "tiny", 20_000, "handwritten")
        ir = _compute(name, "tiny", 20_000, "ir")
        assert hand.trace_source == "handwritten"
        assert ir.trace_source == "ir"
        counters_hand = simulate_cell_counters(spec, hand)
        counters_ir = simulate_cell_counters(spec, ir)
        for event in ("PAPI_L1_DCM", "PAPI_L2_DCM", "PAPI_L3_TCM",
                      "PAPI_TLB_DM"):
            a = counters_hand[event] + 1
            b = counters_ir[event] + 1
            ratio = max(a / b, b / a)
            assert ratio <= self.TOLERANCE, (
                f"{name}: {event} diverges {ratio:.1f}x "
                f"(hand {a - 1}, ir {b - 1})")


# ---------------------------------------------------------------------------
class TestDeepSuiteAndCli:
    def test_shipped_suite_is_clean_with_traces(self):
        report = run_deep_suite(benchmarks=["kmeans", "bfs"], size="tiny",
                                traces=True, emit_metrics=False)
        assert len(report) == 0, report.render_text()
        assert set(report.extras["trace_differential"]) == {"kmeans", "bfs"}
        assert set(report.extras["reuse_distance"]) == {"kmeans", "bfs"}

    def test_trace_findings_honour_ignore(self, monkeypatch):
        import repro.cache.trace as trace_mod

        cls = registry.get_benchmark("kmeans")

        class BrokenKMeans(cls):
            def trace_spec(self):
                return trace_mod.TraceSpec.single(
                    trace_mod.seq(64, passes=2))

        monkeypatch.setitem(registry.BENCHMARKS, "kmeans", BrokenKMeans)
        report = run_deep_suite(benchmarks=["kmeans"], size="tiny",
                                traces=True, emit_metrics=False)
        assert "trace-divergence" in [f.check for f in report.findings]
        ignored = run_deep_suite(benchmarks=["kmeans"], size="tiny",
                                 traces=True, emit_metrics=False,
                                 ignore=("trace-divergence",))
        assert "trace-divergence" not in [f.check for f in ignored.findings]

    def test_cli_traces_flag(self, capsys):
        exit_code = cli_main(["lint", "--benchmark", "csr", "--size", "tiny",
                              "--traces", "--json", "--fail-on", "any"])
        assert exit_code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["error"] == 0
        table = document["extras"]["trace_differential"]["csr"]["tiny"]
        assert table["ok"] is True
        assert table["indirect_hand"] and table["indirect_ir"]

    def test_trace_sources_constant(self):
        assert TRACE_SOURCES == ("handwritten", "ir")
        assert LINE_BYTES == 64
