"""Last-level-cache soft knee: the mechanism behind the i5-3550 shape."""

import pytest

from repro.devices import get_device
from repro.devices.specs import DeviceSpec


class TestSoftKnee:
    def test_sharp_below_start(self, skylake):
        """Working sets under 75% of L3 get full L3 bandwidth."""
        capacity = skylake.caches[-1].size_bytes
        ws = int(0.70 * capacity)
        assert (skylake.effective_bandwidth_gbs(ws)
                == skylake.caches[-1].bandwidth_gbs)

    def test_blends_toward_memory_in_band(self, skylake):
        capacity = skylake.caches[-1].size_bytes
        l3 = skylake.caches[-1].bandwidth_gbs
        mem = skylake.memory.bandwidth_gbs
        mid = skylake.effective_bandwidth_gbs(int(0.9 * capacity))
        assert mem < mid < l3

    def test_monotone_through_band(self, skylake):
        capacity = skylake.caches[-1].size_bytes
        fractions = [0.6, 0.75, 0.8, 0.9, 1.0, 1.05]
        bws = [skylake.effective_bandwidth_gbs(int(f * capacity))
               for f in fractions]
        assert bws == sorted(bws, reverse=True)

    def test_full_miss_at_band_end(self, skylake):
        """At 110% of capacity the set has spilled (classified to
        memory by level selection anyway)."""
        capacity = skylake.caches[-1].size_bytes
        over = skylake.effective_bandwidth_gbs(int(1.2 * capacity))
        assert over == skylake.memory.bandwidth_gbs

    def test_inner_levels_stay_sharp(self, skylake):
        """L1/L2 keep sharp knees: a 90%-of-L1 working set streams at
        full L1 bandwidth."""
        l1 = skylake.caches[0]
        assert (skylake.effective_bandwidth_gbs(int(0.9 * l1.size_bytes))
                == l1.bandwidth_gbs)

    def test_i5_penalised_where_i7_is_not(self):
        """A ~5 MB working set: >75% of the i5's 6 MiB L3 (blended down)
        but <75% of the i7's 8 MiB L3 (full speed) — the Fig. 2b/2d/2e
        mechanism."""
        i5 = get_device("i5-3550")
        i7 = get_device("i7-6700K")
        ws = 5 * 1024 * 1024
        i5_ratio = i5.effective_bandwidth_gbs(ws) / i5.caches[-1].bandwidth_gbs
        i7_ratio = i7.effective_bandwidth_gbs(ws) / i7.caches[-1].bandwidth_gbs
        assert i7_ratio == 1.0
        assert i5_ratio < 0.8

    def test_gpu_l2_also_soft(self, gtx1080):
        """The knee applies to whatever the last level is (GPU L2)."""
        capacity = gtx1080.caches[-1].size_bytes
        in_band = gtx1080.effective_bandwidth_gbs(int(0.9 * capacity))
        assert in_band < gtx1080.caches[-1].bandwidth_gbs

    def test_knee_constants_sane(self):
        assert 0.5 < DeviceSpec.LLC_SOFT_KNEE_START < 1.0
        assert DeviceSpec.LLC_SOFT_KNEE_END > 1.0
