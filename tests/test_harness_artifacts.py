"""Memoized analysis artifacts and the per-cell counter simulation.

Covers the content-addressed artifact key, the in-process memo and
the SweepCache npz persistence layer (round-trip, corruption-as-miss),
the determinism and JSON-nativeness of ``simulate_cell_counters``,
and the ``counters`` field riding along in cached sweep payloads.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.devices import get_device
from repro.harness import artifacts as art
from repro.harness.artifacts import (
    ARTIFACT_VERSION,
    CellArtifacts,
    artifact_key,
    clear_memo,
    get_cell_artifacts,
    simulate_cell_counters,
)
from repro.harness.runner import RunConfig, RunResult, run_benchmark
from repro.harness.sweep import (
    SweepCache,
    result_from_payload,
    result_to_payload,
)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_artifact_key_is_stable_and_discriminating():
    k = artifact_key("csr", "tiny")
    assert k == artifact_key("csr", "tiny")
    assert len(k) == 64 and set(k) <= set("0123456789abcdef")
    assert k != artifact_key("csr", "small")
    assert k != artifact_key("fft", "tiny")
    assert k != artifact_key("csr", "tiny", trace_len=10)


def test_artifact_key_depends_on_version(monkeypatch):
    before = artifact_key("csr", "tiny")
    monkeypatch.setattr(art, "ARTIFACT_VERSION", ARTIFACT_VERSION + "-next")
    assert artifact_key("csr", "tiny") != before


def test_artifact_key_depends_on_trace_source(monkeypatch):
    hand = artifact_key("csr", "tiny", trace_source="handwritten")
    ir = artifact_key("csr", "tiny", trace_source="ir")
    assert hand != ir
    # the default provenance follows REPRO_TRACE_SOURCE
    monkeypatch.delenv("REPRO_TRACE_SOURCE", raising=False)
    assert artifact_key("csr", "tiny") == hand
    monkeypatch.setenv("REPRO_TRACE_SOURCE", "ir")
    assert artifact_key("csr", "tiny") == ir


# ----------------------------------------------------------------------
# Memo and computation
# ----------------------------------------------------------------------
def test_get_cell_artifacts_memoizes(monkeypatch):
    calls = []
    real_compute = art._compute

    def counting(benchmark, size, trace_len, trace_source):
        calls.append((benchmark, size))
        return real_compute(benchmark, size, trace_len, trace_source)

    monkeypatch.setattr(art, "_compute", counting)
    first = get_cell_artifacts("csr", "tiny", trace_len=512)
    second = get_cell_artifacts("csr", "tiny", trace_len=512)
    assert second is first
    assert calls == [("csr", "tiny")]
    assert first.trace.dtype == np.int64
    assert first.trace.size <= 512
    assert first.branch_pcs.shape == first.branch_outcomes.shape
    assert first.footprint_bytes > 0


def test_memo_is_bounded(monkeypatch):
    monkeypatch.setattr(art, "_MEMO_MAX", 2)
    for size in ("tiny", "small", "medium"):
        get_cell_artifacts("crc", size, trace_len=256)
    assert len(art._memo) == 2
    # Oldest shape (tiny) was trimmed; newest two remain.
    assert artifact_key("crc", "tiny", 256) not in art._memo


# ----------------------------------------------------------------------
# SweepCache persistence
# ----------------------------------------------------------------------
def _equal_artifacts(a: CellArtifacts, b: CellArtifacts) -> bool:
    return (
        (a.benchmark, a.size, a.trace_len, a.trace_source,
         a.footprint_bytes, a.static_bytes, a.strides)
        == (b.benchmark, b.size, b.trace_len, b.trace_source,
            b.footprint_bytes, b.static_bytes, b.strides)
        and np.array_equal(a.trace, b.trace)
        and np.array_equal(a.branch_pcs, b.branch_pcs)
        and np.array_equal(a.branch_outcomes, b.branch_outcomes)
    )


def test_artifact_npz_round_trip(tmp_path):
    cache = SweepCache(tmp_path)
    original = get_cell_artifacts("csr", "tiny", trace_len=512)
    key = artifact_key("csr", "tiny", 512)
    path = cache.put_artifact(key, original)
    assert path == cache.artifact_path_for(key)
    assert path.suffix == ".npz"
    loaded = cache.get_artifact(key)
    assert loaded is not None
    assert _equal_artifacts(loaded, original)


def test_artifact_cache_feeds_the_memo(tmp_path, monkeypatch):
    cache = SweepCache(tmp_path)
    key = artifact_key("csr", "tiny", 512)
    cache.put_artifact(key, get_cell_artifacts("csr", "tiny", trace_len=512))
    clear_memo()

    def explode(*_args):  # a warm cache must not recompute
        raise AssertionError("recomputed despite persistent cache hit")

    monkeypatch.setattr(art, "_compute", explode)
    loaded = get_cell_artifacts("csr", "tiny", trace_len=512, cache=cache)
    assert loaded.benchmark == "csr"


def test_artifact_corruption_is_a_miss(tmp_path):
    cache = SweepCache(tmp_path)
    key = artifact_key("csr", "tiny", 512)
    path = cache.artifact_path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"not an npz archive")
    assert cache.get_artifact(key) is None
    assert cache.get_artifact(artifact_key("fft", "tiny")) is None  # absent


def test_v1_artifact_meta_is_a_miss(tmp_path):
    """Pre-provenance entries (no trace_source in meta) reload as a miss."""
    cache = SweepCache(tmp_path)
    original = get_cell_artifacts("csr", "tiny", trace_len=512)
    key = artifact_key("csr", "tiny", 512)
    path = cache.put_artifact(key, original)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        arrays = {k: data[k] for k in ("trace", "branch_pcs",
                                       "branch_outcomes")}
    del meta["trace_source"]
    np.savez_compressed(path, meta=np.asarray(json.dumps(meta)), **arrays)
    assert cache.get_artifact(key) is None


def test_ir_trace_source_artifacts(tmp_path, monkeypatch):
    cache = SweepCache(tmp_path)
    hand = get_cell_artifacts("csr", "tiny", trace_len=512, cache=cache)
    assert hand.trace_source == "handwritten"
    clear_memo()
    monkeypatch.setenv("REPRO_TRACE_SOURCE", "ir")
    ir = get_cell_artifacts("csr", "tiny", trace_len=512, cache=cache)
    assert ir.trace_source == "ir"
    assert not np.array_equal(ir.trace, hand.trace)
    # both provenances round-trip through the npz layer independently
    clear_memo()
    reloaded = cache.get_artifact(artifact_key("csr", "tiny", 512, "ir"))
    assert reloaded is not None and _equal_artifacts(reloaded, ir)
    reloaded = cache.get_artifact(
        artifact_key("csr", "tiny", 512, "handwritten"))
    assert reloaded is not None and _equal_artifacts(reloaded, hand)


def test_result_cache_len_ignores_artifacts(tmp_path):
    cache = SweepCache(tmp_path)
    assert len(cache) == 0
    cache.put_artifact(artifact_key("csr", "tiny", 512),
                       get_cell_artifacts("csr", "tiny", trace_len=512))
    assert len(cache) == 0


# ----------------------------------------------------------------------
# Counter simulation
# ----------------------------------------------------------------------
def test_simulate_cell_counters_is_deterministic_and_json_native():
    spec = get_device("i7-6700K")
    artifacts = get_cell_artifacts("csr", "tiny", trace_len=512)
    first = simulate_cell_counters(spec, artifacts)
    second = simulate_cell_counters(spec, artifacts)
    assert first == second
    assert first["PAPI_TOT_INS"] > 0
    assert first["PAPI_BR_INS"] == int(artifacts.branch_pcs.size)
    for name, value in first.items():
        assert type(value) is int, name
    json.dumps(first)


def test_run_benchmark_attaches_counters(tmp_path):
    config = RunConfig(benchmark="crc", size="tiny", device="i7-6700K",
                       samples=3, min_loop_seconds=0.0)
    result = run_benchmark(config, artifact_cache=SweepCache(tmp_path))
    assert result.counters is not None
    assert result.counters["PAPI_TOT_INS"] > 0
    json.dumps(result.counters)


def test_counters_survive_payload_round_trip(tmp_path):
    config = RunConfig(benchmark="crc", size="tiny", device="i7-6700K",
                       samples=3, min_loop_seconds=0.0)
    result = run_benchmark(config)
    payload = result_to_payload(result)
    assert payload["counters"] == result.counters
    restored = result_from_payload(payload)
    assert restored.counters == result.counters
    # Pre-counter payloads (model_version "1" era) load as None.
    del payload["counters"]
    assert result_from_payload(payload).counters is None
