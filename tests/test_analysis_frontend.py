"""Kernel IR frontend: tokenizer, parser, round-trip, CFG checks."""

import pytest

from repro.analysis.cfg import (
    build_cfg,
    constant_index_oob,
    divergent_barriers,
    uninitialized_uses,
    unreachable_statements,
    used_names,
)
from repro.analysis.frontend import (
    CLSyntaxError,
    parse_source,
    print_program,
    strip_noncode,
    token_texts,
    tokenize,
)
from repro.dwarfs import kernels_cl
from repro.ocl.clsource import CLSourceError

#: Every shipped OpenCL C source, by name.
ALL_SOURCES = {
    name: getattr(kernels_cl, name)
    for name in dir(kernels_cl)
    if name.endswith("_CL")
}


# ---------------------------------------------------------------------------
class TestGoldenParse:
    """All 15 benchmark sources tokenize, parse, and round-trip."""

    @pytest.mark.parametrize("name", sorted(ALL_SOURCES))
    def test_tokenizes(self, name):
        assert len(tokenize(ALL_SOURCES[name])) > 0

    @pytest.mark.parametrize("name", sorted(ALL_SOURCES))
    def test_parses(self, name):
        program = parse_source(ALL_SOURCES[name])
        assert len(program.kernels) >= 1
        for kernel in program.kernels:
            assert kernel.name
            assert kernel.params

    @pytest.mark.parametrize("name", sorted(ALL_SOURCES))
    def test_round_trip_token_equivalent(self, name):
        """Pretty-printed AST re-tokenizes to the original sequence."""
        source = ALL_SOURCES[name]
        printed = print_program(parse_source(source))
        assert token_texts(printed) == token_texts(source)

    def test_covers_all_fifteen_benchmarks(self):
        assert len(ALL_SOURCES) == 15


# ---------------------------------------------------------------------------
class TestSyntaxErrors:
    def test_error_carries_line_and_col(self):
        bad = "__kernel void f(__global float *x) {\n  x[0] = ;\n}"
        with pytest.raises(CLSyntaxError) as info:
            parse_source(bad)
        assert info.value.line == 2
        assert info.value.col > 0

    def test_error_is_a_clsource_error(self):
        with pytest.raises(CLSourceError):
            parse_source("__kernel void f( {")

    def test_unterminated_block(self):
        with pytest.raises(CLSyntaxError):
            parse_source("__kernel void f(int n) { if (n) {")

    def test_message_mentions_position(self):
        with pytest.raises(CLSyntaxError) as info:
            parse_source("__kernel void f(int n) { n +; }")
        assert "line" in str(info.value)


# ---------------------------------------------------------------------------
class TestStripNoncode:
    def test_blanks_comments_preserving_positions(self):
        src = "int a; // param x here\nint b; /* y */ int c;"
        out = strip_noncode(src)
        assert len(out) == len(src)
        assert out.count("\n") == src.count("\n")
        assert "x" not in out
        assert "y" not in out
        assert "int a;" in out and "int c;" in out

    def test_blanks_string_literals(self):
        out = strip_noncode('printf("uses param n"); int m;')
        assert "param" not in out
        assert "int m;" in out

    def test_multiline_comment_keeps_newlines(self):
        src = "a;\n/* one\ntwo\nthree */\nb;"
        out = strip_noncode(src)
        assert out.count("\n") == src.count("\n")
        assert "two" not in out


# ---------------------------------------------------------------------------
class TestReqdWorkGroupSize:
    def test_attribute_parsed(self):
        src = ("__kernel __attribute__((reqd_work_group_size(64, 1, 1))) "
               "void f(__global float *x) { x[0] = 1.0f; }")
        kernel = parse_source(src).kernels[0]
        assert kernel.reqd_work_group_size == (64, 1, 1)

    def test_absent_by_default(self):
        kernel = parse_source(
            "__kernel void f(__global float *x) { x[0] = 1.0f; }"
        ).kernels[0]
        assert kernel.reqd_work_group_size is None


# ---------------------------------------------------------------------------
def _kernel(src):
    return parse_source(src).kernels[0]


class TestCFGChecks:
    def test_used_names_sees_all_uses(self):
        kernel = _kernel(
            "__kernel void f(__global float *x, int n, int unused) {\n"
            "  int gid = get_global_id(0);\n"
            "  if (gid < n) x[gid] = 1.0f;\n"
            "}")
        names = used_names(kernel)
        assert {"x", "n"} <= names
        assert "unused" not in names

    def test_divergent_barrier_found(self):
        kernel = _kernel(
            "__kernel void f(__global float *x) {\n"
            "  int gid = get_global_id(0);\n"
            "  if (gid < 16) {\n"
            "    barrier(CLK_LOCAL_MEM_FENCE);\n"
            "  }\n"
            "  x[gid] = 1.0f;\n"
            "}")
        assert divergent_barriers(kernel) == [4]

    def test_uniform_barrier_clean(self):
        kernel = _kernel(
            "__kernel void f(__global float *x, int n) {\n"
            "  int gid = get_global_id(0);\n"
            "  if (n > 4) {\n"
            "    barrier(CLK_LOCAL_MEM_FENCE);\n"
            "  }\n"
            "  x[gid] = 1.0f;\n"
            "}")
        assert divergent_barriers(kernel) == []

    def test_unreachable_after_return(self):
        kernel = _kernel(
            "__kernel void f(__global float *x) {\n"
            "  x[0] = 1.0f;\n"
            "  return;\n"
            "  x[1] = 2.0f;\n"
            "}")
        assert unreachable_statements(kernel) == [4]

    def test_uninitialized_local_read(self):
        kernel = _kernel(
            "__kernel void f(__global float *x) {\n"
            "  float acc;\n"
            "  x[0] = acc;\n"
            "}")
        assert ("acc", 3) in uninitialized_uses(kernel)

    def test_initialized_local_clean(self):
        kernel = _kernel(
            "__kernel void f(__global float *x) {\n"
            "  float acc = 0.0f;\n"
            "  x[0] = acc;\n"
            "}")
        assert uninitialized_uses(kernel) == []

    def test_constant_index_oob_with_macro(self):
        kernel = _kernel(
            "__kernel void f(__global float *x) {\n"
            "  float tmp[N];\n"
            "  tmp[N] = 1.0f;\n"
            "  x[0] = tmp[0];\n"
            "}")
        hits = constant_index_oob(kernel, {"N": 8})
        assert hits == [("tmp", 3, 8, 8)]

    def test_in_bounds_index_clean(self):
        kernel = _kernel(
            "__kernel void f(__global float *x) {\n"
            "  float tmp[4];\n"
            "  tmp[3] = 1.0f;\n"
            "  x[0] = tmp[3];\n"
            "}")
        assert constant_index_oob(kernel, {}) == []

    @pytest.mark.parametrize("name", sorted(ALL_SOURCES))
    def test_cfg_builds_for_every_shipped_kernel(self, name):
        for kernel in parse_source(ALL_SOURCES[name]).kernels:
            cfg = build_cfg(kernel)
            assert len(cfg.nodes) >= 2  # at least ENTRY and EXIT
