"""Sub-buffers, out-of-order queues, LSB files, prefetcher, transfers."""

import numpy as np
import pytest

from repro import ocl
from repro.cache import CacheHierarchy, StreamPrefetcher
from repro.devices import get_device
from repro.harness import measure_transfers, transfer_table
from repro.ocl import InvalidMemObject, InvalidValue, QueueProperties, SubBuffer
from repro.scibench import Recorder, lsb
from repro.scibench.recorder import REGION_KERNEL, REGION_TRANSFER


class TestSubBuffer:
    def test_shares_storage(self, cpu_context):
        parent = cpu_context.buffer_like(np.zeros(256, np.uint8))
        sub = parent.create_sub_buffer(128, 64)
        sub.array[:] = 7
        assert (parent.array[128:192] == 7).all()
        assert (parent.array[:128] == 0).all()

    def test_no_extra_allocation(self, cpu_context):
        parent = cpu_context.create_buffer(size=1024)
        before = cpu_context.allocated_bytes
        parent.create_sub_buffer(0, 512)
        assert cpu_context.allocated_bytes == before

    def test_alignment_enforced(self, cpu_context):
        parent = cpu_context.create_buffer(size=1024)
        with pytest.raises(InvalidValue, match="alignment"):
            parent.create_sub_buffer(7, 64)

    def test_region_bounds(self, cpu_context):
        parent = cpu_context.create_buffer(size=256)
        with pytest.raises(InvalidValue):
            parent.create_sub_buffer(128, 256)
        with pytest.raises(InvalidValue):
            parent.create_sub_buffer(0, 0)

    def test_release_sub_keeps_parent(self, cpu_context):
        parent = cpu_context.create_buffer(size=256)
        sub = parent.create_sub_buffer(0, 128)
        sub.release()
        assert not parent.released
        with pytest.raises(InvalidMemObject):
            _ = sub.array

    def test_parent_release_invalidates_sub(self, cpu_context):
        parent = cpu_context.create_buffer(size=256)
        sub = parent.create_sub_buffer(0, 128)
        parent.release()
        with pytest.raises(InvalidMemObject):
            _ = sub.array

    def test_usable_as_kernel_arg(self, cpu_context, cpu_queue):
        parent = cpu_context.buffer_like(np.zeros(256, np.uint8))
        sub = parent.create_sub_buffer(128, 128)

        def body(nd, region):
            region[:] = 9

        program = ocl.Program(cpu_context,
                              [ocl.KernelSource("fill", body)]).build()
        kernel = program.create_kernel("fill").set_args(sub)
        cpu_queue.enqueue_nd_range_kernel(kernel, (128,))
        assert (parent.array[128:] == 9).all()
        assert (parent.array[:128] == 0).all()


class TestOutOfOrderQueue:
    def _queue(self, ctx, ooo):
        props = QueueProperties.PROFILING_ENABLE
        if ooo:
            props |= QueueProperties.OUT_OF_ORDER_EXEC_MODE_ENABLE
        return ocl.CommandQueue(ctx, properties=props)

    def test_in_order_serialises(self, cpu_context):
        q = self._queue(cpu_context, ooo=False)
        buf = cpu_context.create_buffer(size=1 << 20)
        e1 = q.enqueue_fill_buffer(buf, 1)
        e2 = q.enqueue_fill_buffer(buf, 2)
        assert e2.start_ns >= e1.end_ns

    def test_out_of_order_overlaps(self, cpu_context):
        q = self._queue(cpu_context, ooo=True)
        a = cpu_context.create_buffer(size=1 << 20)
        b = cpu_context.create_buffer(size=1 << 20)
        e1 = q.enqueue_fill_buffer(a, 1)
        e2 = q.enqueue_fill_buffer(b, 2)
        assert e2.start_ns < e1.end_ns  # independent commands overlap

    def test_out_of_order_respects_wait_list(self, cpu_context):
        q = self._queue(cpu_context, ooo=True)
        a = cpu_context.create_buffer(size=1 << 20)
        e1 = q.enqueue_fill_buffer(a, 1)
        e2 = q.enqueue_fill_buffer(a, 2, wait_for=[e1])
        assert e2.start_ns >= e1.end_ns

    def test_device_clock_is_latest_completion(self, cpu_context):
        q = self._queue(cpu_context, ooo=True)
        big = cpu_context.create_buffer(size=1 << 22)
        small = cpu_context.create_buffer(size=1 << 10)
        e_big = q.enqueue_fill_buffer(big, 0)
        q.enqueue_fill_buffer(small, 0)
        assert q.device_time_ns == e_big.end_ns


class TestLSBFormat:
    def _recorder(self):
        rec = Recorder("fft")
        rec.record(REGION_KERNEL, 1.5e-3)
        rec.record(REGION_KERNEL, 1.6e-3)
        rec.record(REGION_TRANSFER, 2.0e-4)
        return rec

    def test_round_trip(self):
        rec = self._recorder()
        out = lsb.loads(lsb.dumps(rec, system="i7-6700K"))
        assert out.name == "fft"
        assert out.count(REGION_KERNEL) == 2
        assert out.times_s(REGION_TRANSFER)[0] == pytest.approx(2.0e-4)

    def test_header_contents(self):
        text = lsb.dumps(self._recorder(), system="GTX 1080", rank=3)
        assert text.startswith("# LibSciBench")
        assert "# Rank: 3" in text
        assert "# System: GTX 1080" in text
        assert "# Timer overhead: 6 ns" in text

    def test_file_io(self, tmp_path):
        path = tmp_path / lsb.default_filename("fft")
        assert path.name == "lsb.fft.r0"
        lsb.save(path, self._recorder())
        assert lsb.load(path).count() == 3

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            lsb.loads("not a header\n1 kernel 2 3\n")
        with pytest.raises(ValueError):
            lsb.loads("id region time_us overhead_ns\n1 kernel 2\n")


class TestStreamPrefetcher:
    def _prefetcher(self, **kwargs):
        h = CacheHierarchy.for_device(get_device("i7-6700K"))
        return StreamPrefetcher(h, **kwargs)

    def test_sequential_stream_covered(self):
        pf = self._prefetcher(depth=4)
        pf.access_many(np.arange(0, 1 << 19, 64))
        assert pf.stats.coverage > 0.95
        assert pf.stats.demand_miss_rate < 0.01

    def test_random_stream_not_covered(self, rng):
        pf = self._prefetcher(depth=4)
        pf.access_many(rng.integers(0, 1 << 26, 4000) * 64)
        assert pf.stats.coverage < 0.3
        assert pf.stats.demand_miss_rate > 0.5

    def test_strided_stream_detected(self):
        pf = self._prefetcher(depth=4)
        pf.access_many(np.arange(0, 1 << 20, 256))  # 4-line stride
        assert pf.stats.coverage > 0.9

    def test_counters_consistent(self):
        pf = self._prefetcher()
        pf.access_many(np.arange(0, 1 << 16, 64))
        s = pf.stats
        assert s.demand_accesses == (1 << 16) // 64
        assert 0 <= s.prefetch_hits <= s.prefetches_issued

    def test_invalid_params(self):
        h = CacheHierarchy.for_device(get_device("i7-6700K"))
        with pytest.raises(ValueError):
            StreamPrefetcher(h, depth=0)

    def test_reset(self):
        pf = self._prefetcher()
        pf.access_many(np.arange(0, 4096, 64))
        pf.reset()
        assert pf.stats.demand_accesses == 0


class TestTransfers:
    def test_gpu_pays_pcie(self):
        gpu = measure_transfers("fft", "small", "GTX 1080")
        cpu = measure_transfers("fft", "small", "i7-6700K")
        assert gpu.to_device_s > cpu.to_device_s
        assert gpu.bytes_to_device == cpu.bytes_to_device

    def test_bytes_match_buffers(self):
        m = measure_transfers("fft", "tiny", "K20m")
        assert m.bytes_to_device == 2048 * 8       # the complex64 signal
        assert m.bytes_from_device == 2048 * 8     # the spectrum

    def test_table_rows(self):
        rows = transfer_table(["crc", "csr"], size="tiny",
                              devices=("i7-6700K", "GTX 1080"))
        assert len(rows) == 4
        assert all(r.total_s > 0 for r in rows)
        assert "to device" in rows[0].as_row()
