"""kmeans: Eq. 1 footprint, clustering correctness, convergence."""

import numpy as np
import pytest

from repro import ocl
from repro.dwarfs.kmeans import KMeans, N_CLUSTERS, footprint_formula


class TestFootprintFormula:
    def test_paper_worked_example(self):
        """§4.4.1: 256 points x 30 features -> 31.5 KiB, just inside L1."""
        size = footprint_formula(256, 30, 5)
        assert size / 1024 == pytest.approx(31.5, abs=0.2)
        assert size <= 32 * 1024

    def test_equation_terms(self):
        p, f, c = 100, 10, 5
        assert footprint_formula(p, f, c) == p * f * 4 + p * 4 + c * f * 4

    def test_instance_uses_formula(self):
        bench = KMeans(n_points=1000, n_features=20)
        assert bench.footprint_bytes() == footprint_formula(1000, 20, N_CLUSTERS)


class TestConstruction:
    def test_presets_match_table2(self):
        assert KMeans.presets == {
            "tiny": 256, "small": 2048, "medium": 65600, "large": 131072}

    def test_clusters_fixed_at_5(self):
        assert KMeans.from_size("tiny").n_clusters == 5

    def test_from_args(self):
        bench = KMeans.from_args(["-g", "-f", "26", "-p", "65600"])
        assert bench.n_points == 65600
        assert bench.n_features == 26

    def test_from_args_requires_points(self):
        with pytest.raises(ValueError):
            KMeans.from_args(["-g", "-f", "26"])

    def test_from_args_unknown_flag(self):
        with pytest.raises(ValueError):
            KMeans.from_args(["-q", "1"])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            KMeans(n_points=3)


class TestClustering:
    def test_assignment_is_nearest(self, cpu_context, cpu_queue):
        bench = KMeans(n_points=500, n_features=8, seed=1)
        bench.run_complete(cpu_context, cpu_queue)  # validates internally

    def test_separable_clusters_found(self, cpu_context, cpu_queue):
        """Points drawn around 5 well-separated centers must be grouped
        accordingly after convergence."""
        bench = KMeans(n_points=250, n_features=2, seed=3)
        bench.host_setup(cpu_context)
        rng = np.random.default_rng(0)
        centers = np.array([[0, 0], [10, 0], [0, 10], [10, 10], [5, 5]],
                           dtype=np.float32)
        labels = np.repeat(np.arange(5), 50)
        bench.features = (centers[labels]
                          + rng.normal(0, 0.3, (250, 2))).astype(np.float32)
        bench.buf_features.array[...] = bench.features
        bench.initial_clusters = centers + 0.5
        bench.buf_clusters.array[...] = bench.initial_clusters
        bench.run_to_convergence(cpu_queue)
        membership = bench.buf_membership.array
        # each true cluster maps to exactly one predicted cluster
        for true_label in range(5):
            predicted = membership[labels == true_label]
            assert len(np.unique(predicted)) == 1

    def test_inertia_decreases_over_sweeps(self, cpu_context, cpu_queue):
        bench = KMeans(n_points=400, n_features=4, seed=9)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        inertias = [bench.inertia()]
        for _ in range(5):
            bench.run_iteration(cpu_queue)
            inertias.append(bench.inertia())
        assert inertias[-1] <= inertias[0]

    def test_convergence_terminates(self, cpu_context, cpu_queue):
        bench = KMeans(n_points=100, n_features=3, seed=5)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        sweeps = bench.run_to_convergence(cpu_queue, max_sweeps=200)
        assert sweeps < 200

    def test_generated_inputs_differ_by_seed(self, cpu_context):
        a = KMeans(n_points=64, seed=1)
        b = KMeans(n_points=64, seed=2)
        a.host_setup(cpu_context)
        ctx2 = ocl.Context(cpu_context.device)
        b.host_setup(ctx2)
        assert (a.features != b.features).any()


class TestProfile:
    def test_low_arithmetic_intensity(self):
        """The paper attributes kmeans' CPU-competitiveness to its low
        ratio of floating-point to memory operations."""
        bench = KMeans.from_size("large")
        profile = bench.profiles()[0]
        assert profile.arithmetic_intensity < 20

    def test_work_scales_with_points(self):
        small = KMeans(n_points=1000).profiles()[0]
        large = KMeans(n_points=4000).profiles()[0]
        assert large.flops == pytest.approx(4 * small.flops)
