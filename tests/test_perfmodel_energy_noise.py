"""Energy model, transfer model and timing-noise model."""

import numpy as np
import pytest

from repro.devices import get_device
from repro.perfmodel import (
    KernelProfile,
    energy_joules,
    expected_cov,
    kernel_energy,
    kernel_time,
    mean_power_w,
    noisy_samples,
    round_trip_time_s,
    transfer_time_s,
)


class TestPower:
    def test_idle_floor(self, skylake):
        p = skylake.power
        assert mean_power_w(skylake, 0.0) == pytest.approx(
            skylake.tdp_w * p.idle_fraction)

    def test_full_utilization_below_tdp(self, gtx1080):
        assert mean_power_w(gtx1080, 1.0) <= gtx1080.tdp_w

    def test_monotone_in_utilization(self, skylake):
        powers = [mean_power_w(skylake, u) for u in (0.0, 0.25, 0.5, 1.0)]
        assert powers == sorted(powers)

    def test_utilization_clamped(self, skylake):
        assert mean_power_w(skylake, 2.0) == mean_power_w(skylake, 1.0)
        assert mean_power_w(skylake, -1.0) == mean_power_w(skylake, 0.0)


class TestKernelEnergy:
    def test_energy_is_power_times_time(self, gtx1080):
        p = KernelProfile("k", flops=1e9, int_ops=0, bytes_read=1e6,
                          bytes_written=0, working_set_bytes=1e6,
                          work_items=1 << 20)
        tb = kernel_time(gtx1080, p)
        sample = kernel_energy(gtx1080, tb)
        assert sample.energy_j == pytest.approx(
            sample.mean_power_w * sample.duration_s)

    def test_energy_joules_scales_linearly(self, skylake):
        assert energy_joules(skylake, 2.0, 0.5) == pytest.approx(
            2 * energy_joules(skylake, 1.0, 0.5))


class TestTransfers:
    def test_latency_floor(self, gtx1080):
        assert transfer_time_s(gtx1080, 0) == pytest.approx(
            gtx1080.memory.link_latency_us * 1e-6)

    def test_bandwidth_term(self, gtx1080):
        one_gb = transfer_time_s(gtx1080, 10**9)
        assert one_gb == pytest.approx(
            gtx1080.memory.link_latency_us * 1e-6
            + 1.0 / gtx1080.memory.link_bandwidth_gbs)

    def test_round_trip_is_sum(self, gtx1080):
        assert round_trip_time_s(gtx1080, 1000, 500) == pytest.approx(
            transfer_time_s(gtx1080, 1000) + transfer_time_s(gtx1080, 500))

    def test_cpu_link_is_memory_bandwidth(self, skylake):
        assert (skylake.memory.link_bandwidth_gbs
                == skylake.memory.bandwidth_gbs)


class TestNoise:
    def test_mean_preserved(self, skylake, rng):
        samples = noisy_samples(skylake, 1e-3, 4000, rng)
        assert samples.mean() == pytest.approx(1e-3, rel=0.05)

    def test_loop_rule_narrows_scatter(self, skylake, rng):
        single = noisy_samples(skylake, 1e-3, 2000, rng, loop_iterations=1)
        looped = noisy_samples(skylake, 1e-3, 2000, rng, loop_iterations=100)
        assert looped.std() < single.std() / 3

    def test_expected_cov_scaling(self, skylake):
        assert expected_cov(skylake, 100) == pytest.approx(
            skylake.runtime.base_cov / 10)

    def test_low_clock_scatters_more(self, rng):
        slow = get_device("K20m")
        fast = get_device("GTX 1080")
        s = noisy_samples(slow, 1e-3, 2000, rng)
        f = noisy_samples(fast, 1e-3, 2000, rng)
        assert s.std() > f.std()

    def test_negative_nominal_rejected(self, skylake, rng):
        with pytest.raises(ValueError):
            noisy_samples(skylake, -1.0, 10, rng)

    def test_zero_samples(self, skylake, rng):
        assert len(noisy_samples(skylake, 1e-3, 0, rng)) == 0

    def test_all_samples_positive(self, skylake, rng):
        assert (noisy_samples(skylake, 1e-6, 5000, rng) > 0).all()
