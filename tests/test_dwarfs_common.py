"""Uniform behaviour across all eleven dwarf benchmarks."""

import numpy as np
import pytest

from repro import ocl
from repro.dwarfs import BENCHMARKS, SIZES, create, get_benchmark
from repro.dwarfs.base import Benchmark
from repro.dwarfs.registry import EXTENSIONS
from repro.perfmodel import KernelProfile

#: Paper benchmarks plus extensions — the lifecycle contract holds for all.
ALL = sorted([*BENCHMARKS, *EXTENSIONS])


class TestRegistry:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARKS) == 11

    def test_expected_names(self):
        assert set(BENCHMARKS) == {
            "kmeans", "lud", "csr", "fft", "dwt", "srad", "crc", "nw",
            "gem", "nqueens", "hmm",
        }

    def test_lookup_case_insensitive(self):
        assert get_benchmark("KMEANS").name == "kmeans"

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="known"):
            get_benchmark("quicksort")

    def test_dwarf_coverage(self):
        """One benchmark per Berkeley dwarf named in the paper."""
        dwarfs = {cls.dwarf for cls in BENCHMARKS.values()}
        assert dwarfs == {
            "MapReduce", "Dense Linear Algebra", "Sparse Linear Algebra",
            "Spectral Methods", "Structured Grid", "Combinational Logic",
            "Dynamic Programming", "N-Body Methods",
            "Backtrack & Branch and Bound", "Graphical Models",
        }

    def test_four_sizes_except_restricted(self):
        for name, cls in BENCHMARKS.items():
            if name == "nqueens":
                assert cls.available_sizes() == ("tiny",)
            else:
                assert cls.available_sizes() == SIZES


@pytest.mark.parametrize("name", ALL)
class TestLifecycle:
    def test_tiny_end_to_end_validates(self, name, cpu_context, cpu_queue):
        bench = create(name, "tiny")
        bench.run_complete(cpu_context, cpu_queue)
        assert cpu_queue.total_kernel_time_s() > 0

    def test_footprint_matches_allocation(self, name, cpu_context):
        """The paper verifies footprints by printing the sum of device
        allocations; our footprint_bytes must agree with the context's
        accounting (within 2% for benchmarks whose data is generated
        stochastically)."""
        bench = create(name, "tiny")
        bench.host_setup(cpu_context)
        declared = bench.footprint_bytes()
        allocated = cpu_context.allocated_bytes
        assert allocated == pytest.approx(declared, rel=0.02)

    def test_profiles_well_formed(self, name):
        bench = create(name, "tiny")
        profiles = bench.profiles()
        assert profiles
        for p in profiles:
            assert isinstance(p, KernelProfile)
            assert p.work_items >= 1
            assert p.launches >= 1
            assert p.total_ops + p.chain_ops + p.bytes_total > 0

    def test_access_trace_within_footprint(self, name):
        bench = create(name, "tiny")
        trace = bench.access_trace(max_len=5000)
        assert len(trace) > 0
        assert trace.min() >= 0
        # traces address the declared footprint (allow one line of slack)
        assert trace.max() < bench.footprint_bytes() + 64

    def test_validate_before_collect_raises(self, name):
        bench = create(name, "tiny")
        with pytest.raises(AssertionError):
            bench.validate()

    def test_run_before_setup_raises(self, name, cpu_queue):
        bench = create(name, "tiny")
        with pytest.raises(RuntimeError):
            bench.run_iteration(cpu_queue)

    def test_teardown_releases_buffers(self, name, cpu_context):
        bench = create(name, "tiny")
        bench.host_setup(cpu_context)
        bench.teardown()
        assert cpu_context.allocated_bytes == 0

    def test_cli_args_render(self, name):
        text = get_benchmark(name).cli_args("tiny")
        assert text
        assert "{" not in text  # fully substituted

    def test_repeated_iterations_still_validate(self, name, cpu_context,
                                                cpu_queue):
        bench = create(name, "tiny")
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        for _ in range(2):
            bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        bench.validate()
