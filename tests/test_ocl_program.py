"""Program/kernel build, argument binding and the work-item adapter."""

import numpy as np
import pytest

from repro.ocl import (
    BuildProgramFailure,
    InvalidKernelArgs,
    InvalidValue,
    KernelSource,
    Program,
    ndrange,
    work_item_kernel,
)
from repro.perfmodel import KernelProfile


def _noop(nd, *args):
    pass


class TestBuild:
    def test_build_and_create(self, cpu_context):
        prog = Program(cpu_context, [KernelSource("k", _noop)]).build()
        assert prog.kernel_names == ("k",)
        assert "succeeded" in prog.build_log
        assert prog.create_kernel("k").name == "k"

    def test_create_before_build_fails(self, cpu_context):
        prog = Program(cpu_context, [KernelSource("k", _noop)])
        with pytest.raises(BuildProgramFailure):
            prog.create_kernel("k")

    def test_empty_program_fails(self, cpu_context):
        with pytest.raises(BuildProgramFailure):
            Program(cpu_context, []).build()

    def test_duplicate_names_fail(self, cpu_context):
        with pytest.raises(BuildProgramFailure):
            Program(cpu_context, [
                KernelSource("k", _noop), KernelSource("k", _noop),
            ]).build()

    def test_non_callable_body_fails(self, cpu_context):
        with pytest.raises(BuildProgramFailure):
            Program(cpu_context, [KernelSource("k", "not callable")]).build()

    def test_unknown_kernel_name(self, cpu_context):
        prog = Program(cpu_context, [KernelSource("k", _noop)]).build()
        with pytest.raises(InvalidValue):
            prog.create_kernel("missing")

    def test_all_kernels(self, cpu_context):
        prog = Program(cpu_context, [
            KernelSource("a", _noop), KernelSource("b", _noop),
        ]).build()
        assert set(prog.all_kernels()) == {"a", "b"}


class TestArguments:
    def test_unset_args_rejected_at_enqueue(self, cpu_context, cpu_queue):
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        with pytest.raises(InvalidKernelArgs):
            cpu_queue.enqueue_nd_range_kernel(k, (4,))

    def test_set_arg_individual_slots(self, cpu_context):
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        k.set_arg(1, 42)
        k.set_arg(0, 7)
        assert k.resolved_args() == [7, 42]

    def test_partial_args_rejected(self, cpu_context):
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        k.set_arg(1, 42)  # slot 0 left unset
        with pytest.raises(InvalidKernelArgs):
            k.resolved_args()

    def test_buffer_resolved_to_array(self, cpu_context):
        buf = cpu_context.buffer_like(np.arange(4, dtype=np.int32))
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        k.set_args(buf, 3.5)
        resolved = k.resolved_args()
        np.testing.assert_array_equal(resolved[0], np.arange(4))
        assert resolved[1] == 3.5

    def test_foreign_buffer_arg_rejected(self, cpu_context, gpu_context):
        foreign = gpu_context.create_buffer(size=16)
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        k.set_args(foreign)
        with pytest.raises(InvalidKernelArgs):
            k.resolved_args()


class TestProfiles:
    def test_default_profile_launch_only(self, cpu_context):
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        profile = k.resolve_profile(ndrange(128), [])
        assert profile.work_items == 128
        assert profile.flops == 0

    def test_static_profile(self, cpu_context):
        static = KernelProfile("k", flops=10, int_ops=0, bytes_read=4,
                               bytes_written=4, working_set_bytes=8, work_items=1)
        k = Program(cpu_context, [
            KernelSource("k", _noop, static)
        ]).build().create_kernel("k")
        assert k.resolve_profile(ndrange(1), []) is static

    def test_callable_profile_receives_args(self, cpu_context):
        def prof(nd, x):
            return KernelProfile("k", flops=float(x), int_ops=0, bytes_read=0,
                                 bytes_written=0, working_set_bytes=0,
                                 work_items=nd.work_items)
        k = Program(cpu_context, [
            KernelSource("k", _noop, prof)
        ]).build().create_kernel("k")
        profile = k.resolve_profile(ndrange(32), [21])
        assert profile.flops == 21
        assert profile.work_items == 32


class TestWorkItemAdapter:
    def test_scalar_kernel_1d(self, cpu_context, cpu_queue):
        out = cpu_context.buffer_like(np.zeros(8, dtype=np.int64))

        def body(gid, arr):
            arr[gid] = gid * gid

        k = Program(cpu_context, [
            KernelSource("sq", work_item_kernel(body))
        ]).build().create_kernel("sq")
        k.set_args(out)
        cpu_queue.enqueue_nd_range_kernel(k, (8,))
        np.testing.assert_array_equal(out.array, np.arange(8) ** 2)

    def test_scalar_kernel_2d_gets_tuple_gid(self, cpu_context, cpu_queue):
        out = cpu_context.buffer_like(np.zeros((3, 4), dtype=np.int64))

        def body(gid, arr):
            i, j = gid
            arr[i, j] = 10 * i + j

        k = Program(cpu_context, [
            KernelSource("idx", work_item_kernel(body))
        ]).build().create_kernel("idx")
        k.set_args(out)
        cpu_queue.enqueue_nd_range_kernel(k, (3, 4))
        expected = 10 * np.arange(3)[:, None] + np.arange(4)[None, :]
        np.testing.assert_array_equal(out.array, expected)


class TestScalarArgValidation:
    """set_arg checks scalar values against the parsed C type (§4.4)."""

    SRC = "__kernel void f(__global float *x, int n, float lam) {}"

    def _kernel(self, cpu_context):
        from repro.ocl import CLSourceError  # noqa: F401  (re-export check)
        return Program(cpu_context, [
            KernelSource("f", _noop, cl_source=self.SRC)
        ]).build().create_kernel("f")

    def test_float_to_int_param_rejected(self, cpu_context):
        from repro.ocl import CLSourceError
        kernel = self._kernel(cpu_context)
        with pytest.raises(CLSourceError, match="'f'.*argument 1.*'n'"):
            kernel.set_arg(1, 0.5)

    def test_numpy_float_to_int_param_rejected(self, cpu_context):
        from repro.ocl import CLSourceError
        kernel = self._kernel(cpu_context)
        with pytest.raises(CLSourceError):
            kernel.set_args(None, np.float32(2.0), 1.0)

    def test_array_to_scalar_param_rejected(self, cpu_context):
        from repro.ocl import CLSourceError
        kernel = self._kernel(cpu_context)
        with pytest.raises(CLSourceError, match="array"):
            kernel.set_arg(2, np.zeros(4, np.float32))

    def test_buffer_to_scalar_param_rejected(self, cpu_context):
        from repro.ocl import CLSourceError
        buf = cpu_context.buffer_like(np.zeros(4, np.float32))
        kernel = self._kernel(cpu_context)
        with pytest.raises(CLSourceError, match="Buffer"):
            kernel.set_arg(1, buf)

    def test_valid_scalars_accepted(self, cpu_context):
        buf = cpu_context.buffer_like(np.zeros(4, np.float32))
        kernel = self._kernel(cpu_context)
        kernel.set_args(buf, 16, 0.5)        # int to int, float to float
        kernel.set_arg(1, np.int32(3))       # numpy ints fine too
        kernel.set_arg(2, 2)                 # int widens to float: fine

    def test_pointer_params_not_validated(self, cpu_context):
        # OpenDwarfs-style hosts sometimes bind placeholder ints before
        # the real buffer; validation must not reject pointer slots.
        kernel = self._kernel(cpu_context)
        kernel.set_arg(0, 123)

    def test_extra_args_deferred_to_arity_check(self, cpu_context):
        kernel = self._kernel(cpu_context)
        kernel.set_args(1, 2, 3.0, 4)  # 4th arg beyond signature: no raise
        assert kernel._args[3] == 4

    def test_no_signature_no_validation(self, cpu_context):
        kernel = Program(cpu_context, [
            KernelSource("g", _noop)
        ]).build().create_kernel("g")
        kernel.set_args(0.5, np.zeros(3))  # nothing to validate against


class TestWorkItemTracking:
    def test_barrier_noop_outside_tracking(self):
        from repro.ocl import current_work_item, work_group_barrier
        assert current_work_item() is None
        work_group_barrier()  # must not raise

    def test_tracking_publishes_state(self, cpu_context, cpu_queue):
        from repro.ocl import (
            current_work_item,
            disable_work_item_tracking,
            enable_work_item_tracking,
        )
        seen = []

        def item(gid, x):
            state = current_work_item()
            seen.append((state.gid, state.group, state.epoch))

        buf = cpu_context.buffer_like(np.zeros(4, np.int64))
        kernel = Program(cpu_context, [
            KernelSource("t", work_item_kernel(item))
        ]).build().create_kernel("t").set_args(buf)
        enable_work_item_tracking()
        try:
            cpu_queue.enqueue_nd_range_kernel(kernel, (4,), (2,))
        finally:
            disable_work_item_tracking()
        assert seen == [(0, (0,), 0), (1, (0,), 0), (2, (1,), 0), (3, (1,), 0)]

    def test_barrier_bumps_epoch(self, cpu_context, cpu_queue):
        from repro.ocl import (
            current_work_item,
            disable_work_item_tracking,
            enable_work_item_tracking,
            work_group_barrier,
        )
        epochs = []

        def item(gid, x):
            epochs.append(current_work_item().epoch)
            work_group_barrier()
            epochs.append(current_work_item().epoch)

        buf = cpu_context.buffer_like(np.zeros(2, np.int64))
        kernel = Program(cpu_context, [
            KernelSource("e", work_item_kernel(item))
        ]).build().create_kernel("e").set_args(buf)
        enable_work_item_tracking()
        try:
            cpu_queue.enqueue_nd_range_kernel(kernel, (2,))
        finally:
            disable_work_item_tracking()
        assert epochs == [0, 1, 0, 1]  # epoch resets per work item
