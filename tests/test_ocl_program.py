"""Program/kernel build, argument binding and the work-item adapter."""

import numpy as np
import pytest

from repro.ocl import (
    BuildProgramFailure,
    InvalidKernelArgs,
    InvalidValue,
    KernelSource,
    Program,
    ndrange,
    work_item_kernel,
)
from repro.perfmodel import KernelProfile


def _noop(nd, *args):
    pass


class TestBuild:
    def test_build_and_create(self, cpu_context):
        prog = Program(cpu_context, [KernelSource("k", _noop)]).build()
        assert prog.kernel_names == ("k",)
        assert "succeeded" in prog.build_log
        assert prog.create_kernel("k").name == "k"

    def test_create_before_build_fails(self, cpu_context):
        prog = Program(cpu_context, [KernelSource("k", _noop)])
        with pytest.raises(BuildProgramFailure):
            prog.create_kernel("k")

    def test_empty_program_fails(self, cpu_context):
        with pytest.raises(BuildProgramFailure):
            Program(cpu_context, []).build()

    def test_duplicate_names_fail(self, cpu_context):
        with pytest.raises(BuildProgramFailure):
            Program(cpu_context, [
                KernelSource("k", _noop), KernelSource("k", _noop),
            ]).build()

    def test_non_callable_body_fails(self, cpu_context):
        with pytest.raises(BuildProgramFailure):
            Program(cpu_context, [KernelSource("k", "not callable")]).build()

    def test_unknown_kernel_name(self, cpu_context):
        prog = Program(cpu_context, [KernelSource("k", _noop)]).build()
        with pytest.raises(InvalidValue):
            prog.create_kernel("missing")

    def test_all_kernels(self, cpu_context):
        prog = Program(cpu_context, [
            KernelSource("a", _noop), KernelSource("b", _noop),
        ]).build()
        assert set(prog.all_kernels()) == {"a", "b"}


class TestArguments:
    def test_unset_args_rejected_at_enqueue(self, cpu_context, cpu_queue):
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        with pytest.raises(InvalidKernelArgs):
            cpu_queue.enqueue_nd_range_kernel(k, (4,))

    def test_set_arg_individual_slots(self, cpu_context):
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        k.set_arg(1, 42)
        k.set_arg(0, 7)
        assert k.resolved_args() == [7, 42]

    def test_partial_args_rejected(self, cpu_context):
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        k.set_arg(1, 42)  # slot 0 left unset
        with pytest.raises(InvalidKernelArgs):
            k.resolved_args()

    def test_buffer_resolved_to_array(self, cpu_context):
        buf = cpu_context.buffer_like(np.arange(4, dtype=np.int32))
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        k.set_args(buf, 3.5)
        resolved = k.resolved_args()
        np.testing.assert_array_equal(resolved[0], np.arange(4))
        assert resolved[1] == 3.5

    def test_foreign_buffer_arg_rejected(self, cpu_context, gpu_context):
        foreign = gpu_context.create_buffer(size=16)
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        k.set_args(foreign)
        with pytest.raises(InvalidKernelArgs):
            k.resolved_args()


class TestProfiles:
    def test_default_profile_launch_only(self, cpu_context):
        k = Program(cpu_context, [KernelSource("k", _noop)]).build().create_kernel("k")
        profile = k.resolve_profile(ndrange(128), [])
        assert profile.work_items == 128
        assert profile.flops == 0

    def test_static_profile(self, cpu_context):
        static = KernelProfile("k", flops=10, int_ops=0, bytes_read=4,
                               bytes_written=4, working_set_bytes=8, work_items=1)
        k = Program(cpu_context, [
            KernelSource("k", _noop, static)
        ]).build().create_kernel("k")
        assert k.resolve_profile(ndrange(1), []) is static

    def test_callable_profile_receives_args(self, cpu_context):
        def prof(nd, x):
            return KernelProfile("k", flops=float(x), int_ops=0, bytes_read=0,
                                 bytes_written=0, working_set_bytes=0,
                                 work_items=nd.work_items)
        k = Program(cpu_context, [
            KernelSource("k", _noop, prof)
        ]).build().create_kernel("k")
        profile = k.resolve_profile(ndrange(32), [21])
        assert profile.flops == 21
        assert profile.work_items == 32


class TestWorkItemAdapter:
    def test_scalar_kernel_1d(self, cpu_context, cpu_queue):
        out = cpu_context.buffer_like(np.zeros(8, dtype=np.int64))

        def body(gid, arr):
            arr[gid] = gid * gid

        k = Program(cpu_context, [
            KernelSource("sq", work_item_kernel(body))
        ]).build().create_kernel("sq")
        k.set_args(out)
        cpu_queue.enqueue_nd_range_kernel(k, (8,))
        np.testing.assert_array_equal(out.array, np.arange(8) ** 2)

    def test_scalar_kernel_2d_gets_tuple_gid(self, cpu_context, cpu_queue):
        out = cpu_context.buffer_like(np.zeros((3, 4), dtype=np.int64))

        def body(gid, arr):
            i, j = gid
            arr[i, j] = 10 * i + j

        k = Program(cpu_context, [
            KernelSource("idx", work_item_kernel(body))
        ]).build().create_kernel("idx")
        k.set_args(out)
        cpu_queue.enqueue_nd_range_kernel(k, (3, 4))
        expected = 10 * np.arange(3)[:, None] + np.arange(4)[None, :]
        np.testing.assert_array_equal(out.array, expected)
