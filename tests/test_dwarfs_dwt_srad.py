"""dwt (CDF 5/3 lifting) and srad (diffusion stencil) correctness."""

import numpy as np
import pytest

from repro.dwarfs.dwt import DWT, lift53_forward, lift53_inverse
from repro.dwarfs.srad import SRAD


class TestLifting:
    @pytest.mark.parametrize("n", [2, 3, 8, 9, 54, 55])
    def test_perfect_reconstruction_1d(self, n, rng):
        x = rng.uniform(0, 255, n).astype(np.float32)
        fwd = lift53_forward(x, axis=0)
        back = lift53_inverse(fwd, axis=0)
        np.testing.assert_allclose(back, x, atol=1e-3)

    def test_constant_signal_has_zero_detail(self):
        x = np.full(16, 42.0, dtype=np.float32)
        fwd = lift53_forward(x, axis=0)
        assert np.allclose(fwd[8:], 0.0)       # high-pass vanishes
        assert np.allclose(fwd[:8], 42.0)      # low-pass preserves DC

    def test_linear_ramp_has_zero_detail(self):
        """CDF 5/3 has two vanishing moments' worth of prediction for
        linear signals (away from the boundary)."""
        x = np.arange(32, dtype=np.float32)
        fwd = lift53_forward(x, axis=0)
        assert np.allclose(fwd[16:-1], 0.0, atol=1e-4)

    def test_axis_1_on_2d(self, rng):
        img = rng.uniform(0, 255, (6, 10)).astype(np.float32)
        fwd = lift53_forward(img, axis=1)
        back = lift53_inverse(fwd, axis=1)
        np.testing.assert_allclose(back, img, atol=1e-3)

    def test_subband_lengths_odd(self):
        x = np.arange(9, dtype=np.float32)
        fwd = lift53_forward(x, axis=0)
        assert len(fwd) == 9  # 5 low + 4 high


class TestDWT:
    def test_presets_match_table2(self):
        assert DWT.presets == {
            "tiny": (72, 54), "small": (200, 150), "medium": (1152, 864),
            "large": (3648, 2736)}

    def test_from_args(self):
        bench = DWT.from_args(["-l", "3", "200x150-gum.ppm"])
        assert (bench.width, bench.height) == (200, 150)
        assert bench.levels == 3

    def test_from_args_requires_size(self):
        with pytest.raises(ValueError):
            DWT.from_args(["-l", "3"])

    def test_too_small_for_levels(self):
        with pytest.raises(ValueError):
            DWT(width=4, height=4, levels=3)

    def test_two_kernels_per_level(self, cpu_context, cpu_queue):
        bench = DWT(width=72, height=54, levels=3)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        assert len(events) == 6
        assert [e.info["kernel"] for e in events[:2]] == ["dwt_rows", "dwt_cols"]

    def test_multilevel_reconstruction(self, cpu_context, cpu_queue):
        DWT(width=72, height=54).run_complete(cpu_context, cpu_queue)

    def test_odd_dimensions_handled(self, cpu_context, cpu_queue):
        """72x54 halves to 36x27 (odd) then 18x(ceil 14): the paper's
        tiny size requires odd-length lifting."""
        bench = DWT(width=72, height=54, levels=3)
        bench.run_complete(cpu_context, cpu_queue)
        shapes = bench._level_shapes()
        assert shapes == [(54, 72), (27, 36), (14, 18)]

    def test_energy_compaction(self, cpu_context, cpu_queue):
        """Most signal energy concentrates into the LL subband."""
        bench = DWT(width=128, height=128, levels=3)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        c = bench.coefficients_out.astype(np.float64)
        ll = c[:16, :16]
        total = (c**2).sum()
        assert (ll**2).sum() > 0.75 * total

    def test_coefficients_pgm_output(self, cpu_context, cpu_queue):
        from repro.io import ppm
        bench = DWT(width=72, height=54)
        bench.run_complete(cpu_context, cpu_queue)
        img = ppm.loads(bench.coefficients_pgm())
        assert img.shape == (54, 72)


class TestSRAD:
    def test_presets_match_table2(self):
        assert SRAD.presets == {
            "tiny": (80, 16), "small": (128, 80), "medium": (1024, 336),
            "large": (2048, 1024)}

    def test_from_args_full_form(self):
        bench = SRAD.from_args(["128", "80", "0", "127", "0", "127",
                                "0.5", "2"])
        assert (bench.rows, bench.cols) == (128, 80)
        assert bench.lam == 0.5
        assert bench.iterations == 2

    def test_from_args_arity(self):
        with pytest.raises(ValueError):
            SRAD.from_args(["128", "80"])

    def test_roi_clamped_to_grid(self):
        bench = SRAD(rows=80, cols=16)
        y1, y2, x1, x2 = bench.roi
        assert y2 <= 79 and x2 <= 15

    def test_matches_reference(self, cpu_context, cpu_queue):
        SRAD(rows=40, cols=24).run_complete(cpu_context, cpu_queue)

    def test_multiple_iterations_match_reference(self, cpu_context, cpu_queue):
        SRAD(rows=32, cols=16, iterations=4).run_complete(cpu_context, cpu_queue)

    def test_diffusion_smooths(self, cpu_context, cpu_queue):
        """Anisotropic diffusion reduces total variation."""
        bench = SRAD(rows=64, cols=64, iterations=10)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        def tv(a):
            return float(np.abs(np.diff(a, axis=0)).sum()
                         + np.abs(np.diff(a, axis=1)).sum())
        assert tv(bench.result) < tv(bench.image)

    def test_positive_image_stays_positive(self, cpu_context, cpu_queue):
        bench = SRAD(rows=48, cols=32, iterations=5)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        assert (bench.result > 0).all()

    def test_two_kernels_per_iteration(self, cpu_context, cpu_queue):
        bench = SRAD(rows=32, cols=16, iterations=3)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        assert len(events) == 6
        assert {e.info["kernel"] for e in events} == {"srad1", "srad2"}

    def test_profile_memory_bound_on_gpu(self, gtx1080):
        """srad is the paper's memory-bandwidth-limited dwarf."""
        from repro.perfmodel import iteration_time
        bench = SRAD.from_size("large")
        tb = iteration_time(gtx1080, bench.profiles())
        assert tb.bound == "memory"
