"""repro.regress: baseline store, statistical gate, trajectory, CLI."""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.harness.cli import EXIT_FINDINGS, EXIT_OK, EXIT_USAGE, main
from repro.harness.runner import RunConfig
from repro.harness.sweep import MODEL_VERSION, SweepCache, cell_key, run_sweep
from repro.regress import (
    Baseline,
    BaselineError,
    BaselineStore,
    CellBaseline,
    RegressReport,
    Thresholds,
    Trajectory,
    TrajectoryError,
    TrajectoryPoint,
    change_points,
    classify,
    compare,
)
from repro.scibench.stats import bootstrap_ratio_ci, cohens_d
from repro.telemetry.metrics import default_registry

DEVICES = ("i7-6700K", "GTX 1080")


def _configs(devices=DEVICES, samples=12, benchmark="fft"):
    return [
        RunConfig(benchmark=benchmark, size="tiny", device=d,
                  samples=samples, execute=False, validate=False)
        for d in devices
    ]


@pytest.fixture(scope="module")
def sweep():
    """One small model-only sweep, shared by the module's tests."""
    configs = _configs()
    outcome = run_sweep(configs, jobs=1)
    return configs, outcome.results


def _slowed(results, device, factor=1.2):
    """Copies of ``results`` with one device's samples scaled slower."""
    return [
        dataclasses.replace(r, times_s=r.times_s * factor)
        if r.device == device else r
        for r in results
    ]


# ----------------------------------------------------------------------
# Statistics helpers
# ----------------------------------------------------------------------
class TestStatsHelpers:
    def test_cohens_d_known_value(self):
        a = [1.0, 2.0, 3.0, 4.0]
        b = [2.0, 3.0, 4.0, 5.0]  # shift of 1, pooled std ~1.29
        d = cohens_d(a, b)
        assert d == pytest.approx(1.0 / np.std(a, ddof=1))

    def test_cohens_d_sign_follows_second_group(self):
        a, b = [1.0, 1.1, 0.9], [2.0, 2.1, 1.9]
        assert cohens_d(a, b) > 0
        assert cohens_d(b, a) < 0

    def test_cohens_d_constant_groups(self):
        assert cohens_d([1.0, 1.0], [1.0, 1.0]) == 0.0
        assert cohens_d([1.0, 1.0], [2.0, 2.0]) == math.inf

    def test_cohens_d_needs_two_samples(self):
        with pytest.raises(ValueError):
            cohens_d([1.0], [1.0, 2.0])

    def test_bootstrap_ci_brackets_the_ratio(self):
        rng = np.random.default_rng(7)
        a = rng.normal(1.0, 0.05, 50)
        b = rng.normal(1.2, 0.05, 50)
        lo, hi = bootstrap_ratio_ci(a, b, seed=3)
        assert lo < 1.2 / 1.0 < hi
        assert hi - lo < 0.2

    def test_bootstrap_ci_deterministic_per_seed(self):
        a, b = [1.0, 1.1, 0.9, 1.05], [1.2, 1.3, 1.1, 1.25]
        assert bootstrap_ratio_ci(a, b, seed=5) == bootstrap_ratio_ci(
            a, b, seed=5)

    def test_bootstrap_ci_rejects_zero_mean(self):
        with pytest.raises(ValueError):
            bootstrap_ratio_ci([0.0, 0.0], [1.0, 2.0])

    def test_bootstrap_ci_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ratio_ci([1.0], [1.0], confidence=1.5)


# ----------------------------------------------------------------------
# Baseline store
# ----------------------------------------------------------------------
class TestBaseline:
    def test_from_sweep_freezes_every_cell(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        assert len(baseline) == len(configs)
        cell = baseline.cell("fft", "tiny", "GTX 1080")
        assert cell is not None
        assert cell.key == cell_key(cell.run_config())
        np.testing.assert_array_equal(
            np.array(cell.times_s),
            next(r for r in results if r.device == "GTX 1080").times_s)

    def test_save_load_round_trip(self, sweep, tmp_path):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        store = BaselineStore(tmp_path)
        path = store.save(baseline)
        assert path.name == "main.json"
        back = store.load("main")
        assert back.model_version == MODEL_VERSION
        assert back.coordinates() == baseline.coordinates()
        for a, b in zip(baseline, back):
            assert a == b

    def test_summary_matches_samples(self, sweep):
        configs, results = sweep
        cell = CellBaseline.from_result(configs[0], results[0])
        assert cell.summary.n == len(cell.times_s)
        assert cell.summary.mean == pytest.approx(
            float(np.mean(cell.times_s)))

    def test_duplicate_cell_rejected(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        with pytest.raises(BaselineError, match="duplicate"):
            baseline.add(CellBaseline.from_result(configs[0], results[0]))

    def test_mismatched_lengths_rejected(self, sweep):
        configs, results = sweep
        with pytest.raises(BaselineError):
            Baseline.from_sweep("main", configs, results[:1])

    def test_invalid_name_rejected(self):
        with pytest.raises(BaselineError):
            Baseline(name="../escape")

    def test_missing_baseline_is_error(self, tmp_path):
        with pytest.raises(BaselineError, match="no baseline"):
            BaselineStore(tmp_path).load("ghost")

    def test_corrupt_baseline_is_error(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            BaselineStore(tmp_path).load("bad")

    def test_future_schema_rejected(self, sweep, tmp_path):
        configs, results = sweep
        store = BaselineStore(tmp_path)
        store.save(Baseline.from_sweep("main", configs, results))
        payload = json.loads((tmp_path / "main.json").read_text())
        payload["schema_version"] = 99
        (tmp_path / "main.json").write_text(json.dumps(payload))
        with pytest.raises(BaselineError, match="schema version"):
            store.load("main")

    def test_store_names_and_contains(self, sweep, tmp_path):
        configs, results = sweep
        store = BaselineStore(tmp_path)
        assert store.names() == []
        store.save(Baseline.from_sweep("main", configs, results))
        assert store.names() == ["main"]
        assert "main" in store and "other" not in store


# ----------------------------------------------------------------------
# Comparison and classification
# ----------------------------------------------------------------------
class TestCompare:
    def test_same_seed_is_all_unchanged(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        fresh = run_sweep(configs, jobs=1).results
        report = compare(baseline, fresh)
        assert report.summary() == {
            "regressed": 0, "improved": 0,
            "unchanged": len(configs), "missing": 0, "new": 0,
        }
        assert not report.fails("regressed")
        assert not report.fails("changed")

    def test_slowdown_flags_exactly_the_perturbed_cells(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        report = compare(baseline, _slowed(results, "GTX 1080", 1.2))
        assert [c.coordinates for c in report.regressions()] == [
            ("fft", "tiny", "GTX 1080")]
        assert report.count("unchanged") == len(configs) - 1
        assert report.fails("regressed")
        cell = report.regressions()[0]
        assert cell.p_value < 0.01
        assert cell.effect_size >= 0.5
        assert cell.ratio == pytest.approx(1.2, rel=1e-6)
        assert cell.ratio_ci[0] <= 1.2 <= cell.ratio_ci[1]

    def test_speedup_is_improved_not_regressed(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        report = compare(baseline, _slowed(results, "i7-6700K", 1 / 1.2))
        assert [c.coordinates for c in report.improvements()] == [
            ("fft", "tiny", "i7-6700K")]
        assert not report.fails("regressed")
        assert report.fails("changed")

    def test_small_shift_below_min_shift_is_unchanged(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        # 1% mean shift: significant and large-d (scaling shifts every
        # sample) but below the 3% materiality floor
        report = compare(baseline, _slowed(results, "GTX 1080", 1.01))
        assert report.count("regressed") == 0

    def test_missing_and_new_cells(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        crc = run_sweep(_configs(devices=("K20m",), benchmark="crc"),
                        jobs=1).results
        report = compare(baseline, results[:1] + crc)
        assert report.count("missing") == 1
        assert report.count("new") == 1
        assert not report.fails("regressed")
        assert report.fails("changed")

    def test_stale_flag_on_model_drift(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        drifted = Baseline(name="drift")
        for cell in baseline:
            drifted.add(dataclasses.replace(cell, key="0" * 64))
        report = compare(drifted, results)
        assert len(report.stale()) == len(configs)
        assert "stale" in report.render_text()

    def test_classify_identical_groups(self):
        samples = [1.0, 1.1, 0.9, 1.05, 0.95]
        status, stats = classify(samples, samples)
        assert status == "unchanged"
        assert stats["ratio"] == pytest.approx(1.0)

    def test_classify_constant_identical_groups(self):
        # zero variance on both sides: Welch's p is nan, never a verdict
        status, _ = classify([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        assert status == "unchanged"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            Thresholds(alpha=0.0)
        with pytest.raises(ValueError):
            Thresholds(min_effect_size=-1.0)
        with pytest.raises(ValueError):
            Thresholds(min_rel_shift=-0.1)


# ----------------------------------------------------------------------
# Report rendering, gating and metrics
# ----------------------------------------------------------------------
class TestReport:
    def test_text_report_elides_unchanged(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        text = compare(baseline, _slowed(results, "GTX 1080")).render_text()
        assert "regressed: fft/tiny/GTX 1080" in text
        assert "i7-6700K" not in text  # unchanged cells are elided
        assert "of 2 cells" in text

    def test_json_report_schema(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        payload = json.loads(
            compare(baseline, _slowed(results, "GTX 1080")).to_json())
        assert payload["schema_version"] == 1
        assert payload["baseline"] == "main"
        assert payload["summary"]["regressed"] == 1
        assert payload["thresholds"]["alpha"] == 0.01
        regressed = [c for c in payload["cells"]
                     if c["status"] == "regressed"]
        assert regressed[0]["device"] == "GTX 1080"
        assert regressed[0]["ratio"] == pytest.approx(1.2, rel=1e-6)

    def test_counters_incremented(self, sweep):
        configs, results = sweep
        baseline = Baseline.from_sweep("main", configs, results)
        registry = default_registry()
        before_r = registry.counter("regress_cells_regressed_total").total
        before_i = registry.counter("regress_cells_improved_total").total
        compare(baseline, _slowed(results, "GTX 1080", 1.2))
        compare(baseline, _slowed(results, "i7-6700K", 1 / 1.2))
        assert registry.counter(
            "regress_cells_regressed_total").total == before_r + 1
        assert registry.counter(
            "regress_cells_improved_total").total == before_i + 1

    def test_fails_modes(self):
        report = RegressReport(baseline_name="b", emit_metrics=False)
        assert not report.fails("regressed")
        assert not report.fails("none")
        with pytest.raises(ValueError):
            report.fails("sometimes")

    def test_rejects_unknown_status(self):
        from repro.regress import CellComparison
        report = RegressReport(emit_metrics=False)
        with pytest.raises(ValueError):
            report.add(CellComparison(
                benchmark="fft", size="tiny", device="K20m",
                device_class="HPC GPU", status="exploded"))


# ----------------------------------------------------------------------
# Trajectory
# ----------------------------------------------------------------------
class TestTrajectory:
    def test_append_and_reload(self, sweep, tmp_path):
        _, results = sweep
        trajectory = Trajectory(tmp_path)
        point = TrajectoryPoint.from_results(0, results, label="seed")
        path = trajectory.append(point)
        assert path.name == "BENCH_0.json"
        back = trajectory.load(0)
        assert back.label == "seed"
        assert len(back.cells) == len(results)
        assert back.cell("fft", "tiny", "GTX 1080").n == 12

    def test_append_only(self, sweep, tmp_path):
        _, results = sweep
        trajectory = Trajectory(tmp_path)
        trajectory.append(TrajectoryPoint.from_results(0, results))
        with pytest.raises(TrajectoryError, match="append-only"):
            trajectory.append(TrajectoryPoint.from_results(0, results))

    def test_indices_and_next_index(self, sweep, tmp_path):
        _, results = sweep
        trajectory = Trajectory(tmp_path)
        assert trajectory.indices() == []
        assert trajectory.next_index() == 0
        trajectory.append(TrajectoryPoint.from_results(4, results))
        assert trajectory.indices() == [4]
        assert trajectory.next_index() == 5

    def test_missing_point_is_error(self, tmp_path):
        with pytest.raises(TrajectoryError, match="BENCH_3"):
            Trajectory(tmp_path).load(3)

    def test_change_points_locate_the_step(self, sweep, tmp_path):
        _, results = sweep
        slowed = _slowed(results, "GTX 1080", 1.25)
        points = [
            TrajectoryPoint.from_results(0, results),
            TrajectoryPoint.from_results(1, results),
            TrajectoryPoint.from_results(2, slowed),
            TrajectoryPoint.from_results(3, slowed),
        ]
        changes = change_points(points)
        assert len(changes) == 1
        change = changes[0]
        assert (change.from_index, change.to_index) == (1, 2)
        assert change.device == "GTX 1080"
        assert change.direction == "slower"
        assert change.ratio == pytest.approx(1.25, rel=1e-6)
        assert "BENCH_2" in change.format()

    def test_no_change_points_on_stable_history(self, sweep, tmp_path):
        _, results = sweep
        points = [TrajectoryPoint.from_results(i, results) for i in range(3)]
        assert change_points(points) == []

    def test_change_points_skip_absent_cells(self, sweep):
        _, results = sweep
        points = [
            TrajectoryPoint.from_results(0, results[:1]),
            TrajectoryPoint.from_results(1, _slowed(results, "GTX 1080",
                                                    1.5)),
        ]
        # GTX 1080 is absent from point 0: no pairing, no change point
        assert change_points(points) == []

    def test_schema_guard(self, sweep, tmp_path):
        _, results = sweep
        trajectory = Trajectory(tmp_path)
        trajectory.append(TrajectoryPoint.from_results(0, results))
        payload = json.loads((tmp_path / "BENCH_0.json").read_text())
        payload["schema_version"] = 99
        (tmp_path / "BENCH_0.json").write_text(json.dumps(payload))
        with pytest.raises(TrajectoryError, match="schema version"):
            trajectory.load(0)


# ----------------------------------------------------------------------
# CLI: record / check / history (the CI gate)
# ----------------------------------------------------------------------
def _record_args(tmp_path, **extra):
    args = ["regress", "record", "--name", "main",
            "--benchmark", "fft", "--size", "tiny",
            "--samples", "10", "--no-execute", "--jobs", "1", "--no-cache",
            "--baseline-dir", str(tmp_path / "baselines")]
    for key, value in extra.items():
        args += [f"--{key.replace('_', '-')}", str(value)]
    return args


class TestRegressCLI:
    def test_record_then_check_same_seed_exits_0(self, capsys, tmp_path):
        assert main(_record_args(tmp_path)) == EXIT_OK
        out = capsys.readouterr().out
        assert "recorded baseline 'main'" in out
        assert (tmp_path / "baselines" / "main.json").exists()
        rc = main(["regress", "check", "--name", "main",
                   "--baseline-dir", str(tmp_path / "baselines"),
                   "--fail-on", "regressed", "--jobs", "1"])
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "0 regressed" in out

    def test_check_flags_slowed_device_model(self, capsys, tmp_path,
                                             monkeypatch):
        """A perturbed device model regresses exactly its own cells."""
        assert main(_record_args(tmp_path,
                                 device="GTX 1080")) == EXIT_OK
        # second baseline cell set on an untouched device
        assert main(["regress", "record", "--name", "cpu",
                     "--benchmark", "fft", "--size", "tiny",
                     "--samples", "10", "--no-execute", "--jobs", "1",
                     "--no-cache",
                     "--baseline-dir", str(tmp_path / "baselines")]
                    ) == EXIT_OK
        capsys.readouterr()

        from repro.harness import runner as runner_mod
        real = runner_mod.noisy_samples

        def slowed(spec, nominal, samples, rng, **kw):
            scale = 1.2 if spec.name == "GTX 1080" else 1.0
            return real(spec, nominal, samples, rng, **kw) * scale

        monkeypatch.setattr(runner_mod, "noisy_samples", slowed)
        rc = main(["regress", "check", "--name", "cpu",
                   "--baseline-dir", str(tmp_path / "baselines"),
                   "--fail-on", "regressed", "--jobs", "1", "--json"])
        assert rc == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        flagged = [(c["benchmark"], c["size"], c["device"])
                   for c in payload["cells"] if c["status"] == "regressed"]
        expected = [(c["benchmark"], c["size"], c["device"])
                    for c in payload["cells"] if c["device"] == "GTX 1080"]
        assert flagged == expected and flagged  # exactly the slowed device
        for cell in payload["cells"]:
            if cell["status"] == "regressed":
                assert cell["p_value"] < 0.01
                assert cell["effect_size"] >= 0.5

    def test_check_unknown_baseline_exits_2(self, capsys, tmp_path):
        rc = main(["regress", "check", "--name", "ghost",
                   "--baseline-dir", str(tmp_path / "empty")])
        assert rc == EXIT_USAGE
        assert "no baseline" in capsys.readouterr().err

    def test_check_bad_threshold_exits_2(self, capsys, tmp_path):
        assert main(_record_args(tmp_path)) == EXIT_OK
        capsys.readouterr()
        rc = main(["regress", "check", "--name", "main",
                   "--baseline-dir", str(tmp_path / "baselines"),
                   "--alpha", "7"])
        assert rc == EXIT_USAGE

    def test_record_appends_trajectory_point(self, capsys, tmp_path):
        rc = main(_record_args(tmp_path,
                               trajectory_dir=tmp_path / "traj",
                               bench_index=4))
        assert rc == EXIT_OK
        assert "BENCH_4.json" in capsys.readouterr().out
        assert (tmp_path / "traj" / "BENCH_4.json").exists()

    def test_record_refuses_to_overwrite_trajectory_point(self, capsys,
                                                          tmp_path):
        assert main(_record_args(tmp_path,
                                 trajectory_dir=tmp_path / "traj",
                                 bench_index=0)) == EXIT_OK
        rc = main(["regress", "record", "--name", "again",
                   "--benchmark", "fft", "--size", "tiny",
                   "--samples", "10", "--no-execute", "--jobs", "1",
                   "--no-cache",
                   "--baseline-dir", str(tmp_path / "baselines"),
                   "--trajectory-dir", str(tmp_path / "traj"),
                   "--bench-index", "0"])
        assert rc == EXIT_USAGE
        assert "append-only" in capsys.readouterr().err

    def test_history_renders_and_detects_change(self, capsys, tmp_path,
                                                monkeypatch):
        assert main(_record_args(tmp_path,
                                 trajectory_dir=tmp_path / "traj")) == EXIT_OK

        from repro.harness import runner as runner_mod
        real = runner_mod.noisy_samples
        monkeypatch.setattr(
            runner_mod, "noisy_samples",
            lambda spec, nominal, samples, rng, **kw:
                real(spec, nominal, samples, rng, **kw) * 1.2)
        assert main(["regress", "record", "--name", "slow",
                     "--benchmark", "fft", "--size", "tiny",
                     "--samples", "10", "--no-execute", "--jobs", "1",
                     "--no-cache",
                     "--baseline-dir", str(tmp_path / "baselines"),
                     "--trajectory-dir", str(tmp_path / "traj")]) == EXIT_OK
        capsys.readouterr()
        rc = main(["regress", "history",
                   "--trajectory-dir", str(tmp_path / "traj")])
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "BENCH_0" in out and "BENCH_1" in out
        assert "slower at BENCH_1" in out
        rc = main(["regress", "history",
                   "--trajectory-dir", str(tmp_path / "traj"),
                   "--fail-on-change"])
        assert rc == EXIT_FINDINGS

    def test_history_json_empty_dir(self, capsys, tmp_path):
        rc = main(["regress", "history", "--json",
                   "--trajectory-dir", str(tmp_path / "none")])
        assert rc == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"change_points": [], "points": []}

    def test_record_uses_sweep_cache(self, capsys, tmp_path):
        """record runs through run_sweep: a second record is all cache."""
        base = ["regress", "record", "--benchmark", "fft", "--size", "tiny",
                "--samples", "10", "--no-execute", "--jobs", "1",
                "--baseline-dir", str(tmp_path / "baselines"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(base + ["--name", "one"]) == EXIT_OK
        assert main(base + ["--name", "two"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "0 computed" in out and "cached" in out
