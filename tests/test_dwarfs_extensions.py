"""The missing-dwarf extension benchmarks: bfs, fsm, umesh."""

import numpy as np
import pytest

from repro.dwarfs.bfs import BFS, generate_graph
from repro.dwarfs.fsm import (
    ALPHABET,
    DEFAULT_PATTERNS,
    FSM,
    build_aho_corasick,
)
from repro.dwarfs.registry import BENCHMARKS, EXTENSIONS
from repro.dwarfs.umesh import UMesh, build_mesh


class TestDwarfCoverage:
    def test_extensions_complete_the_berkeley_set(self):
        """Paper + extensions cover 13 of the 13 dwarfs the suite can
        express (the paper's §2 goal)."""
        dwarfs = ({cls.dwarf for cls in BENCHMARKS.values()}
                  | {cls.dwarf for cls in EXTENSIONS.values()})
        assert {"Graph Traversal", "Finite State Machine",
                "Unstructured Grid"} <= dwarfs
        assert len(dwarfs) == 13

    def test_extensions_not_in_paper_tables(self):
        from repro.dwarfs import scale_parameters_table
        table = scale_parameters_table()
        for name in ("bfs", "fsm", "umesh", "cwt"):
            assert name not in table


class TestGraphGeneration:
    def test_csr_well_formed(self):
        row_ptr, columns = generate_graph(100, 8, seed=1)
        assert row_ptr[0] == 0
        assert row_ptr[-1] == len(columns)
        assert (np.diff(row_ptr) >= 0).all()
        assert columns.min() >= 0 and columns.max() < 100

    def test_backbone_guarantees_connectivity(self):
        import networkx as nx
        row_ptr, columns = generate_graph(200, 4, seed=2)
        g = nx.Graph()
        g.add_nodes_from(range(200))
        for v in range(200):
            for u in columns[row_ptr[v]:row_ptr[v + 1]]:
                g.add_edge(v, int(u))
        assert nx.is_connected(g)

    def test_undirected_symmetry(self):
        row_ptr, columns = generate_graph(64, 6, seed=3)
        edges = set()
        for v in range(64):
            for u in columns[row_ptr[v]:row_ptr[v + 1]]:
                edges.add((v, int(u)))
        assert all((u, v) in edges for v, u in edges)


class TestBFS:
    def test_matches_serial_and_networkx(self, cpu_context, cpu_queue):
        bench = BFS(n=300)
        bench.run_complete(cpu_context, cpu_queue)
        bench.validate_against_networkx()

    def test_source_level_zero(self, cpu_context, cpu_queue):
        bench = BFS(n=128, source=17)
        bench.run_complete(cpu_context, cpu_queue)
        assert bench.levels_out[17] == 0

    def test_all_reached(self, cpu_context, cpu_queue):
        bench = BFS(n=256)
        bench.run_complete(cpu_context, cpu_queue)
        assert (bench.levels_out >= 0).all()

    def test_launch_per_level(self, cpu_context, cpu_queue):
        bench = BFS(n=200)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        assert len(events) == bench.levels_out.max() + 1

    def test_profile_gather_dominated(self):
        p = BFS(n=10000).profiles()[0]
        assert p.random_fraction >= 0.5
        assert p.flops == 0

    def test_from_args(self):
        bench = BFS.from_args(["5248", "6"])
        assert bench.n == 5248 and bench.avg_degree == 6

    def test_too_small(self):
        with pytest.raises(ValueError):
            BFS(n=1)


class TestAhoCorasick:
    def test_single_pattern_counting(self):
        transitions, matches = build_aho_corasick([(1, 2)], alphabet=4)
        text = [1, 2, 1, 2, 2, 1, 2]
        state, total = 0, 0
        for s in text:
            state = int(transitions[state, s])
            total += int(matches[state])
        assert total == 3

    def test_overlapping_patterns(self):
        # "aa" in "aaaa" occurs 3 times (overlapping)
        transitions, matches = build_aho_corasick([(0, 0)], alphabet=2)
        state, total = 0, 0
        for s in [0, 0, 0, 0]:
            state = int(transitions[state, s])
            total += int(matches[state])
        assert total == 3

    def test_suffix_pattern_counted(self):
        # "abc" and "bc": scanning "abc" must count both
        transitions, matches = build_aho_corasick([(0, 1, 2), (1, 2)],
                                                  alphabet=4)
        state, total = 0, 0
        for s in [0, 1, 2]:
            state = int(transitions[state, s])
            total += int(matches[state])
        assert total == 2

    def test_rejects_bad_patterns(self):
        with pytest.raises(ValueError):
            build_aho_corasick([()])
        with pytest.raises(ValueError):
            build_aho_corasick([(99,)], alphabet=4)

    def test_dense_table_shape(self):
        transitions, matches = build_aho_corasick(DEFAULT_PATTERNS, ALPHABET)
        assert transitions.shape[1] == ALPHABET
        assert transitions.shape[0] == len(matches)
        assert transitions.min() >= 0
        assert transitions.max() < transitions.shape[0]


class TestFSM:
    def test_matches_serial_scan(self, cpu_context, cpu_queue):
        FSM(n_bytes=8000, chunk_bytes=512).run_complete(cpu_context, cpu_queue)

    def test_chunk_boundaries_handled(self, cpu_context, cpu_queue):
        """Matches spanning chunk boundaries must still be counted:
        plant a pattern straddling the cut."""
        bench = FSM(n_bytes=2048, chunk_bytes=1024, patterns=[(1, 2, 3, 4)])
        bench.host_setup(cpu_context)
        bench.text[:] = 0
        bench.text[1022:1026] = [1, 2, 3, 4]  # straddles the boundary
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        assert bench.total_matches == 1
        bench.validate()

    def test_text_not_multiple_of_chunk(self, cpu_context, cpu_queue):
        FSM(n_bytes=2500, chunk_bytes=1024).run_complete(cpu_context, cpu_queue)

    def test_known_count_on_crafted_text(self, cpu_context, cpu_queue):
        bench = FSM(n_bytes=1024, chunk_bytes=256, patterns=[(5, 6)])
        bench.host_setup(cpu_context)
        bench.text[:] = 0
        for pos in (10, 300, 600, 1022):
            bench.text[pos:pos + 2] = [5, 6]
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        assert bench.total_matches == 4

    def test_single_launch(self, cpu_context, cpu_queue):
        bench = FSM(n_bytes=4096)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        assert len(bench.run_iteration(cpu_queue)) == 1

    def test_profile_has_chain(self):
        p = FSM(n_bytes=1 << 20).profiles()[0]
        assert p.chain_ops > 0
        assert p.random_fraction > 0.3

    def test_from_args(self):
        bench = FSM.from_args(["196608", "2048"])
        assert bench.n_bytes == 196608 and bench.chunk_bytes == 2048


class TestMeshGeneration:
    def test_adjacency_symmetric(self):
        _, row_ptr, columns, _ = build_mesh(64, seed=1)
        edges = set()
        for v in range(64):
            for u in columns[row_ptr[v]:row_ptr[v + 1]]:
                edges.add((v, int(u)))
        assert all((u, v) in edges for v, u in edges)

    def test_no_self_loops(self):
        _, row_ptr, columns, _ = build_mesh(64, seed=2)
        for v in range(64):
            assert v not in columns[row_ptr[v]:row_ptr[v + 1]]

    def test_boundary_nonempty_interior_majority(self):
        _, _, _, boundary = build_mesh(500, seed=3)
        assert 3 <= boundary.sum() < 250

    def test_planar_edge_bound(self):
        """A planar triangulation has at most 3n - 6 edges."""
        _, row_ptr, _, _ = build_mesh(200, seed=4)
        assert row_ptr[-1] / 2 <= 3 * 200 - 6


class TestUMesh:
    def test_matches_reference(self, cpu_context, cpu_queue):
        UMesh(n_points=400).run_complete(cpu_context, cpu_queue)

    def test_large_path_uses_vectorised_reference(self, cpu_context, cpu_queue):
        UMesh(n_points=4096, sweeps=2).run_complete(cpu_context, cpu_queue)

    def test_boundary_values_fixed(self, cpu_context, cpu_queue):
        bench = UMesh(n_points=300)
        bench.run_complete(cpu_context, cpu_queue)
        boundary = ~bench.interior
        np.testing.assert_array_equal(
            bench.values_out[boundary], bench.initial_values[boundary])

    def test_relaxation_reduces_residual(self, cpu_context, cpu_queue):
        few = UMesh(n_points=300, sweeps=1)
        many = UMesh(n_points=300, sweeps=16)
        few.run_complete(cpu_context, cpu_queue)
        ctx2_queue = cpu_queue  # same device; fresh buffers per bench
        many.run_complete(cpu_context, ctx2_queue)
        assert many.residual() < few.residual()

    def test_sweeps_are_launches(self, cpu_context, cpu_queue):
        bench = UMesh(n_points=256, sweeps=5)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        assert len(bench.run_iteration(cpu_queue)) == 5

    def test_profile_gather_dominated(self):
        p = UMesh(n_points=10000).profiles()[0]
        assert p.random_fraction >= 0.5

    def test_from_args(self):
        bench = UMesh.from_args(["4352", "8"])
        assert bench.n == 4352 and bench.sweeps == 8

    def test_too_small(self):
        with pytest.raises(ValueError):
            UMesh(n_points=4)
