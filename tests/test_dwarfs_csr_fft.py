"""csr (SpMV) and fft (Stockham) correctness."""

import numpy as np
import pytest

from repro.dwarfs.csr import CSR
from repro.dwarfs.fft import FFT, stockham_stage


class TestCSR:
    def test_presets_match_table2(self):
        assert CSR.presets == {
            "tiny": 736, "small": 2416, "medium": 14336, "large": 16384}

    def test_from_args(self):
        bench = CSR.from_args(["-n", "736", "-d", "5000"])
        assert bench.n == 736
        assert bench.density_param == 5000

    def test_from_args_requires_n(self):
        with pytest.raises(ValueError):
            CSR.from_args(["-d", "5000"])

    def test_spmv_matches_dense(self, cpu_context, cpu_queue):
        bench = CSR(n=128, density_param=50000)  # 5% for a dense-enough test
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        dense = bench.matrix.to_dense()
        expected = dense @ bench.x.astype(np.float64)
        np.testing.assert_allclose(bench.y_out, expected, rtol=1e-4, atol=1e-5)

    def test_validates_end_to_end(self, cpu_context, cpu_queue):
        CSR(n=200).run_complete(cpu_context, cpu_queue)

    def test_spmv_against_scipy(self, cpu_context, cpu_queue):
        import scipy.sparse as sp
        bench = CSR(n=96, density_param=30000)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        m = sp.csr_matrix(
            (bench.matrix.values, bench.matrix.col_idx, bench.matrix.row_ptr),
            shape=(96, 96))
        np.testing.assert_allclose(bench.y_out, m @ bench.x, rtol=1e-4,
                                   atol=1e-5)

    def test_profile_random_fraction_for_gather(self):
        p = CSR(n=1000).profiles()[0]
        assert p.random_fraction >= 0.3  # the x-gather signature

    def test_footprint_scales_quadratically(self):
        """nnz ~ density * n^2 dominates the footprint."""
        small = CSR(n=1000).footprint_bytes()
        large = CSR(n=2000).footprint_bytes()
        assert large / small == pytest.approx(4.0, rel=0.2)


class TestStockhamStage:
    def test_two_point_dft(self):
        src = np.array([3 + 0j, 1 + 0j], dtype=np.complex64)
        dst = np.empty_like(src)
        stockham_stage(src, dst, 2, 0)
        np.testing.assert_allclose(dst, [4, 2], atol=1e-6)

    def test_full_pipeline_matches_numpy(self, rng):
        n = 64
        x = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(np.complex64)
        a, b = x.copy(), np.empty_like(x)
        for stage in range(6):
            stockham_stage(a, b, n, stage)
            a, b = b, a
        np.testing.assert_allclose(a, np.fft.fft(x), rtol=1e-4, atol=1e-4)


class TestFFT:
    def test_presets_match_table2(self):
        assert FFT.presets == {
            "tiny": 2048, "small": 16384, "medium": 524288, "large": 2097152}

    def test_tiny_footprint_exactly_32kib(self):
        """2048 complex64 points x 2 buffers = 32 KiB = Skylake L1."""
        assert FFT(n=2048).footprint_bytes() == 32 * 1024

    def test_non_pow2_rejected(self):
        with pytest.raises(ValueError):
            FFT(n=1000)

    def test_from_args(self):
        assert FFT.from_args(["16384"]).n == 16384

    def test_from_args_arity(self):
        with pytest.raises(ValueError):
            FFT.from_args(["1", "2"])

    def test_spectrum_matches_numpy(self, cpu_context, cpu_queue):
        bench = FFT(n=256)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        expected = np.fft.fft(bench.signal.astype(np.complex128))
        err = np.linalg.norm(bench.spectrum_out - expected) / np.linalg.norm(expected)
        assert err < 1e-4

    def test_stage_launch_count_is_log2(self, cpu_context, cpu_queue):
        bench = FFT(n=1024)
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        assert len(events) == 10

    def test_parseval(self, cpu_context, cpu_queue):
        """Energy conservation: ||X||^2 = N ||x||^2."""
        bench = FFT(n=512)
        bench.run_complete(cpu_context, cpu_queue)
        x_energy = float(np.abs(bench.signal.astype(np.complex128))**2 @ np.ones(512))
        s_energy = float((np.abs(bench.spectrum_out.astype(np.complex128))**2).sum())
        assert s_energy == pytest.approx(512 * x_energy, rel=1e-3)

    def test_impulse_gives_flat_spectrum(self, cpu_context, cpu_queue):
        bench = FFT(n=128)
        bench.host_setup(cpu_context)
        bench.signal = np.zeros(128, dtype=np.complex64)
        bench.signal[0] = 1.0
        bench.transfer_inputs(cpu_queue)
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        np.testing.assert_allclose(bench.spectrum_out, np.ones(128), atol=1e-5)
