"""The BENCHMARKS.md renderer, its CLI verb, and the committed document.

``render_markdown`` must be deterministic (the ``--check`` CI guard is
a plain string comparison), reflect per-phase self-times with the
``cache_sim`` speedup called out, and the wrapper script must keep the
committed ``BENCHMARKS.md`` verifiable.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.harness.cli import EXIT_FINDINGS, EXIT_OK, main
from repro.regress import (
    CellPoint,
    Trajectory,
    TrajectoryPoint,
    render_markdown,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _cell(mean_s: float, device: str = "dev0") -> CellPoint:
    return CellPoint(benchmark="crc", size="tiny", device=device,
                     mean_s=mean_s, std_s=mean_s / 20, n=50)


def _point(index: int, label: str, mean_s: float,
           cache_sim_s: float | None = None) -> TrajectoryPoint:
    phases = None
    if cache_sim_s is not None:
        phases = {"cache_sim": {"total_s": cache_sim_s,
                                "self_s": cache_sim_s, "count": 1},
                  "measure": {"total_s": 0.5, "self_s": 0.5, "count": 1}}
    return TrajectoryPoint(
        index=index, label=label, created_unix=1_754_000_000.0 + index,
        cells=[_cell(mean_s), _cell(mean_s * 2, device="dev1")],
        phases=phases)


# ----------------------------------------------------------------------
# render_markdown
# ----------------------------------------------------------------------
def test_render_empty_trajectory():
    text = render_markdown([])
    assert text.startswith("# Benchmarking Results")
    assert "No trajectory points recorded yet." in text


def test_render_is_deterministic_and_structured():
    points = [_point(0, "scalar-sim", 2e-3, cache_sim_s=20.0),
              _point(1, "vectorized-sim", 1e-3, cache_sim_s=2.0)]
    first = render_markdown(points)
    # Order of the input list must not matter.
    assert render_markdown(list(reversed(points))) == first
    assert "## Trajectory" in first
    assert "## Phase self-times (s)" in first
    assert "## Change points" in first
    assert "| BENCH_0 | scalar-sim |" in first
    assert "| BENCH_1 | vectorized-sim |" in first
    # Dates derive from created_unix, never the wall clock.
    assert "2025-07-31" in first


def test_render_speedup_and_phase_columns():
    points = [_point(0, "seed", 2e-3, cache_sim_s=20.0),
              _point(1, "fast", 1e-3, cache_sim_s=2.0)]
    text = render_markdown(points)
    lines = [l for l in text.splitlines() if l.startswith("| BENCH_1")]
    trajectory_row = lines[0]
    assert "x2.00" in trajectory_row  # geomean halved against the seed
    phase_row = lines[1]
    assert "x10.00" in phase_row      # cache_sim self-time collapse
    assert "cache_sim speedup vs BENCH_0" in text


def test_render_without_phases_says_so():
    text = render_markdown([_point(0, "seed", 1e-3)])
    assert "No phase-carrying points recorded yet." in text
    assert "None detected." in text


# ----------------------------------------------------------------------
# repro regress render / --check
# ----------------------------------------------------------------------
@pytest.fixture()
def trajectory_dir(tmp_path):
    root = tmp_path / "trajectory"
    trajectory = Trajectory(root)
    trajectory.append(_point(0, "seed", 2e-3, cache_sim_s=20.0))
    trajectory.append(_point(1, "fast", 1e-3, cache_sim_s=2.0))
    return root


def test_cli_render_writes_then_check_passes(trajectory_dir, tmp_path, capsys):
    out = tmp_path / "BENCHMARKS.md"
    assert main(["regress", "render", "--trajectory-dir", str(trajectory_dir),
                 "-o", str(out)]) == EXIT_OK
    assert out.exists() and "## Trajectory" in out.read_text()
    assert main(["regress", "render", "--trajectory-dir", str(trajectory_dir),
                 "-o", str(out), "--check"]) == EXIT_OK
    assert "up to date" in capsys.readouterr().out


def test_cli_render_check_detects_staleness(trajectory_dir, tmp_path, capsys):
    out = tmp_path / "BENCHMARKS.md"
    main(["regress", "render", "--trajectory-dir", str(trajectory_dir),
          "-o", str(out)])
    out.write_text(out.read_text() + "\nmanual edit\n")
    assert main(["regress", "render", "--trajectory-dir", str(trajectory_dir),
                 "-o", str(out), "--check"]) == EXIT_FINDINGS
    assert "stale" in capsys.readouterr().err


def test_cli_render_check_on_missing_output(trajectory_dir, tmp_path):
    missing = tmp_path / "nope.md"
    assert main(["regress", "render", "--trajectory-dir", str(trajectory_dir),
                 "-o", str(missing), "--check"]) == EXIT_FINDINGS


def test_cli_render_prints_without_output(trajectory_dir, capsys):
    assert main(["regress", "render",
                 "--trajectory-dir", str(trajectory_dir)]) == EXIT_OK
    assert "# Benchmarking Results" in capsys.readouterr().out


# ----------------------------------------------------------------------
# scripts/update_benchmarks_md.py and the committed document
# ----------------------------------------------------------------------
def _load_script():
    path = REPO_ROOT / "scripts" / "update_benchmarks_md.py"
    spec = importlib.util.spec_from_file_location("update_benchmarks_md", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_update_script_round_trip(trajectory_dir, tmp_path):
    script = _load_script()
    out = tmp_path / "BENCHMARKS.md"
    assert script.main(["--trajectory-dir", str(trajectory_dir),
                        "-o", str(out)]) == 0
    assert script.main(["--trajectory-dir", str(trajectory_dir),
                        "-o", str(out), "--check"]) == 0
    out.write_text("stale")
    assert script.main(["--trajectory-dir", str(trajectory_dir),
                        "-o", str(out), "--check"]) == 1


def test_committed_benchmarks_md_is_current():
    """The repository guard CI also enforces: the document tracks the
    committed ``benchmarks/trajectory`` history exactly."""
    committed = REPO_ROOT / "BENCHMARKS.md"
    trajectory = Trajectory(REPO_ROOT / "benchmarks" / "trajectory")
    assert committed.exists(), "BENCHMARKS.md must be committed"
    assert committed.read_text(
        encoding="utf-8") == render_markdown(trajectory.points())


def test_committed_trajectory_proves_the_collapse():
    """Acceptance: the first two points show >= 5x cache_sim reduction."""
    points = Trajectory(REPO_ROOT / "benchmarks" / "trajectory").points()
    assert len(points) >= 2
    seed, vec = points[0], points[1]
    seed_sim = seed.phases["cache_sim"]["self_s"]
    vec_sim = vec.phases["cache_sim"]["self_s"]
    assert seed_sim / vec_sim >= 5.0
