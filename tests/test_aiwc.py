"""AIWC characterization and suite diversity analysis."""

import numpy as np
import pytest

from repro.aiwc import (
    AIWCMetrics,
    analyze,
    characterize,
    characterize_suite,
    standardize,
)
from repro.dwarfs import create


class TestCharacterize:
    def test_metrics_fields_populated(self):
        m = characterize(create("fft", "medium"))
        assert m.benchmark == "fft"
        assert m.dwarf == "Spectral Methods"
        vec = m.vector()
        assert vec.shape == (len(AIWCMetrics.NUMERIC_FIELDS),)
        assert np.isfinite(vec).all()

    def test_crc_is_serial_and_integer(self):
        m = characterize(create("crc", "large"))
        assert m.fp_fraction == 0.0
        assert m.serial_fraction > 0.9
        assert m.work_items_log == 0.0  # single chain

    def test_gem_is_fp_dense(self):
        m = characterize(create("gem", "tiny"))
        assert m.fp_fraction > 0.7
        assert m.arithmetic_intensity > 50

    def test_nw_launch_intensity_high(self):
        nw = characterize(create("nw", "large"))
        fft = characterize(create("fft", "large"))
        assert nw.launch_intensity > fft.launch_intensity

    def test_csr_memory_entropy_high(self):
        """The SpMV gather mixes patterns; srad streams."""
        csr = characterize(create("csr", "large"))
        gem = characterize(create("gem", "large"))
        assert csr.memory_entropy > gem.memory_entropy

    def test_footprint_tracks_size(self):
        tiny = characterize(create("kmeans", "tiny"))
        large = characterize(create("kmeans", "large"))
        assert large.unique_footprint_log > tiny.unique_footprint_log

    def test_suite_covers_all_benchmarks(self):
        ms = characterize_suite("large")
        assert len(ms) == 11
        assert {m.benchmark for m in ms} == {
            "kmeans", "lud", "csr", "fft", "dwt", "srad", "crc", "nw",
            "gem", "nqueens", "hmm"}

    def test_as_row(self):
        row = characterize(create("lud", "small")).as_row()
        assert row["benchmark"] == "lud"
        assert "arithmetic_intensity" in row


class TestDiversity:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze(characterize_suite("large"))

    def test_distance_matrix_properties(self, report):
        d = report.distances
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)
        assert (d >= 0).all()

    def test_crc_is_most_distinct(self, report):
        """The serial integer chain is unlike every other dwarf."""
        name, dist = report.most_distinct()
        assert name == "crc"
        assert dist > 2.0

    def test_spectral_methods_are_neighbours(self, report):
        """dwt and fft represent the same dwarf; they should be closer
        to each other than the suite average."""
        d = report.distance("dwt", "fft")
        mean = report.distances[np.triu_indices(len(report.names), 1)].mean()
        assert d < mean

    def test_mst_spans_suite(self, report):
        assert len(report.mst_edges) == len(report.names) - 1

    def test_distinctiveness_rows_sorted(self, report):
        rows = report.distinctiveness_rows()
        distances = [r["distance"] for r in rows]
        assert distances == sorted(distances, reverse=True)

    def test_standardize(self):
        x = np.array([[1.0, 5.0], [3.0, 5.0]])
        z = standardize(x)
        assert np.allclose(z.mean(axis=0), 0.0)
        assert np.allclose(z[:, 1], 0.0)  # constant feature -> zeros

    def test_needs_two_benchmarks(self):
        with pytest.raises(ValueError):
            analyze([characterize(create("fft", "tiny"))])


class TestDegenerateInputs:
    """Regression tests: NaN/inf metrics must never poison the math."""

    def _metrics(self, **overrides):
        base = dict(
            benchmark="degenerate", dwarf="test",
            opcode_total=1.0, fp_fraction=0.5, arithmetic_intensity=1.0,
            work_items_log=2.0, granularity=1.0, serial_fraction=0.0,
            launch_intensity=0.0, memory_entropy=0.5,
            unique_footprint_log=3.0, branch_fraction=0.1,
        )
        base.update(overrides)
        return AIWCMetrics(**base)

    def test_vector_sanitizes_nan_and_inf(self):
        m = self._metrics(arithmetic_intensity=float("inf"),
                          memory_entropy=float("nan"),
                          granularity=float("-inf"))
        v = m.vector()
        assert np.isfinite(v).all()
        assert v[m.NUMERIC_FIELDS.index("arithmetic_intensity")] == 0.0
        assert v[m.NUMERIC_FIELDS.index("memory_entropy")] == 0.0

    def test_as_row_sanitizes(self):
        m = self._metrics(arithmetic_intensity=float("inf"))
        assert m.as_row()["arithmetic_intensity"] == 0.0

    def test_entropy_from_degenerate_weights(self):
        from repro.aiwc.metrics import pattern_entropy_from_weights
        assert pattern_entropy_from_weights([0.0, 0.0, 0.0]) == 0.0
        assert pattern_entropy_from_weights([]) == 0.0
        assert pattern_entropy_from_weights(
            [float("nan"), float("inf"), -1.0]) == 0.0
        # one finite positive weight: zero bits, not NaN
        assert pattern_entropy_from_weights(
            [float("nan"), 5.0]) == 0.0

    def test_standardize_tolerates_nonfinite_rows(self):
        degenerate = self._metrics(arithmetic_intensity=float("inf"),
                                   memory_entropy=float("nan"))
        report = analyze([degenerate,
                          self._metrics(benchmark="a"),
                          self._metrics(benchmark="b", fp_fraction=0.9)])
        assert np.isfinite(report.distances).all()
