"""Command-line interface."""

import pytest

from repro.harness.cli import (
    EXIT_FINDINGS,
    EXIT_OK,
    EXIT_USAGE,
    build_parser,
    main,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fft"])
        assert args.benchmark == "fft"
        assert args.samples == 50

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quicksort"])


class TestCommands:
    def test_list_devices(self, capsys):
        assert main(["list-devices"]) == 0
        out = capsys.readouterr().out
        assert "i7-6700K" in out
        assert "Xeon Phi 7210" in out

    @pytest.mark.parametrize("number,needle", [
        (1, "Table 1"), (2, "Table 2"), (3, "Table 3"),
    ])
    def test_tables(self, capsys, number, needle):
        assert main(["table", str(number)]) == 0
        assert needle in capsys.readouterr().out

    def test_run_with_named_device(self, capsys):
        rc = main(["run", "fft", "--size", "tiny", "--device", "GTX 1080",
                   "--samples", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GTX 1080" in out
        assert "validated : True" in out

    def test_run_with_pdt_triple(self, capsys):
        rc = main(["run", "csr", "--size", "tiny", "--samples", "5",
                   "-p", "1", "-d", "0", "-t", "1"])
        assert rc == 0
        assert "Titan X" in capsys.readouterr().out

    def test_run_with_table3_arguments(self, capsys):
        """Paper §4.4.5 invocation: Benchmark Device -- Arguments."""
        rc = main(["run", "kmeans", "--device", "i7-6700K", "--samples", "5",
                   "--", "-g", "-f", "8", "-p", "128"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kmeans" in out

    def test_run_model_only(self, capsys):
        rc = main(["run", "srad", "--size", "large", "--device", "RX 480",
                   "--samples", "5", "--no-execute"])
        assert rc == 0
        assert "validated : False" in capsys.readouterr().out

    def test_figure_small_sample(self, capsys):
        rc = main(["figure", "2c", "--samples", "3"])
        assert rc == 0
        assert "Figure 2c" in capsys.readouterr().out

    def test_figure_csv(self, capsys):
        rc = main(["figure", "2e", "--samples", "3", "--csv"])
        assert rc == 0
        assert "figure,panel,device" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "9z"]) == 2

    def test_verify_sizes(self, capsys):
        rc = main(["verify-sizes", "crc"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "crc" in out and "L1 miss %" in out


class TestExtendedCommands:
    def test_characterize(self, capsys):
        assert main(["characterize", "--size", "small"]) == 0
        out = capsys.readouterr().out
        assert "AIWC metrics" in out
        assert "MST:" in out

    def test_autotune(self, capsys):
        assert main(["autotune", "fft", "--size", "small",
                     "--device", "GTX 1080"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out and "local size" in out

    def test_schedule_feasible(self, capsys):
        assert main(["schedule", "srad", "--objective", "energy"]) == 0
        assert "<-" in capsys.readouterr().out

    def test_schedule_unsatisfiable(self, capsys):
        rc = main(["schedule", "crc", "--time-budget", "1e-12"])
        assert rc == 1
        assert "no device satisfies" in capsys.readouterr().out

    def test_transfers(self, capsys):
        assert main(["transfers", "csr", "--size", "tiny",
                     "--device", "K20m"]) == 0
        assert "to device" in capsys.readouterr().out

    def test_figure_html_output(self, capsys, tmp_path):
        out_file = tmp_path / "fig.html"
        rc = main(["figure", "3a", "--samples", "3", "--html", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        assert out_file.read_text().startswith("<!doctype html>")


class TestExitCodes:
    """The convention every command follows: 0 = ok, 1 = findings
    (a gate tripped on otherwise-valid input), 2 = usage/config error."""

    def test_constants(self):
        assert (EXIT_OK, EXIT_FINDINGS, EXIT_USAGE) == (0, 1, 2)

    def test_success_is_exit_ok(self, capsys):
        assert main(["run", "fft", "--size", "tiny", "--device", "GTX 1080",
                     "--samples", "3", "--no-execute"]) == EXIT_OK
        capsys.readouterr()

    def test_unknown_device_is_usage_error(self, capsys):
        rc = main(["run", "fft", "--size", "tiny", "--device", "HAL 9000",
                   "--samples", "3"])
        assert rc == EXIT_USAGE
        assert "unknown device" in capsys.readouterr().err

    def test_unknown_figure_is_usage_error(self, capsys):
        assert main(["figure", "9z"]) == EXIT_USAGE
        capsys.readouterr()

    def test_contradictory_sweep_flags_are_usage_error(self, capsys):
        rc = main(["run", "fft", "--size", "tiny", "--samples", "3",
                   "--no-execute", "--no-cache", "--resume"])
        assert rc == EXIT_USAGE
        assert "--resume" in capsys.readouterr().err

    def test_unsatisfiable_schedule_is_findings(self, capsys):
        rc = main(["schedule", "crc", "--time-budget", "1e-12"])
        assert rc == EXIT_FINDINGS
        capsys.readouterr()

    def test_lint_findings_exit_1(self, capsys):
        rc = main(["lint", "--fail-on", "note"])
        out = capsys.readouterr().out
        clean = "0 error(s), 0 warning(s), 0 note(s)" in out
        assert rc == (EXIT_OK if clean else EXIT_FINDINGS)
