"""Roofline timing model: bounds, occupancy, launch overhead, chains."""

import math

import pytest

from repro.devices import get_device
from repro.perfmodel import (
    KernelProfile,
    bandwidth_utilization,
    compute_utilization,
    divergence_factor,
    iteration_time,
    kernel_time,
    launch_overhead_s,
    sum_breakdowns,
)
from repro.perfmodel.roofline import chain_capacity, chain_time_s


def profile(**overrides):
    base = dict(name="k", flops=0.0, int_ops=0.0, bytes_read=0.0,
                bytes_written=0.0, working_set_bytes=1024.0, work_items=1 << 16)
    base.update(overrides)
    return KernelProfile(**base)


class TestOccupancy:
    def test_saturated_is_full(self, gtx1080):
        assert compute_utilization(gtx1080, 10**7) == 1.0

    def test_starved_gpu_low_utilization(self, gtx1080):
        assert compute_utilization(gtx1080, 32) < 0.05

    def test_cpu_saturates_earlier_than_gpu(self, skylake, gtx1080):
        items = 512
        assert (compute_utilization(skylake, items)
                > compute_utilization(gtx1080, items))

    def test_bandwidth_saturates_before_compute(self, gtx1080):
        items = gtx1080.compute.saturation_items // 4
        assert bandwidth_utilization(gtx1080, items) == 1.0
        assert compute_utilization(gtx1080, items) < 1.0

    def test_zero_items_floor(self, gtx1080):
        assert compute_utilization(gtx1080, 0) > 0

    def test_divergence_factor_bounds(self, skylake, gtx1080):
        assert divergence_factor(skylake, 0.0) == 1.0
        assert divergence_factor(skylake, 1.0) == skylake.compute.divergence_penalty
        assert divergence_factor(gtx1080, 0.5) > divergence_factor(skylake, 0.5)


class TestKernelTime:
    def test_compute_bound_detection(self, gtx1080):
        p = profile(flops=1e10, bytes_read=1e3)
        assert kernel_time(gtx1080, p).bound == "compute"

    def test_memory_bound_detection(self, gtx1080):
        p = profile(flops=1e3, bytes_read=1e9, working_set_bytes=1e9)
        assert kernel_time(gtx1080, p).bound == "memory"

    def test_overlap_takes_max(self, gtx1080):
        p = profile(flops=1e9, bytes_read=1e8, working_set_bytes=1e8)
        tb = kernel_time(gtx1080, p)
        assert tb.body_s == pytest.approx(max(tb.compute_s, tb.memory_s))

    def test_launch_overhead_floor(self, gtx1080):
        """Even an empty kernel costs the launch overhead."""
        p = profile()
        tb = kernel_time(gtx1080, p)
        assert tb.total_s >= gtx1080.runtime.kernel_launch_us * 1e-6

    def test_launches_scale_total(self, gtx1080):
        p = profile(flops=1e8)
        one = kernel_time(gtx1080, p)
        ten = kernel_time(gtx1080, p.scaled(10))
        assert ten.total_s == pytest.approx(10 * one.total_s)

    def test_gpu_beats_cpu_on_wide_fp(self, skylake, gtx1080):
        p = profile(flops=1e10, bytes_read=1e6, work_items=1 << 22)
        assert kernel_time(gtx1080, p).total_s < kernel_time(skylake, p).total_s

    def test_cpu_beats_gpu_on_serial_chain(self, skylake, gtx1080):
        """The crc shape: dependent chains favour high-clock OoO CPUs."""
        p = profile(chain_ops=1e6, work_items=1)
        assert kernel_time(skylake, p).total_s < kernel_time(gtx1080, p).total_s

    def test_utilization_in_unit_range(self, gtx1080):
        p = profile(flops=1e9, bytes_read=1e7)
        assert 0.0 < kernel_time(gtx1080, p).utilization <= 1.0

    def test_cache_resident_faster_than_spilled(self, skylake):
        resident = profile(bytes_read=1e6, working_set_bytes=16 * 1024)
        spilled = profile(bytes_read=1e6, working_set_bytes=64 << 20)
        assert (kernel_time(skylake, resident).memory_s
                < kernel_time(skylake, spilled).memory_s)


class TestChains:
    def test_capacity_cpu_is_thread_count(self, skylake):
        assert chain_capacity(skylake) == 8  # hyperthreads

    def test_capacity_gpu_is_lanes(self, gtx1080):
        assert chain_capacity(gtx1080) == 2560

    def test_chain_rounds(self, skylake):
        p1 = profile(chain_ops=1000, work_items=8)
        p2 = profile(chain_ops=1000, work_items=9)  # 9 chains on 8 threads
        assert chain_time_s(skylake, p2) == pytest.approx(
            2 * chain_time_s(skylake, p1))

    def test_zero_chain_ops(self, skylake):
        assert chain_time_s(skylake, profile()) == 0.0

    def test_knl_chain_slowest(self, skylake, gtx1080, knl):
        p = profile(chain_ops=1e6, work_items=1)
        times = {s.name: chain_time_s(s, p) for s in (skylake, gtx1080, knl)}
        assert times["Xeon Phi 7210"] > times["GTX 1080"] > times["i7-6700K"]


class TestLaunchOverhead:
    def test_dispatch_scales_with_groups(self, skylake):
        assert (launch_overhead_s(skylake, 1000)
                > launch_overhead_s(skylake, 1))

    def test_amd_buffer_validation_term(self):
        amd = get_device("R9 290X")
        small = launch_overhead_s(amd, 1, buffer_bytes=1 << 10)
        big = launch_overhead_s(amd, 1, buffer_bytes=128 << 20)
        assert big > small * 1.2

    def test_nvidia_no_buffer_term(self, gtx1080):
        small = launch_overhead_s(gtx1080, 1, buffer_bytes=1 << 10)
        big = launch_overhead_s(gtx1080, 1, buffer_bytes=128 << 20)
        assert big == pytest.approx(small)


class TestAggregation:
    def test_iteration_time_sums_bodies(self, gtx1080):
        compute = profile(flops=1e9)
        memory = profile(bytes_read=1e8, working_set_bytes=1e8)
        combined = iteration_time(gtx1080, [compute, memory])
        separate = (kernel_time(gtx1080, compute).total_s
                    + kernel_time(gtx1080, memory).total_s)
        assert combined.total_s == pytest.approx(separate)

    def test_sum_breakdowns_body_not_remaxed(self, gtx1080):
        """Aggregating a compute-bound and a memory-bound kernel must not
        hide the smaller term under a max of sums."""
        a = kernel_time(gtx1080, profile(flops=1e9))
        b = kernel_time(gtx1080, profile(bytes_read=1e8, working_set_bytes=1e8))
        agg = sum_breakdowns([a, b])
        assert agg.body_s == pytest.approx(a.body_s + b.body_s)
        assert agg.body_s > max(agg.compute_s, agg.memory_s)
