"""Symbolic working-set verification (§4.4) and the deep lint suite."""

import json

import pytest

from repro.analysis import (
    FAIL_ON_CHOICES,
    SLACK_PER_BUFFER,
    benchmark_strides,
    default_severity,
    run_deep_suite,
    static_footprint,
    verify_benchmark_footprint,
)
from repro.analysis.deep import deep_lint_model
from repro.dwarfs import registry
from repro.dwarfs.base import StaticBuffer, StaticLaunch, StaticLaunchModel
from repro.harness.cli import main as cli_main

ALL_BENCHMARKS = sorted([*registry.BENCHMARKS, *registry.EXTENSIONS])


def _all_cases():
    cases = []
    for name in ALL_BENCHMARKS:
        for size in registry.get_benchmark(name).available_sizes():
            cases.append((name, size))
    return cases


# ---------------------------------------------------------------------------
class TestFootprintCrossCheck:
    """Static working set vs ``footprint_bytes()`` at every preset."""

    @pytest.mark.parametrize("name,size", _all_cases())
    def test_static_matches_runtime_within_slack(self, name, size):
        comparison = verify_benchmark_footprint(name, size)
        assert comparison is not None, f"{name} declares no launch model"
        assert comparison.ok, (
            f"{name}/{size}: static {comparison.static_bytes} vs runtime "
            f"{comparison.runtime_bytes} (delta {comparison.delta:+d}, "
            f"slack {comparison.slack_bytes})"
        )

    def test_every_benchmark_declares_a_model(self):
        for name in ALL_BENCHMARKS:
            cls = registry.get_benchmark(name)
            bench = cls.from_size(cls.available_sizes()[0])
            assert bench.static_launches() is not None, name

    def test_slack_scales_with_buffer_count(self):
        comparison = verify_benchmark_footprint("kmeans", "tiny")
        assert comparison.slack_bytes == SLACK_PER_BUFFER * 3

    def test_unknown_size_returns_none(self):
        assert verify_benchmark_footprint("kmeans", "enormous") is None


# ---------------------------------------------------------------------------
class TestCorruptedModelIsCaught:
    """A wrong working-set formula must trip the cross-check."""

    def _broken_kmeans(self):
        cls = registry.get_benchmark("kmeans")

        class BrokenKMeans(cls):
            def footprint_bytes(self):
                # deliberately corrupted formula: forgets the feature matrix
                return super().footprint_bytes() // 2

        return BrokenKMeans

    def test_comparison_fails(self, monkeypatch):
        monkeypatch.setitem(registry.BENCHMARKS, "kmeans",
                            self._broken_kmeans())
        comparison = verify_benchmark_footprint("kmeans", "tiny")
        assert not comparison.ok
        assert comparison.delta > comparison.slack_bytes

    def test_deep_suite_reports_footprint_mismatch(self, monkeypatch):
        monkeypatch.setitem(registry.BENCHMARKS, "kmeans",
                            self._broken_kmeans())
        report = run_deep_suite(benchmarks=["kmeans"], emit_metrics=False)
        mismatches = [f for f in report if f.check == "footprint-mismatch"]
        assert mismatches, report.render_text()
        assert all(f.severity == "error" for f in mismatches)
        assert report.fails("error")

    def test_oversized_buffer_in_model_fails(self):
        cls = registry.get_benchmark("kmeans")
        bench = cls.from_size("tiny")
        model = bench.static_launches()
        buffers = dict(model.buffers)
        key = next(iter(buffers))
        # a host-side buffer the kernels never bind is priced at its
        # declared size
        buffers["stray"] = StaticBuffer("stray", 10 * 1024 * 1024,
                                        kernel_bound=False)
        corrupted = StaticLaunchModel(
            source=model.source, buffers=buffers,
            launches=model.launches, macros=model.macros)
        static = static_footprint(corrupted)
        delta = static.total_bytes - bench.footprint_bytes()
        assert delta > SLACK_PER_BUFFER * len(buffers), key


# ---------------------------------------------------------------------------
class TestStrideClasses:
    def test_kmeans(self):
        strides = benchmark_strides("kmeans")["kmeans_assign"]
        assert strides["membership"] == "unit"
        assert strides["features"] == "strided"
        assert strides["clusters"] == "uniform"

    def test_csr_indirection(self):
        strides = benchmark_strides("csr")["csr_spmv"]
        assert strides["row_ptr"] == "unit"
        assert strides["x"] == "indirect"
        assert strides["values"] == "indirect"


# ---------------------------------------------------------------------------
class TestReqdWorkGroupSize:
    SRC = ("__kernel __attribute__((reqd_work_group_size(64, 1, 1))) "
           "void f(__global float *x) { x[get_global_id(0)] = 1.0f; }")

    def _model(self, local_size):
        return StaticLaunchModel(
            source=self.SRC,
            buffers={"x": StaticBuffer("x", 512 * 4)},
            launches=(StaticLaunch("f", (512,), buffers={"x": ("x", 0)},
                                   local_size=local_size),),
        )

    def test_matching_local_size_clean(self):
        findings = deep_lint_model(self._model((64,)))
        assert not [f for f in findings if f.check == "reqd-work-group-size"]

    def test_mismatched_local_size_flagged(self):
        findings = deep_lint_model(self._model((32,)))
        hits = [f for f in findings if f.check == "reqd-work-group-size"]
        assert len(hits) == 1
        assert hits[0].severity == "error"

    def test_missing_local_size_flagged(self):
        findings = deep_lint_model(self._model(None))
        assert [f for f in findings if f.check == "reqd-work-group-size"]


# ---------------------------------------------------------------------------
class TestDeepSuite:
    def test_full_deep_suite_is_clean(self):
        report = run_deep_suite(emit_metrics=False)
        assert not report.fails("any"), report.render_text()
        assert len(report.extras["access_strides"]) == len(ALL_BENCHMARKS)
        assert len(report.extras["footprint_verification"]) == len(ALL_BENCHMARKS)

    def test_extras_survive_json(self):
        report = run_deep_suite(benchmarks=["fft"], emit_metrics=False)
        doc = json.loads(report.to_json())
        assert doc["schema_version"] == 2
        fft = doc["extras"]["footprint_verification"]["fft"]
        assert all(entry["ok"] for entry in fft.values())

    def test_size_restriction(self):
        report = run_deep_suite(benchmarks=["lud"], size="small",
                                emit_metrics=False)
        verified = report.extras["footprint_verification"]["lud"]
        assert set(verified) == {"small"}

    def test_cli_deep_fail_on_any(self, capsys):
        assert cli_main(["lint", "--benchmark", "kmeans", "--deep",
                         "--json", "--fail-on", "any"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 2
        assert "extras" in doc

    def test_fail_on_choices_include_any(self):
        assert FAIL_ON_CHOICES[0] == "any"
        assert "info" in FAIL_ON_CHOICES

    def test_default_severities(self):
        assert default_severity("footprint-mismatch") == "error"
        assert default_severity("unreachable-code") == "warning"
        assert default_severity("access-stride") == "info"
        assert default_severity("never-heard-of-it") == "warning"


# ---------------------------------------------------------------------------
class TestSizingBridge:
    def test_verify_static_footprints(self):
        from repro.sizing import verify_static_footprints

        results = verify_static_footprints("srad")
        assert set(results) == set(
            registry.get_benchmark("srad").available_sizes())
        assert all(c.ok for c in results.values())
