"""Failure injection: every benchmark's validation must catch a
corrupted result.

The paper's headline enhancement is "an increased emphasis on
correctness of results" (§1) — the original suite returned wrong
answers silently on some platforms.  A validation path that cannot
detect corruption is worthless, so these tests corrupt each
benchmark's device output after execution and assert the serial
reference comparison fires.
"""

import numpy as np
import pytest

from repro import ocl
from repro.dwarfs import create
from repro.dwarfs.base import ValidationError


def run_then(name, size, corrupt, cpu_context, cpu_queue):
    """Execute a benchmark, corrupt state via ``corrupt(bench)``,
    collect and validate — expecting the validator to object."""
    bench = create(name, size)
    bench.host_setup(cpu_context)
    bench.transfer_inputs(cpu_queue)
    bench.run_iteration(cpu_queue)
    bench.collect_results(cpu_queue)
    corrupt(bench)
    with pytest.raises(ValidationError):
        bench.validate()


class TestCorruptionDetected:
    def test_kmeans_wrong_assignment(self, cpu_context, cpu_queue):
        def corrupt(bench):
            # move some points to a definitely-wrong cluster
            m = bench.membership_out
            m[: len(m) // 4] = (m[: len(m) // 4] + 1) % bench.n_clusters
            # ensure the corrupted points are not equidistant ties
            bench._assignment_clusters[:, 0] += 10.0
        run_then("kmeans", "tiny", corrupt, cpu_context, cpu_queue)

    def test_lud_corrupted_factor(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.result[3, 7] += 5.0
        run_then("lud", "tiny", corrupt, cpu_context, cpu_queue)

    def test_csr_wrong_product(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.y_out[0] += 1.0
        run_then("csr", "tiny", corrupt, cpu_context, cpu_queue)

    def test_fft_wrong_spectrum(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.spectrum_out[5] *= -1.0
        run_then("fft", "tiny", corrupt, cpu_context, cpu_queue)

    def test_dwt_broken_coefficients(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.coefficients_out[0, :8] += 100.0
        run_then("dwt", "tiny", corrupt, cpu_context, cpu_queue)

    def test_srad_wrong_diffusion(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.result *= 1.01
        run_then("srad", "tiny", corrupt, cpu_context, cpu_queue)

    def test_crc_flipped_bit(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.crcs_out[0] ^= 1
        run_then("crc", "tiny", corrupt, cpu_context, cpu_queue)

    def test_nw_wrong_score(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.score_out[-1, -1] += 1
        run_then("nw", "tiny", corrupt, cpu_context, cpu_queue)

    def test_gem_wrong_potential(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.potential_out += 0.5
        run_then("gem", "tiny", corrupt, cpu_context, cpu_queue)

    def test_hmm_broken_transition_matrix(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.a_out[0] = bench.a_out[0][::-1].copy()
        run_then("hmm", "tiny", corrupt, cpu_context, cpu_queue)

    def test_bfs_wrong_level(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.levels_out[bench.levels_out > 0] += 1
        run_then("bfs", "tiny", corrupt, cpu_context, cpu_queue)

    def test_fsm_miscounted(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.total_matches += 1
        run_then("fsm", "tiny", corrupt, cpu_context, cpu_queue)

    def test_umesh_escaped_range(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.values_out[bench.interior] += 0.05
        run_then("umesh", "tiny", corrupt, cpu_context, cpu_queue)

    def test_cwt_scaled_coefficients(self, cpu_context, cpu_queue):
        def corrupt(bench):
            bench.coefficients *= 1.5
        run_then("cwt", "tiny", corrupt, cpu_context, cpu_queue)


class TestKernelBugsDetected:
    """Corrupt the computation itself (not just the output arrays)."""

    def test_fft_missing_stage(self, cpu_context, cpu_queue):
        """Dropping the last butterfly stage must not validate."""
        bench = create("fft", "tiny")
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        events = bench.run_iteration(cpu_queue)
        # roll back the last stage by re-running all but one stage
        from repro.dwarfs.fft import stockham_stage
        import numpy as np
        a = bench.signal.copy()
        b = np.empty_like(a)
        for stage in range(bench.stages - 1):
            stockham_stage(a, b, bench.n, stage)
            a, b = b, a
        bench._result_buffer.array[...] = a
        bench.collect_results(cpu_queue)
        with pytest.raises(ValidationError):
            bench.validate()

    def test_srad_wrong_lambda(self, cpu_context, cpu_queue):
        """Executing with a different lambda than validated against."""
        bench = create("srad", "tiny")
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        true_lam = bench.lam
        bench.lam = 0.9           # kernel runs with the wrong parameter
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        bench.lam = true_lam      # reference uses the intended one
        with pytest.raises(ValidationError):
            bench.validate()

    def test_nw_wrong_penalty(self, cpu_context, cpu_queue):
        bench = create("nw", "tiny")
        bench.host_setup(cpu_context)
        bench.transfer_inputs(cpu_queue)
        true_penalty = bench.penalty
        bench.penalty = 3
        bench.run_iteration(cpu_queue)
        bench.collect_results(cpu_queue)
        bench.penalty = true_penalty
        with pytest.raises(ValidationError):
            bench.validate()
