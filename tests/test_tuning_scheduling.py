"""Auto-tuning and scheduling extension modules."""

import pytest

from repro.devices import get_device
from repro.dwarfs import create
from repro.perfmodel import KernelProfile
from repro.scheduling import (
    Objective,
    Task,
    predict,
    predict_all,
    schedule_lpt,
    schedule_round_robin,
    select_device,
)
from repro.tuning import (
    alignment_efficiency,
    autotune,
    autotune_benchmark,
    scheduling_width,
    tuned_kernel_time,
)


def wide_profile(items=1 << 20):
    return KernelProfile("k", flops=1e9, int_ops=1e8, bytes_read=1e8,
                         bytes_written=1e7, working_set_bytes=1e8,
                         work_items=items)


class TestAlignment:
    def test_scheduling_widths(self):
        assert scheduling_width(get_device("GTX 1080")) == 32
        assert scheduling_width(get_device("R9 290X")) == 64
        assert scheduling_width(get_device("i7-6700K")) == 8

    def test_aligned_is_full_efficiency(self, gtx1080):
        assert alignment_efficiency(gtx1080, 32) == 1.0
        assert alignment_efficiency(gtx1080, 256) == 1.0

    def test_sub_warp_wastes_lanes(self, gtx1080):
        assert alignment_efficiency(gtx1080, 1) == pytest.approx(1 / 32)
        assert alignment_efficiency(gtx1080, 48) == pytest.approx(48 / 64)

    def test_invalid_local(self, gtx1080):
        with pytest.raises(ValueError):
            alignment_efficiency(gtx1080, 0)


class TestTunedKernelTime:
    def test_misaligned_slower(self, gtx1080):
        p = wide_profile()
        aligned = tuned_kernel_time(gtx1080, p, 256).total_s
        misaligned = tuned_kernel_time(gtx1080, p, 33).total_s
        assert misaligned > aligned

    def test_tiny_groups_pay_dispatch(self, gtx1080):
        p = wide_profile()
        small = tuned_kernel_time(gtx1080, p, 32).total_s
        large = tuned_kernel_time(gtx1080, p, 512).total_s
        assert small > large  # 16x more groups to dispatch

    def test_oversized_local_rejected(self, gtx1080):
        with pytest.raises(ValueError):
            tuned_kernel_time(gtx1080, wide_profile(), 2048)


class TestAutotune:
    def test_best_is_sweep_minimum(self, gtx1080):
        r = autotune(gtx1080, wide_profile())
        assert r.best_time_s == min(r.sweep.values())
        assert r.sweep[r.best_local_size] == r.best_time_s

    def test_gpu_prefers_warp_multiples(self, gtx1080):
        r = autotune(gtx1080, wide_profile())
        assert r.best_local_size % scheduling_width(gtx1080) == 0

    def test_speedup_vs_worst_meaningful(self, gtx1080):
        r = autotune(gtx1080, wide_profile())
        assert r.speedup_vs_worst > 2.0  # local=1 is terrible on a GPU

    def test_single_item_kernel(self, gtx1080):
        p = KernelProfile("serial", flops=0, int_ops=0, bytes_read=0,
                          bytes_written=4, working_set_bytes=64,
                          work_items=1, chain_ops=1e6)
        r = autotune(gtx1080, p)
        assert r.best_local_size == 1

    def test_autotune_benchmark_all_kernels(self, gtx1080):
        results = autotune_benchmark(gtx1080, create("srad", "medium"))
        assert set(results) == {"srad1", "srad2"}
        assert all(r.device == "GTX 1080" for r in results.values())

    def test_rows_mark_best(self, gtx1080):
        r = autotune(gtx1080, wide_profile())
        rows = r.rows()
        marked = [row for row in rows if row["best"]]
        assert len(marked) == 1
        assert marked[0]["local size"] == r.best_local_size


class TestSelector:
    def test_predict_fields(self):
        p = predict(create("fft", "medium"), "GTX 1080")
        assert p.device == "GTX 1080"
        assert p.time_s > 0 and p.energy_j > 0
        assert p.edp == pytest.approx(p.time_s * p.energy_j)

    def test_predict_all_default_catalog(self):
        assert len(predict_all(create("crc", "tiny"))) == 15

    def test_crc_selects_cpu(self):
        sel = select_device(create("crc", "large"), objective="time")
        assert sel.chosen.device_class == "CPU"

    def test_srad_selects_gpu(self):
        sel = select_device(create("srad", "large"), objective="time")
        assert "GPU" in sel.chosen.device_class

    def test_energy_objective_differs_from_time(self):
        bench = create("srad", "large")
        by_time = select_device(bench, objective=Objective.TIME)
        by_energy = select_device(bench, objective=Objective.ENERGY)
        assert by_energy.chosen.energy_j <= by_time.chosen.energy_j

    def test_budget_filters(self):
        bench = create("srad", "large")
        unconstrained = select_device(bench)
        tight = select_device(bench, time_budget_s=1e-12)
        assert unconstrained.satisfiable
        assert not tight.satisfiable
        assert len(tight.rejected) == 15

    def test_feasible_sorted_by_objective(self):
        sel = select_device(create("fft", "large"), objective="edp")
        values = [p.edp for p in sel.feasible]
        assert values == sorted(values)


class TestScheduler:
    @pytest.fixture(scope="class")
    def tasks(self):
        return [
            Task("crc-large", create("crc", "large")),
            Task("srad-large", create("srad", "large")),
            Task("fft-large", create("fft", "large")),
            Task("nw-large", create("nw", "large")),
        ]

    DEVICES = ["i7-6700K", "GTX 1080", "R9 290X"]

    def test_lpt_places_all_tasks(self, tasks):
        a = schedule_lpt(tasks, self.DEVICES)
        placed = [label for d in a.placements.values() for label, _ in d]
        assert sorted(placed) == sorted(t.label for t in tasks)

    def test_lpt_beats_round_robin(self, tasks):
        lpt = schedule_lpt(tasks, self.DEVICES)
        rr = schedule_round_robin(tasks, self.DEVICES)
        assert lpt.makespan <= rr.makespan

    def test_lpt_puts_crc_on_cpu(self, tasks):
        a = schedule_lpt(tasks, self.DEVICES)
        crc_device = next(d for d, placed in a.placements.items()
                          if any(label == "crc-large" for label, _ in placed))
        assert crc_device == "i7-6700K"

    def test_makespan_is_max_load(self, tasks):
        a = schedule_lpt(tasks, self.DEVICES)
        assert a.makespan == pytest.approx(
            max(a.load(d) for d in a.placements))

    def test_empty_device_pool(self, tasks):
        with pytest.raises(ValueError):
            schedule_lpt(tasks, [])
        with pytest.raises(ValueError):
            schedule_round_robin(tasks, [])

    def test_rows_render(self, tasks):
        rows = schedule_lpt(tasks, self.DEVICES).rows()
        assert all({"device", "tasks", "busy (ms)"} <= set(r) for r in rows)
