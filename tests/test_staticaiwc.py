"""Static AIWC stage: characterization, gate, and scheduler path."""

import json
import math

import pytest

from repro.analysis.absint import Const, Guard, Interval, point, top
from repro.analysis.findings import Finding, Report
from repro.analysis.staticaiwc import (
    characterize_model,
    characterize_static,
    characterize_suite_static,
    compare_bench_aiwc,
    compare_benchmark_aiwc,
    guard_fraction,
    metric_scores,
    model_from_source,
    profiles_from_model,
)
from repro.dwarfs import registry
from repro.ocl.clsource import CLSourceError
from repro.perfmodel.characterization import KernelProfile, static_profiles
from repro.scheduling.selector import predict_all

ALL_BENCHMARKS = [*registry.BENCHMARKS, *registry.EXTENSIONS]

FIXTURE_SRC = """
__kernel void fix(__global float* out, __global const float* in, int n) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int j = 0; j < 4; j++) {
        acc += in[i] * 2.0f;
    }
    out[i] = acc;
}
"""


class _FakeBench:
    """Minimal Benchmark stand-in for gate fixtures."""

    name = "fixture"
    dwarf = "test"

    def __init__(self, model, profiles, footprint=2048):
        self._model = model
        self._profiles = profiles
        self._footprint = footprint

    def static_launches(self):
        return self._model

    def profiles(self):
        return self._profiles

    def footprint_bytes(self):
        return self._footprint


def _fixture_profile(**overrides):
    """The dynamic profile exactly matching FIXTURE_SRC's semantics."""
    base = dict(
        name="fix", flops=2048.0, int_ops=0.0,
        bytes_read=1024.0, bytes_written=1024.0,
        working_set_bytes=2048.0, work_items=256,
        seq_fraction=1.0, launches=1,
    )
    base.update(overrides)
    return KernelProfile(**base)


# ----------------------------------------------------------------------
# guard_fraction
# ----------------------------------------------------------------------
def _iv(lo, hi):
    return Interval(Const(lo), Const(hi))


def test_guard_fraction_infeasible_is_zero():
    g = Guard(lhs=_iv(5, 9), op="<", rhs=point(Const(0)))
    assert guard_fraction(g, {}) == 0.0


def test_guard_fraction_equality_is_one_over_span():
    g = Guard(lhs=_iv(0, 9), op="==", rhs=point(Const(3)))
    assert guard_fraction(g, {}) == pytest.approx(0.1)


def test_guard_fraction_inequality_complements_equality():
    eq = Guard(lhs=_iv(0, 9), op="==", rhs=point(Const(3)))
    ne = Guard(lhs=_iv(0, 9), op="!=", rhs=point(Const(3)))
    assert guard_fraction(eq, {}) + guard_fraction(ne, {}) == pytest.approx(1.0)


def test_guard_fraction_less_than_midpoint():
    g = Guard(lhs=_iv(0, 9), op="<", rhs=point(Const(5)))
    assert guard_fraction(g, {}) == pytest.approx(0.5)


def test_guard_fraction_point_operand_is_one():
    g = Guard(lhs=point(Const(2)), op="<", rhs=point(Const(5)))
    assert guard_fraction(g, {}) == 1.0


def test_guard_fraction_unbounded_operand_is_one():
    g = Guard(lhs=top(), op="<", rhs=point(Const(5)))
    assert guard_fraction(g, {}) == 1.0


def test_guard_fraction_clamped_to_unit_interval():
    g = Guard(lhs=_iv(0, 9), op="<", rhs=point(Const(100)))
    assert guard_fraction(g, {}) == 1.0


# ----------------------------------------------------------------------
# Exact-count fixture: static == dynamic
# ----------------------------------------------------------------------
def test_fixture_static_counts_are_exact():
    model = model_from_source(FIXTURE_SRC, global_size=256, buffer_elems=256)
    result = characterize_model(model, name="fixture", dwarf="test")
    diag = result.per_kernel["fix"]
    # 4 loop iterations x (mul + accumulate-add) x 256 work items
    assert diag["flops"] == 2048.0
    assert diag["int_ops"] == 0.0
    # unique traffic: one 256-element float buffer each way, the
    # repeated in[i] reads collapse to the extent
    assert diag["bytes_read"] == 1024.0
    assert diag["bytes_written"] == 1024.0
    assert diag["work_items"] == 256.0
    assert result.footprint_bytes == 2048.0


def test_fixture_static_matches_exact_dynamic_profile():
    model = model_from_source(FIXTURE_SRC, global_size=256, buffer_elems=256)
    bench = _FakeBench(model, [_fixture_profile()])
    findings, row = compare_bench_aiwc(bench)
    assert findings == []
    assert max(row["scores"].values()) == pytest.approx(0.0, abs=1e-9)


def test_fixture_wrong_dynamic_profile_is_flagged():
    """A deliberately wrong dynamic profile must trip the gate."""
    model = model_from_source(FIXTURE_SRC, global_size=256, buffer_elems=256)
    wrong = _fixture_profile(
        flops=0.0, int_ops=1e9, bytes_read=1e9,
        seq_fraction=0.0, random_fraction=1.0,
        branch_fraction=0.9, launches=500,
    )
    bench = _FakeBench(model, [wrong])
    findings, row = compare_bench_aiwc(bench)
    assert findings, "gate must flag a wrong dynamic profile"
    checks = {f.check for f in findings}
    assert checks == {"aiwc-divergence"}
    assert all(f.severity == "error" for f in findings)
    flagged = {f.argument for f in findings}
    assert "fp_fraction" in flagged
    assert "branch_fraction" in flagged


def test_fixture_group_suppression_drops_findings():
    src = FIXTURE_SRC.replace(
        "int i = get_global_id(0);",
        "// repro-lint: allow(aiwc-divergence: compute)\n"
        "    int i = get_global_id(0);")
    model = model_from_source(src, global_size=256, buffer_elems=256)
    wrong = _fixture_profile(flops=0.0, int_ops=1e9)
    bench = _FakeBench(model, [wrong])
    findings, row = compare_bench_aiwc(bench)
    assert row["suppressed_groups"] == ["compute"]
    assert all(f.argument not in
               ("opcode_total", "fp_fraction", "arithmetic_intensity")
               for f in findings)


# ----------------------------------------------------------------------
# The gate over the shipped suite
# ----------------------------------------------------------------------
def test_gate_clean_across_suite():
    """Zero aiwc-divergence findings for all benchmarks x all presets."""
    for name in ALL_BENCHMARKS:
        findings, table = compare_benchmark_aiwc(name)
        assert findings == [], (
            f"{name}: {[f'{f.argument}: {f.message}' for f in findings]}")
        assert table, f"{name}: no comparison rows produced"
        for row in table.values():
            for metric, score in row["scores"].items():
                assert math.isfinite(score)


def test_characterize_suite_static_covers_extensions():
    metrics = characterize_suite_static("large")
    names = {m.benchmark for m in metrics}
    assert names == set(ALL_BENCHMARKS)
    for m in metrics:
        assert all(math.isfinite(v) for v in m.vector())


def test_characterize_static_requires_model():
    class NoModel:
        name = "nomodel"
        dwarf = "test"

        def static_launches(self):
            return None

    with pytest.raises(ValueError):
        characterize_static(NoModel())


# ----------------------------------------------------------------------
# model_from_source (user-supplied .cl kernels)
# ----------------------------------------------------------------------
def test_model_from_source_characterizes_bare_kernel():
    src = """
    __kernel void saxpy(__global float* y, __global const float* x,
                        float a, int n) {
        int i = get_global_id(0);
        if (i < n) y[i] = a * x[i] + y[i];
    }
    """
    result = characterize_model(model_from_source(src), name="saxpy")
    m = result.metrics
    assert m.fp_fraction == pytest.approx(2.0 / 3.0, abs=1e-6)
    assert m.arithmetic_intensity == pytest.approx(2.0 / 12.0, abs=1e-6)


def test_model_from_source_rejects_bodyless_source():
    with pytest.raises(CLSourceError):
        model_from_source("__kernel void decl(__global float* x);")


# ----------------------------------------------------------------------
# Static profiles and the scheduler path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_static_profiles_are_valid(name):
    """profiles_from_model output passes KernelProfile validation."""
    cls = registry.get_benchmark(name)
    bench = cls.from_size(cls.available_sizes()[0])
    profiles = static_profiles(bench)
    assert profiles
    for p in profiles:
        assert p.work_items >= 1
        assert p.launches >= 1
        total = p.seq_fraction + p.strided_fraction + p.random_fraction
        assert total == pytest.approx(1.0)


def test_selector_static_source_regret_bounded():
    """The static top pick costs at most 25% more than the dynamic one.

    Full-order ranking identity is not attainable (near-tied devices
    swap), so the acceptance criterion is scheduling regret: the
    dynamic-model time of the statically chosen device over the
    dynamic optimum.  Benchmarks carrying an aiwc-divergence group
    suppression declare a known modeling difference and are excluded.
    """
    from repro.analysis.staticaiwc import _model_allows

    for name in ALL_BENCHMARKS:
        cls = registry.get_benchmark(name)
        bench = cls.from_size(cls.available_sizes()[-1])
        model = bench.static_launches()
        if model is None:
            continue
        if any(check == "aiwc-divergence" for check, _ in _model_allows(model)):
            continue
        dyn = predict_all(bench, profile_source="dynamic")
        sta = predict_all(bench, profile_source="static")
        dyn_time = {p.device: p.time_s for p in dyn}
        best = min(dyn, key=lambda p: p.time_s)
        pick = min(sta, key=lambda p: p.time_s)
        regret = dyn_time[pick.device] / best.time_s
        assert regret <= 1.25, f"{name}: static pick regret {regret:.2f}"


def test_selector_rejects_unknown_profile_source():
    cls = registry.get_benchmark("kmeans")
    bench = cls.from_size(cls.available_sizes()[0])
    with pytest.raises(ValueError):
        predict_all(bench, profile_source="oracle")


# ----------------------------------------------------------------------
# Deterministic JSON reports
# ----------------------------------------------------------------------
def _finding(i):
    return Finding(check="aiwc-divergence", severity="error",
                   message=f"m{i}", benchmark=f"b{i % 3}",
                   argument=f"metric{i % 4}")


def test_report_json_is_order_independent():
    findings = [_finding(i) for i in range(8)]
    a, b = Report(), Report()
    for f in findings:
        a.add(f)
    for f in reversed(findings):
        b.add(f)
    assert a.to_json() == b.to_json()


def test_report_json_extras_keys_sorted():
    r = Report()
    r.extras["zeta"] = {"b": 1, "a": 2}
    r.extras["alpha"] = [3]
    payload = r.to_json()
    assert payload == json.dumps(json.loads(payload), indent=2,
                                 sort_keys=True)
