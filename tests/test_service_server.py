"""BenchService end-to-end over TCP: protocol, streaming, topology."""

import asyncio
import contextlib
import threading

import numpy as np
import pytest

from repro.harness.runner import run_matrix
from repro.harness.sweep import SweepCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import ServiceEngine
from repro.service.server import BenchService, run_service
from repro.telemetry.metrics import MetricsRegistry

DEVICE = "i7-6700K"
SAMPLES = 4


@contextlib.contextmanager
def service_running(**kwargs):
    """A BenchService on an ephemeral port, in a background thread."""
    kwargs.setdefault("registry", MetricsRegistry())
    started = threading.Event()
    holder = {}

    def runner():
        async def main():
            service = BenchService(host="127.0.0.1", port=0, **kwargs)
            if service.engine is not None:
                service.engine.runlog = None
            holder["service"] = service
            holder["loop"] = asyncio.get_running_loop()
            ready = asyncio.Event()
            task = asyncio.create_task(
                run_service(service, ready_event=ready))
            await ready.wait()
            started.set()
            await task

        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(timeout=60), "service did not start"
    try:
        yield holder["service"]
    finally:
        holder["loop"].call_soon_threadsafe(
            holder["service"].request_shutdown)
        thread.join(timeout=60)
        assert not thread.is_alive(), "service did not drain"


class TestProtocolBasics:
    def test_hello_ping_metrics(self):
        with service_running(jobs=1) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                assert client.hello["type"] == "hello"
                assert client.hello["mode"] == "full"
                assert client.ping()["type"] == "pong"
                text = client.metrics_text()
                assert "service_queue_depth" in text
                assert "service_requests_total" in text

    def test_bad_records_answered_not_fatal(self):
        with service_running(jobs=1) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                client.stream.write(b"this is not json\n")
                client.stream.flush()
                assert client.read()["type"] == "error"
                client.send({"type": "launch_missiles"})
                assert "unknown request type" in client.read()["error"]
                client.send({"type": "submit"})  # missing fields
                assert "requires" in client.read()["error"]
                assert client.ping()["type"] == "pong"  # still alive

    def test_unknown_cell_is_an_error(self):
        with service_running(jobs=1) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                with pytest.raises(ServiceError, match="unknown benchmark"):
                    client.run_cell("nope", "tiny", DEVICE)


class TestServedResults:
    def test_submit_streams_result(self, tmp_path):
        registry = MetricsRegistry()
        with service_running(jobs=1, registry=registry,
                             cache=SweepCache(tmp_path)) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                record = client.run_cell("fft", "tiny", DEVICE,
                                         samples=SAMPLES)
        assert record["status"] == "done"
        assert record["cached"] is False
        serial = run_matrix("fft", sizes=["tiny"], devices=[DEVICE],
                            samples=SAMPLES, jobs=1)[0]
        np.testing.assert_array_equal(
            np.asarray(record["result"]["times_s"]), serial.times_s)

    def test_three_concurrent_clients_one_computation(self, tmp_path):
        """The dedup acceptance test, over real sockets: three clients
        race the same cell; the cell is computed exactly once and all
        three get bit-identical payloads."""
        registry = MetricsRegistry()
        barrier = threading.Barrier(3, timeout=60)
        outputs = {}

        def one_client(tag, port):
            with ServiceClient("127.0.0.1", port) as client:
                barrier.wait()
                outputs[tag] = client.run_cell(
                    "fft", "small", DEVICE, samples=SAMPLES)

        with service_running(jobs=2, registry=registry,
                             cache=SweepCache(tmp_path)) as service:
            threads = [
                threading.Thread(target=one_client, args=(i, service.port))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        assert sorted(outputs) == [0, 1, 2]
        payloads = [outputs[i]["result"] for i in range(3)]
        assert payloads[0] == payloads[1] == payloads[2]
        # exactly one computation: dedup and/or cache absorbed the rest
        assert registry.counter("sweep_cells_computed_total").value() == 1
        dedup = registry.counter("service_dedup_hits_total").value()
        cache_hits = registry.counter("service_cache_hits_total").value()
        assert dedup + cache_hits == 2
        serial = run_matrix("fft", sizes=["small"], devices=[DEVICE],
                            samples=SAMPLES, jobs=1)[0]
        np.testing.assert_array_equal(
            np.asarray(payloads[0]["times_s"]), serial.times_s)

    def test_submit_matrix_streams_every_cell(self):
        with service_running(jobs=2) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                ack = client.submit_matrix(
                    benchmarks=["fft", "csr"], sizes=["tiny"],
                    devices=[DEVICE], samples=SAMPLES)
                assert ack["type"] == "ack"
                assert len(ack["job_ids"]) == 2
                records = client.results(2)
        keys = {r["key"] for r in records}
        assert keys == set(ack["keys"])
        assert all(r["status"] == "done" for r in records)

    def test_queue_full_rejected_with_retry_after(self, monkeypatch):
        """With the engine stalled, the queue bound turns the second
        distinct submit into a `rejected` record."""
        async def stalled_start(self):
            return None

        monkeypatch.setattr(ServiceEngine, "start", stalled_start)
        with service_running(jobs=1, queue_limit=1) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                ack = client.submit("fft", "tiny", DEVICE, samples=SAMPLES)
                assert ack["type"] == "ack"
                rejected = client.submit("fft", "small", DEVICE,
                                         samples=SAMPLES)
                assert rejected["type"] == "rejected"
                assert rejected["retry_after"] >= 1.0

    def test_cancel_over_the_wire(self, monkeypatch):
        async def stalled_start(self):
            return None

        monkeypatch.setattr(ServiceEngine, "start", stalled_start)
        with service_running(jobs=1) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                ack = client.submit("fft", "tiny", DEVICE, samples=SAMPLES)
                job_id = ack["job_ids"][0]
                cancelled = client.cancel(job_id)
                assert cancelled["status"] == "cancelled"


class TestCacheTopology:
    def test_remote_workers_share_one_store(self, tmp_path):
        """The shared-store acceptance test: a cache-only hub; worker A
        computes through it; worker B gets pure hits (0 recomputes)."""
        from repro.harness.sweep import run_sweep
        from repro.harness.runner import RunConfig

        hub_store = tmp_path / "hub"
        with service_running(cache_only=True,
                             cache=SweepCache(hub_store)) as service:
            spec = f"remote://127.0.0.1:{service.port}"
            configs = [RunConfig("fft", "tiny", DEVICE, samples=SAMPLES),
                       RunConfig("csr", "tiny", DEVICE, samples=SAMPLES)]
            a = run_sweep(configs, jobs=1, cache=SweepCache(spec))
            assert (a.computed, a.cached) == (2, 0)
            b = run_sweep(configs, jobs=1, cache=SweepCache(spec))
            assert (b.computed, b.cached) == (0, 2)
            for ra, rb in zip(a.results, b.results):
                np.testing.assert_array_equal(ra.times_s, rb.times_s)
        # the hub's local store holds the sharded npz entries
        assert len(list(hub_store.glob("*/*.npz"))) == 2

    def test_cache_only_mode_refuses_submits(self, tmp_path):
        with service_running(cache_only=True,
                             cache=SweepCache(tmp_path)) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                assert client.hello["mode"] == "cache-only"
                with pytest.raises(ServiceError,
                                   match="cache-only"):
                    client.run_cell("fft", "tiny", DEVICE)

    def test_full_mode_also_serves_cache_records(self, tmp_path):
        """A full instance doubles as a cache hub (worker co-location)."""
        from repro.service.store import RemoteCacheBackend

        with service_running(jobs=1,
                             cache=SweepCache(tmp_path)) as service:
            backend = RemoteCacheBackend("127.0.0.1", service.port)
            backend.write("result", "ab" * 32, b"blob")
            assert backend.read("result", "ab" * 32) == b"blob"


class TestShutdown:
    def test_shutdown_record_drains_the_server(self):
        with service_running(jobs=1) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                assert client.shutdown()["type"] == "bye"
        # the context manager asserts the thread exited cleanly
