"""KernelProfile validation and derived quantities."""

import math

import pytest

from repro.perfmodel import KernelProfile, merge_working_set


def make(**overrides):
    base = dict(name="k", flops=100.0, int_ops=50.0, bytes_read=400.0,
                bytes_written=100.0, working_set_bytes=1000.0, work_items=64)
    base.update(overrides)
    return KernelProfile(**base)


class TestValidation:
    def test_pattern_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            make(seq_fraction=0.5, strided_fraction=0.1, random_fraction=0.1)

    def test_pattern_fractions_valid_mix(self):
        p = make(seq_fraction=0.5, strided_fraction=0.3, random_fraction=0.2)
        assert p.seq_fraction == 0.5

    def test_work_items_positive(self):
        with pytest.raises(ValueError, match="work_items"):
            make(work_items=0)

    def test_negative_quantities_rejected(self):
        for attr in ("flops", "int_ops", "bytes_read", "bytes_written",
                     "working_set_bytes", "serial_ops", "chain_ops"):
            with pytest.raises(ValueError, match=attr):
                make(**{attr: -1.0})

    def test_launches_at_least_one(self):
        with pytest.raises(ValueError, match="launches"):
            make(launches=0)


class TestDerived:
    def test_default_work_groups_of_64(self):
        assert make(work_items=640).work_groups == 10

    def test_explicit_work_groups_kept(self):
        assert make(work_groups=5).work_groups == 5

    def test_bytes_total(self):
        assert make().bytes_total == 500.0

    def test_arithmetic_intensity(self):
        assert make().arithmetic_intensity == pytest.approx(100 / 500)

    def test_arithmetic_intensity_no_traffic(self):
        p = make(bytes_read=0.0, bytes_written=0.0)
        assert math.isinf(p.arithmetic_intensity)

    def test_total_ops(self):
        assert make().total_ops == 150.0

    def test_scaled_sets_launches(self):
        p = make().scaled(7)
        assert p.launches == 7
        assert p.flops == 100.0  # per-launch quantities unchanged


class TestMergeWorkingSet:
    def test_empty(self):
        assert merge_working_set([]) == 0.0

    def test_max_of_shared_buffers(self):
        profiles = [make(working_set_bytes=100.0), make(working_set_bytes=900.0)]
        assert merge_working_set(profiles) == 900.0
