"""Telemetry core: tracer spans, event-hook bus, metrics, run log."""

import io
import json

import numpy as np
import pytest

from repro import ocl
from repro.telemetry import (
    EventBus,
    GLOBAL_EVENT_BUS,
    MetricsRegistry,
    RunLog,
    Tracer,
    default_registry,
    get_tracer,
    memory_runlog,
    read_jsonl,
    set_default_runlog,
    set_tracer,
    tracing,
)
from repro.telemetry.tracer import NOOP_SPAN


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_name_attributes_and_times(self):
        ticks = iter(range(100, 200))
        t = Tracer(enabled=True, clock=lambda: next(ticks))
        with t.span("work", benchmark="fft") as span:
            span.set_attribute("extra", 1)
        assert len(t.finished) == 1
        done = t.finished[0]
        assert done.name == "work"
        assert done.attributes == {"benchmark": "fft", "extra": 1}
        assert done.end_ns > done.start_ns
        assert done.duration_ns == done.end_ns - done.start_ns

    def test_nesting_builds_parent_child_links(self):
        t = Tracer(enabled=True)
        with t.span("outer") as outer:
            assert t.current_span is outer
            with t.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
        assert t.current_span is None
        # inner finishes first (completion order)
        assert [s.name for s in t.finished] == ["inner", "outer"]
        assert t.finished[1].parent_id is None

    def test_exception_marks_span_and_propagates(self):
        t = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with t.span("bad"):
                raise ValueError("boom")
        assert t.finished[0].attributes["error"] == "ValueError"
        assert t.finished[0].ended

    def test_disabled_tracer_is_noop_fast_path(self):
        """Acceptance: zero overhead when nobody is listening."""
        t = Tracer(enabled=False)
        cm_a = t.span("a", big_attr=list(range(100)))
        cm_b = t.span("b")
        # the identical shared object both times: no allocation per call
        assert cm_a is NOOP_SPAN
        assert cm_b is NOOP_SPAN
        with cm_a as span:
            span.set_attribute("ignored", 1)  # must not raise
        assert len(t.finished) == 0
        assert t.current_span is None

    def test_global_default_tracer_disabled_and_swappable(self):
        assert get_tracer().enabled is False
        assert get_tracer().span("x") is NOOP_SPAN
        mine = Tracer(enabled=True)
        prev = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(prev)
        assert get_tracer() is prev

    def test_tracing_context_manager_restores_previous(self):
        before = get_tracer()
        with tracing() as t:
            assert get_tracer() is t
            with t.span("inside"):
                pass
        assert get_tracer() is before
        assert [s.name for s in t.finished] == ["inside"]

    def test_to_dicts_is_json_ready(self):
        with tracing() as t:
            with t.span("a", k="v"):
                pass
        payload = json.dumps(t.to_dicts())
        assert json.loads(payload)[0]["name"] == "a"


# ----------------------------------------------------------------------
# Event-hook bus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_publish_reaches_subscribers_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda q, e: seen.append(("first", e)))
        bus.subscribe(lambda q, e: seen.append(("second", e)))
        bus.publish("queue", "event")
        assert [tag for tag, _ in seen] == ["first", "second"]

    def test_unsubscribe_and_scoped_subscription(self):
        bus = EventBus()
        seen = []
        with bus.subscribed(lambda q, e: seen.append(e)):
            bus.publish(None, 1)
        bus.publish(None, 2)
        assert seen == [1]
        assert not bus.has_subscribers

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            EventBus().subscribe("not callable")

    def test_queue_publishes_to_queue_context_and_global(self, cpu_context):
        queue = ocl.CommandQueue(cpu_context)
        buf = cpu_context.create_buffer(size=256)
        hits = {"queue": 0, "context": 0, "global": 0}
        queue.event_bus.subscribe(
            lambda q, e: hits.__setitem__("queue", hits["queue"] + 1))
        cpu_context.event_bus.subscribe(
            lambda q, e: hits.__setitem__("context", hits["context"] + 1))
        cb = lambda q, e: hits.__setitem__("global", hits["global"] + 1)
        with GLOBAL_EVENT_BUS.subscribed(cb):
            queue.enqueue_fill_buffer(buf, 0)
            queue.enqueue_read_buffer(buf, np.zeros(256, np.uint8))
        queue.enqueue_fill_buffer(buf, 1)  # global unsubscribed by now
        assert hits == {"queue": 3, "context": 3, "global": 2}

    def test_callback_receives_completed_event(self, cpu_queue, cpu_context):
        captured = []
        cpu_queue.event_bus.subscribe(lambda q, e: captured.append((q, e)))
        buf = cpu_context.create_buffer(size=64)
        event = cpu_queue.enqueue_fill_buffer(buf, 7)
        (q, e), = captured
        assert q is cpu_queue
        assert e is event
        assert e.status == ocl.CommandExecutionStatus.COMPLETE

    def test_subscriber_exception_propagates(self, cpu_queue, cpu_context):
        def bad(q, e):
            raise RuntimeError("subscriber broke")
        cpu_queue.event_bus.subscribe(bad)
        buf = cpu_context.create_buffer(size=64)
        with pytest.raises(RuntimeError, match="subscriber broke"):
            cpu_queue.enqueue_fill_buffer(buf, 0)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def parse_prometheus(text: str) -> dict:
    """Tiny validating parser for the Prometheus text format.

    Returns {family: {"type": str, "samples": {sample_line_name: value}}}
    and raises AssertionError on malformed lines.
    """
    import re
    families: dict = {}
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split()[2]
            families.setdefault(name, {"type": None, "samples": {}})
            current = name
        elif line.startswith("# TYPE "):
            _, _, name, type_name = line.split(None, 3)
            assert name == current, f"TYPE for {name} outside its HELP block"
            assert type_name in ("counter", "gauge", "summary", "histogram",
                                 "untyped")
            families[name]["type"] = type_name
        else:
            m = re.match(
                r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$', line)
            assert m, f"malformed sample line: {line!r}"
            sample_name = m.group(1) + (m.group(2) or "")
            family = m.group(1)
            for suffix in ("_sum", "_count", "_bucket"):
                family = family.removesuffix(suffix)
            families[family]["samples"][sample_name] = float(m.group(3))
    return families


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "Requests")
        c.inc()
        c.inc(2, route="/run")
        assert c.value() == 1
        assert c.value(route="/run") == 2
        assert c.total == 3
        with pytest.raises(ValueError):
            c.inc(-1)

        g = reg.gauge("depth")
        g.set(5)
        g.dec(2)
        assert g.value() == 3

        h = reg.histogram("latency_seconds")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 10.0
        assert h.quantile(0.5) == 2.5
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 4.0

    def test_get_or_create_is_idempotent_and_type_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad-name")
        with pytest.raises(ValueError):
            reg.counter("ok_total").inc(**{"0bad": "v"})

    def test_exposition_parses_and_escapes(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", "Runs").inc(device='GTX "1080"')
        reg.histogram("t_seconds", "Times").observe(0.5, bench="fft")
        families = parse_prometheus(reg.expose())
        assert families["runs_total"]["type"] == "counter"
        assert families["t_seconds"]["type"] == "summary"
        assert any("quantile" in k for k in families["t_seconds"]["samples"])
        assert 't_seconds_count{bench="fft"}' in families["t_seconds"]["samples"]

    def test_reset_keeps_family_references_valid(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        c.inc(5)
        reg.reset()
        assert c.value() == 0
        c.inc()  # cached reference still wired to the registry
        assert "n_total 1.0" in reg.expose()

    def test_queue_increments_default_registry(self, cpu_context):
        reg = default_registry()
        queue = ocl.CommandQueue(cpu_context)
        buf = cpu_context.create_buffer(size=2048)
        before_cmds = reg.counter("ocl_commands_enqueued_total").total
        before_bytes = reg.counter("ocl_bytes_moved_total").total
        queue.enqueue_fill_buffer(buf, 0)
        queue.enqueue_read_buffer(buf, np.empty(2048, np.uint8))
        assert reg.counter("ocl_commands_enqueued_total").total == before_cmds + 2
        assert reg.counter("ocl_bytes_moved_total").total == before_bytes + 4096


# ----------------------------------------------------------------------
# Run log
# ----------------------------------------------------------------------
class TestRunLog:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path, clock=lambda: 42.0) as log:
            log.write("run_start", benchmark="fft")
            log.write("run_complete", mean_ms=np.float64(1.5))
        records = read_jsonl(path)
        assert [r["event"] for r in records] == ["run_start", "run_complete"]
        assert records[0]["ts"] == 42.0
        assert records[1]["mean_ms"] == 1.5  # numpy scalar coerced

    def test_stream_target_not_closed(self):
        log, buffer = memory_runlog(clock=lambda: 0.0)
        log.write("x")
        log.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["event"] == "x"

    def test_default_runlog_used_by_runner(self):
        from repro.harness import RunConfig, run_benchmark
        log, buffer = memory_runlog(clock=lambda: 0.0)
        prev = set_default_runlog(log)
        try:
            run_benchmark(RunConfig("fft", "tiny", "i7-6700K", samples=3))
        finally:
            set_default_runlog(prev)
        events = [json.loads(l)["event"] for l in
                  buffer.getvalue().splitlines()]
        assert events == ["run_start", "run_complete"]
        done = json.loads(buffer.getvalue().splitlines()[-1])
        assert done["benchmark"] == "fft"
        assert done["validated"] is True
        assert done["mean_ms"] > 0
