"""Roofline analysis: ceilings, kernel points, HTML rendering."""

import math
import re

import pytest

from repro.devices import get_device
from repro.dwarfs import create
from repro.perfmodel import (
    KernelProfile,
    device_ceilings,
    kernel_point,
    render_roofline_html,
    ridge_point,
    save_roofline_html,
    suite_points,
)


class TestCeilings:
    def test_roof_and_diagonals(self, skylake):
        ceilings = device_ceilings(skylake)
        names = [c.name for c in ceilings]
        assert names == ["compute", "L1", "L2", "L3", "DRAM"]
        roof = ceilings[0]
        assert roof.bandwidth_gbs is None
        assert roof.gflops == pytest.approx(
            skylake.compute.fp32_gflops * skylake.compute.efficiency)

    def test_diagonal_value(self, skylake):
        dram = device_ceilings(skylake)[-1]
        assert dram.value_at(0.1) == pytest.approx(
            skylake.memory.bandwidth_gbs * 0.1)
        # clipped by the roof at high intensity
        assert dram.value_at(1e6) == dram.gflops

    def test_ridge_point(self, skylake, gtx1080):
        """GPUs need higher intensity to leave the bandwidth regime."""
        assert ridge_point(gtx1080) > ridge_point(skylake) * 0.5
        assert ridge_point(skylake) == pytest.approx(
            skylake.compute.fp32_gflops * skylake.compute.efficiency
            / skylake.memory.bandwidth_gbs)


class TestKernelPoints:
    def test_achieved_below_attainable(self, skylake):
        for p in suite_points(skylake, "large"):
            assert p.achieved_gflops <= p.attainable_gflops * 1.05, p.label
            assert 0 <= p.efficiency <= 1.05

    def test_gem_is_compute_bound(self, gtx1080):
        points = {p.label: p for p in suite_points(gtx1080, "large")}
        assert points["gem"].arithmetic_intensity > ridge_point(gtx1080)

    def test_csr_is_memory_bound(self, gtx1080):
        points = {p.label: p for p in suite_points(gtx1080, "large")}
        assert points["csr"].arithmetic_intensity < ridge_point(gtx1080)

    def test_integer_kernels_excluded(self, skylake):
        labels = {p.label for p in suite_points(skylake, "large")}
        assert "crc" not in labels
        assert "nw" not in labels
        assert "nqueens" not in labels

    def test_kernel_point_direct(self, skylake):
        bench = create("srad", "medium")
        p = kernel_point(skylake, "srad", bench.profiles())
        flops = sum(pr.flops * pr.launches for pr in bench.profiles())
        total_bytes = sum(pr.bytes_total * pr.launches for pr in bench.profiles())
        assert p.arithmetic_intensity == pytest.approx(flops / total_bytes)

    def test_zero_byte_profile_infinite_intensity(self, skylake):
        p = kernel_point(skylake, "pure", [KernelProfile(
            "pure", flops=1e9, int_ops=0, bytes_read=0, bytes_written=0,
            working_set_bytes=64, work_items=1 << 16)])
        assert math.isinf(p.arithmetic_intensity)
        assert p.attainable_gflops == pytest.approx(
            skylake.compute.fp32_gflops * skylake.compute.efficiency)


class TestRendering:
    @pytest.fixture(scope="class")
    def html_text(self):
        spec = get_device("GTX 1080")
        return render_roofline_html(spec, suite_points(spec, "large"))

    def test_document_structure(self, html_text):
        assert html_text.startswith("<!doctype html>")
        assert "Roofline — GTX 1080" in html_text
        assert "<table>" in html_text               # relief/table view
        assert "prefers-color-scheme: dark" in html_text

    def test_ceiling_polylines_labeled(self, html_text):
        assert html_text.count('class="ceiling"') >= 3
        for name in ("L1", "L2", "DRAM"):
            assert f">{name}</text>" in html_text

    def test_points_direct_labeled_with_tooltips(self, html_text):
        assert html_text.count('class="point"') >= 6
        assert "attainable" in html_text
        for label in ("gem", "srad", "fft"):
            assert f">{label}</text>" in html_text

    def test_geometry_in_viewbox(self, html_text):
        view = re.search(r'viewBox="0 0 ([0-9.]+) ([0-9.]+)"', html_text)
        vw, vh = float(view.group(1)), float(view.group(2))
        for cx, cy in re.findall(r'cx="([-0-9.]+)" cy="([-0-9.]+)"', html_text):
            assert 0 <= float(cx) <= vw
            assert 0 <= float(cy) <= vh

    def test_save(self, tmp_path, skylake):
        path = save_roofline_html(skylake, suite_points(skylake, "medium"),
                                  tmp_path / "roof.html")
        assert path.exists()
