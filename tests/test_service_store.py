"""Cache backends and the wire protocol (repro.service)."""

import socket
import socketserver
import threading

import pytest

from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    blob_from_wire,
    blob_to_wire,
    decode_record,
    encode_record,
    validate_request,
)
from repro.service.store import (
    CacheBackend,
    CacheBackendError,
    LocalCacheBackend,
    RemoteCacheBackend,
    parse_backend_spec,
)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_roundtrip(self):
        record = {"type": "submit", "benchmark": "fft", "size": "tiny",
                  "device": "i7-6700K", "v": PROTOCOL_VERSION}
        line = encode_record(record)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert decode_record(line) == record

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_record(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError):
            decode_record(b"not json at all\n")

    def test_decode_rejects_oversized_line(self):
        from repro.service.protocol import MAX_LINE_BYTES
        with pytest.raises(ProtocolError):
            decode_record(b"x" * (MAX_LINE_BYTES + 1))

    def test_validate_submit(self):
        good = {"type": "submit", "benchmark": "fft", "size": "tiny",
                "device": "i7-6700K"}
        assert validate_request(good) is None
        assert validate_request({"type": "submit"}) is not None
        assert validate_request({"type": "nonsense"}) is not None

    def test_validate_version_gate(self):
        record = {"type": "ping", "v": PROTOCOL_VERSION + 1}
        assert "version" in validate_request(record)

    def test_validate_cache_only_mode(self):
        submit = {"type": "submit", "benchmark": "fft", "size": "tiny",
                  "device": "i7-6700K"}
        assert validate_request(submit, cache_only=True) is not None
        get = {"type": "cache_get", "kind": "result", "key": "ab" * 32}
        assert validate_request(get, cache_only=True) is None

    def test_validate_cache_fields(self):
        assert validate_request(
            {"type": "cache_get", "kind": "bogus", "key": "k"}) is not None
        assert validate_request(
            {"type": "cache_put", "kind": "result", "key": "k"}) is not None

    def test_blob_wire_roundtrip(self):
        blob = bytes(range(256))
        assert blob_from_wire(blob_to_wire(blob)) == blob
        assert blob_to_wire(None) is None
        assert blob_from_wire(None) is None
        with pytest.raises(ProtocolError):
            blob_from_wire("!!! not base64 !!!")


# ----------------------------------------------------------------------
# Local backend
# ----------------------------------------------------------------------
class TestLocalCacheBackend:
    def test_sharded_npz_layout(self, tmp_path):
        backend = LocalCacheBackend(tmp_path)
        key = "abcdef" + "0" * 58
        backend.write("result", key, b"result-bytes")
        assert (tmp_path / "ab" / f"{key}.npz").read_bytes() == b"result-bytes"
        backend.write("artifact", key, b"artifact-bytes")
        assert (tmp_path / "analysis" / "ab" /
                f"{key}.npz").read_bytes() == b"artifact-bytes"

    def test_read_miss_returns_none(self, tmp_path):
        backend = LocalCacheBackend(tmp_path)
        assert backend.read("result", "ff" * 32) is None

    def test_no_tmp_droppings(self, tmp_path):
        backend = LocalCacheBackend(tmp_path)
        backend.write("result", "aa" * 32, b"x")
        assert not list(tmp_path.rglob("*.tmp"))

    def test_legacy_layouts_consulted(self, tmp_path):
        backend = LocalCacheBackend(tmp_path)
        sharded, flat = "ab" + "1" * 62, "cd" + "2" * 62
        (tmp_path / "ab").mkdir()
        (tmp_path / "ab" / f"{sharded}.json").write_text("sharded-legacy")
        (tmp_path / f"{flat}.json").write_text("flat-legacy")
        assert backend.read("result", sharded) == b"sharded-legacy"
        assert backend.read("result", flat) == b"flat-legacy"
        assert backend.keys("result") == sorted([sharded, flat])

    def test_canonical_shadows_legacy(self, tmp_path):
        backend = LocalCacheBackend(tmp_path)
        key = "ab" + "3" * 62
        (tmp_path / f"{key}.json").write_text("old")
        backend.write("result", key, b"new")
        assert backend.read("result", key) == b"new"
        assert backend.keys("result") == [key]  # deduped across layouts

    def test_delete_covers_all_layouts(self, tmp_path):
        backend = LocalCacheBackend(tmp_path)
        key = "ab" + "4" * 62
        backend.write("result", key, b"new")
        (tmp_path / f"{key}.json").write_text("old")
        assert backend.delete("result", key) is True
        assert backend.read("result", key) is None
        assert backend.delete("result", key) is False

    def test_keys_excludes_artifacts(self, tmp_path):
        backend = LocalCacheBackend(tmp_path)
        backend.write("result", "aa" + "5" * 62, b"r")
        backend.write("artifact", "bb" + "6" * 62, b"a")
        assert backend.keys("result") == ["aa" + "5" * 62]
        assert backend.keys("artifact") == ["bb" + "6" * 62]

    def test_kind_checked(self, tmp_path):
        backend = LocalCacheBackend(tmp_path)
        with pytest.raises(ValueError):
            backend.path_for("bogus", "aa")

    def test_satisfies_protocol(self, tmp_path):
        assert isinstance(LocalCacheBackend(tmp_path), CacheBackend)
        assert isinstance(RemoteCacheBackend("localhost", 1), CacheBackend)


# ----------------------------------------------------------------------
# Backend spec parsing
# ----------------------------------------------------------------------
class TestParseBackendSpec:
    def test_path_goes_local(self, tmp_path):
        backend = parse_backend_spec(tmp_path / "cache")
        assert isinstance(backend, LocalCacheBackend)

    def test_remote_spec(self):
        backend = parse_backend_spec("remote://cachehost:7077")
        assert isinstance(backend, RemoteCacheBackend)
        assert (backend.host, backend.port) == ("cachehost", 7077)

    def test_bad_remote_spec(self):
        with pytest.raises(ValueError):
            parse_backend_spec("remote://no-port")

    def test_instance_passthrough(self, tmp_path):
        backend = LocalCacheBackend(tmp_path)
        assert parse_backend_spec(backend) is backend


# ----------------------------------------------------------------------
# Remote backend against a stub cache server
# ----------------------------------------------------------------------
class _StubCacheHandler(socketserver.StreamRequestHandler):
    """Minimal in-memory speaker of the cache protocol."""

    def handle(self):
        self.wfile.write(encode_record(
            {"type": "hello", "v": PROTOCOL_VERSION, "mode": "cache-only",
             "jobs": 0}))
        line = self.rfile.readline()
        if not line:
            return
        record = decode_record(line)
        store = self.server.store  # type: ignore[attr-defined]
        rtype = record["type"]
        if rtype == "cache_get":
            blob = store.get((record["kind"], record["key"]))
            reply = {"type": "cache_blob", "data": blob_to_wire(blob)}
        elif rtype == "cache_put":
            store[(record["kind"], record["key"])] = blob_from_wire(
                record["data"])
            reply = {"type": "cache_ok"}
        elif rtype == "cache_keys":
            reply = {"type": "cache_keys",
                     "keys": sorted(k for kind, k in store
                                    if kind == record["kind"])}
        elif rtype == "cache_delete":
            deleted = store.pop((record["kind"], record["key"]),
                                None) is not None
            reply = {"type": "cache_ok", "deleted": deleted}
        else:
            reply = {"type": "error", "id": record.get("id"),
                     "error": f"stub does not speak {rtype!r}"}
        self.wfile.write(encode_record(reply))


@pytest.fixture()
def stub_cache_server():
    server = socketserver.ThreadingTCPServer(
        ("127.0.0.1", 0), _StubCacheHandler)
    server.store = {}
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestRemoteCacheBackend:
    def test_roundtrip(self, stub_cache_server):
        host, port = stub_cache_server.server_address
        backend = RemoteCacheBackend(host, port, timeout_s=5.0)
        key = "ab" * 32
        assert backend.read("result", key) is None
        backend.write("result", key, b"remote-bytes")
        assert backend.read("result", key) == b"remote-bytes"
        assert backend.keys("result") == [key]
        assert backend.delete("result", key) is True
        assert backend.read("result", key) is None

    def test_unreachable_raises_backend_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        backend = RemoteCacheBackend("127.0.0.1", dead_port, timeout_s=1.0)
        with pytest.raises(CacheBackendError):
            backend.read("result", "ab" * 32)

    def test_server_error_raises_backend_error(self, stub_cache_server):
        host, port = stub_cache_server.server_address
        backend = RemoteCacheBackend(host, port, timeout_s=5.0)
        with pytest.raises(CacheBackendError):
            backend._roundtrip({"type": "ping"})

    def test_dead_store_degrades_to_uncached_run(self, caplog):
        """A sweep pointed at an unreachable store still completes:
        reads miss, writes are logged and swallowed."""
        import logging

        from repro.harness.runner import RunConfig
        from repro.harness.sweep import SweepCache, run_sweep

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        cache = SweepCache(f"remote://127.0.0.1:{dead_port}")
        cache.backend.timeout_s = 1.0
        config = RunConfig("fft", "tiny", "i7-6700K", samples=4)
        with caplog.at_level(logging.WARNING, logger="repro.harness.sweep"):
            outcome = run_sweep([config], jobs=1, cache=cache)
        assert (outcome.computed, outcome.cached) == (1, 0)
        assert any("failed to store" in r.message for r in caplog.records)

    def test_sweepcache_over_remote_backend(self, stub_cache_server, tmp_path):
        """SweepCache end-to-end over the remote backend: identical
        results, zero recomputation on the second worker."""
        from repro.harness.runner import RunConfig
        from repro.harness.sweep import SweepCache, run_sweep

        host, port = stub_cache_server.server_address
        spec = f"remote://{host}:{port}"
        config = RunConfig("fft", "tiny", "i7-6700K", samples=4)

        first = SweepCache(spec)
        warm = run_sweep([config], jobs=1, cache=first)
        assert (warm.computed, warm.cached) == (1, 0)

        second = SweepCache(spec)  # a different worker, same store
        hit = run_sweep([config], jobs=1, cache=second)
        assert (hit.computed, hit.cached) == (0, 1)
        import numpy as np
        np.testing.assert_array_equal(
            warm.results[0].times_s, hit.results[0].times_s)
