"""Batch-vs-scalar equivalence for the vectorized simulators.

Every model in :mod:`repro.cache` keeps its original per-address loop
as the scalar oracle (``REPRO_SIM_BATCH=0``) next to the numpy batch
path used by default.  These property tests drive random traces
through both and require *bit-exact* agreement — outcomes, counters,
and the internal LRU/counter state — plus a perf smoke test pinning
the batch path's headroom on a 1M-address trace.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import (
    BranchPredictor,
    CacheHierarchy,
    CacheStats,
    SetAssociativeCache,
    StreamPrefetcher,
    TLB,
    batch_enabled,
    batch_mode,
    scalar_mode,
)
from repro.cache.batch import ENV_VAR, as_addresses

SLOW = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def traces(max_address: int = 1 << 16, max_len: int = 300):
    """Random address traces with enough collisions to evict."""
    return st.lists(st.integers(min_value=0, max_value=max_address),
                    min_size=0, max_size=max_len)


def small_caches():
    """Tiny caches so eviction paths are exercised constantly."""
    return st.builds(
        SetAssociativeCache,
        size_bytes=st.sampled_from([256, 512, 1024, 4096]),
        line_bytes=st.sampled_from([32, 64]),
        associativity=st.sampled_from([1, 2, 4]),
    )


def _clone(cache: SetAssociativeCache) -> SetAssociativeCache:
    return SetAssociativeCache(
        size_bytes=cache.size_bytes, line_bytes=cache.line_bytes,
        associativity=cache.associativity, name=cache.name)


def _stats_tuple(stats: CacheStats) -> tuple[int, int, int]:
    return (stats.accesses, stats.hits, stats.misses)


# ----------------------------------------------------------------------
# SetAssociativeCache
# ----------------------------------------------------------------------
@SLOW
@given(cache=small_caches(), trace=traces())
def test_setassoc_batch_matches_scalar(cache, trace):
    other = _clone(cache)
    with scalar_mode():
        scalar_hits = [cache.access(a) for a in trace]
        scalar_misses = len(trace) - sum(scalar_hits)
    with batch_mode():
        batch_misses = other.access_many(trace)
        batch_hits = other.access_batch(np.asarray([], dtype=np.int64))
    assert batch_misses == scalar_misses
    assert batch_hits.size == 0
    assert _stats_tuple(other.stats) == _stats_tuple(cache.stats)
    # Internal LRU state must match exactly, including recency order.
    assert [list(s) for s in other._sets] == [list(s) for s in cache._sets]


@SLOW
@given(cache=small_caches(), trace=traces())
def test_setassoc_hit_mask_matches_oracle(cache, trace):
    other = _clone(cache)
    with scalar_mode():
        scalar_hits = [cache.access(a) for a in trace]
    mask = other.access_batch(np.asarray(trace, dtype=np.int64))
    assert mask.tolist() == scalar_hits


@SLOW
@given(cache=small_caches(), chunks=st.lists(traces(max_len=60),
                                             min_size=1, max_size=5))
def test_setassoc_scalar_and_batch_interleave(cache, chunks):
    """Both paths share the canonical state, so calls may alternate."""
    other = _clone(cache)
    for i, chunk in enumerate(chunks):
        if i % 2:
            with scalar_mode():
                cache.access_many(chunk)
                other.access_many(chunk)
        else:
            with scalar_mode():
                cache.access_many(chunk)
            with batch_mode():
                other.access_many(chunk)
    assert _stats_tuple(other.stats) == _stats_tuple(cache.stats)
    assert [list(s) for s in other._sets] == [list(s) for s in cache._sets]


# ----------------------------------------------------------------------
# CacheHierarchy
# ----------------------------------------------------------------------
def _small_hierarchy() -> CacheHierarchy:
    return CacheHierarchy([
        SetAssociativeCache(512, line_bytes=64, associativity=2, name="L1"),
        SetAssociativeCache(2048, line_bytes=64, associativity=4, name="L2"),
        SetAssociativeCache(8192, line_bytes=64, associativity=4, name="L3"),
    ])


@SLOW
@given(trace=traces(max_address=1 << 15))
def test_hierarchy_batch_matches_scalar(trace):
    ref, vec = _small_hierarchy(), _small_hierarchy()
    with scalar_mode():
        ref.access_many(trace)
    with batch_mode():
        vec.access_many(trace)
    assert vec.memory_accesses == ref.memory_accesses
    assert vec.miss_counts() == ref.miss_counts()
    for lr, lv in zip(ref.levels, vec.levels):
        assert _stats_tuple(lv.stats) == _stats_tuple(lr.stats)
        assert [list(s) for s in lv._sets] == [list(s) for s in lr._sets]


# ----------------------------------------------------------------------
# TLB — both the capacity shortcut and the eviction fallback
# ----------------------------------------------------------------------
@SLOW
@given(trace=traces(max_address=1 << 17),  # <= 32 pages: shortcut regime
       entries=st.sampled_from([4, 8, 64]))
def test_tlb_batch_matches_scalar(trace, entries):
    ref, vec = TLB(entries=entries), TLB(entries=entries)
    with scalar_mode():
        ref_misses = ref.access_many(trace)
    with batch_mode():
        vec_misses = vec.access_many(trace)
    assert vec_misses == ref_misses
    assert _stats_tuple(vec.stats) == _stats_tuple(ref.stats)
    # The final recency (insertion) order must match, not just the set.
    assert list(vec._pages) == list(ref._pages)


@SLOW
@given(pages=st.lists(st.integers(0, 200), min_size=1, max_size=400))
def test_tlb_eviction_fallback_matches_scalar(pages):
    """Page universe >> entries forces the compressed-replay path."""
    trace = [p * 4096 for p in pages]
    ref, vec = TLB(entries=8), TLB(entries=8)
    with scalar_mode():
        ref.access_many(trace)
    with batch_mode():
        vec.access_many(trace)
    assert _stats_tuple(vec.stats) == _stats_tuple(ref.stats)
    assert list(vec._pages) == list(ref._pages)


def test_tlb_batch_on_warm_state():
    """The shortcut must honour pre-existing resident entries."""
    ref, vec = TLB(entries=6), TLB(entries=6)
    warmup = [i * 4096 for i in (0, 1, 2, 3)]
    trace = [i * 4096 for i in (2, 4, 0, 4, 5)]
    with scalar_mode():
        ref.access_many(warmup)
        vec.access_many(warmup)
        ref.access_many(trace)
    with batch_mode():
        vec.access_many(trace)
    assert _stats_tuple(vec.stats) == _stats_tuple(ref.stats)
    assert list(vec._pages) == list(ref._pages)


# ----------------------------------------------------------------------
# Branch predictor
# ----------------------------------------------------------------------
@SLOW
@given(n=st.integers(0, 400), data=st.data())
def test_branch_batch_matches_scalar(n, data):
    pcs = data.draw(st.lists(st.integers(0, 1 << 20),
                             min_size=n, max_size=n))
    outcomes = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    ref, vec = BranchPredictor(table_size=64), BranchPredictor(table_size=64)
    with scalar_mode():
        ref_mis = ref.run_trace(pcs, outcomes)
    with batch_mode():
        vec_mis = vec.run_trace(pcs, outcomes)
    assert vec_mis == ref_mis
    assert vec.branches == ref.branches
    assert vec.mispredictions == ref.mispredictions
    assert np.array_equal(vec._table, ref._table)


def test_branch_long_runs_saturate_identically():
    """Closed-form run updates must clamp exactly like the oracle."""
    pcs = [0x40] * 500 + [0x40] * 500
    outcomes = [True] * 500 + [False] * 500
    ref, vec = BranchPredictor(), BranchPredictor()
    with scalar_mode():
        ref.run_trace(pcs, outcomes)
    with batch_mode():
        vec.run_trace(pcs, outcomes)
    assert vec.mispredictions == ref.mispredictions
    assert np.array_equal(vec._table, ref._table)


# ----------------------------------------------------------------------
# Prefetcher
# ----------------------------------------------------------------------
@SLOW
@given(trace=traces(max_address=1 << 14, max_len=200))
def test_prefetcher_batch_matches_scalar(trace):
    ref = StreamPrefetcher(_small_hierarchy(), streams=2, depth=2)
    vec = StreamPrefetcher(_small_hierarchy(), streams=2, depth=2)
    with scalar_mode():
        ref.access_many(trace)
    with batch_mode():
        vec.access_many(trace)
    assert vars(vec.stats) == vars(ref.stats)
    assert vec.hierarchy.miss_counts() == ref.hierarchy.miss_counts()
    assert vec._prefetched_lines == ref._prefetched_lines


# ----------------------------------------------------------------------
# Toggle and coercion plumbing
# ----------------------------------------------------------------------
def test_batch_toggle_env_values(monkeypatch):
    for value in ("0", "false", "OFF", " no "):
        monkeypatch.setenv(ENV_VAR, value)
        assert not batch_enabled()
    for value in ("1", "true", "on", ""):
        monkeypatch.setenv(ENV_VAR, value)
        assert batch_enabled()
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert batch_enabled()  # default is on


def test_mode_context_managers_restore_prior(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "0")
    with batch_mode():
        assert batch_enabled()
        with scalar_mode():
            assert not batch_enabled()
        assert batch_enabled()
    assert not batch_enabled()


def test_as_addresses_accepts_every_iterable():
    expected = [1, 2, 3]
    for source in ([1, 2, 3], (1, 2, 3), range(1, 4),
                   np.array([1, 2, 3], dtype=np.int32),
                   np.array([1.0, 2.0, 3.0]),
                   (x for x in [1, 2, 3])):
        arr = as_addresses(source)
        assert arr.dtype == np.int64
        assert arr.ndim == 1
        assert arr.tolist() == expected
    assert as_addresses([]).size == 0


# ----------------------------------------------------------------------
# CacheStats boundary behaviour
# ----------------------------------------------------------------------
def test_cache_stats_record_batch_coerces_numpy_ints():
    stats = CacheStats()
    stats.record_batch(np.int64(10), np.int64(7))
    assert (stats.accesses, stats.hits, stats.misses) == (10, 7, 3)
    for value in vars(stats).values():
        assert type(value) is int
    # Must stay JSON-native after batch updates.
    json.dumps(vars(stats))


def test_cache_stats_stay_python_int_through_batch_access():
    cache = SetAssociativeCache(512, associativity=2)
    with batch_mode():
        cache.access_many(np.arange(0, 8192, 64, dtype=np.int64))
    for value in vars(cache.stats).values():
        assert type(value) is int
    json.dumps(vars(cache.stats))


def test_cache_stats_reset_zeroes_independently():
    stats = CacheStats(accesses=5, hits=3, misses=2)
    stats.reset()
    assert (stats.accesses, stats.hits, stats.misses) == (0, 0, 0)
    stats.hits = 1
    assert stats.accesses == 0 and stats.misses == 0


# ----------------------------------------------------------------------
# Perf smoke: 1M addresses under a generous wall bound
# ----------------------------------------------------------------------
def test_batch_perf_smoke_one_million_addresses():
    rng = np.random.default_rng(7)
    sequential = np.arange(0, 700_000 * 4, 4, dtype=np.int64)
    random_part = rng.integers(0, 1 << 26, size=300_000, dtype=np.int64)
    trace = np.concatenate([sequential, random_part])
    assert trace.size == 1_000_000
    hierarchy = _small_hierarchy()
    tlb = TLB(entries=64)
    start = time.perf_counter()
    with batch_mode():
        hierarchy.access_many(trace)
        tlb.access_many(trace)
    elapsed = time.perf_counter() - start
    assert hierarchy.levels[0].stats.accesses == 1_000_000
    assert tlb.stats.accesses == 1_000_000
    # Generous: the batch path does this in well under a second on any
    # plausible host; the scalar oracle takes tens of seconds.
    assert elapsed < 30.0, f"batch path took {elapsed:.1f}s on 1M addresses"
