"""Device catalog: Table 1 fidelity and model-parameter sanity."""

import pytest

from repro.devices import (
    CATALOG,
    DeviceClass,
    Vendor,
    device_names,
    devices_by_class,
    get_device,
)
from repro.ocl.types import DeviceType

#: Table 1 of the paper, row for row (the columns we encode directly).
TABLE1 = [
    # name, vendor, type, series, cores, clocks(min,max,turbo), caches, tdp, date
    ("Xeon E5-2697 v2", Vendor.INTEL, DeviceType.CPU, "Ivy Bridge", 24,
     (1200, 2700, 3500), (32, 256, 30720), 130, "Q3 2013"),
    ("i7-6700K", Vendor.INTEL, DeviceType.CPU, "Skylake", 8,
     (800, 4000, 4300), (32, 256, 8192), 91, "Q3 2015"),
    ("i5-3550", Vendor.INTEL, DeviceType.CPU, "Ivy Bridge", 4,
     (1600, 3380, 3700), (32, 256, 6144), 77, "Q2 2012"),
    ("Titan X", Vendor.NVIDIA, DeviceType.GPU, "Pascal", 3584,
     (1417, 1531, None), (48, 2048), 250, "Q3 2016"),
    ("GTX 1080", Vendor.NVIDIA, DeviceType.GPU, "Pascal", 2560,
     (1607, 1733, None), (48, 2048), 180, "Q2 2016"),
    ("GTX 1080 Ti", Vendor.NVIDIA, DeviceType.GPU, "Pascal", 3584,
     (1480, 1582, None), (48, 2048), 250, "Q1 2017"),
    ("K20m", Vendor.NVIDIA, DeviceType.GPU, "Kepler", 2496,
     (706, 706, None), (64, 1536), 225, "Q4 2012"),
    ("K40m", Vendor.NVIDIA, DeviceType.GPU, "Kepler", 2880,
     (745, 875, None), (64, 1536), 235, "Q4 2013"),
    ("FirePro S9150", Vendor.AMD, DeviceType.GPU, "Hawaii", 2816,
     (900, 900, None), (16, 1024), 235, "Q3 2014"),
    ("HD 7970", Vendor.AMD, DeviceType.GPU, "Tahiti", 2048,
     (925, 1010, None), (16, 768), 250, "Q4 2011"),
    ("R9 290X", Vendor.AMD, DeviceType.GPU, "Hawaii", 2816,
     (1000, 1000, None), (16, 1024), 250, "Q3 2014"),
    ("R9 295x2", Vendor.AMD, DeviceType.GPU, "Hawaii", 5632,
     (1018, 1018, None), (16, 1024), 500, "Q2 2014"),
    ("R9 Fury X", Vendor.AMD, DeviceType.GPU, "Fuji", 4096,
     (1050, 1050, None), (16, 2048), 273, "Q2 2015"),
    ("RX 480", Vendor.AMD, DeviceType.GPU, "Polaris", 4096,
     (1120, 1266, None), (16, 2048), 150, "Q2 2016"),
    ("Xeon Phi 7210", Vendor.INTEL, DeviceType.ACCELERATOR, "KNL", 256,
     (1300, 1500, None), (32, 1024), 215, "Q2 2016"),
]


class TestTable1Fidelity:
    def test_fifteen_devices(self):
        assert len(CATALOG) == 15

    def test_row_order_matches_table1(self):
        assert device_names() == tuple(r[0] for r in TABLE1)

    @pytest.mark.parametrize("row", TABLE1, ids=[r[0] for r in TABLE1])
    def test_row_columns(self, row):
        name, vendor, dtype, series, cores, clocks, caches, tdp, date = row
        spec = get_device(name)
        assert spec.vendor == vendor
        assert spec.device_type == dtype
        assert spec.series == series
        assert spec.core_count == cores
        assert spec.clock_min_mhz == clocks[0]
        assert spec.clock_max_mhz == clocks[1]
        assert spec.clock_turbo_mhz == clocks[2]
        assert spec.cache_sizes_kib == caches
        assert spec.tdp_w == tdp
        assert spec.launch_date == date

    def test_class_composition(self):
        """3 CPUs, 5+6 GPUs (consumer/HPC mix per §4.1), 1 MIC."""
        assert len(devices_by_class(DeviceClass.CPU)) == 3
        assert len(devices_by_class(DeviceClass.MIC)) == 1
        gpus = (len(devices_by_class(DeviceClass.CONSUMER_GPU))
                + len(devices_by_class(DeviceClass.HPC_GPU)))
        assert gpus == 11
        nvidia = [s for s in CATALOG if s.vendor == Vendor.NVIDIA]
        amd = [s for s in CATALOG if s.vendor == Vendor.AMD]
        assert len(nvidia) == 5 and len(amd) == 6

    def test_table1_row_render(self):
        row = get_device("i7-6700K").table1_row()
        assert row["Clock Frequency (MHz)"] == "800/4000/4300"
        assert row["Cache (KiB)"] == "32/256/8192"
        assert row["CoreCount"] == "8*"

    def test_gpu_rows_have_no_l3(self):
        row = get_device("GTX 1080").table1_row()
        assert row["Cache (KiB)"] == "48/2048/–"


class TestLookup:
    def test_case_insensitive(self):
        assert get_device("gtx 1080").name == "GTX 1080"

    def test_unknown_raises_with_listing(self):
        with pytest.raises(KeyError, match="known devices"):
            get_device("GTX 9090")


class TestModelParameterSanity:
    @pytest.mark.parametrize("spec", CATALOG, ids=[s.name for s in CATALOG])
    def test_positive_parameters(self, spec):
        assert spec.compute.fp32_gflops > 0
        assert spec.memory.bandwidth_gbs > 0
        assert 0 < spec.compute.efficiency <= 1
        assert spec.runtime.kernel_launch_us > 0
        assert 0 < spec.power.idle_fraction < spec.power.max_fraction <= 1

    @pytest.mark.parametrize("spec", CATALOG, ids=[s.name for s in CATALOG])
    def test_cache_levels_grow_outward(self, spec):
        sizes = [c.size_kib for c in spec.caches]
        assert sizes == sorted(sizes)
        bandwidths = [c.bandwidth_gbs for c in spec.caches]
        assert bandwidths == sorted(bandwidths, reverse=True)
        assert all(c.bandwidth_gbs >= spec.memory.bandwidth_gbs for c in spec.caches)

    def test_cov_decreases_with_clock(self):
        """The catalog encodes the paper's CoV-vs-clock observation."""
        specs = sorted(CATALOG, key=lambda s: s.clock_ghz)
        covs = [s.runtime.base_cov for s in specs]
        assert covs == sorted(covs, reverse=True)

    def test_knl_vector_width_halved(self):
        """Intel's SDK limits KNL to 256-bit vectors (paper §4.2)."""
        knl = get_device("Xeon Phi 7210")
        assert knl.compute.simd_width_bits == 256
        # 64 cores x 1.3 GHz x 16 fp32 AVX-512 lanes x 2 (FMA) per VPU,
        # halved because only 256-bit vectors are emitted
        avx512_vpu_peak = 64 * 1.3 * 16 * 2
        assert knl.compute.fp32_gflops == pytest.approx(avx512_vpu_peak / 2)

    def test_amd_launch_cost_highest(self):
        amd = [s for s in CATALOG if s.vendor == Vendor.AMD]
        nvidia = [s for s in CATALOG if s.vendor == Vendor.NVIDIA]
        assert min(s.runtime.kernel_launch_us for s in amd) > max(
            s.runtime.kernel_launch_us for s in nvidia)
        assert all(s.runtime.launch_ns_per_mib > 0 for s in amd)
        assert all(s.runtime.launch_ns_per_mib == 0 for s in nvidia)

    def test_effective_bandwidth_knees(self):
        """Bandwidth drops at each cache-capacity boundary."""
        skylake = get_device("i7-6700K")
        l1 = skylake.effective_bandwidth_gbs(16 * 1024)
        l2 = skylake.effective_bandwidth_gbs(128 * 1024)
        l3 = skylake.effective_bandwidth_gbs(4 * 1024 * 1024)
        mem = skylake.effective_bandwidth_gbs(64 * 1024 * 1024)
        assert l1 > l2 > l3 > mem
        assert mem == skylake.memory.bandwidth_gbs

    def test_cache_level_for(self):
        skylake = get_device("i7-6700K")
        assert skylake.cache_level_for(1024) == 0
        assert skylake.cache_level_for(100 * 1024) == 1
        assert skylake.cache_level_for(1024 * 1024) == 2
        assert skylake.cache_level_for(100 * 1024 * 1024) == 3
