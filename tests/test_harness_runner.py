"""Runner: the 2-second loop rule, 50 samples, energy sensors."""

import numpy as np
import pytest

from repro.harness import (
    DEFAULT_SAMPLES,
    MIN_LOOP_SECONDS,
    ResultSet,
    RunConfig,
    run_benchmark,
    run_matrix,
)
from repro.scibench import required_sample_size


class TestRunBenchmark:
    def test_defaults_follow_paper_protocol(self):
        """50 samples per group, derived from the power computation."""
        assert DEFAULT_SAMPLES == required_sample_size() == 50
        assert MIN_LOOP_SECONDS == 2.0

    def test_basic_run(self):
        r = run_benchmark(RunConfig("fft", "tiny", "i7-6700K", samples=10))
        assert r.benchmark == "fft"
        assert r.device == "i7-6700K"
        assert r.device_class == "CPU"
        assert len(r.times_s) == 10
        assert len(r.energies_j) == 10
        assert r.validated

    def test_loop_rule(self):
        """Samples loop until >= 2 s: loop count x nominal >= 2 s."""
        r = run_benchmark(RunConfig("fft", "tiny", "GTX 1080", samples=5))
        assert r.loop_iterations * r.nominal_s >= MIN_LOOP_SECONDS

    def test_model_only_run_skips_validation(self):
        r = run_benchmark(RunConfig("srad", "large", "R9 290X", samples=5,
                                    execute=False, validate=False))
        assert not r.validated
        assert r.nominal_s > 0

    def test_deterministic_given_seed(self):
        a = run_benchmark(RunConfig("csr", "tiny", "K40m", samples=8, seed=7))
        b = run_benchmark(RunConfig("csr", "tiny", "K40m", samples=8, seed=7))
        np.testing.assert_array_equal(a.times_s, b.times_s)

    def test_seed_changes_samples(self):
        a = run_benchmark(RunConfig("csr", "tiny", "K40m", samples=8, seed=1))
        b = run_benchmark(RunConfig("csr", "tiny", "K40m", samples=8, seed=2))
        assert (a.times_s != b.times_s).any()

    def test_energy_positive_all_vendors(self):
        for device in ("i7-6700K", "GTX 1080", "R9 290X"):
            r = run_benchmark(RunConfig("fft", "tiny", device, samples=5,
                                        execute=False, validate=False))
            assert (r.energies_j > 0).all(), device

    def test_recorder_populated(self):
        r = run_benchmark(RunConfig("fft", "tiny", "i7-6700K", samples=5))
        assert r.recorder.count("kernel") >= 5
        assert r.recorder.count("transfer") >= 1

    def test_summaries(self):
        r = run_benchmark(RunConfig("fft", "tiny", "i7-6700K", samples=20))
        assert r.time_summary.n == 20
        assert r.mean_ms == pytest.approx(r.time_summary.mean * 1e3)
        assert r.energy_summary.mean == pytest.approx(r.mean_energy_j)


class TestRunMatrix:
    def test_matrix_shape(self):
        results = run_matrix("fft", ["tiny", "small"],
                             ["i7-6700K", "GTX 1080"], samples=4)
        assert len(results) == 4
        keys = {(r.size, r.device) for r in results}
        assert keys == {("tiny", "i7-6700K"), ("tiny", "GTX 1080"),
                        ("small", "i7-6700K"), ("small", "GTX 1080")}

    def test_default_devices_full_catalog(self):
        results = run_matrix("crc", ["tiny"], samples=3)
        assert len(results) == 15


class TestResultSet:
    @pytest.fixture
    def results(self):
        return ResultSet(run_matrix("fft", ["tiny", "small"],
                                    ["i7-6700K", "GTX 1080", "K20m"],
                                    samples=5))

    def test_filter(self, results):
        assert len(results.filter(size="tiny")) == 3
        assert len(results.filter(device="K20m")) == 2
        assert len(results.filter(device_class="CPU")) == 2

    def test_get(self, results):
        r = results.get("fft", "tiny", "K20m")
        assert r.device == "K20m"
        with pytest.raises(KeyError):
            results.get("fft", "tiny", "RX 480")

    def test_best_device(self, results):
        best = results.best_device("fft", "tiny")
        assert best.mean_ms == min(r.mean_ms
                                   for r in results.filter(size="tiny"))

    def test_class_mean(self, results):
        cpu = results.class_mean_ms("fft", "tiny", "CPU")
        assert cpu > 0

    def test_csv_long_form(self, results):
        csv = results.to_csv()
        assert csv.startswith("benchmark,size,device,")
        # 6 groups x 5 samples + header
        assert len(csv.strip().splitlines()) == 31
        assert csv.splitlines()[0].endswith(",tags")
        assert "nominal_s=" in csv and "launches=" in csv

    def test_csv_round_trip(self, results):
        back = ResultSet.from_csv(results.to_csv())
        assert len(back) == len(results)
        for orig, loaded in zip(results, back):
            assert (loaded.benchmark, loaded.size, loaded.device,
                    loaded.device_class) == (orig.benchmark, orig.size,
                                             orig.device, orig.device_class)
            np.testing.assert_allclose(loaded.times_s, orig.times_s,
                                       rtol=1e-8)
            np.testing.assert_allclose(loaded.energies_j, orig.energies_j,
                                       rtol=1e-8)
            assert loaded.loop_iterations == orig.loop_iterations
            assert loaded.validated == orig.validated
            assert loaded.footprint_bytes == orig.footprint_bytes
            assert loaded.breakdown.launches == orig.breakdown.launches
            assert loaded.breakdown.compute_s == pytest.approx(
                orig.breakdown.compute_s, rel=1e-8)
        # a reload is a fixed point: the CSV text is bit-identical
        assert back.to_csv() == results.to_csv()

    def test_csv_legacy_seven_columns(self, results):
        legacy = "\n".join(
            ",".join(line.split(",")[:7])
            for line in results.to_csv().splitlines()) + "\n"
        back = ResultSet.from_csv(legacy)
        assert len(back) == len(results)
        assert back.results[0].loop_iterations == 1
        assert back.results[0].validated is False

    def test_csv_bad_header_rejected(self):
        with pytest.raises(ValueError):
            ResultSet.from_csv("alpha,beta\n1,2\n")

    def test_csv_empty_text(self):
        assert len(ResultSet.from_csv("")) == 0

    def test_summary_rows(self, results):
        rows = results.summary_rows()
        assert len(rows) == 6
        assert {"benchmark", "size", "device", "mean_ms", "cov",
                "bound"} <= set(rows[0])

    def test_devices_and_sizes(self, results):
        assert results.devices() == ["i7-6700K", "GTX 1080", "K20m"]
        assert results.sizes() == ["tiny", "small"]
