"""Buffer and context semantics: allocation accounting, flags, release."""

import numpy as np
import pytest

from repro import ocl
from repro.ocl import (
    InvalidMemObject,
    InvalidValue,
    MemFlags,
    MemObjectAllocationFailure,
    OutOfResources,
)


class TestBufferCreation:
    def test_size_only(self, cpu_context):
        buf = cpu_context.create_buffer(size=256)
        assert buf.size == 256
        assert buf.array.nbytes == 256

    def test_from_hostbuf_copies(self, cpu_context):
        host = np.arange(16, dtype=np.float32)
        buf = cpu_context.create_buffer(
            flags=MemFlags.COPY_HOST_PTR, hostbuf=host)
        host[0] = 99.0
        assert buf.array[0] == 0.0  # snapshot, not alias

    def test_use_host_ptr_aliases(self, cpu_context):
        host = np.zeros(16, dtype=np.float32)
        buf = cpu_context.create_buffer(
            flags=MemFlags.USE_HOST_PTR, hostbuf=host)
        buf.array[3] = 7.0
        assert host[3] == 7.0

    def test_needs_size_or_hostbuf(self, cpu_context):
        with pytest.raises(InvalidValue):
            cpu_context.create_buffer()

    def test_size_hostbuf_mismatch(self, cpu_context):
        with pytest.raises(InvalidValue):
            cpu_context.create_buffer(size=8, hostbuf=np.zeros(16, np.uint8))

    def test_copy_host_ptr_requires_hostbuf(self, cpu_context):
        with pytest.raises(InvalidValue):
            cpu_context.create_buffer(flags=MemFlags.COPY_HOST_PTR, size=64)

    def test_read_only_and_write_only_exclusive(self, cpu_context):
        with pytest.raises(InvalidValue):
            cpu_context.create_buffer(
                flags=MemFlags.READ_ONLY | MemFlags.WRITE_ONLY, size=64)

    def test_hostbuf_must_be_ndarray(self, cpu_context):
        with pytest.raises(InvalidValue):
            cpu_context.create_buffer(hostbuf=[1, 2, 3])

    def test_buffer_like_preserves_shape_and_dtype(self, cpu_context):
        host = np.ones((4, 5), dtype=np.int32)
        buf = cpu_context.buffer_like(host)
        assert buf.array.shape == (4, 5)
        assert buf.array.dtype == np.int32

    def test_typed_view(self, cpu_context):
        buf = cpu_context.create_buffer(size=64)
        view = buf.view(np.float32, shape=(4, 4))
        assert view.shape == (4, 4)


class TestRelease:
    def test_release_frees_accounting(self, cpu_context):
        buf = cpu_context.create_buffer(size=1024)
        assert cpu_context.allocated_bytes == 1024
        buf.release()
        assert cpu_context.allocated_bytes == 0
        assert buf.released

    def test_release_idempotent(self, cpu_context):
        buf = cpu_context.create_buffer(size=64)
        buf.release()
        buf.release()
        assert cpu_context.allocated_bytes == 0

    def test_access_after_release_raises(self, cpu_context):
        buf = cpu_context.create_buffer(size=64)
        buf.release()
        with pytest.raises(InvalidMemObject):
            _ = buf.array

    def test_context_manager(self, cpu_context):
        with cpu_context.create_buffer(size=64) as buf:
            assert not buf.released
        assert buf.released

    def test_release_all(self, cpu_context):
        bufs = [cpu_context.create_buffer(size=64) for _ in range(5)]
        cpu_context.release_all()
        assert cpu_context.allocated_bytes == 0
        assert all(b.released for b in bufs)


class TestAllocationLimits:
    def test_single_allocation_over_global_mem(self, gpu_context):
        limit = gpu_context.device.global_mem_size
        with pytest.raises(MemObjectAllocationFailure):
            gpu_context.create_buffer(size=limit + 1)

    def test_cumulative_out_of_resources(self, gpu_context):
        limit = gpu_context.device.global_mem_size
        chunk = limit // 2 + 16
        gpu_context.create_buffer(size=chunk)
        with pytest.raises(OutOfResources):
            gpu_context.create_buffer(size=chunk)

    def test_peak_tracking(self, cpu_context):
        a = cpu_context.create_buffer(size=1000)
        b = cpu_context.create_buffer(size=500)
        a.release()
        cpu_context.create_buffer(size=100)
        assert cpu_context.peak_allocated_bytes == 1500
        assert cpu_context.allocated_bytes == 600

    def test_footprint_matches_paper_verification(self, cpu_context):
        """allocated_bytes is the 'sum of all memory allocated on the
        device' the paper prints to verify footprints."""
        sizes = [128, 256, 512]
        for s in sizes:
            cpu_context.create_buffer(size=s)
        assert cpu_context.allocated_bytes == sum(sizes)
        assert cpu_context.live_buffers == 3


class TestLeakHelpers:
    def test_assert_no_leaks_passes_when_clean(self, cpu_context):
        buf = cpu_context.create_buffer(size=64)
        buf.release()
        cpu_context.assert_no_leaks()

    def test_assert_no_leaks_raises_on_live_buffer(self, cpu_context):
        cpu_context.create_buffer(size=64)
        with pytest.raises(AssertionError, match="leaked 1 resource"):
            cpu_context.assert_no_leaks()

    def test_assert_no_leaks_after_release_all(self, cpu_context):
        for size in (16, 32, 64):
            cpu_context.create_buffer(size=size)
        cpu_context.release_all()
        cpu_context.assert_no_leaks()

    def test_queue_leaks_reported_only_on_request(self, cpu_context):
        queue = ocl.CommandQueue(cpu_context)
        cpu_context.assert_no_leaks()  # queues excluded by default
        with pytest.raises(AssertionError, match="command queue"):
            cpu_context.assert_no_leaks(include_queues=True)
        queue.release()
        cpu_context.assert_no_leaks(include_queues=True)

    def test_leak_report_lists_sizes(self, cpu_context):
        cpu_context.create_buffer(size=640)
        report = cpu_context.leak_report()
        assert any("640" in line for line in report)

    def test_programs_registered_on_build(self, cpu_context):
        from repro.ocl import KernelSource, Program
        program = Program(cpu_context, [
            KernelSource("k", lambda nd: None)
        ]).build()
        assert program in cpu_context.programs
