#!/usr/bin/env python
"""Regenerate (or verify) the committed BENCHMARKS.md results document.

Thin wrapper over ``repro regress render`` with the repository's
conventions baked in: the committed trajectory lives under
``benchmarks/trajectory/`` and renders to ``BENCHMARKS.md`` at the
repo root.  CI runs ``--check`` to assert the document is current;
after appending a trajectory point, run this script and commit both.

Usage::

    python scripts/update_benchmarks_md.py            # rewrite BENCHMARKS.md
    python scripts/update_benchmarks_md.py --check    # exit 1 when stale
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_TRAJECTORY = REPO_ROOT / "benchmarks" / "trajectory"
DEFAULT_OUTPUT = REPO_ROOT / "BENCHMARKS.md"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trajectory-dir", default=str(DEFAULT_TRAJECTORY),
                        metavar="DIR",
                        help="committed trajectory (default: %(default)s)")
    parser.add_argument("-o", "--output", default=str(DEFAULT_OUTPUT),
                        metavar="PATH",
                        help="results document (default: %(default)s)")
    parser.add_argument("--check", action="store_true",
                        help="verify instead of writing; exit 1 when stale")
    args = parser.parse_args(argv)

    from repro.harness.cli import main as repro_main

    cli_args = ["regress", "render",
                "--trajectory-dir", args.trajectory_dir,
                "-o", args.output]
    if args.check:
        cli_args.append("--check")
    return repro_main(cli_args)


if __name__ == "__main__":
    raise SystemExit(main())
