#!/usr/bin/env python
"""End-to-end smoke test of `repro serve` (the CI service-smoke job).

Boots a real server as a subprocess, races three concurrent clients at
the same cell, and asserts the service's headline guarantees:

1. the cell is computed exactly once (in-flight dedup > 0);
2. all three clients receive bit-identical payloads;
3. a served matrix completes with per-cell results;
4. shutdown is clean (exit 0 within the timeout) and leaves behind a
   merged Perfetto trace with `service_job` spans, a Prometheus
   metrics snapshot with the service instruments, and a job log that
   renders into the results board.

Run from the repository root:  PYTHONPATH=src python scripts/service_smoke.py
"""

import json
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.service.client import ServiceClient  # noqa: E402

DEVICE = "i7-6700K"
SAMPLES = 10
TIMEOUT_S = 120


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def metric_value(text: str, name: str) -> float:
    total = 0.0
    seen = False
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(None, 1)[-1])
            seen = True
    return total if seen else -1.0


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    port_file = workdir / "port"
    trace_path = workdir / "serve.trace.json"
    metrics_path = workdir / "serve.metrics.prom"
    job_log = workdir / "serve.jsonl"

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--port-file", str(port_file),
         "--jobs", "2", "--cache-dir", str(workdir / "cache"),
         "--trace", str(trace_path), "--metrics", str(metrics_path),
         "--log-jsonl", str(job_log)],
        cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin",
                       "HOME": str(workdir)},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        deadline = time.time() + TIMEOUT_S
        while not port_file.exists() and time.time() < deadline:
            if server.poll() is not None:
                fail(f"server died on startup:\n{server.stdout.read()}")
            time.sleep(0.05)
        if not port_file.exists():
            fail("server never wrote the port file")
        port = int(port_file.read_text().strip())
        print(f"server up on port {port}")

        # --- 1+2: three concurrent clients, one cell -------------------
        barrier = threading.Barrier(3, timeout=TIMEOUT_S)
        outputs: dict[int, dict] = {}

        def one_client(tag: int) -> None:
            with ServiceClient("127.0.0.1", port,
                               timeout_s=TIMEOUT_S) as client:
                barrier.wait()
                outputs[tag] = client.run_cell("fft", "small", DEVICE,
                                               samples=SAMPLES)

        threads = [threading.Thread(target=one_client, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=TIMEOUT_S)
        if sorted(outputs) != [0, 1, 2]:
            fail(f"only {len(outputs)}/3 clients got results")
        payloads = [outputs[i]["result"] for i in range(3)]
        if not (payloads[0] == payloads[1] == payloads[2]):
            fail("concurrent clients saw different payloads")
        print("3 concurrent clients: identical payloads")

        with ServiceClient("127.0.0.1", port,
                           timeout_s=TIMEOUT_S) as client:
            text = client.metrics_text()
            computed = metric_value(text, "sweep_cells_computed_total")
            dedup = metric_value(text, "service_dedup_hits_total")
            if computed != 1.0:
                fail(f"expected exactly 1 computation, saw {computed}")
            if dedup <= 0.0:
                fail(f"expected dedup hits > 0, saw {dedup}")
            for name in ("service_queue_depth", "service_jobs_inflight",
                         "service_cell_latency_seconds"):
                if name not in text:
                    fail(f"metric {name} missing from exposition")
            print(f"dedup verified: computed=1, dedup_hits={dedup:.0f}")

            # --- 3: a served matrix -----------------------------------
            ack = client.submit_matrix(benchmarks=["fft", "csr"],
                                       sizes=["tiny"], devices=[DEVICE],
                                       samples=SAMPLES)
            if ack["type"] != "ack" or len(ack["job_ids"]) != 2:
                fail(f"matrix not acknowledged: {ack}")
            records = client.results(2)
            if not all(r["status"] == "done" for r in records):
                fail(f"matrix cells failed: {records}")
            print("served matrix: 2/2 cells done")

            # --- 4: clean shutdown ------------------------------------
            client.shutdown()
        try:
            code = server.wait(timeout=TIMEOUT_S)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("server did not drain within the timeout")
        if code != 0:
            fail(f"server exited {code}:\n{server.stdout.read()}")
        print("clean shutdown (exit 0)")

        # --- artifacts ------------------------------------------------
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        if not any(e.get("name") == "service_job" for e in events):
            fail("merged trace has no service_job spans")
        pids = {e.get("pid") for e in events if e.get("ph") == "b"}
        print(f"merged trace: {len(events)} events across "
              f"{len(pids)} process track(s)")
        metrics_text = metrics_path.read_text()
        if "service_requests_total" not in metrics_text:
            fail("metrics snapshot is missing the service instruments")
        job_events = [json.loads(line)["event"]
                      for line in job_log.read_text().splitlines() if line]
        if "job_done" not in job_events:
            fail(f"job log has no job_done records: {set(job_events)}")

        board = subprocess.run(
            [sys.executable, "-m", "repro", "regress", "render",
             "--trajectory-dir", str(REPO / "benchmarks" / "trajectory"),
             "--board", "--job-log", str(job_log)],
            cwd=REPO, env={"PYTHONPATH": str(REPO / "src"),
                           "PATH": "/usr/bin:/bin", "HOME": str(workdir)},
            capture_output=True, text=True, timeout=TIMEOUT_S)
        if board.returncode != 0:
            fail(f"board render failed:\n{board.stderr}")
        if not re.search(r"## Served jobs", board.stdout):
            fail("board is missing the Served jobs section")
        print("results board rendered from trajectory + job log")
        print("service smoke: OK")
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    main()
