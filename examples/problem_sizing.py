#!/usr/bin/env python
"""The §4.4 problem-size methodology, end to end.

1. Computes each benchmark's working-set footprint from its closed
   form (Eq. 1 for kmeans) for the paper's Table 2 scales;
2. runs the sizing *solver* to derive tiny/small/medium/large for the
   Skylake reference and — as the paper's §6 promises — retargets the
   sizes to a different CPU (the 30 MiB-L3 Xeon E5-2697 v2);
3. verifies a selection with the cache simulator: miss rates jump at
   exactly the intended cache levels, the role PAPI counters play in
   the paper.

Run:  python examples/problem_sizing.py
"""

from repro.devices import get_device
from repro.harness import render_table
from repro.sizing import (
    preset_fit_report,
    solve_sizes,
    verify_benchmark_sizes,
)


def main() -> None:
    skylake = get_device("i7-6700K")
    print("reference device:", skylake.name,
          f"(L1/L2/L3 = {'/'.join(str(k) for k in skylake.cache_sizes_kib)} KiB)\n")

    # 1. the published Table 2 presets vs the Skylake hierarchy
    report = preset_fit_report()
    rows = []
    for bench in ("kmeans", "lud", "fft", "dwt", "srad", "nw", "gem"):
        row = {"benchmark": bench}
        for size, (kib, fits) in report[bench].items():
            row[size] = f"{kib:9.1f} KiB ({fits})"
        rows.append(row)
    print(render_table(rows, "Table 2 presets and the cache level they fit"))

    # 2. solve sizes for two different CPUs
    for target in ("i7-6700K", "Xeon E5-2697 v2"):
        spec = get_device(target)
        sel = solve_sizes("kmeans", spec)
        cells = {s: f"{sel.phi(s)} ({sel.footprint(s) / 1024:.0f} KiB)"
                 for s in ("tiny", "small", "medium", "large")}
        print(f"kmeans sizes solved for {target}: {cells}")
    print()

    # 3. counter-based verification (the PAPI role)
    v = verify_benchmark_sizes("kmeans")
    print(render_table(v.summary_rows(),
                       "Cache-simulator verification: kmeans on i7-6700K"))
    print("reading: L1 misses jump at 'small' (spills 32 KiB), L2 at")
    print("'medium', and L3 once 'large' exceeds the 8 MiB last-level cache.")


if __name__ == "__main__":
    main()
