#!/usr/bin/env python
"""The paper's §7 roadmap, working end to end.

1. **AIWC** — characterise every benchmark architecture-independently
   and run the suite diversity analysis (which dwarfs are structurally
   close, which stand alone);
2. **auto-tuning** — sweep local work-group sizes for a kernel on
   several devices and report the chosen configuration per device;
3. **scheduling** — place a batch of dwarf tasks on a heterogeneous
   device pool, comparing an affinity-aware policy (LPT by modeled
   time) against round-robin.

Run:  python examples/characterize_and_schedule.py
"""

from repro.aiwc import analyze, characterize_suite
from repro.devices import get_device
from repro.dwarfs import create
from repro.harness import render_table
from repro.scheduling import Task, schedule_lpt, schedule_round_robin
from repro.tuning import autotune


def main() -> None:
    # --- 1. AIWC characterization --------------------------------------
    metrics = characterize_suite("large")
    print(render_table([m.as_row() for m in metrics],
                       "AIWC metrics (large problem size)"))

    report = analyze(metrics)
    a, b, d = report.most_similar_pair()
    distinct, dd = report.most_distinct()
    print(f"most similar pair : {a} <-> {b} (distance {d:.2f})")
    print(f"most distinct     : {distinct} (nearest neighbour {dd:.2f} away)")
    print("suite minimum spanning tree:")
    for edge in report.mst_edges:
        print(f"  {edge[0]:8s} -- {edge[1]:8s} ({edge[2]})")
    print()

    # --- 2. local work-group auto-tuning --------------------------------
    profile = create("srad", "large").profiles()[0]
    rows = []
    for name in ("i7-6700K", "GTX 1080", "R9 290X"):
        result = autotune(get_device(name), profile)
        rows.append({
            "device": name,
            "best local size": result.best_local_size,
            "modeled ms": round(result.best_time_s * 1e3, 4),
            "speedup vs worst": f"{result.speedup_vs_worst:.1f}x",
        })
    print(render_table(rows, "Auto-tuned local work-group size (srad1)"))

    # --- 3. heterogeneous scheduling ------------------------------------
    tasks = [Task(f"{n}-large", create(n, "large"))
             for n in ("crc", "srad", "fft", "nw", "kmeans", "lud")]
    pool = ["i7-6700K", "GTX 1080", "R9 290X"]
    lpt = schedule_lpt(tasks, pool)
    rr = schedule_round_robin(tasks, pool)
    print(render_table(lpt.rows(), "LPT schedule (model-driven)"))
    print(f"makespan: LPT {lpt.makespan * 1e3:.2f} ms vs "
          f"round-robin {rr.makespan * 1e3:.2f} ms "
          f"({rr.makespan / lpt.makespan:.2f}x better)")


if __name__ == "__main__":
    main()
