#!/usr/bin/env python
"""Extending the suite: write a new OpenDwarfs-style benchmark.

The paper aims 'to achieve a full representation of each dwarf ... by
integrating other benchmark suites and adding custom kernels' (§2).
This example adds a custom kernel — a 7-point 3-D Jacobi stencil
(another Structured Grid representative) — through the same public API
the built-in dwarfs use, then sizes and measures it exactly like the
rest of the suite.

Run:  python examples/custom_benchmark.py
"""

import numpy as np

from repro import ocl
from repro.dwarfs.base import Benchmark, assert_close
from repro.ocl import Context, KernelSource, MemFlags, Program
from repro.perfmodel import KernelProfile, iteration_time
from repro.devices import get_device


def _jacobi_kernel(nd, src, dst, n):
    """One 7-point Jacobi sweep on an n^3 grid (interior only)."""
    n = int(n)
    a = src.reshape(n, n, n)
    out = dst.reshape(n, n, n)
    out[...] = a
    out[1:-1, 1:-1, 1:-1] = (
        a[:-2, 1:-1, 1:-1] + a[2:, 1:-1, 1:-1]
        + a[1:-1, :-2, 1:-1] + a[1:-1, 2:, 1:-1]
        + a[1:-1, 1:-1, :-2] + a[1:-1, 1:-1, 2:]
    ) / 6.0


class Jacobi3D(Benchmark):
    """Structured Grid: 7-point Jacobi relaxation on an n^3 grid."""

    name = "jacobi3d"
    dwarf = "Structured Grid"
    presets = {"tiny": 12, "small": 24, "medium": 96, "large": 160}
    args_template = "{phi}"

    def __init__(self, n: int, sweeps: int = 4, seed: int = 0):
        super().__init__()
        self.n, self.sweeps, self.seed = int(n), int(sweeps), seed
        self.grid = None
        self.result = None

    @classmethod
    def from_scale(cls, phi, **overrides):
        return cls(n=int(phi), **overrides)

    def footprint_bytes(self) -> int:
        return 2 * self.n**3 * 4  # ping-pong grids

    def host_setup(self, context: Context) -> None:
        self.context = context
        rng = np.random.default_rng(self.seed)
        self.grid = rng.uniform(0, 1, (self.n,) * 3).astype(np.float32)
        self.buf_a = context.buffer_like(self.grid)
        self.buf_b = context.buffer_like(np.zeros_like(self.grid))
        program = Program(context, [
            KernelSource("jacobi", _jacobi_kernel, self._profile),
        ]).build()
        self.kernel = program.create_kernel("jacobi")
        self._setup_done = True

    def transfer_inputs(self, queue):
        self._require_setup()
        return [queue.enqueue_write_buffer(self.buf_a, self.grid)]

    def run_iteration(self, queue):
        self._require_setup()
        queue.enqueue_write_buffer(self.buf_a, self.grid)
        events = []
        src, dst = self.buf_a, self.buf_b
        for _ in range(self.sweeps):
            self.kernel.set_args(src, dst, self.n)
            events.append(queue.enqueue_nd_range_kernel(self.kernel, (self.n**3,)))
            src, dst = dst, src
        self._final = src
        return events

    def collect_results(self, queue):
        self._require_setup()
        self.result = np.empty_like(self.grid)
        return [queue.enqueue_read_buffer(self._final, self.result)]

    def validate(self) -> None:
        ref = self.grid.astype(np.float64)
        for _ in range(self.sweeps):
            nxt = ref.copy()
            nxt[1:-1, 1:-1, 1:-1] = (
                ref[:-2, 1:-1, 1:-1] + ref[2:, 1:-1, 1:-1]
                + ref[1:-1, :-2, 1:-1] + ref[1:-1, 2:, 1:-1]
                + ref[1:-1, 1:-1, :-2] + ref[1:-1, 1:-1, 2:]) / 6.0
            ref = nxt
        assert_close(self.result, ref, 1e-4, "jacobi3d vs float64 reference")

    def _profile(self, nd, src, dst, n) -> KernelProfile:
        n = int(n)
        cells = float(n**3)
        return KernelProfile(
            name="jacobi", flops=7.0 * cells, int_ops=6.0 * cells,
            bytes_read=cells * 4.0, bytes_written=cells * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=n**3, seq_fraction=0.8, strided_fraction=0.2,
        )

    def profiles(self):
        return [self._profile(None, None, None, self.n).scaled(self.sweeps)]


def main() -> None:
    # functional run + validation on one device
    device = ocl.find_device("i7-6700K")
    ctx = Context(device)
    queue = ocl.CommandQueue(ctx)
    bench = Jacobi3D.from_size("small")
    bench.run_complete(ctx, queue)
    print(f"jacobi3d small: validated, {bench.footprint_kib():.1f} KiB, "
          f"{queue.total_kernel_time_s() * 1e3:.3f} ms modeled on {device.name}")
    bench.teardown()

    # the analytic model ranks devices without executing anything
    print("\nmodeled large-size sweep across device classes:")
    bench = Jacobi3D.from_size("large")
    for name in ("i7-6700K", "GTX 1080", "R9 Fury X", "K20m", "Xeon Phi 7210"):
        spec = get_device(name)
        tb = iteration_time(spec, bench.profiles())
        print(f"  {name:15s} {tb.total_s * 1e3:9.3f} ms  ({tb.bound}-bound)")
    print("\nthe bandwidth-bound stencil favours GPUs, exactly like srad.")


if __name__ == "__main__":
    main()
