#!/usr/bin/env python
"""Energy measurement and time/energy device selection.

First reproduces the paper's Figure 5 comparison — kernel energy on the
RAPL-instrumented i7-6700K versus the NVML-instrumented GTX 1080 at the
large problem size — then demonstrates the paper's stated end goal
(§7): choosing the best device for a task "under time and/or energy
constraints".

Run:  python examples/energy_profile.py
"""

from repro.devices import device_names
from repro.harness import ENERGY_BENCHMARKS, render_table, run_matrix, ResultSet
from repro.harness.runner import RunConfig, run_benchmark


def main() -> None:
    # --- Figure 5: the two instrumented devices ------------------------
    rows = []
    for bench in ENERGY_BENCHMARKS:
        cpu = run_benchmark(RunConfig(bench, "large", "i7-6700K",
                                      execute=False, validate=False))
        gpu = run_benchmark(RunConfig(bench, "large", "GTX 1080",
                                      execute=False, validate=False))
        rows.append({
            "benchmark": bench,
            "i7-6700K (J)": f"{cpu.mean_energy_j:10.4f}",
            "GTX 1080 (J)": f"{gpu.mean_energy_j:10.4f}",
            "CPU/GPU": f"{cpu.mean_energy_j / gpu.mean_energy_j:6.2f}x",
        })
    print(render_table(rows, "Kernel energy at the large size (Fig. 5)"))
    print("reading: every benchmark costs more energy on the CPU except")
    print("crc, whose serial integer kernel the CPU finishes far sooner.\n")

    # --- device selection under constraints ----------------------------
    bench = "srad"
    results = ResultSet(run_matrix(bench, ["large"], list(device_names()),
                                   samples=30))
    candidates = [(r.device, r.mean_ms, r.mean_energy_j)
                  for r in results]

    fastest = min(candidates, key=lambda c: c[1])
    thriftiest = min(candidates, key=lambda c: c[2])
    print(f"{bench} large across all devices:")
    print(f"  fastest        : {fastest[0]} ({fastest[1]:.3f} ms, "
          f"{fastest[2]:.4f} J)")
    print(f"  least energy   : {thriftiest[0]} ({thriftiest[1]:.3f} ms, "
          f"{thriftiest[2]:.4f} J)")

    budget_ms = 2.0
    under_budget = [c for c in candidates if c[1] <= budget_ms]
    if under_budget:
        pick = min(under_budget, key=lambda c: c[2])
        print(f"  best under a {budget_ms:.0f} ms deadline: {pick[0]} "
              f"({pick[1]:.3f} ms, {pick[2]:.4f} J)")


if __name__ == "__main__":
    main()
