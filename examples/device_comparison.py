#!/usr/bin/env python
"""Compare a benchmark across all 15 devices and 4 problem sizes.

Reproduces the structure of the paper's Figures 1-3 for any benchmark:
per problem size, the mean kernel time on every catalog device, with
the accelerator-class colour coding rendered as labels.  Also prints
the class-level summary that backs the paper's §5.1 narrative.

Run:  python examples/device_comparison.py [benchmark]
"""

import sys

import numpy as np

from repro.devices import device_names
from repro.dwarfs import get_benchmark
from repro.harness import ResultSet, render_table, run_matrix


def main(benchmark_name: str = "srad") -> None:
    cls = get_benchmark(benchmark_name)
    sizes = list(cls.available_sizes())
    print(f"{benchmark_name} ({cls.dwarf} dwarf) across the Table 1 devices")
    print(f"problem sizes: {', '.join(sizes)}\n")

    results = ResultSet(run_matrix(benchmark_name, sizes, samples=50))

    rows = []
    for device in device_names():
        row = {"device": device,
               "class": results.get(benchmark_name, sizes[0], device).device_class}
        for size in sizes:
            r = results.get(benchmark_name, size, device)
            row[size + " (ms)"] = f"{r.mean_ms:10.4f}"
        rows.append(row)
    print(render_table(rows, f"Mean kernel time, {benchmark_name}"))

    # class-level narrative, as in §5.1
    print("class means (ms):")
    classes = sorted({r.device_class for r in results})
    for size in sizes:
        parts = []
        for device_class in classes:
            try:
                mean = results.class_mean_ms(benchmark_name, size, device_class)
                parts.append(f"{device_class}={mean:.4f}")
            except KeyError:
                pass
        print(f"  {size:7s} " + "  ".join(parts))

    best = {size: results.best_device(benchmark_name, size).device
            for size in sizes}
    print("\nfastest device per size:", best)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "srad")
