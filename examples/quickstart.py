#!/usr/bin/env python
"""Quickstart: run one Extended OpenDwarfs benchmark on one device.

Picks the fft benchmark at the paper's *medium* problem size (sized to
the Skylake L3), executes it functionally on the simulated GTX 1080 —
the kernels really run and the spectrum is validated against numpy —
and reports the modeled kernel timings the way the paper does.

Run:  python examples/quickstart.py
"""

from repro import ocl
from repro.dwarfs import create
from repro.harness import RunConfig, run_benchmark
from repro.scibench import summarize


def main() -> None:
    # --- the low-level API: contexts, queues, events -------------------
    device = ocl.find_device("GTX 1080")
    context = ocl.Context(device)
    queue = ocl.CommandQueue(context)

    bench = create("fft", "medium")
    print(f"benchmark : {bench.name} ({bench.dwarf} dwarf)")
    print(f"size      : medium, {bench.footprint_kib():.1f} KiB device footprint")
    print(f"device    : {device.name} "
          f"[{device.spec.device_class.value}, "
          f"{device.spec.compute.fp32_gflops:.0f} GFLOP/s, "
          f"{device.spec.memory.bandwidth_gbs:.0f} GB/s]")

    bench.run_complete(context, queue)  # setup -> transfer -> kernels -> validate
    print(f"validated : True (spectrum matches numpy.fft)")
    print(f"kernels   : {len(queue.kernel_events())} stage launches")
    print(f"kernel time (modeled): {queue.total_kernel_time_s() * 1e3:.3f} ms")
    print(f"kernel energy        : {queue.total_kernel_energy_j():.3f} J")
    bench.teardown()

    # --- the measurement protocol of the paper -------------------------
    # 50 samples, each looped >= 2 s, with the device's noise model
    result = run_benchmark(RunConfig("fft", "medium", "GTX 1080"))
    s = summarize(result.times_s)
    print()
    print("paper protocol (50 samples, 2 s loop rule):")
    print(f"  mean {s.mean * 1e3:.3f} ms   median {s.median * 1e3:.3f} ms   "
          f"CoV {s.cov:.4f}")
    print(f"  looped x{result.loop_iterations} per sample; "
          f"kernel is {result.breakdown.bound}-bound")


if __name__ == "__main__":
    main()
