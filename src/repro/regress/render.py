"""Render the ``BENCH_<n>.json`` trajectory as a results document.

The model is rez's auto-updating ``RESULTS.md`` benchmark log: every
proven speedup lands as a trajectory point, and a generated markdown
document — committed to the repository, kept current by CI — replays
the history for humans.  :func:`render_markdown` is deterministic for
a given trajectory (stable ordering, fixed float formats, dates
derived from the stored ``created_unix``), so "is the committed
document up to date?" is a plain string comparison
(``scripts/update_benchmarks_md.py --check``).
"""

from __future__ import annotations

import math
from datetime import datetime, timezone

from ..telemetry.profile import KNOWN_PHASES
from .compare import Thresholds
from .trajectory import TrajectoryPoint, change_points

#: The document's regeneration instruction (also the drift sentinel).
HEADER = (
    "# Benchmarking Results\n"
    "\n"
    "This document contains the historical benchmarking trajectory of\n"
    "the harness: one row per recorded `BENCH_<n>.json` point, with\n"
    "the phase-attributed self-profile of the recording sweep.  Do\n"
    "**NOT** change this file by hand; regenerate it with\n"
    "`python scripts/update_benchmarks_md.py` (or\n"
    "`repro regress render`), and see `docs/performance.md` for how\n"
    "to reproduce the numbers.\n"
)


def _geomean(values: list[float]) -> float:
    """Geometric mean of positive values (NaN when none qualify)."""
    logs = [math.log(v) for v in values if v > 0]
    if not logs:
        return math.nan
    return math.exp(sum(logs) / len(logs))


def _utc_date(created_unix: float) -> str:
    return datetime.fromtimestamp(
        created_unix, tz=timezone.utc).strftime("%Y-%m-%d")


def _fmt(value: float, digits: int = 3) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.{digits}f}"


def _table(headers: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines)


def _point_geomean_ms(point: TrajectoryPoint,
                      coordinates: set | None = None) -> float:
    """Geometric-mean cell time (ms), optionally over a coordinate set."""
    means = [c.mean_s * 1e3 for c in point.cells
             if coordinates is None or c.coordinates in coordinates]
    return _geomean(means)


def render_markdown(points: list[TrajectoryPoint],
                    thresholds: Thresholds | None = None) -> str:
    """The whole trajectory as deterministic markdown.

    Sections: the trajectory table (per-point geomean cell time and
    speedup versus the seed point, over the cells both share), the
    per-phase self-time table (with the ``cache_sim`` collapse called
    out against the seed), and the Welch-gated change points.
    """
    points = sorted(points, key=lambda p: p.index)
    out = [HEADER]

    if not points:
        out.append("\nNo trajectory points recorded yet.\n")
        return "".join(out)

    seed = points[0]
    seed_coords = {c.coordinates for c in seed.cells}

    # ------------------------------------------------------------------
    out.append("\n## Trajectory\n\n")
    out.append(
        f"Speedup is the ratio of geometric-mean cell times versus the\n"
        f"seed point `BENCH_{seed.index}` "
        f"(`{seed.label}`), over the cells both points share.\n\n")
    rows = []
    for p in points:
        shared = seed_coords & {c.coordinates for c in p.cells}
        speedup = math.nan
        if shared:
            seed_g = _point_geomean_ms(seed, shared)
            here_g = _point_geomean_ms(p, shared)
            if here_g and not math.isnan(here_g) and not math.isnan(seed_g):
                speedup = seed_g / here_g
        rows.append([
            f"BENCH_{p.index}", p.label or "-", _utc_date(p.created_unix),
            p.model_version, str(len(p.cells)),
            _fmt(_point_geomean_ms(p)),
            ("x" + _fmt(speedup, 2)) if not math.isnan(speedup) else "-",
        ])
    out.append(_table(
        ["Point", "Label", "Date (UTC)", "Model", "Cells",
         "Geomean cell (ms)", "Speedup vs seed"], rows))
    out.append("\n")

    # ------------------------------------------------------------------
    phased = [p for p in points if p.phases]
    out.append("\n## Phase self-times (s)\n\n")
    if phased:
        out.append(
            "Exclusive wall-clock seconds per harness phase during each\n"
            "recording sweep (`docs/profiling.md`).  The final column\n"
            "tracks the simulator cost (`cache_sim`) against the first\n"
            "phase-carrying point — the vectorization target.\n\n")
        base = phased[0]
        base_sim = (base.phases.get("cache_sim") or {}).get("self_s", 0.0)
        rows = []
        for p in phased:
            row = [f"BENCH_{p.index}"]
            for phase in KNOWN_PHASES:
                info = p.phases.get(phase) or {}
                row.append(_fmt(float(info.get("self_s", 0.0))))
            sim = (p.phases.get("cache_sim") or {}).get("self_s", 0.0)
            row.append("x" + _fmt(base_sim / sim, 2)
                       if sim and base_sim else "-")
            rows.append(row)
        out.append(_table(
            ["Point", *KNOWN_PHASES,
             f"cache_sim speedup vs BENCH_{base.index}"], rows))
        out.append("\n")
    else:
        out.append("No phase-carrying points recorded yet.\n")

    # ------------------------------------------------------------------
    out.append("\n## Change points\n\n")
    changes = change_points(points, thresholds or Thresholds())
    if changes:
        out.append(
            "Per-cell mean shifts that pass the three-part Welch gate\n"
            "(`docs/regression.md`):\n\n")
        for change in changes:
            out.append(f"- {change.format()}\n")
    else:
        out.append("None detected.\n")
    return "".join(out)
