"""Versioned, content-addressed performance-baseline store.

A *baseline* freezes one sweep's measurements so a later run can be
compared against it: for every (benchmark, size, device) cell it keeps
the full :class:`~repro.harness.runner.RunConfig`, the cell's
content-address (:func:`repro.harness.sweep.cell_key` — the same
SHA-256 over config + device spec + model version that keys the
:class:`~repro.harness.sweep.SweepCache`), the raw timing/energy
samples and their :class:`~repro.scibench.stats.SampleSummary`.

Keeping the *raw* samples, not just the summary, is what lets
:mod:`repro.regress.compare` re-run Welch's t-test between the stored
group and a fresh one exactly as the paper's §4.3 methodology
prescribes for two measurement groups.

Baselines are JSON files (``<root>/<name>.json``, schema
:data:`BASELINE_SCHEMA_VERSION`; layout documented in
``docs/regression.md``) written atomically.  Unlike the sweep cache, a
corrupt or schema-incompatible baseline is an *error*, not a miss — a
CI gate must never silently pass because its reference data rotted.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..harness.runner import RunConfig, RunResult
from ..harness.sweep import MODEL_VERSION, cell_key
from ..scibench.stats import SampleSummary, summarize

#: Version stamp of the baseline JSON schema (see docs/regression.md).
BASELINE_SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class BaselineError(Exception):
    """A baseline is missing, corrupt or schema-incompatible."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise BaselineError(
            f"invalid baseline name {name!r} (use letters, digits, . _ -)"
        )
    return name


@dataclass(frozen=True)
class CellBaseline:
    """One cell's frozen measurement group.

    Parameters
    ----------
    config:
        The cell's :class:`RunConfig` as a plain dict — enough to
        re-run the *identical* measurement later.
    key:
        The cell's content-address at record time.  A later
        :func:`cell_key` over the same config that yields a different
        digest means the device spec or model version changed since the
        baseline was recorded (the comparison flags such cells stale).
    times_s, energies_j:
        Raw per-sample measurements, in sample order.
    device_class:
        The device's accelerator class (CPU/Consumer GPU/...), kept for
        reporting.
    """

    config: dict
    key: str
    times_s: tuple[float, ...]
    energies_j: tuple[float, ...]
    device_class: str

    @property
    def benchmark(self) -> str:
        return str(self.config["benchmark"])

    @property
    def size(self) -> str:
        return str(self.config["size"])

    @property
    def device(self) -> str:
        return str(self.config["device"])

    @property
    def coordinates(self) -> tuple[str, str, str]:
        """The (benchmark, size, device) triple identifying this cell."""
        return (self.benchmark, self.size, self.device)

    @property
    def summary(self) -> SampleSummary:
        """Summary statistics of the stored timing samples."""
        return summarize(self.times_s)

    def run_config(self) -> RunConfig:
        """The cell's :class:`RunConfig`, reconstructed."""
        return RunConfig(**self.config)

    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, config: RunConfig, result: RunResult
                    ) -> "CellBaseline":
        """Freeze one sweep cell (its config and measured samples)."""
        fields = dataclasses.asdict(config)
        fields["device"] = result.device  # canonical catalog name
        return cls(
            config=fields,
            key=cell_key(RunConfig(**fields)),
            times_s=tuple(float(t) for t in result.times_s),
            energies_j=tuple(float(e) for e in result.energies_j),
            device_class=result.device_class,
        )

    def to_dict(self) -> dict:
        """JSON-ready mapping (summary included for human readers)."""
        s = self.summary
        return {
            "config": dict(self.config),
            "key": self.key,
            "times_s": list(self.times_s),
            "energies_j": list(self.energies_j),
            "device_class": self.device_class,
            "summary": dataclasses.asdict(s),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CellBaseline":
        """Rebuild a cell from :meth:`to_dict` output.

        The embedded summary is redundant (derivable from the raw
        samples) and is ignored on load, so a hand-edited summary can
        never disagree with the samples it claims to describe.
        """
        return cls(
            config=dict(payload["config"]),
            key=str(payload["key"]),
            times_s=tuple(float(t) for t in payload["times_s"]),
            energies_j=tuple(float(e) for e in payload["energies_j"]),
            device_class=str(payload["device_class"]),
        )


@dataclass
class Baseline:
    """A named set of frozen measurement groups (one sweep's worth)."""

    name: str
    model_version: str = MODEL_VERSION
    created_unix: float = field(default_factory=time.time)
    cells: list[CellBaseline] = field(default_factory=list)

    def __post_init__(self):
        _check_name(self.name)

    # ------------------------------------------------------------------
    def add(self, cell: CellBaseline) -> None:
        """Append one cell (its coordinates must be unique)."""
        if self.cell(*cell.coordinates) is not None:
            raise BaselineError(
                f"duplicate baseline cell for {cell.coordinates}")
        self.cells.append(cell)

    def cell(self, benchmark: str, size: str, device: str
             ) -> CellBaseline | None:
        """The cell at the given coordinates, or ``None``."""
        for c in self.cells:
            if c.coordinates == (benchmark, size, device):
                return c
        return None

    def coordinates(self) -> list[tuple[str, str, str]]:
        """Every cell's (benchmark, size, device), in stored order."""
        return [c.coordinates for c in self.cells]

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    # ------------------------------------------------------------------
    @classmethod
    def from_sweep(cls, name: str, configs: list[RunConfig],
                   results: list[RunResult]) -> "Baseline":
        """Freeze a sweep's aligned (config, result) pairs."""
        if len(configs) != len(results):
            raise BaselineError(
                f"{len(configs)} configs but {len(results)} results")
        baseline = cls(name=name)
        for config, result in zip(configs, results):
            baseline.add(CellBaseline.from_result(config, result))
        return baseline

    def to_json(self) -> str:
        """The baseline as schema-versioned JSON text."""
        return json.dumps(
            {
                "schema_version": BASELINE_SCHEMA_VERSION,
                "name": self.name,
                "model_version": self.model_version,
                "created_unix": self.created_unix,
                "cells": [c.to_dict() for c in self.cells],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        """Parse :meth:`to_json` output; raises :class:`BaselineError`."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise BaselineError(f"baseline is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise BaselineError("baseline JSON must be an object")
        version = payload.get("schema_version")
        if version != BASELINE_SCHEMA_VERSION:
            raise BaselineError(
                f"baseline schema version {version!r} is not supported "
                f"(expected {BASELINE_SCHEMA_VERSION})")
        try:
            baseline = cls(
                name=str(payload["name"]),
                model_version=str(payload["model_version"]),
                created_unix=float(payload["created_unix"]),
            )
            for cell in payload["cells"]:
                baseline.add(CellBaseline.from_dict(cell))
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(f"malformed baseline: {exc!r}") from None
        return baseline


def default_baseline_dir() -> Path:
    """Where baselines live when no ``--baseline-dir`` is given.

    ``$REPRO_BASELINE_DIR`` wins, else ``.repro/baselines`` under the
    current directory — baselines are project data meant to be
    committed or uploaded, not per-user cache.
    """
    env = os.environ.get("REPRO_BASELINE_DIR")
    if env:
        return Path(env).expanduser()
    return Path(".repro/baselines")


class BaselineStore:
    """Directory of named baselines (``<root>/<name>.json``)."""

    def __init__(self, root: str | Path):
        self.root = Path(root).expanduser()

    def path_for(self, name: str) -> Path:
        """Where the named baseline lives (whether or not it exists)."""
        return self.root / f"{_check_name(name)}.json"

    # ------------------------------------------------------------------
    def save(self, baseline: Baseline) -> Path:
        """Persist a baseline atomically; returns its path."""
        path = self.path_for(baseline.name)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(baseline.to_json(), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def load(self, name: str) -> Baseline:
        """Load a named baseline; missing/corrupt raises BaselineError."""
        path = self.path_for(name)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            known = ", ".join(self.names()) or "<none>"
            raise BaselineError(
                f"no baseline {name!r} in {self.root} "
                f"(known: {known})") from None
        return Baseline.from_json(text)

    def names(self) -> list[str]:
        """Baseline names present, sorted."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    def __contains__(self, name: str) -> bool:
        return self.path_for(name).exists()

    def __repr__(self) -> str:
        return f"<BaselineStore {self.root}: {len(self.names())} baselines>"
