"""Performance-regression subsystem: baselines, comparison, trajectory.

The paper's measurement discipline (§4.3 — 50 samples per group,
Welch's t-test powered to detect a 0.5σ shift) describes a *single*
run; this package turns it into a gate between runs:

* :mod:`~repro.regress.baseline` — a versioned, content-addressed
  store freezing one sweep's raw samples per cell;
* :mod:`~repro.regress.compare` — Welch's test + Cohen's d + a
  bootstrap CI on the ratio of means, classifying each cell
  improved / unchanged / regressed;
* :mod:`~repro.regress.trajectory` — an append-only ``BENCH_<n>.json``
  history with change-point detection;
* :mod:`~repro.regress.report` — text/JSON rendering and the
  ``--fail-on`` CI gate.

Workflow (``docs/regression.md``)::

    repro regress record --name main --size tiny      # freeze a baseline
    repro regress check  --name main --size tiny      # gate a fresh run
    repro regress history                             # change points
"""

from .baseline import (
    BASELINE_SCHEMA_VERSION,
    Baseline,
    BaselineError,
    BaselineStore,
    CellBaseline,
    default_baseline_dir,
)
from .compare import (
    STATUSES,
    CellComparison,
    Thresholds,
    classify,
    compare,
    compare_cell,
)
from .render import render_markdown
from .report import FAIL_MODES, JSON_SCHEMA_VERSION, RegressReport
from .trajectory import (
    TRAJECTORY_SCHEMA_VERSION,
    CellPoint,
    ChangePoint,
    Trajectory,
    TrajectoryError,
    TrajectoryPoint,
    change_points,
    default_trajectory_dir,
)

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "Baseline",
    "BaselineError",
    "BaselineStore",
    "CellBaseline",
    "CellComparison",
    "CellPoint",
    "ChangePoint",
    "FAIL_MODES",
    "JSON_SCHEMA_VERSION",
    "RegressReport",
    "STATUSES",
    "TRAJECTORY_SCHEMA_VERSION",
    "Thresholds",
    "Trajectory",
    "TrajectoryError",
    "TrajectoryPoint",
    "change_points",
    "render_markdown",
    "classify",
    "compare",
    "compare_cell",
    "default_baseline_dir",
    "default_trajectory_dir",
]
