"""Append-only performance trajectory (``BENCH_<n>.json`` points).

A baseline answers "did this run regress against that one?"; the
trajectory answers "when did it change?".  Every recorded point is one
file — ``BENCH_0.json``, ``BENCH_1.json``, ... — holding per-cell
summary statistics (mean/std/n), so the directory is an append-only
log a CI pipeline can accumulate as build artifacts: a new point never
rewrites an old one, and :func:`change_points` replays the history to
locate the step where each cell's mean shifted.

Points store summaries rather than raw samples (a trajectory outlives
any single baseline and grows linearly with history); the change-point
test is therefore Welch's t-test computed from the stored moments, at
the same three-part gate (:class:`~repro.regress.compare.Thresholds`)
the baseline comparison uses.
"""

from __future__ import annotations

import json
import math
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from scipy import stats as sps

from ..harness.runner import RunResult
from ..harness.sweep import MODEL_VERSION
from .compare import Thresholds

#: Version stamp of the trajectory-point JSON schema.
TRAJECTORY_SCHEMA_VERSION = 1

_POINT_RE = re.compile(r"^BENCH_(\d+)\.json$")


class TrajectoryError(Exception):
    """A trajectory point is missing, corrupt or schema-incompatible."""


@dataclass(frozen=True)
class CellPoint:
    """One cell's summary at one trajectory point."""

    benchmark: str
    size: str
    device: str
    mean_s: float
    std_s: float
    n: int

    @property
    def coordinates(self) -> tuple[str, str, str]:
        """The (benchmark, size, device) triple identifying this cell."""
        return (self.benchmark, self.size, self.device)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark, "size": self.size,
            "device": self.device, "mean_s": self.mean_s,
            "std_s": self.std_s, "n": self.n,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CellPoint":
        return cls(
            benchmark=str(payload["benchmark"]),
            size=str(payload["size"]),
            device=str(payload["device"]),
            mean_s=float(payload["mean_s"]),
            std_s=float(payload["std_s"]),
            n=int(payload["n"]),
        )


@dataclass
class TrajectoryPoint:
    """One recorded point: a label plus every cell's summary."""

    index: int
    label: str
    model_version: str = MODEL_VERSION
    created_unix: float = field(default_factory=time.time)
    cells: list[CellPoint] = field(default_factory=list)
    #: Harness phase-timing summary for the recording sweep itself
    #: (phase -> {"total_s", "self_s", "count"}), produced by
    #: :func:`repro.telemetry.profile.phase_summary`.  Optional and
    #: additive — points recorded before the profiler existed load as
    #: ``None`` — so per-phase gating can join the trajectory without a
    #: schema bump.
    phases: dict | None = None

    def cell(self, benchmark: str, size: str, device: str
             ) -> CellPoint | None:
        """The cell at the given coordinates, or ``None``."""
        for c in self.cells:
            if c.coordinates == (benchmark, size, device):
                return c
        return None

    @classmethod
    def from_results(cls, index: int, results: list[RunResult],
                     label: str = "",
                     phases: dict | None = None) -> "TrajectoryPoint":
        """Summarise a sweep's results into one trajectory point."""
        point = cls(index=index, label=label, phases=phases)
        for r in results:
            s = r.time_summary
            point.cells.append(CellPoint(
                benchmark=r.benchmark, size=r.size, device=r.device,
                mean_s=s.mean, std_s=s.std, n=s.n,
            ))
        return point

    def to_json(self) -> str:
        """The point as schema-versioned JSON text."""
        return json.dumps(
            {
                "schema_version": TRAJECTORY_SCHEMA_VERSION,
                "index": self.index,
                "label": self.label,
                "model_version": self.model_version,
                "created_unix": self.created_unix,
                "cells": [c.to_dict() for c in self.cells],
                "phases": self.phases,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "TrajectoryPoint":
        """Parse :meth:`to_json` output; raises TrajectoryError."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise TrajectoryError(f"point is not valid JSON: {exc}") from None
        version = payload.get("schema_version") if isinstance(payload, dict) \
            else None
        if version != TRAJECTORY_SCHEMA_VERSION:
            raise TrajectoryError(
                f"trajectory schema version {version!r} is not supported "
                f"(expected {TRAJECTORY_SCHEMA_VERSION})")
        try:
            return cls(
                index=int(payload["index"]),
                label=str(payload["label"]),
                model_version=str(payload["model_version"]),
                created_unix=float(payload["created_unix"]),
                cells=[CellPoint.from_dict(c) for c in payload["cells"]],
                phases=payload.get("phases"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TrajectoryError(f"malformed point: {exc!r}") from None


def default_trajectory_dir() -> Path:
    """Where the trajectory lives when no ``--trajectory-dir`` is given.

    ``$REPRO_TRAJECTORY_DIR`` wins, else ``.repro/trajectory`` under
    the current directory — like baselines, trajectory points are
    project data meant to be committed or uploaded as CI artifacts.
    """
    env = os.environ.get("REPRO_TRAJECTORY_DIR")
    if env:
        return Path(env).expanduser()
    return Path(".repro/trajectory")


class Trajectory:
    """A directory of append-only ``BENCH_<n>.json`` points."""

    def __init__(self, root: str | Path):
        self.root = Path(root).expanduser()

    def path_for(self, index: int) -> Path:
        """Where point ``index`` lives (whether or not it exists)."""
        return self.root / f"BENCH_{index}.json"

    def indices(self) -> list[int]:
        """Recorded point indices, ascending."""
        out = []
        if self.root.is_dir():
            for entry in self.root.iterdir():
                m = _POINT_RE.match(entry.name)
                if m:
                    out.append(int(m.group(1)))
        return sorted(out)

    def next_index(self) -> int:
        """The index :meth:`append` will assign next."""
        indices = self.indices()
        return (indices[-1] + 1) if indices else 0

    # ------------------------------------------------------------------
    def append(self, point: TrajectoryPoint) -> Path:
        """Persist one point; refuses to overwrite an existing index."""
        path = self.path_for(point.index)
        if path.exists():
            raise TrajectoryError(
                f"trajectory point {path.name} already exists "
                "(the log is append-only; pick a fresh index)")
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(point.to_json(), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def load(self, index: int) -> TrajectoryPoint:
        """Load one point by index."""
        try:
            text = self.path_for(index).read_text(encoding="utf-8")
        except OSError:
            raise TrajectoryError(
                f"no trajectory point BENCH_{index}.json in {self.root}"
            ) from None
        return TrajectoryPoint.from_json(text)

    def points(self) -> list[TrajectoryPoint]:
        """Every recorded point, in index order."""
        return [self.load(i) for i in self.indices()]

    def __len__(self) -> int:
        return len(self.indices())


# ----------------------------------------------------------------------
# Change-point detection over the history
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChangePoint:
    """One cell's mean shifting between two consecutive points."""

    benchmark: str
    size: str
    device: str
    from_index: int
    to_index: int
    from_mean_s: float
    to_mean_s: float
    p_value: float
    effect_size: float

    @property
    def direction(self) -> str:
        """``slower`` or ``faster``."""
        return "slower" if self.to_mean_s > self.from_mean_s else "faster"

    @property
    def ratio(self) -> float:
        """``to_mean / from_mean`` (> 1 means slower)."""
        return (self.to_mean_s / self.from_mean_s
                if self.from_mean_s else math.nan)

    def format(self) -> str:
        where = f"{self.benchmark}/{self.size}/{self.device}"
        return (
            f"{where}: {self.direction} at BENCH_{self.to_index} "
            f"(x{self.ratio:.3f} vs BENCH_{self.from_index}, "
            f"p={self.p_value:.2e}, d={self.effect_size:+.2f})"
        )

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark, "size": self.size,
            "device": self.device, "from_index": self.from_index,
            "to_index": self.to_index, "from_mean_s": self.from_mean_s,
            "to_mean_s": self.to_mean_s, "p_value": self.p_value,
            "effect_size": self.effect_size, "direction": self.direction,
        }


def _welch_from_stats(m1: float, s1: float, n1: int,
                      m2: float, s2: float, n2: int
                      ) -> tuple[float, float, float]:
    """Welch's t, p and Cohen's d from summary moments.

    The trajectory stores (mean, std, n) rather than raw samples, so
    the two-sample test is reconstructed from the moments — identical
    to :func:`repro.scibench.stats.welch_t_test` on the raw data up to
    floating-point rounding.
    """
    if n1 < 2 or n2 < 2:
        return math.nan, math.nan, math.nan
    v1, v2 = s1 * s1 / n1, s2 * s2 / n2
    se2 = v1 + v2
    pooled = math.sqrt(((n1 - 1) * s1 * s1 + (n2 - 1) * s2 * s2)
                       / (n1 + n2 - 2))
    shift = m2 - m1
    if pooled == 0.0:
        d = 0.0 if shift == 0.0 else math.copysign(math.inf, shift)
    else:
        d = shift / pooled
    if se2 == 0.0:
        return math.nan, math.nan, d
    t = shift / math.sqrt(se2)
    df = se2 * se2 / (v1 * v1 / (n1 - 1) + v2 * v2 / (n2 - 1))
    p = 2.0 * float(sps.t.sf(abs(t), df))
    return t, p, d


def change_points(points: list[TrajectoryPoint],
                  thresholds: Thresholds | None = None
                  ) -> list[ChangePoint]:
    """Locate mean shifts between consecutive trajectory points.

    Each cell's history is scanned pairwise; a step passes the same
    three-part gate as the baseline comparison (``p < alpha``,
    ``|d| >= min_effect_size``, relative shift ``>= min_rel_shift``).
    Cells absent from either side of a pair are skipped — coverage
    drift is the baseline comparison's job.
    """
    th = thresholds or Thresholds()
    out: list[ChangePoint] = []
    for prev, curr in zip(points, points[1:]):
        for cell in curr.cells:
            before = prev.cell(*cell.coordinates)
            if before is None:
                continue
            t, p, d = _welch_from_stats(
                before.mean_s, before.std_s, before.n,
                cell.mean_s, cell.std_s, cell.n)
            if math.isnan(p) or before.mean_s == 0.0:
                continue
            rel = abs(cell.mean_s - before.mean_s) / before.mean_s
            if (p < th.alpha and abs(d) >= th.min_effect_size
                    and rel >= th.min_rel_shift):
                out.append(ChangePoint(
                    benchmark=cell.benchmark, size=cell.size,
                    device=cell.device,
                    from_index=prev.index, to_index=curr.index,
                    from_mean_s=before.mean_s, to_mean_s=cell.mean_s,
                    p_value=p, effect_size=d,
                ))
    return out
