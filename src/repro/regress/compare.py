"""Statistical comparison of a fresh run against a stored baseline.

The paper's §4.3 methodology sizes every measurement group at 50
samples so that a Welch's t-test has power 0.8 to detect a half-σ
shift.  This module is the second half of that bargain: given two
groups — the baseline's stored samples and a freshly measured set — it
runs exactly that test and classifies the cell:

* **regressed** — the fresh mean is *slower*, and the difference is
  simultaneously significant (``p < alpha``), large in effect size
  (``|Cohen's d| >= min_effect_size``, default the paper's 0.5σ
  detection target) and material (relative mean shift
  ``>= min_rel_shift``, default 3%);
* **improved** — the mirror image, faster;
* **unchanged** — anything that fails one of the three criteria.

Requiring all three gates at once is deliberate: with 50 samples a
0.1% shift can be "significant" (p tells you it is real, not that it
matters), while a 10% shift on two samples is anecdote.  The bootstrap
CI on the ratio of means quantifies *how much* slower for the report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..harness.runner import RunResult
from ..harness.sweep import cell_key
from ..scibench.stats import (
    achieved_power,
    bootstrap_ratio_ci,
    cohens_d,
    welch_t_test,
)
from .baseline import Baseline, CellBaseline

#: Cell classifications, in report order.  ``missing``/``new`` mark
#: coverage drift (a cell present on only one side); ``stale`` is not a
#: status but a flag — see :attr:`CellComparison.stale`.
STATUSES = ("regressed", "improved", "unchanged", "missing", "new")


@dataclass(frozen=True)
class Thresholds:
    """The three-part classification gate (defaults mirror §4.3).

    Parameters
    ----------
    alpha:
        Welch's-test significance level.  Default 0.01 — stricter than
        the power analysis's 0.05 because a CI gate runs one test per
        cell and the suite has dozens of cells.
    min_effect_size:
        Minimum |Cohen's d|, in pooled-σ units.  Default 0.5, the shift
        the paper sized its groups to detect.
    min_rel_shift:
        Minimum relative mean shift.  Default 3% — below that, a
        "regression" is within the run-to-run noise floor of every
        device in Table 1.
    confidence, n_boot, boot_seed:
        Bootstrap-CI parameters for the reported ratio interval.
    """

    alpha: float = 0.01
    min_effect_size: float = 0.5
    min_rel_shift: float = 0.03
    confidence: float = 0.95
    n_boot: int = 2000
    boot_seed: int = 0

    def __post_init__(self):
        if not 0 < self.alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.min_effect_size < 0:
            raise ValueError("min_effect_size must be >= 0")
        if self.min_rel_shift < 0:
            raise ValueError("min_rel_shift must be >= 0")


@dataclass(frozen=True)
class CellComparison:
    """One cell's verdict and the statistics behind it.

    ``ratio`` is ``fresh_mean / baseline_mean`` (> 1 means slower);
    ``effect_size`` is Cohen's d of fresh vs baseline (positive means
    slower); ``power`` is the achieved power of the test at the
    baseline's group size for the configured effect-size target.
    ``stale`` marks a cell whose content-address no longer matches the
    baseline's — the device spec or model version changed since the
    baseline was recorded, so the verdict compares different models
    (exactly what a regression gate is for, but worth surfacing).
    """

    benchmark: str
    size: str
    device: str
    device_class: str
    status: str
    baseline_mean: float = math.nan
    fresh_mean: float = math.nan
    ratio: float = math.nan
    ratio_ci: tuple[float, float] = (math.nan, math.nan)
    t_stat: float = math.nan
    p_value: float = math.nan
    effect_size: float = math.nan
    power: float = math.nan
    stale: bool = False

    @property
    def coordinates(self) -> tuple[str, str, str]:
        """The (benchmark, size, device) triple identifying this cell."""
        return (self.benchmark, self.size, self.device)

    def format(self) -> str:
        """One-line text rendering (the ``regress check`` output)."""
        where = "/".join(self.coordinates)
        if self.status in ("missing", "new"):
            return f"{self.status}: {where}"
        line = (
            f"{self.status}: {where}: "
            f"{self.baseline_mean * 1e3:.4f} -> {self.fresh_mean * 1e3:.4f} ms "
            f"(x{self.ratio:.3f}, CI [{self.ratio_ci[0]:.3f}, "
            f"{self.ratio_ci[1]:.3f}], p={self.p_value:.2e}, "
            f"d={self.effect_size:+.2f})"
        )
        if self.stale:
            line += " [stale: model/device changed since record]"
        return line

    def to_dict(self) -> dict:
        """JSON-ready mapping (NaN statistics are omitted)."""
        out: dict = {
            "benchmark": self.benchmark,
            "size": self.size,
            "device": self.device,
            "device_class": self.device_class,
            "status": self.status,
            "stale": self.stale,
        }
        scalars = {
            "baseline_mean_s": self.baseline_mean,
            "fresh_mean_s": self.fresh_mean,
            "ratio": self.ratio,
            "t_stat": self.t_stat,
            "p_value": self.p_value,
            "effect_size": self.effect_size,
            "power": self.power,
        }
        for name, value in scalars.items():
            if not math.isnan(value):
                out[name] = value
        if not math.isnan(self.ratio_ci[0]):
            out["ratio_ci"] = list(self.ratio_ci)
        return out


def classify(baseline_samples, fresh_samples,
             thresholds: Thresholds | None = None) -> tuple[str, dict]:
    """Classify two sample groups; returns (status, statistics).

    The statistics dict carries every intermediate the report renders:
    ``t_stat``, ``p_value``, ``effect_size``, ``ratio``, ``ratio_ci``,
    ``baseline_mean``, ``fresh_mean`` and ``power``.
    """
    th = thresholds or Thresholds()
    base = np.asarray(baseline_samples, dtype=float)
    fresh = np.asarray(fresh_samples, dtype=float)
    base_mean = float(base.mean())
    fresh_mean = float(fresh.mean())
    t_stat, p_value = welch_t_test(base, fresh)
    d = cohens_d(base, fresh)
    ratio = fresh_mean / base_mean if base_mean else math.nan
    ratio_ci = bootstrap_ratio_ci(
        base, fresh, confidence=th.confidence, n_boot=th.n_boot,
        seed=th.boot_seed,
    ) if base_mean else (math.nan, math.nan)
    rel_shift = abs(fresh_mean - base_mean) / base_mean if base_mean else 0.0
    stats = {
        "baseline_mean": base_mean,
        "fresh_mean": fresh_mean,
        "ratio": ratio,
        "ratio_ci": ratio_ci,
        "t_stat": t_stat,
        "p_value": p_value,
        "effect_size": d,
        "power": achieved_power(min(base.size, fresh.size),
                                effect_size=th.min_effect_size,
                                alpha=th.alpha),
    }
    # identical groups (same seed, same model) short-circuit: Welch's
    # p is 1 there but can be nan when both groups are constant
    significant = (not math.isnan(p_value)) and p_value < th.alpha
    if (significant and abs(d) >= th.min_effect_size
            and rel_shift >= th.min_rel_shift):
        status = "regressed" if fresh_mean > base_mean else "improved"
    else:
        status = "unchanged"
    return status, stats


def compare_cell(cell: CellBaseline, result: RunResult,
                 thresholds: Thresholds | None = None) -> CellComparison:
    """Compare one fresh result against its baseline cell."""
    status, stats = classify(cell.times_s, result.times_s, thresholds)
    return CellComparison(
        benchmark=cell.benchmark,
        size=cell.size,
        device=cell.device,
        device_class=cell.device_class,
        status=status,
        baseline_mean=stats["baseline_mean"],
        fresh_mean=stats["fresh_mean"],
        ratio=stats["ratio"],
        ratio_ci=tuple(stats["ratio_ci"]),
        t_stat=stats["t_stat"],
        p_value=stats["p_value"],
        effect_size=stats["effect_size"],
        power=stats["power"],
        stale=cell_key(cell.run_config()) != cell.key,
    )


def compare(baseline: Baseline, results: list[RunResult],
            thresholds: Thresholds | None = None):
    """Compare a fresh result list against a whole baseline.

    Fresh results are matched to baseline cells by (benchmark, size,
    device).  Baseline cells with no fresh result come back
    ``missing``; fresh results with no baseline cell come back ``new``
    — both count as coverage drift, neither as a regression.

    Returns
    -------
    RegressReport
        Per-cell verdicts in baseline order (then any ``new`` cells),
        ready to render or gate on.
    """
    from .report import RegressReport

    th = thresholds or Thresholds()
    report = RegressReport(baseline_name=baseline.name, thresholds=th)
    by_coords = {
        (r.benchmark, r.size, r.device): r for r in results
    }
    seen = set()
    for cell in baseline:
        result = by_coords.get(cell.coordinates)
        if result is None:
            report.add(CellComparison(
                benchmark=cell.benchmark, size=cell.size,
                device=cell.device, device_class=cell.device_class,
                status="missing",
                baseline_mean=float(np.mean(cell.times_s)),
            ))
        else:
            seen.add(cell.coordinates)
            report.add(compare_cell(cell, result, th))
    for coords, result in by_coords.items():
        if coords not in seen:
            report.add(CellComparison(
                benchmark=result.benchmark, size=result.size,
                device=result.device, device_class=result.device_class,
                status="new",
                fresh_mean=float(result.times_s.mean()),
            ))
    return report
