"""Rendering and CI gating of a regression comparison.

Modeled on :mod:`repro.analysis.findings`: a :class:`RegressReport`
collects per-cell :class:`~repro.regress.compare.CellComparison`
verdicts, renders text or schema-versioned JSON, decides the exit
status of the ``repro regress check`` gate, and feeds the
``regress_cells_regressed_total`` / ``regress_cells_improved_total``
telemetry counters so finding volume is trackable across CI runs.
"""

from __future__ import annotations

import json

from .compare import STATUSES, CellComparison, Thresholds

#: Version stamp of the JSON report schema (see docs/regression.md).
JSON_SCHEMA_VERSION = 1

#: ``--fail-on`` thresholds: what makes the gate exit nonzero.
#: ``regressed`` fails only on slowdowns; ``changed`` also fails on
#: improvements and coverage drift (missing/new cells) — for gates that
#: demand a baseline re-record whenever anything moves; ``none`` never
#: fails (report-only).
FAIL_MODES = ("regressed", "changed", "none")

#: Statuses the ``changed`` fail mode trips on.
_CHANGED = ("regressed", "improved", "missing", "new")


class RegressReport:
    """An ordered collection of cell verdicts with rendering and gating.

    Parameters
    ----------
    baseline_name:
        Name of the baseline the comparison ran against.
    thresholds:
        The classification gate used (stamped into the JSON output so a
        report is self-describing).
    emit_metrics:
        When true (the default), every regressed/improved cell bumps
        the corresponding ``regress_cells_*_total`` counter in the
        process-global telemetry registry, tagged by benchmark, size
        and device.
    """

    def __init__(self, baseline_name: str = "",
                 thresholds: Thresholds | None = None,
                 emit_metrics: bool = True):
        self.baseline_name = baseline_name
        self.thresholds = thresholds or Thresholds()
        self.cells: list[CellComparison] = []
        self._emit_metrics = emit_metrics

    # ------------------------------------------------------------------
    def add(self, cell: CellComparison) -> None:
        """Record one cell verdict (and bump the telemetry counter)."""
        if cell.status not in STATUSES:
            raise ValueError(
                f"status must be one of {STATUSES}, got {cell.status!r}")
        self.cells.append(cell)
        if self._emit_metrics and cell.status in ("regressed", "improved"):
            from ..telemetry.metrics import default_registry

            default_registry().counter(
                f"regress_cells_{cell.status}_total",
                f"Sweep cells classified {cell.status} by the "
                "performance-regression gate",
            ).inc(benchmark=cell.benchmark, size=cell.size,
                  device=cell.device)

    def extend(self, cells) -> None:
        for cell in cells:
            self.add(cell)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    # ------------------------------------------------------------------
    def count(self, status: str | None = None) -> int:
        """Number of cells, optionally restricted to one status."""
        if status is None:
            return len(self.cells)
        return sum(1 for c in self.cells if c.status == status)

    def regressions(self) -> list[CellComparison]:
        """The regressed cells, in report order."""
        return [c for c in self.cells if c.status == "regressed"]

    def improvements(self) -> list[CellComparison]:
        """The improved cells, in report order."""
        return [c for c in self.cells if c.status == "improved"]

    def stale(self) -> list[CellComparison]:
        """Cells whose content-address drifted since record time."""
        return [c for c in self.cells if c.stale]

    def fails(self, fail_on: str = "regressed") -> bool:
        """Whether the report trips the given gate."""
        if fail_on not in FAIL_MODES:
            raise ValueError(
                f"fail_on must be one of {FAIL_MODES}, got {fail_on!r}")
        if fail_on == "none":
            return False
        if fail_on == "regressed":
            return self.count("regressed") > 0
        return any(self.count(s) > 0 for s in _CHANGED)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        return {status: self.count(status) for status in STATUSES}

    def render_text(self) -> str:
        """Multi-line report: changed cells first, then totals.

        Unchanged cells are elided (a healthy full-matrix check would
        otherwise print hundreds of identical lines); the totals line
        always states how many were checked.
        """
        order = {status: rank for rank, status in enumerate(STATUSES)}
        lines = [
            c.format()
            for c in sorted(
                (c for c in self.cells if c.status != "unchanged"),
                key=lambda c: (order[c.status], c.coordinates))
        ]
        counts = self.summary()
        lines.append(
            f"regress vs {self.baseline_name or '<baseline>'}: "
            + ", ".join(f"{counts[s]} {s}" for s in STATUSES)
            + f" of {len(self.cells)} cells"
        )
        stale = len(self.stale())
        if stale:
            lines.append(
                f"note: {stale} cell(s) stale — device spec or model "
                "version changed since the baseline was recorded"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        """JSON rendering (schema documented in docs/regression.md)."""
        th = self.thresholds
        return json.dumps(
            {
                "schema_version": JSON_SCHEMA_VERSION,
                "baseline": self.baseline_name,
                "thresholds": {
                    "alpha": th.alpha,
                    "min_effect_size": th.min_effect_size,
                    "min_rel_shift": th.min_rel_shift,
                    "confidence": th.confidence,
                },
                "summary": self.summary(),
                "cells": [c.to_dict() for c in self.cells],
            },
            indent=2,
            sort_keys=True,
        )
