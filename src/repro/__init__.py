"""Extended OpenDwarfs in Python.

A reproduction of "Dwarfs on Accelerators: Enhancing OpenCL
Benchmarking for Heterogeneous Computing Architectures" (Johnston &
Milthorpe, ICPP 2018) as a self-contained Python library: a simulated
OpenCL runtime with an analytic device performance model, the eleven
dwarf benchmarks with validated numpy kernels, the problem-size
methodology, LibSciBench-style measurement, and a harness that
regenerates every table and figure of the paper.

Quickstart::

    from repro import ocl
    from repro.dwarfs import create

    device = ocl.find_device("GTX 1080")
    context = ocl.Context(device)
    queue = ocl.CommandQueue(context)
    bench = create("fft", "medium")
    bench.run_complete(context, queue)   # executes + validates
    print(queue.total_kernel_time_s())   # modeled kernel time
"""

__version__ = "1.0.0"

from . import (
    aiwc,
    cache,
    counters,
    devices,
    dwarfs,
    harness,
    io,
    ocl,
    perfmodel,
    regress,
    scheduling,
    scibench,
    sizing,
    telemetry,
    tuning,
)

__all__ = [
    "__version__",
    "aiwc",
    "cache",
    "counters",
    "devices",
    "dwarfs",
    "harness",
    "io",
    "ocl",
    "perfmodel",
    "regress",
    "scheduling",
    "scibench",
    "sizing",
    "telemetry",
    "tuning",
]
