"""Hardware-counter facades: PAPI events, RAPL and NVML energy."""

from .nvml import NvmlSensor, POWER_ACCURACY_W
from .papi import COUNTER_NAMES, CounterReport, PapiEventSet
from .rapl import RaplSensor

__all__ = [
    "COUNTER_NAMES",
    "CounterReport",
    "NvmlSensor",
    "POWER_ACCURACY_W",
    "PapiEventSet",
    "RaplSensor",
]
