"""NVML power sensor facade.

Models the PAPI NVML module used on the GTX 1080: instantaneous board
power readings (``nvml:::<device>:power``) in milliwatts with a ±5 W
accuracy band, integrated over the measured region to joules — total
draw for the entire card, memory and chip (paper §5.2).
"""

from __future__ import annotations

import numpy as np

from ..devices.specs import DeviceSpec, Vendor
from ..perfmodel.energy import mean_power_w

#: NVML documents ±5 W accuracy on these boards.
POWER_ACCURACY_W = 5.0

#: NVML reports milliwatts.
RESOLUTION_W = 1e-3


class NvmlSensor:
    """Board power sampler for NVIDIA devices."""

    def __init__(self, spec: DeviceSpec, rng: np.random.Generator | None = None):
        if spec.vendor != Vendor.NVIDIA:
            raise ValueError(
                f"NVML is only available on NVIDIA devices, not {spec.vendor.value}"
            )
        self.spec = spec
        self.rng = rng

    def power_w(self, utilization: float) -> float:
        """One instantaneous power reading at the given utilisation."""
        p = mean_power_w(self.spec, utilization)
        if self.rng is not None:
            p += float(self.rng.uniform(-POWER_ACCURACY_W, POWER_ACCURACY_W))
        p = max(p, 0.0)
        return round(p / RESOLUTION_W) * RESOLUTION_W

    def measure(self, duration_s: float, utilization: float, samples: int = 10) -> float:
        """Integrate sampled power over a region; returns joules.

        NVML is polled; we take ``samples`` readings across the region
        and integrate with the trapezoid rule, as LibSciBench does.
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if samples < 2:
            return self.power_w(utilization) * duration_s
        readings = np.array([self.power_w(utilization) for _ in range(samples)])
        return float(np.trapezoid(readings, dx=duration_s / (samples - 1)))
