"""PAPI-style counter collection.

Reproduces the counter set of paper §4.3 on top of the cache/TLB/
branch simulators:

* ``PAPI_TOT_INS`` — total instructions, and IPC;
* ``PAPI_L1_DCM`` / ``PAPI_L2_DCM`` — L1/L2 data-cache misses;
* ``PAPI_L3_TCM`` — total L3 cache misses (only the total event is
  available on the Skylake, as the paper notes), with request rate,
  miss rate and miss ratio derived;
* ``PAPI_TLB_DM`` — data TLB misses;
* ``PAPI_BR_INS`` / ``PAPI_BR_MSP`` — branches and mispredictions.

Miss *rates* are reported as misses / total instructions, matching the
paper's presentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cache.branch import BranchPredictor
from ..cache.hierarchy import CacheHierarchy
from ..cache.tlb import TLB
from ..devices.specs import DeviceSpec

#: The counters of paper §4.3, in presentation order.
COUNTER_NAMES = (
    "PAPI_TOT_INS",
    "PAPI_L1_DCM",
    "PAPI_L2_DCM",
    "PAPI_L3_TCM",
    "PAPI_TLB_DM",
    "PAPI_BR_INS",
    "PAPI_BR_MSP",
)


@dataclass
class CounterReport:
    """One measurement's counter values and derived rates."""

    counts: dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.counts[name]

    @property
    def total_instructions(self) -> int:
        return self.counts.get("PAPI_TOT_INS", 0)

    def rate(self, name: str) -> float:
        """Counter value normalised by total instructions (paper §4.4)."""
        total = self.total_instructions
        return self.counts.get(name, 0) / total if total else 0.0

    def l3_miss_ratio(self) -> float:
        """L3 misses / L3 requests (paper's 'miss ratio')."""
        requests = self.counts.get("_L3_REQUESTS", 0)
        return self.counts.get("PAPI_L3_TCM", 0) / requests if requests else 0.0

    def as_percentages(self) -> dict[str, float]:
        """Miss counters as percentages of total instructions."""
        return {
            name: 100.0 * self.rate(name)
            for name in ("PAPI_L1_DCM", "PAPI_L2_DCM", "PAPI_L3_TCM", "PAPI_TLB_DM")
        }


class PapiEventSet:
    """A started PAPI event set bound to one simulated device.

    Feed it memory/branch traces between :meth:`start` and
    :meth:`stop`; read the resulting :class:`CounterReport`.
    """

    def __init__(self, spec: DeviceSpec, tlb_entries: int = 64):
        self.spec = spec
        self.hierarchy = CacheHierarchy.for_device(spec)
        self.tlb = TLB(entries=tlb_entries)
        self.branch = BranchPredictor()
        self._instructions = 0
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Zero and start the counters (``PAPI_start``)."""
        self.hierarchy.reset()
        self.tlb.reset()
        self.branch.reset()
        self._instructions = 0
        self._running = True

    def record_instructions(self, count: int) -> None:
        """Account non-memory instructions executed."""
        self._require_running()
        self._instructions += int(count)

    def record_memory_trace(self, addresses: np.ndarray,
                            instructions_per_access: float = 1.0) -> None:
        """Replay a data-access trace through caches and TLB."""
        self._require_running()
        self.hierarchy.access_many(addresses)
        self.tlb.access_many(addresses)
        self._instructions += int(len(addresses) * instructions_per_access)

    def record_branch_trace(self, pcs, outcomes) -> None:
        """Replay a branch trace; branches also count as instructions."""
        self._require_running()
        self.branch.run_trace(pcs, outcomes)
        self._instructions += len(pcs)

    def _require_running(self) -> None:
        if not self._running:
            raise RuntimeError("event set not started; call start() first")

    # ------------------------------------------------------------------
    def stop(self) -> CounterReport:
        """Stop and read the counters (``PAPI_stop``)."""
        self._require_running()
        self._running = False
        misses = self.hierarchy.miss_counts()
        l3 = self.hierarchy.levels[2] if len(self.hierarchy.levels) > 2 else None
        # int() at the boundary: batch simulation may accumulate numpy
        # ints, and counter reports must stay JSON-native.
        counts = {
            "PAPI_TOT_INS": int(self._instructions),
            "PAPI_L1_DCM": int(misses.get("L1", 0)),
            "PAPI_L2_DCM": int(misses.get("L2", 0)),
            "PAPI_L3_TCM": int(misses.get("L3", 0)),
            "PAPI_TLB_DM": int(self.tlb.stats.misses),
            "PAPI_BR_INS": int(self.branch.branches),
            "PAPI_BR_MSP": int(self.branch.mispredictions),
            "_L3_REQUESTS": int(l3.stats.accesses) if l3 else 0,
        }
        return CounterReport(counts=counts)
