"""RAPL energy sensor facade.

Models the PAPI RAPL module the paper uses on Intel platforms:
``rapl:::PP0_ENERGY:PACKAGE0`` — cumulative core-domain energy with
nanojoule resolution, sampled before/after the measured region.
"""

from __future__ import annotations

import numpy as np

from ..devices.specs import DeviceSpec, Vendor
from ..perfmodel.energy import mean_power_w


class RaplSensor:
    """Cumulative package-energy counter for Intel devices.

    RAPL's PP0 domain covers all cores of the package, so repeated
    measurements of an identical region scatter by a few percent with
    DVFS state and whatever else shares the package — the reason the
    paper observes larger energy variance on the CPU than on the GPU
    (§5.2).  Pass ``rng`` to model that scatter.
    """

    #: RAPL reports in nanojoules.
    RESOLUTION_J = 1e-9

    #: Relative sigma of package-activity scatter between measurements.
    PACKAGE_NOISE = 0.035

    def __init__(self, spec: DeviceSpec, rng: np.random.Generator | None = None):
        if spec.vendor != Vendor.INTEL:
            raise ValueError(
                f"RAPL is only available on Intel platforms, not {spec.vendor.value}"
            )
        self.spec = spec
        self.rng = rng
        self._cumulative_j = 0.0

    def accumulate(self, duration_s: float, utilization: float) -> None:
        """Advance the counter across an execution interval."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        energy = mean_power_w(self.spec, utilization) * duration_s
        if self.rng is not None:
            energy *= float(self.rng.lognormal(0.0, self.PACKAGE_NOISE))
        self._cumulative_j += energy

    def read_j(self) -> float:
        """Read the cumulative counter, quantised to nJ."""
        return round(self._cumulative_j / self.RESOLUTION_J) * self.RESOLUTION_J

    def measure(self, duration_s: float, utilization: float) -> float:
        """Before/after sampling of one region; returns joules."""
        before = self.read_j()
        self.accumulate(duration_s, utilization)
        return self.read_j() - before


def requires_superuser() -> bool:
    """RAPL MSR access needs root (the paper could only measure energy
    on the two machines where it had superuser access, §5.2)."""
    return True
