"""Exception hierarchy for the simulated OpenCL runtime.

Each exception corresponds to a family of OpenCL error codes.  Host code
in the benchmarks catches these the way C host code checks ``cl_int``
return values.
"""

from __future__ import annotations


class CLError(Exception):
    """Base class for all simulated OpenCL errors.

    Parameters
    ----------
    message:
        Human-readable description.
    code:
        The OpenCL-style negative error code, when one applies.
    """

    default_code = -9999

    def __init__(self, message: str, code: int | None = None):
        super().__init__(message)
        self.code = self.default_code if code is None else code


class DeviceNotFound(CLError):
    """No device matched the requested type (``CL_DEVICE_NOT_FOUND``)."""

    default_code = -1


class InvalidValue(CLError):
    """A host API argument was malformed (``CL_INVALID_VALUE``)."""

    default_code = -30


class InvalidDevice(CLError):
    """Device is not associated with the context (``CL_INVALID_DEVICE``)."""

    default_code = -33


class InvalidContext(CLError):
    """Objects from different contexts were mixed (``CL_INVALID_CONTEXT``)."""

    default_code = -34


class InvalidMemObject(CLError):
    """Buffer misuse, e.g. released or foreign (``CL_INVALID_MEM_OBJECT``)."""

    default_code = -38


class InvalidCommandQueue(CLError):
    """Command enqueued on a released queue (``CL_INVALID_COMMAND_QUEUE``)."""

    default_code = -36


class InvalidKernelArgs(CLError):
    """Kernel launched with unset/ill-typed args (``CL_INVALID_KERNEL_ARGS``)."""

    default_code = -52


class InvalidWorkGroupSize(CLError):
    """Local size does not divide global size or exceeds device limits
    (``CL_INVALID_WORK_GROUP_SIZE``)."""

    default_code = -54


class OutOfResources(CLError):
    """Allocation exceeded the device global memory (``CL_OUT_OF_RESOURCES``)."""

    default_code = -5


class MemObjectAllocationFailure(CLError):
    """Buffer allocation failure (``CL_MEM_OBJECT_ALLOCATION_FAILURE``)."""

    default_code = -4


class BuildProgramFailure(CLError):
    """Kernel "compilation" failed (``CL_BUILD_PROGRAM_FAILURE``)."""

    default_code = -11


class ProfilingInfoNotAvailable(CLError):
    """Profiling queried on a queue without profiling enabled
    (``CL_PROFILING_INFO_NOT_AVAILABLE``)."""

    default_code = -7
