"""Contexts: ownership scope for buffers, programs and queues."""

from __future__ import annotations

import numpy as np

from ..telemetry.hooks import EventBus
from .device import Device
from .errors import MemObjectAllocationFailure, OutOfResources
from .memory import Buffer
from .types import MemFlags


class Context:
    """Execution context bound to a single device.

    (OpenCL contexts may span devices; the OpenDwarfs benchmarks always
    create single-device contexts, so that is what we model.)
    """

    def __init__(self, device: Device):
        self.device = device
        self._allocations: dict[int, Buffer] = {}
        self._allocated_bytes = 0
        self._peak_allocated_bytes = 0
        #: Completed-command hook bus: every queue created on this
        #: context publishes its events here (after the queue's own
        #: bus, before the process-global one).
        self.event_bus = EventBus()
        #: Attached :class:`repro.analysis.sanitize.Sanitizer`, or
        #: ``None``.  When set, buffer lifecycle and kernel launches on
        #: this context are instrumented (opt-in, zero cost otherwise).
        self.sanitizer = None
        #: Programs built on this context, in build order (the lint
        #: pass walks these to cross-check .cl sources vs Python bodies).
        self._programs: list = []
        #: Command queues created on this context (leak reporting).
        self._queues: list = []

    # ------------------------------------------------------------------
    def create_buffer(
        self,
        flags: MemFlags = MemFlags.READ_WRITE,
        size: int | None = None,
        hostbuf: np.ndarray | None = None,
    ) -> Buffer:
        """Allocate a device buffer (``clCreateBuffer``)."""
        return Buffer(self, flags=flags, size=size, hostbuf=hostbuf)

    def buffer_like(self, array: np.ndarray, flags: MemFlags = MemFlags.READ_WRITE) -> Buffer:
        """Allocate a buffer initialised from (a copy of) ``array``."""
        return Buffer(self, flags=flags | MemFlags.COPY_HOST_PTR, hostbuf=array)

    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        """Sum of all live device allocations.

        This is the quantity the paper prints to verify each
        benchmark's memory footprint against the targeted cache level.
        """
        return self._allocated_bytes

    @property
    def peak_allocated_bytes(self) -> int:
        """High-water mark of device allocations over the context's life."""
        return self._peak_allocated_bytes

    @property
    def live_buffers(self) -> int:
        return len(self._allocations)

    # ------------------------------------------------------------------
    def _register_allocation(self, buf: Buffer) -> None:
        limit = self.device.global_mem_size
        if buf.size > limit:
            raise MemObjectAllocationFailure(
                f"single allocation of {buf.size} bytes exceeds the "
                f"{limit}-byte global memory of {self.device.name}"
            )
        if self._allocated_bytes + buf.size > limit:
            raise OutOfResources(
                f"allocating {buf.size} bytes would exceed the "
                f"{limit}-byte global memory of {self.device.name} "
                f"({self._allocated_bytes} bytes already allocated)"
            )
        self._allocations[id(buf)] = buf
        self._allocated_bytes += buf.size
        self._peak_allocated_bytes = max(self._peak_allocated_bytes, self._allocated_bytes)
        if self.sanitizer is not None:
            self.sanitizer.on_alloc(buf)

    def _unregister_allocation(self, buf: Buffer) -> None:
        if id(buf) in self._allocations:
            del self._allocations[id(buf)]
            self._allocated_bytes -= buf.size
            if self.sanitizer is not None:
                self.sanitizer.on_release(buf)

    def _register_program(self, program) -> None:
        """Record a successfully built program (lint introspection)."""
        if program not in self._programs:
            self._programs.append(program)

    def _register_queue(self, queue) -> None:
        self._queues.append(queue)

    @property
    def programs(self) -> tuple:
        """Every program built on this context, in build order."""
        return tuple(self._programs)

    # ------------------------------------------------------------------
    def leak_report(self) -> list[str]:
        """Human-readable description of each leaked resource.

        A *leak* is a buffer still alive, or a queue never released, at
        the point of the call — the state a well-behaved benchmark must
        not be in after its ``teardown()``.  Shared by
        :meth:`assert_no_leaks` and the runtime sanitizer.
        """
        leaks = [
            f"buffer of {buf.size} bytes still allocated"
            for buf in self._allocations.values()
        ]
        leaks.extend(
            f"command queue with {len(q.events)} recorded events never released"
            for q in self._queues if not q.released
        )
        return leaks

    def assert_no_leaks(self, include_queues: bool = False) -> None:
        """Raise ``AssertionError`` if resources are still live.

        The paper's footprint verification prints the sum of device
        allocations; this is its teardown-time complement.  Queues are
        excluded by default because the pre-existing benchmark life
        cycle has no queue-release step.
        """
        leaks = self.leak_report()
        if not include_queues:
            leaks = [l for l in leaks if not l.startswith("command queue")]
        if leaks:
            raise AssertionError(
                f"context on {self.device.name} leaked {len(leaks)} "
                "resource(s): " + "; ".join(leaks)
            )

    def release_all(self) -> None:
        """Release every live buffer (context teardown)."""
        for buf in list(self._allocations.values()):
            buf.release()

    def __repr__(self) -> str:
        return (
            f"<Context on {self.device.name}: {self.live_buffers} buffers, "
            f"{self._allocated_bytes} bytes>"
        )
