"""Contexts: ownership scope for buffers, programs and queues."""

from __future__ import annotations

import numpy as np

from ..telemetry.hooks import EventBus
from .device import Device
from .errors import MemObjectAllocationFailure, OutOfResources
from .memory import Buffer
from .types import MemFlags


class Context:
    """Execution context bound to a single device.

    (OpenCL contexts may span devices; the OpenDwarfs benchmarks always
    create single-device contexts, so that is what we model.)
    """

    def __init__(self, device: Device):
        self.device = device
        self._allocations: dict[int, Buffer] = {}
        self._allocated_bytes = 0
        self._peak_allocated_bytes = 0
        #: Completed-command hook bus: every queue created on this
        #: context publishes its events here (after the queue's own
        #: bus, before the process-global one).
        self.event_bus = EventBus()

    # ------------------------------------------------------------------
    def create_buffer(
        self,
        flags: MemFlags = MemFlags.READ_WRITE,
        size: int | None = None,
        hostbuf: np.ndarray | None = None,
    ) -> Buffer:
        """Allocate a device buffer (``clCreateBuffer``)."""
        return Buffer(self, flags=flags, size=size, hostbuf=hostbuf)

    def buffer_like(self, array: np.ndarray, flags: MemFlags = MemFlags.READ_WRITE) -> Buffer:
        """Allocate a buffer initialised from (a copy of) ``array``."""
        return Buffer(self, flags=flags | MemFlags.COPY_HOST_PTR, hostbuf=array)

    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        """Sum of all live device allocations.

        This is the quantity the paper prints to verify each
        benchmark's memory footprint against the targeted cache level.
        """
        return self._allocated_bytes

    @property
    def peak_allocated_bytes(self) -> int:
        """High-water mark of device allocations over the context's life."""
        return self._peak_allocated_bytes

    @property
    def live_buffers(self) -> int:
        return len(self._allocations)

    # ------------------------------------------------------------------
    def _register_allocation(self, buf: Buffer) -> None:
        limit = self.device.global_mem_size
        if buf.size > limit:
            raise MemObjectAllocationFailure(
                f"single allocation of {buf.size} bytes exceeds the "
                f"{limit}-byte global memory of {self.device.name}"
            )
        if self._allocated_bytes + buf.size > limit:
            raise OutOfResources(
                f"allocating {buf.size} bytes would exceed the "
                f"{limit}-byte global memory of {self.device.name} "
                f"({self._allocated_bytes} bytes already allocated)"
            )
        self._allocations[id(buf)] = buf
        self._allocated_bytes += buf.size
        self._peak_allocated_bytes = max(self._peak_allocated_bytes, self._allocated_bytes)

    def _unregister_allocation(self, buf: Buffer) -> None:
        if id(buf) in self._allocations:
            del self._allocations[id(buf)]
            self._allocated_bytes -= buf.size

    def release_all(self) -> None:
        """Release every live buffer (context teardown)."""
        for buf in list(self._allocations.values()):
            buf.release()

    def __repr__(self) -> str:
        return (
            f"<Context on {self.device.name}: {self.live_buffers} buffers, "
            f"{self._allocated_bytes} bytes>"
        )
