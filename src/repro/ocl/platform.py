"""Platforms: vendor driver stacks exposing devices.

Mirrors ``clGetPlatformIDs``: one platform per installed vendor driver
(Intel OpenCL, NVIDIA CUDA, AMD APP SDK), each exposing its devices in
catalog order.  The Extended OpenDwarfs harness selects devices with
``-p <platform> -d <device> -t <type>`` (paper §4.4.5); the
:func:`select_device` helper implements exactly that triple.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.specs import DeviceSpec, Vendor
from .device import Device
from .errors import DeviceNotFound, InvalidValue
from .types import DeviceType


@dataclass(frozen=True)
class Platform:
    """One vendor OpenCL implementation."""

    name: str
    vendor: Vendor
    version: str
    devices: tuple[Device, ...]

    def get_devices(self, device_type: DeviceType = DeviceType.ALL) -> tuple[Device, ...]:
        """Devices of the requested type (``clGetDeviceIDs``)."""
        matched = tuple(d for d in self.devices if d.device_type & device_type)
        if not matched:
            raise DeviceNotFound(
                f"platform {self.name!r} has no device of type {device_type}"
            )
        return matched


_PLATFORM_DEFS = (
    ("Intel(R) OpenCL", Vendor.INTEL, "OpenCL 1.2 (Intel SDK 2016-R3)"),
    ("NVIDIA CUDA", Vendor.NVIDIA, "OpenCL 1.2 CUDA 8.0.61"),
    ("AMD Accelerated Parallel Processing", Vendor.AMD, "OpenCL 1.2 AMD-APP (3.0)"),
)


def get_platforms(specs: tuple[DeviceSpec, ...] | None = None) -> tuple[Platform, ...]:
    """Enumerate platforms (``clGetPlatformIDs``).

    Builds one platform per vendor present in ``specs`` (default: the
    full Table 1 catalog).  A real machine exposes only the devices
    physically installed; passing a subset of specs models that.
    """
    if specs is None:
        # deferred import: devices.catalog itself imports ocl.types,
        # so a module-level import here would be circular
        from ..devices.catalog import CATALOG as specs
    platforms = []
    for name, vendor, version in _PLATFORM_DEFS:
        vendor_specs = [s for s in specs if s.vendor == vendor]
        if not vendor_specs:
            continue
        devices = tuple(
            Device(spec=s, index=i, platform_name=name)
            for i, s in enumerate(vendor_specs)
        )
        platforms.append(Platform(name=name, vendor=vendor, version=version, devices=devices))
    return tuple(platforms)


#: Mapping of the harness ``-t`` argument to an OpenCL device type,
#: as used by the OpenDwarfs launcher scripts.
TYPE_FLAG = {
    0: DeviceType.CPU,
    1: DeviceType.GPU,
    2: DeviceType.ACCELERATOR,
}


def select_device(
    platform_index: int,
    device_index: int,
    type_flag: int,
    specs: tuple[DeviceSpec, ...] | None = None,
) -> Device:
    """Resolve the OpenDwarfs ``-p P -d D -t T`` device triple.

    ``-t`` filters the platform's devices by type before ``-d`` indexes
    into them, so e.g. ``-p 0 -d 0 -t 0`` is the first CPU of the first
    platform.
    """
    platforms = get_platforms(specs)
    if not 0 <= platform_index < len(platforms):
        raise InvalidValue(
            f"-p {platform_index} out of range: {len(platforms)} platform(s) available"
        )
    try:
        device_type = TYPE_FLAG[type_flag]
    except KeyError:
        raise InvalidValue(f"-t {type_flag} is not a known device type flag") from None
    devices = platforms[platform_index].get_devices(device_type)
    if not 0 <= device_index < len(devices):
        raise DeviceNotFound(
            f"-d {device_index} out of range: platform {platform_index} has "
            f"{len(devices)} device(s) of type {device_type}"
        )
    return devices[device_index]


def find_device(name: str, specs: tuple[DeviceSpec, ...] | None = None) -> Device:
    """Locate a device on any platform by its Table 1 name."""
    for platform in get_platforms(specs):
        for device in platform.devices:
            if device.name.lower() == name.lower():
                return device
    raise DeviceNotFound(f"no platform exposes a device named {name!r}")
