"""Device memory objects (buffers).

A :class:`Buffer` owns a numpy array standing in for a device
allocation.  Allocations are charged against the context's device
global memory so oversubscription fails with ``CL_OUT_OF_RESOURCES``,
and the paper's footprint-verification step ("the memory footprint was
verified … by printing the sum of the size of all memory allocated on
the device", §4.4) maps onto :meth:`Context.allocated_bytes`.
"""

from __future__ import annotations

import numpy as np

from .errors import InvalidMemObject, InvalidValue
from .types import MemFlags


class Buffer:
    """A device buffer backed by a numpy array.

    Parameters
    ----------
    context:
        Owning :class:`~repro.ocl.context.Context`.
    flags:
        :class:`MemFlags` combination.  ``COPY_HOST_PTR`` snapshots
        ``hostbuf`` at creation; ``USE_HOST_PTR`` aliases it (writes by
        kernels become visible in the host array, as on CPU devices).
    size:
        Allocation size in bytes (required unless ``hostbuf`` given).
    hostbuf:
        Host array providing initial contents and dtype/shape.
    """

    def __init__(
        self,
        context,
        flags: MemFlags = MemFlags.READ_WRITE,
        size: int | None = None,
        hostbuf: np.ndarray | None = None,
    ):
        if hostbuf is None and size is None:
            raise InvalidValue("Buffer needs either a size or a hostbuf")
        if hostbuf is not None and not isinstance(hostbuf, np.ndarray):
            raise InvalidValue(f"hostbuf must be a numpy array, got {type(hostbuf)!r}")
        if MemFlags.COPY_HOST_PTR in flags and hostbuf is None:
            raise InvalidValue("COPY_HOST_PTR requires a hostbuf")
        if (MemFlags.READ_ONLY in flags) and (MemFlags.WRITE_ONLY in flags):
            raise InvalidValue("READ_ONLY and WRITE_ONLY are mutually exclusive")

        if hostbuf is not None:
            if size is not None and size != hostbuf.nbytes:
                raise InvalidValue(
                    f"size {size} disagrees with hostbuf of {hostbuf.nbytes} bytes"
                )
            size = hostbuf.nbytes

        self.context = context
        self.flags = flags
        self.size = int(size)
        self._released = False
        #: Whether creation provided initial contents.  Size-only
        #: allocations start uninitialised (the zeros below model
        #: storage, not data); the sanitizer's uninit-read check keys
        #: off this.
        self._host_initialized = hostbuf is not None

        if hostbuf is not None and MemFlags.USE_HOST_PTR in flags:
            self._array = hostbuf
        elif hostbuf is not None:
            self._array = hostbuf.copy()
        else:
            self._array = np.zeros(self.size, dtype=np.uint8)

        context._register_allocation(self)

    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The backing storage (device-side view)."""
        self._check_alive()
        return self._array

    @property
    def nbytes(self) -> int:
        return self.size

    def view(self, dtype, shape=None) -> np.ndarray:
        """Typed view of the buffer contents."""
        self._check_alive()
        flat = self._array.view(dtype)
        return flat if shape is None else flat.reshape(shape)

    # ------------------------------------------------------------------
    def create_sub_buffer(self, origin: int, size: int,
                          flags: MemFlags | None = None) -> "SubBuffer":
        """A view of a byte region (``clCreateSubBuffer``).

        The sub-buffer shares storage with its parent: kernel writes
        through either are visible in both.  ``origin`` must respect
        the device's base-address alignment, as in OpenCL.
        """
        from .types import MEM_BASE_ADDR_ALIGN_BITS

        self._check_alive()
        align = MEM_BASE_ADDR_ALIGN_BITS // 8
        if origin % align:
            raise InvalidValue(
                f"sub-buffer origin {origin} violates the {align}-byte "
                "base-address alignment"
            )
        if origin < 0 or size <= 0 or origin + size > self.size:
            raise InvalidValue(
                f"sub-buffer region [{origin}, {origin + size}) outside "
                f"parent of {self.size} bytes"
            )
        return SubBuffer(self, origin, size,
                         self.flags if flags is None else flags)

    def release(self) -> None:
        """Free the allocation (``clReleaseMemObject``).  Idempotent."""
        if not self._released:
            self._released = True
            self.context._unregister_allocation(self)
            self._array = None

    @property
    def released(self) -> bool:
        return self._released

    def _check_alive(self) -> None:
        if self._released:
            raise InvalidMemObject("buffer has been released")

    def _check_writable(self) -> None:
        self._check_alive()
        if MemFlags.READ_ONLY in self.flags:
            raise InvalidMemObject("buffer is READ_ONLY on the device")

    def _check_readable(self) -> None:
        self._check_alive()

    def __enter__(self) -> "Buffer":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else f"{self.size} bytes"
        return f"<Buffer {state} on {self.context.device.name}>"


class SubBuffer(Buffer):
    """A region view over a parent buffer (``clCreateSubBuffer``).

    Shares the parent's storage: no separate allocation is charged to
    the context, and releasing the sub-buffer leaves the parent alive.
    Releasing the *parent* invalidates the sub-buffer, as in OpenCL.
    """

    def __init__(self, parent: Buffer, origin: int, size: int, flags: MemFlags):
        # deliberately NOT calling Buffer.__init__: no new allocation
        self.context = parent.context
        self.parent = parent
        self.origin = int(origin)
        self.flags = flags
        self.size = int(size)
        self._released = False
        self._host_initialized = parent._host_initialized

    @property
    def array(self) -> np.ndarray:
        self._check_alive()
        flat = self.parent.array.reshape(-1).view(np.uint8)
        return flat[self.origin : self.origin + self.size]

    def _check_alive(self) -> None:
        if self._released:
            raise InvalidMemObject("sub-buffer has been released")
        if self.parent.released:
            raise InvalidMemObject("parent buffer has been released")

    def release(self) -> None:
        """Release the view; the parent allocation is untouched."""
        self._released = True

    def __repr__(self) -> str:
        state = "released" if self._released else (
            f"[{self.origin}, {self.origin + self.size})")
        return f"<SubBuffer {state} of {self.parent!r}>"
