"""OpenCL C source handling.

The real Extended OpenDwarfs ships ``.cl`` kernel sources; this module
keeps that artefact meaningful in the simulation: benchmarks attach
their OpenCL C source to :class:`KernelSource`, and a small parser
extracts ``__kernel`` signatures so the runtime can cross-check that

* every Python kernel body has a same-named ``__kernel`` in the source,
* the argument count bound at enqueue matches the C signature.

That is the class of host/kernel mismatch (wrong arg index, renamed
kernel) that produces the silent wrong answers the paper's curation
fought — here it fails the build instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: OpenCL C type qualifiers stripped while parsing parameters.
_QUALIFIERS = {
    "__global", "global", "__local", "local", "__constant", "constant",
    "__private", "private", "const", "restrict", "volatile",
    "__read_only", "__write_only", "read_only", "write_only",
}

_KERNEL_RE = re.compile(
    r"__kernel\s+void\s+(?P<name>[A-Za-z_]\w*)\s*\((?P<params>[^)]*)\)",
    re.S,
)

_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.S)


class CLSourceError(ValueError):
    """Malformed OpenCL C source or host/kernel mismatch."""


@dataclass(frozen=True)
class CLParam:
    """One parsed kernel parameter."""

    type_name: str
    name: str
    is_pointer: bool
    address_space: str  # global / local / constant / private

    @property
    def is_buffer(self) -> bool:
        return self.is_pointer and self.address_space in ("global", "constant")


@dataclass(frozen=True)
class CLKernelSignature:
    """A parsed ``__kernel void name(...)`` signature."""

    name: str
    params: tuple[CLParam, ...]

    @property
    def arity(self) -> int:
        return len(self.params)

    @property
    def buffer_params(self) -> tuple[CLParam, ...]:
        return tuple(p for p in self.params if p.is_buffer)


def _parse_param(text: str) -> CLParam:
    text = text.strip()
    if not text:
        raise CLSourceError("empty kernel parameter")
    is_pointer = "*" in text
    tokens = text.replace("*", " ").split()
    address_space = "private"
    for token in tokens:
        cleaned = token.lstrip("_")
        if token in _QUALIFIERS and cleaned in ("global", "local",
                                                "constant", "private"):
            address_space = cleaned
    meaningful = [t for t in tokens if t not in _QUALIFIERS]
    if len(meaningful) < 2:
        raise CLSourceError(f"cannot parse kernel parameter {text!r}")
    return CLParam(
        type_name=" ".join(meaningful[:-1]),
        name=meaningful[-1],
        is_pointer=is_pointer,
        address_space=address_space if is_pointer else "private",
    )


def parse_kernels(source: str) -> dict[str, CLKernelSignature]:
    """Extract every ``__kernel`` signature from OpenCL C source."""
    stripped = _COMMENT_RE.sub(" ", source)
    kernels: dict[str, CLKernelSignature] = {}
    for match in _KERNEL_RE.finditer(stripped):
        name = match.group("name")
        params_text = match.group("params").strip()
        if params_text in ("", "void"):
            params: tuple[CLParam, ...] = ()
        else:
            params = tuple(_parse_param(p) for p in params_text.split(","))
        if name in kernels:
            raise CLSourceError(f"duplicate __kernel {name!r} in source")
        kernels[name] = CLKernelSignature(name=name, params=params)
    if not kernels:
        raise CLSourceError("source contains no __kernel functions")
    return kernels


def check_arguments(signature: CLKernelSignature, n_args: int) -> None:
    """Raise if the bound argument count disagrees with the C signature."""
    if n_args != signature.arity:
        raise CLSourceError(
            f"kernel {signature.name!r} takes {signature.arity} arguments "
            f"per its OpenCL C signature, but {n_args} were bound"
        )
