"""OpenCL C source handling.

The real Extended OpenDwarfs ships ``.cl`` kernel sources; this module
keeps that artefact meaningful in the simulation: benchmarks attach
their OpenCL C source to :class:`KernelSource`, and a small parser
extracts ``__kernel`` signatures so the runtime can cross-check that

* every Python kernel body has a same-named ``__kernel`` in the source,
* the argument count bound at enqueue matches the C signature.

That is the class of host/kernel mismatch (wrong arg index, renamed
kernel) that produces the silent wrong answers the paper's curation
fought — here it fails the build instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: OpenCL C type qualifiers stripped while parsing parameters.
_QUALIFIERS = {
    "__global", "global", "__local", "local", "__constant", "constant",
    "__private", "private", "const", "restrict", "volatile",
    "__read_only", "__write_only", "read_only", "write_only",
}

_KERNEL_RE = re.compile(
    r"__kernel\s+void\s+(?P<name>[A-Za-z_]\w*)\s*\((?P<params>[^)]*)\)",
    re.S,
)

_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.S)

#: ``#define`` / ``#pragma`` / ``#include`` lines stripped before
#: signature parsing (a macro body may contain text that looks like a
#: parameter list).
_PREPROCESSOR_RE = re.compile(r"^\s*#[^\n]*$", re.M)

#: Lint suppression directive: ``// repro-lint: allow(check: name)``.
#: Placed inside a kernel (between its signature and closing brace) it
#: suppresses that check for that kernel; ``name`` is optional and
#: restricts the suppression to one parameter.
_ALLOW_RE = re.compile(
    r"repro-lint:\s*allow\(\s*(?P<check>[\w-]+)\s*(?::\s*(?P<name>\w+)\s*)?\)"
)

#: OpenCL C scalar types with integer semantics.
INT_TYPE_NAMES = frozenset({
    "bool", "char", "uchar", "short", "ushort", "int", "uint",
    "long", "ulong", "size_t", "ptrdiff_t", "intptr_t", "uintptr_t",
    "unsigned", "signed",
})

#: OpenCL C scalar types with floating-point semantics.
FLOAT_TYPE_NAMES = frozenset({"float", "double", "half"})


def scalar_kind(type_name: str) -> str:
    """Classify a scalar C type as ``"int"``, ``"float"`` or ``"other"``.

    ``type_name`` is the parsed :attr:`CLParam.type_name`, possibly a
    multi-word type like ``unsigned int``; vector types (``float4``)
    and unknown typedefs classify as ``"other"`` and are not checked.
    """
    tokens = type_name.split()
    if any(t in FLOAT_TYPE_NAMES for t in tokens):
        return "float"
    if any(t in INT_TYPE_NAMES for t in tokens):
        return "int"
    return "other"


class CLSourceError(ValueError):
    """Malformed OpenCL C source or host/kernel mismatch."""


@dataclass(frozen=True)
class CLParam:
    """One parsed kernel parameter."""

    type_name: str
    name: str
    is_pointer: bool
    address_space: str  # global / local / constant / private

    @property
    def is_buffer(self) -> bool:
        return self.is_pointer and self.address_space in ("global", "constant")


@dataclass(frozen=True)
class CLKernelSignature:
    """A parsed ``__kernel void name(...)`` signature."""

    name: str
    params: tuple[CLParam, ...]

    @property
    def arity(self) -> int:
        return len(self.params)

    @property
    def buffer_params(self) -> tuple[CLParam, ...]:
        return tuple(p for p in self.params if p.is_buffer)


def _parse_param(text: str) -> CLParam:
    text = text.strip()
    if not text:
        raise CLSourceError("empty kernel parameter")
    is_pointer = "*" in text
    tokens = text.replace("*", " ").split()
    address_space = "private"
    for token in tokens:
        cleaned = token.lstrip("_")
        if token in _QUALIFIERS and cleaned in ("global", "local",
                                                "constant", "private"):
            address_space = cleaned
    meaningful = [t for t in tokens if t not in _QUALIFIERS]
    if len(meaningful) < 2:
        raise CLSourceError(f"cannot parse kernel parameter {text!r}")
    return CLParam(
        type_name=" ".join(meaningful[:-1]),
        name=meaningful[-1],
        is_pointer=is_pointer,
        address_space=address_space if is_pointer else "private",
    )


def parse_kernels(source: str) -> dict[str, CLKernelSignature]:
    """Extract every ``__kernel`` signature from OpenCL C source.

    Comments and preprocessor lines are stripped first, so ``/* ... */``
    inside a parameter list, ``#define`` macro bodies and multi-line
    signatures all parse as the C compiler would see them.
    """
    stripped = _PREPROCESSOR_RE.sub(" ", _COMMENT_RE.sub(" ", source))
    kernels: dict[str, CLKernelSignature] = {}
    for match in _KERNEL_RE.finditer(stripped):
        name = match.group("name")
        params_text = match.group("params").strip()
        if params_text in ("", "void"):
            params: tuple[CLParam, ...] = ()
        else:
            params = tuple(_parse_param(p) for p in params_text.split(","))
        if name in kernels:
            raise CLSourceError(f"duplicate __kernel {name!r} in source")
        kernels[name] = CLKernelSignature(name=name, params=params)
    if not kernels:
        raise CLSourceError("source contains no __kernel functions")
    return kernels


def check_arguments(signature: CLKernelSignature, n_args: int) -> None:
    """Raise if the bound argument count disagrees with the C signature."""
    if n_args != signature.arity:
        raise CLSourceError(
            f"kernel {signature.name!r} takes {signature.arity} arguments "
            f"per its OpenCL C signature, but {n_args} were bound"
        )


def check_scalar_argument(kernel: str, param: CLParam, index: int, value) -> None:
    """Validate one *scalar* bound argument against its parsed C type.

    Mirrors the host/kernel dtype mismatches ``clSetKernelArg`` lets
    through silently (the paper's §4.4 curation problem): a Python
    float bound to an ``int`` parameter truncates inside the kernel, a
    buffer bound to a scalar slot reinterprets a pointer.  Pointer
    parameters are not checked here — buffer identity and context
    ownership are enforced at enqueue.
    """
    import numpy as np

    if param.is_pointer:
        return
    if isinstance(value, np.ndarray):
        raise CLSourceError(
            f"kernel {kernel!r} argument {index} ({param.name!r}): an array "
            f"was bound to scalar parameter of type {param.type_name!r}"
        )
    kind = scalar_kind(param.type_name)
    if kind == "int" and isinstance(value, (float, np.floating)):
        raise CLSourceError(
            f"kernel {kernel!r} argument {index} ({param.name!r}): Python "
            f"value {value!r} is floating-point but the OpenCL C parameter "
            f"is {param.type_name!r}; pass an int (or fix the signature)"
        )
    if kind == "float" and isinstance(value, (bool, np.bool_)):
        raise CLSourceError(
            f"kernel {kernel!r} argument {index} ({param.name!r}): bool "
            f"bound to {param.type_name!r} parameter"
        )


def _kernel_spans(source: str) -> dict[str, tuple[int, int]]:
    """Map kernel name -> (body start, body end) offsets in ``source``.

    Offsets bracket the brace-matched body of each ``__kernel``; used
    by the lint pass to attribute body text and suppression directives
    to a kernel.  Comments are *not* stripped here so directives
    survive; brace matching ignores braces inside comments by scanning
    a comment-blanked copy.
    """
    blanked = _COMMENT_RE.sub(lambda m: " " * len(m.group(0)), source)
    blanked = _PREPROCESSOR_RE.sub(lambda m: " " * len(m.group(0)), blanked)
    spans: dict[str, tuple[int, int]] = {}
    for match in _KERNEL_RE.finditer(blanked):
        name = match.group("name")
        open_brace = blanked.find("{", match.end())
        if open_brace < 0:
            continue
        depth = 0
        for pos in range(open_brace, len(blanked)):
            if blanked[pos] == "{":
                depth += 1
            elif blanked[pos] == "}":
                depth -= 1
                if depth == 0:
                    spans[name] = (open_brace + 1, pos)
                    break
    return spans


def kernel_bodies(source: str) -> dict[str, str]:
    """Extract each ``__kernel``'s brace-matched body text (no comments).

    Feeds the static lint checks (unused parameters, address-space
    misuse, barrier divergence).  Preprocessor lines and comments are
    blanked, not removed, so offsets still correspond to ``source``.
    """
    blanked = _COMMENT_RE.sub(lambda m: " " * len(m.group(0)), source)
    blanked = _PREPROCESSOR_RE.sub(lambda m: " " * len(m.group(0)), blanked)
    return {name: blanked[start:end]
            for name, (start, end) in _kernel_spans(source).items()}


def kernel_suppressions(source: str) -> dict[str, set[tuple[str, str | None]]]:
    """Per-kernel lint suppressions declared in the source.

    A comment ``// repro-lint: allow(unused-param: scale)`` inside a
    kernel body suppresses the ``unused-param`` check for parameter
    ``scale`` in that kernel; omitting ``: name`` suppresses the check
    for the whole kernel.  Returns ``{kernel: {(check, name-or-None)}}``.
    """
    out: dict[str, set[tuple[str, str | None]]] = {}
    for name, (start, end) in _kernel_spans(source).items():
        allows = {
            (m.group("check"), m.group("name"))
            for m in _ALLOW_RE.finditer(source[start:end])
        }
        if allows:
            out[name] = allows
    return out
