"""NDRange work decomposition.

Models OpenCL's execution geometry: a 1-3 dimensional global range of
work items, optionally blocked into work groups by a local range.  The
benchmarks use this both for dispatch bookkeeping (work-group counts
feed the launch-overhead model) and, via the per-work-item kernel
adapter in :mod:`repro.ocl.program`, for semantically faithful
execution in tests.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from .errors import InvalidValue, InvalidWorkGroupSize

#: Work-group size limit enforced by every simulated device (typical
#: OpenCL CL_DEVICE_MAX_WORK_GROUP_SIZE for the platforms in Table 1).
MAX_WORK_GROUP_SIZE = 1024


@dataclass(frozen=True)
class NDRange:
    """A validated (global, local) execution range.

    Parameters
    ----------
    global_size:
        Work items per dimension; 1 to 3 dimensions.
    local_size:
        Work-group shape.  ``None`` lets the runtime pick (modelled as
        groups of up to 64 items along the innermost dimension, which
        is what the OpenDwarfs kernels default to).
    """

    global_size: tuple[int, ...]
    local_size: tuple[int, ...] | None = None

    def __post_init__(self):
        gs = tuple(int(g) for g in self.global_size)
        if not 1 <= len(gs) <= 3:
            raise InvalidValue(f"NDRange must be 1-3 dimensional, got {len(gs)}D")
        if any(g <= 0 for g in gs):
            raise InvalidValue(f"global size must be positive, got {gs}")
        object.__setattr__(self, "global_size", gs)
        if self.local_size is not None:
            ls = tuple(int(x) for x in self.local_size)
            if len(ls) != len(gs):
                raise InvalidWorkGroupSize(
                    f"local size {ls} has different dimensionality than global {gs}"
                )
            if any(l <= 0 for l in ls):
                raise InvalidWorkGroupSize(f"local size must be positive, got {ls}")
            if math.prod(ls) > MAX_WORK_GROUP_SIZE:
                raise InvalidWorkGroupSize(
                    f"work group of {math.prod(ls)} items exceeds the "
                    f"device maximum of {MAX_WORK_GROUP_SIZE}"
                )
            if any(g % l != 0 for g, l in zip(gs, ls)):
                raise InvalidWorkGroupSize(
                    f"local size {ls} does not evenly divide global size {gs}"
                )
            object.__setattr__(self, "local_size", ls)

    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        return len(self.global_size)

    @property
    def work_items(self) -> int:
        """Total number of work items."""
        return math.prod(self.global_size)

    @property
    def effective_local_size(self) -> tuple[int, ...]:
        """The local size, with the runtime default applied if unset."""
        if self.local_size is not None:
            return self.local_size
        inner = min(64, self.global_size[-1])
        # shrink until it divides the innermost dimension
        while self.global_size[-1] % inner != 0:
            inner -= 1
        return (1,) * (self.dimensions - 1) + (max(inner, 1),)

    @property
    def work_groups(self) -> int:
        """Number of work groups dispatched."""
        ls = self.effective_local_size
        return math.prod(g // l for g, l in zip(self.global_size, ls))

    @property
    def group_shape(self) -> tuple[int, ...]:
        """Work groups per dimension."""
        ls = self.effective_local_size
        return tuple(g // l for g, l in zip(self.global_size, ls))

    # ------------------------------------------------------------------
    def global_ids(self):
        """Iterate all global ids in row-major order.

        Only used by the per-work-item execution adapter (tests and
        reference kernels); the production kernels are vectorised.
        """
        return itertools.product(*(range(g) for g in self.global_size))

    def group_ids(self):
        """Iterate all work-group ids in row-major order."""
        return itertools.product(*(range(n) for n in self.group_shape))


def ndrange(*global_size: int, local_size: tuple[int, ...] | None = None) -> NDRange:
    """Convenience constructor: ``ndrange(1024)`` or ``ndrange(64, 64)``."""
    return NDRange(tuple(global_size), local_size)
