"""Programs and kernels.

In real OpenCL a program is built from C source; here a program is
built from :class:`KernelSource` records, each pairing a Python
function (the kernel body, operating on the buffers' backing arrays)
with a workload characterization used by the timing model.

Kernel bodies receive ``(ndrange, *args)`` where buffer arguments have
been resolved to their numpy arrays.  The production dwarf kernels are
vectorised whole-range functions; :func:`work_item_kernel` adapts a
scalar per-work-item function to the same calling convention for
semantically faithful (if slow) execution in tests and references.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass
from typing import Callable

from ..perfmodel.characterization import KernelProfile
from .clsource import CLSourceError, check_scalar_argument
from .context import Context
from .errors import BuildProgramFailure, InvalidKernelArgs, InvalidValue
from .memory import Buffer
from .ndrange import NDRange

#: Type of a kernel body: fn(nd, *resolved_args) -> None
KernelBody = Callable[..., None]

#: A profile may be static or computed from (nd, *resolved_args).
ProfileSource = KernelProfile | Callable[..., KernelProfile] | None


@dataclass(frozen=True)
class KernelSource:
    """One kernel within a program: body + workload characterization.

    ``cl_source`` optionally carries the kernel's OpenCL C source; the
    build step parses it and the queue checks bound-argument counts
    against the ``__kernel`` signature (see :mod:`repro.ocl.clsource`).
    """

    name: str
    body: KernelBody
    profile: ProfileSource = None
    cl_source: str | None = None


class Program:
    """A collection of kernels built for one context."""

    def __init__(self, context: Context, kernels: list[KernelSource]):
        self.context = context
        self._sources = list(kernels)
        self._built = False
        self.build_log = ""
        #: Kernel instances created from this program (the lint pass
        #: inspects their bound arguments against parsed signatures).
        self._kernels: list["Kernel"] = []

    def build(self, options: str = "") -> "Program":
        """Validate the program (``clBuildProgram``).

        Kernels carrying OpenCL C source have it parsed here: a Python
        body whose name has no matching ``__kernel`` fails the build.
        """
        from .clsource import CLSourceError, parse_kernels

        names = [k.name for k in self._sources]
        if not names:
            raise BuildProgramFailure("program contains no kernels")
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise BuildProgramFailure(f"duplicate kernel names: {sorted(dupes)}")
        self._signatures = {}
        for src in self._sources:
            if not callable(src.body):
                raise BuildProgramFailure(f"kernel {src.name!r} body is not callable")
            if src.cl_source is not None:
                try:
                    parsed = parse_kernels(src.cl_source)
                except CLSourceError as exc:
                    raise BuildProgramFailure(
                        f"kernel {src.name!r}: bad OpenCL C source: {exc}"
                    ) from exc
                if src.name not in parsed:
                    raise BuildProgramFailure(
                        f"kernel {src.name!r} has no matching __kernel in its "
                        f"OpenCL C source (found: {sorted(parsed)})"
                    )
                self._signatures[src.name] = parsed[src.name]
        self._built = True
        self.build_log = (
            f"Build succeeded for {len(names)} kernel(s) on "
            f"{self.context.device.name} (options: {options or 'none'})"
        )
        self.context._register_program(self)
        return self

    @property
    def kernel_names(self) -> tuple[str, ...]:
        return tuple(k.name for k in self._sources)

    def create_kernel(self, name: str) -> "Kernel":
        """Instantiate a kernel by name (``clCreateKernel``)."""
        if not self._built:
            raise BuildProgramFailure("program must be built before creating kernels")
        for src in self._sources:
            if src.name == name:
                kernel = Kernel(self, src)
                self._kernels.append(kernel)
                return kernel
        raise InvalidValue(
            f"no kernel named {name!r}; program has {self.kernel_names}"
        )

    def all_kernels(self) -> dict[str, "Kernel"]:
        """Instantiate every kernel in the program."""
        return {name: self.create_kernel(name) for name in self.kernel_names}


class Kernel:
    """An invocable kernel with positional argument slots."""

    def __init__(self, program: Program, source: KernelSource):
        self.program = program
        self.source = source
        self.signature = getattr(program, "_signatures", {}).get(source.name)
        self._args: list | None = None

    @property
    def name(self) -> str:
        return self.source.name

    @property
    def context(self) -> Context:
        return self.program.context

    # ------------------------------------------------------------------
    def _validate_arg(self, index: int, value) -> None:
        """Check a bound scalar value against the parsed C parameter.

        Only *scalar* (non-pointer) parameters are validated, and only
        when the kernel carries a parsed OpenCL C signature; extra args
        beyond the signature's arity are left for the arity check at
        enqueue (which names the kernel in its error).
        """
        if self.signature is None or index >= self.signature.arity:
            return
        param = self.signature.params[index]
        if param.is_pointer:
            return
        if isinstance(value, Buffer):
            raise CLSourceError(
                f"kernel {self.name!r} argument {index} ({param.name!r}): a "
                f"Buffer was bound to scalar parameter of type "
                f"{param.type_name!r}"
            )
        check_scalar_argument(self.name, param, index, value)

    def set_args(self, *args) -> "Kernel":
        """Bind all kernel arguments at once."""
        for i, value in enumerate(args):
            self._validate_arg(i, value)
        self._args = list(args)
        return self

    def set_arg(self, index: int, value) -> "Kernel":
        """Bind a single argument slot (``clSetKernelArg``)."""
        self._validate_arg(index, value)
        if self._args is None:
            self._args = []
        while len(self._args) <= index:
            self._args.append(_UNSET)
        self._args[index] = value
        return self

    # ------------------------------------------------------------------
    def resolved_args(self) -> list:
        """Arguments with buffers replaced by their backing arrays.

        When the kernel carries a parsed OpenCL C signature, the bound
        argument count is checked against it (the class of host/kernel
        mismatch behind the silent wrong answers the paper curated out).
        """
        if self._args is None:
            raise InvalidKernelArgs(f"kernel {self.name!r} launched with no arguments set")
        if self.signature is not None and len(self._args) != self.signature.arity:
            raise InvalidKernelArgs(
                f"kernel {self.name!r} takes {self.signature.arity} arguments "
                f"per its OpenCL C signature, but {len(self._args)} were bound"
            )
        resolved = []
        for i, a in enumerate(self._args):
            if a is _UNSET:
                raise InvalidKernelArgs(f"kernel {self.name!r} argument {i} was never set")
            if isinstance(a, Buffer):
                if a.context is not self.context:
                    raise InvalidKernelArgs(
                        f"kernel {self.name!r} argument {i} is a buffer from a "
                        "different context"
                    )
                resolved.append(a.array)
            else:
                resolved.append(a)
        return resolved

    def resolve_profile(self, nd: NDRange, resolved_args: list) -> KernelProfile:
        """The workload characterization for this launch."""
        src = self.source.profile
        if src is None:
            # Unknown workload: model only the launch overhead.
            return KernelProfile(
                name=self.name,
                flops=0.0,
                int_ops=0.0,
                bytes_read=0.0,
                bytes_written=0.0,
                working_set_bytes=0.0,
                work_items=nd.work_items,
                work_groups=nd.work_groups,
            )
        if isinstance(src, KernelProfile):
            return src
        return src(nd, *resolved_args)

    def __repr__(self) -> str:
        nargs = "unset" if self._args is None else str(len(self._args))
        return f"<Kernel {self.name!r} args={nargs}>"


class _Unset:
    def __repr__(self):
        return "<unset kernel arg>"


_UNSET = _Unset()


# ---------------------------------------------------------------------------
# Per-work-item execution tracking.
#
# The runtime sanitizer attributes memory accesses to the work item that
# made them, which is only meaningful under the scalar adapter below
# (vectorised kernel bodies act as a single whole-range actor).  The
# adapter publishes the current work item's identity through a context
# variable while tracking is enabled; the shadow-memory guards read it.


class WorkItemState:
    """Identity of the work item currently executing under the adapter.

    ``epoch`` counts :func:`work_group_barrier` calls made by this work
    item so far: accesses separated by a barrier are ordered within a
    work group and therefore cannot race.
    """

    __slots__ = ("gid", "group", "epoch")

    def __init__(self):
        self.gid = None
        self.group = None
        self.epoch = 0


_current_work_item: contextvars.ContextVar[WorkItemState | None] = (
    contextvars.ContextVar("current_work_item", default=None)
)

#: Tracking is enabled while at least one sanitizer session is active;
#: a plain module-level counter keeps the unsanitized fast path free of
#: contextvar lookups.
_tracking_depth = 0


def enable_work_item_tracking() -> None:
    """Start publishing work-item identity from the scalar adapter."""
    global _tracking_depth
    _tracking_depth += 1


def disable_work_item_tracking() -> None:
    global _tracking_depth
    _tracking_depth = max(0, _tracking_depth - 1)


def work_item_tracking_enabled() -> bool:
    return _tracking_depth > 0


def current_work_item() -> WorkItemState | None:
    """The executing work item, or ``None`` outside tracked execution."""
    return _current_work_item.get()


def work_group_barrier() -> None:
    """``barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE)`` analogue.

    Under the sequential scalar adapter a barrier has no scheduling
    effect; its purpose here is to advance the sanitizer's barrier
    epoch so that accesses on opposite sides of the barrier are treated
    as ordered within a work group.  A no-op outside tracked execution.
    """
    state = _current_work_item.get()
    if state is not None:
        state.epoch += 1


def work_item_kernel(scalar_fn: Callable) -> KernelBody:
    """Adapt a per-work-item function to the kernel calling convention.

    ``scalar_fn(gid, *args)`` is invoked once per global id, mimicking
    OpenCL's execution model exactly.  Intended for reference kernels
    and semantics tests — production kernels are vectorised.
    """

    def body(nd: NDRange, *args) -> None:
        if _tracking_depth:
            ls = nd.effective_local_size
            state = WorkItemState()
            token = _current_work_item.set(state)
            try:
                for gid in nd.global_ids():
                    state.gid = gid if nd.dimensions > 1 else gid[0]
                    state.group = tuple(g // l for g, l in zip(gid, ls))
                    state.epoch = 0
                    scalar_fn(state.gid, *args)
            finally:
                _current_work_item.reset(token)
        else:
            for gid in nd.global_ids():
                scalar_fn(gid if nd.dimensions > 1 else gid[0], *args)

    body.__name__ = getattr(scalar_fn, "__name__", "work_item_kernel")
    return body
