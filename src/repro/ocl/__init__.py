"""Simulated OpenCL 1.2 runtime.

Functional execution of kernels (numpy-backed buffers, real results)
with modeled timing (analytic performance model, profiling events).
The host API mirrors the subset of OpenCL the Extended OpenDwarfs
benchmarks use::

    from repro import ocl

    device = ocl.find_device("i7-6700K")
    ctx = ocl.Context(device)
    queue = ocl.CommandQueue(ctx)
    buf = ctx.buffer_like(np.zeros(1024, np.float32))
    program = ocl.Program(ctx, [ocl.KernelSource("scale", body, profile)]).build()
    kernel = program.create_kernel("scale").set_args(buf, np.float32(2.0))
    event = queue.enqueue_nd_range_kernel(kernel, (1024,))
    print(event.duration_s)
"""

from .clsource import (
    CLKernelSignature,
    CLParam,
    CLSourceError,
    check_scalar_argument,
    kernel_bodies,
    kernel_suppressions,
    parse_kernels,
    scalar_kind,
)
from .context import Context
from .device import Device
from .errors import (
    BuildProgramFailure,
    CLError,
    DeviceNotFound,
    InvalidCommandQueue,
    InvalidContext,
    InvalidDevice,
    InvalidKernelArgs,
    InvalidMemObject,
    InvalidValue,
    InvalidWorkGroupSize,
    MemObjectAllocationFailure,
    OutOfResources,
    ProfilingInfoNotAvailable,
)
from .event import Event
from .memory import Buffer, SubBuffer
from .ndrange import MAX_WORK_GROUP_SIZE, NDRange, ndrange
from .platform import Platform, TYPE_FLAG, find_device, get_platforms, select_device
from .program import (
    Kernel,
    KernelSource,
    Program,
    current_work_item,
    disable_work_item_tracking,
    enable_work_item_tracking,
    work_group_barrier,
    work_item_kernel,
    work_item_tracking_enabled,
)
from .queue import CommandQueue, ENQUEUE_OVERHEAD_NS
from .types import (
    CommandExecutionStatus,
    CommandType,
    DeviceType,
    MemFlags,
    ProfilingInfo,
    QueueProperties,
)

__all__ = [
    "CLKernelSignature",
    "CLParam",
    "CLSourceError",
    "check_scalar_argument",
    "kernel_bodies",
    "kernel_suppressions",
    "parse_kernels",
    "scalar_kind",
    "Buffer",
    "SubBuffer",
    "BuildProgramFailure",
    "CLError",
    "CommandExecutionStatus",
    "CommandQueue",
    "CommandType",
    "Context",
    "Device",
    "DeviceNotFound",
    "DeviceType",
    "ENQUEUE_OVERHEAD_NS",
    "Event",
    "InvalidCommandQueue",
    "InvalidContext",
    "InvalidDevice",
    "InvalidKernelArgs",
    "InvalidMemObject",
    "InvalidValue",
    "InvalidWorkGroupSize",
    "Kernel",
    "KernelSource",
    "MAX_WORK_GROUP_SIZE",
    "MemFlags",
    "MemObjectAllocationFailure",
    "NDRange",
    "OutOfResources",
    "Platform",
    "Program",
    "ProfilingInfo",
    "ProfilingInfoNotAvailable",
    "QueueProperties",
    "TYPE_FLAG",
    "current_work_item",
    "disable_work_item_tracking",
    "enable_work_item_tracking",
    "find_device",
    "get_platforms",
    "ndrange",
    "select_device",
    "work_group_barrier",
    "work_item_kernel",
    "work_item_tracking_enabled",
]
