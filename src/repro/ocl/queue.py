"""Command queues: execution, ordering and modeled timing.

The queue is where the functional simulation (kernels really execute,
buffers really move bytes) meets the performance model (every command
is assigned a duration from :mod:`repro.perfmodel` and stamped onto a
monotonically advancing simulated device clock).

Commands execute synchronously in enqueue order (in-order queue, which
is all OpenDwarfs uses), but event dependencies are still honoured for
start-time computation so profiling timelines are consistent.
"""

from __future__ import annotations

import numpy as np

from ..perfmodel import kernel_energy, kernel_time, noisy_samples, transfer_time_s
from ..telemetry.hooks import EventBus, GLOBAL_EVENT_BUS
from ..telemetry.metrics import default_registry
from .context import Context
from .errors import InvalidCommandQueue, InvalidContext, InvalidMemObject, InvalidValue
from .event import Event
from .memory import Buffer
from .ndrange import NDRange
from .program import Kernel
from .types import CommandExecutionStatus, CommandType, QueueProperties

#: Host-side cost of enqueueing a command before it is submitted to the
#: device, ns (argument marshalling, command buffer append).
ENQUEUE_OVERHEAD_NS = 1_500


class CommandQueue:
    """An in-order command queue with profiling.

    Parameters
    ----------
    context:
        The owning context; the queue targets its device.
    properties:
        ``PROFILING_ENABLE`` populates event timestamps (the harness
        always enables it, as LibSciBench requires).
    rng:
        Optional random generator; when given, each command's modeled
        duration is perturbed by the device's timing-noise model so
        repeated launches scatter like real measurements.
    """

    def __init__(
        self,
        context: Context,
        properties: QueueProperties = QueueProperties.PROFILING_ENABLE,
        rng: np.random.Generator | None = None,
    ):
        self.context = context
        self.device = context.device
        self.properties = properties
        self.rng = rng
        #: Simulated device clock, ns.  Starts nonzero so that a zero
        #: timestamp always means "not recorded".
        self.device_time_ns = 1_000
        #: Host-side enqueue clock: when each command was queued.
        self._host_time_ns = 1_000
        #: End of the most recently executed command (in-order chaining).
        self._last_end_ns = 1_000
        self.events: list[Event] = []
        #: Per-queue completed-command hooks (``clSetEventCallback``).
        self.event_bus = EventBus()
        self._released = False
        context._register_queue(self)

    # ------------------------------------------------------------------
    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Release the queue (``clReleaseCommandQueue``).  Idempotent.

        Further enqueues raise :class:`InvalidCommandQueue`; recorded
        events remain readable (profiling outlives the queue handle in
        OpenCL too).
        """
        self._released = True

    def _check_queue_alive(self) -> None:
        if self._released:
            raise InvalidCommandQueue(
                f"command queue on {self.device.name} has been released"
            )

    @property
    def profiling_enabled(self) -> bool:
        return QueueProperties.PROFILING_ENABLE in self.properties

    def _duration_with_noise_ns(self, nominal_s: float) -> int:
        if self.rng is not None:
            nominal_s = float(
                noisy_samples(self.device.spec, nominal_s, 1, self.rng)[0]
            )
        return max(int(round(nominal_s * 1e9)), 1)

    @property
    def out_of_order(self) -> bool:
        return QueueProperties.OUT_OF_ORDER_EXEC_MODE_ENABLE in self.properties

    def _record(
        self,
        command_type: CommandType,
        duration_ns: int,
        wait_for: list[Event] | None,
        info: dict,
    ) -> Event:
        self._check_queue_alive()
        queued = self._host_time_ns
        self._host_time_ns += ENQUEUE_OVERHEAD_NS
        submit = queued + ENQUEUE_OVERHEAD_NS
        start = submit
        if not self.out_of_order:
            # in-order queues serialise behind the previous command
            start = max(start, self._last_end_ns)
        if wait_for:
            for dep in wait_for:
                dep.wait()
                start = max(start, dep.end_ns)
        end = start + duration_ns
        self._last_end_ns = end
        # the device clock reads as the completion time of the latest-
        # finishing command (out-of-order commands may overlap)
        self.device_time_ns = max(self.device_time_ns, end)
        event = Event(
            command_type=command_type,
            queued_ns=queued,
            submit_ns=submit,
            start_ns=start,
            end_ns=end,
            status=CommandExecutionStatus.COMPLETE,
            profiling_enabled=self.profiling_enabled,
            info=info,
        )
        self.events.append(event)

        registry = default_registry()
        registry.counter(
            "ocl_commands_enqueued_total",
            "Commands enqueued on simulated command queues",
        ).inc(command=command_type.value, device=self.device.name)
        moved = info.get("bytes")
        if moved:
            registry.counter(
                "ocl_bytes_moved_total",
                "Bytes moved by buffer read/write/copy/fill commands",
            ).inc(moved, command=command_type.value, device=self.device.name)

        # Completion hooks, cheapest-scope first.  Each publish returns
        # immediately when its bus has no subscribers.
        self.event_bus.publish(self, event)
        self.context.event_bus.publish(self, event)
        GLOBAL_EVENT_BUS.publish(self, event)
        return event

    # ------------------------------------------------------------------
    def enqueue_nd_range_kernel(
        self,
        kernel: Kernel,
        global_size: tuple[int, ...] | int | NDRange,
        local_size: tuple[int, ...] | None = None,
        wait_for: list[Event] | None = None,
    ) -> Event:
        """Execute a kernel over an NDRange (``clEnqueueNDRangeKernel``)."""
        self._check_queue_alive()
        if kernel.context is not self.context:
            raise InvalidContext("kernel belongs to a different context")
        if isinstance(global_size, NDRange):
            nd = global_size
        else:
            if isinstance(global_size, int):
                global_size = (global_size,)
            nd = NDRange(tuple(global_size), local_size)

        san = self.context.sanitizer
        try:
            resolved = kernel.resolved_args()
        except InvalidMemObject as exc:
            if san is not None:
                san.on_use_after_release(kernel, exc)
            raise
        profile = kernel.resolve_profile(nd, resolved)
        breakdown = kernel_time(self.device.spec, profile)
        energy = kernel_energy(self.device.spec, breakdown)

        # Functional execution: the kernel body mutates buffer storage.
        # Under an attached sanitizer buffer arrays are swapped for
        # shadow-memory guard views, and a guard-raised IndexError
        # aborts the kernel but not the analysis run.
        if san is None:
            kernel.source.body(nd, *resolved)
        else:
            exec_args = san.wrap_args(kernel, nd, kernel._args, resolved)
            try:
                kernel.source.body(nd, *exec_args)
            except IndexError as exc:
                san.on_kernel_abort(kernel, nd, exc)
            finally:
                san.after_kernel(kernel, nd)

        duration_ns = self._duration_with_noise_ns(breakdown.total_s)
        return self._record(
            CommandType.ND_RANGE_KERNEL,
            duration_ns,
            wait_for,
            info={
                "kernel": kernel.name,
                "n_args": len(resolved),
                "work_items": nd.work_items,
                "work_groups": nd.work_groups,
                "profile": profile,
                "breakdown": breakdown,
                "energy_j": energy.energy_j,
                "mean_power_w": energy.mean_power_w,
            },
        )

    # ------------------------------------------------------------------
    def _check_buffer(self, buf: Buffer) -> None:
        if not isinstance(buf, Buffer):
            raise InvalidValue(f"expected a Buffer, got {type(buf)!r}")
        if buf.context is not self.context:
            raise InvalidContext("buffer belongs to a different context")

    def enqueue_write_buffer(
        self, buf: Buffer, src: np.ndarray, wait_for: list[Event] | None = None
    ) -> Event:
        """Copy host data into a device buffer (``clEnqueueWriteBuffer``)."""
        self._check_buffer(buf)
        # READ_ONLY restricts *kernel* writes; host writes are how
        # read-only inputs get their data, so only aliveness is checked.
        buf._check_alive()
        if src.nbytes != buf.size:
            raise InvalidValue(
                f"host array of {src.nbytes} bytes does not match buffer of {buf.size}"
            )
        dst = buf.array
        np.copyto(dst.view(np.uint8).reshape(-1), src.view(np.uint8).reshape(-1))
        if self.context.sanitizer is not None:
            self.context.sanitizer.on_host_write(buf)
        duration = transfer_time_s(self.device.spec, buf.size)
        return self._record(
            CommandType.WRITE_BUFFER,
            self._duration_with_noise_ns(duration),
            wait_for,
            info={"bytes": buf.size},
        )

    def enqueue_read_buffer(
        self, buf: Buffer, dest: np.ndarray, wait_for: list[Event] | None = None
    ) -> Event:
        """Copy device data back to the host (``clEnqueueReadBuffer``)."""
        self._check_buffer(buf)
        buf._check_readable()
        if dest.nbytes != buf.size:
            raise InvalidValue(
                f"host array of {dest.nbytes} bytes does not match buffer of {buf.size}"
            )
        if self.context.sanitizer is not None:
            self.context.sanitizer.on_host_read(buf)
        np.copyto(dest.view(np.uint8).reshape(-1), buf.array.view(np.uint8).reshape(-1))
        duration = transfer_time_s(self.device.spec, buf.size)
        return self._record(
            CommandType.READ_BUFFER,
            self._duration_with_noise_ns(duration),
            wait_for,
            info={"bytes": buf.size},
        )

    def enqueue_copy_buffer(
        self, src: Buffer, dst: Buffer, wait_for: list[Event] | None = None
    ) -> Event:
        """Device-to-device copy (``clEnqueueCopyBuffer``)."""
        self._check_buffer(src)
        self._check_buffer(dst)
        if src.size != dst.size:
            raise InvalidValue(f"buffer sizes differ: {src.size} vs {dst.size}")
        np.copyto(
            dst.array.view(np.uint8).reshape(-1), src.array.view(np.uint8).reshape(-1)
        )
        if self.context.sanitizer is not None:
            self.context.sanitizer.on_host_read(src)
            self.context.sanitizer.on_host_write(dst)
        # On-device copies run at memory bandwidth (read + write).
        bw = self.device.spec.memory.bandwidth_gbs * 1e9
        duration = 2 * src.size / bw
        return self._record(
            CommandType.COPY_BUFFER,
            self._duration_with_noise_ns(duration),
            wait_for,
            info={"bytes": src.size},
        )

    def enqueue_fill_buffer(
        self, buf: Buffer, value: int, wait_for: list[Event] | None = None
    ) -> Event:
        """Pattern-fill a buffer (``clEnqueueFillBuffer``, byte pattern)."""
        self._check_buffer(buf)
        buf.array.view(np.uint8)[...] = np.uint8(value)
        if self.context.sanitizer is not None:
            self.context.sanitizer.on_host_write(buf)
        bw = self.device.spec.memory.bandwidth_gbs * 1e9
        return self._record(
            CommandType.FILL_BUFFER,
            self._duration_with_noise_ns(buf.size / bw),
            wait_for,
            info={"bytes": buf.size, "value": value},
        )

    # ------------------------------------------------------------------
    def enqueue_marker(self, wait_for: list[Event] | None = None) -> Event:
        """A zero-duration marker event."""
        return self._record(CommandType.MARKER, 1, wait_for, info={})

    def enqueue_barrier(self) -> Event:
        """A barrier; trivially complete on an in-order queue."""
        return self._record(CommandType.BARRIER, 1, None, info={})

    def flush(self) -> None:
        """No-op: commands are submitted eagerly."""

    def finish(self) -> None:
        """Block until all commands complete (they already have)."""
        for event in self.events:
            event.wait()

    # ------------------------------------------------------------------
    def kernel_events(self) -> list[Event]:
        """All kernel-execution events, in order."""
        return [e for e in self.events if e.command_type == CommandType.ND_RANGE_KERNEL]

    def total_kernel_time_s(self) -> float:
        """Sum of device time across all kernel events (paper §5.1)."""
        return sum(e.duration_s for e in self.kernel_events())

    def total_kernel_energy_j(self) -> float:
        """Sum of modeled energy across all kernel events."""
        return sum(e.info.get("energy_j", 0.0) for e in self.kernel_events())

    def reset_events(self) -> None:
        """Forget recorded events (between harness iterations)."""
        self.events.clear()
