"""Core enumerations and flag types for the simulated OpenCL runtime.

The names and semantics mirror the OpenCL 1.2 C API closely enough that
host code written against this module reads like host code written
against ``pyopencl``.  Only the subset exercised by the Extended
OpenDwarfs benchmarks is implemented.
"""

from __future__ import annotations

import enum


class DeviceType(enum.Flag):
    """Bitfield identifying the class of a compute device.

    Mirrors ``cl_device_type``.  ``ACCELERATOR`` covers MIC-style devices
    such as the Xeon Phi (Knights Landing).
    """

    DEFAULT = enum.auto()
    CPU = enum.auto()
    GPU = enum.auto()
    ACCELERATOR = enum.auto()
    CUSTOM = enum.auto()
    ALL = CPU | GPU | ACCELERATOR | CUSTOM


class MemFlags(enum.Flag):
    """Buffer allocation / usage flags (``cl_mem_flags``)."""

    READ_WRITE = enum.auto()
    WRITE_ONLY = enum.auto()
    READ_ONLY = enum.auto()
    USE_HOST_PTR = enum.auto()
    ALLOC_HOST_PTR = enum.auto()
    COPY_HOST_PTR = enum.auto()


class CommandType(enum.Enum):
    """The kind of command enqueued onto a :class:`CommandQueue`."""

    ND_RANGE_KERNEL = "ndrange_kernel"
    TASK = "task"
    READ_BUFFER = "read_buffer"
    WRITE_BUFFER = "write_buffer"
    COPY_BUFFER = "copy_buffer"
    FILL_BUFFER = "fill_buffer"
    MARKER = "marker"
    BARRIER = "barrier"


class CommandExecutionStatus(enum.IntEnum):
    """Event status values, ordered as in OpenCL (``CL_COMPLETE`` == 0)."""

    COMPLETE = 0
    RUNNING = 1
    SUBMITTED = 2
    QUEUED = 3


class ProfilingInfo(enum.Enum):
    """Keys for :meth:`Event.get_profiling_info` (``cl_profiling_info``)."""

    QUEUED = "queued"
    SUBMIT = "submit"
    START = "start"
    END = "end"


class QueueProperties(enum.Flag):
    """Command-queue creation properties."""

    NONE = 0
    OUT_OF_ORDER_EXEC_MODE_ENABLE = enum.auto()
    PROFILING_ENABLE = enum.auto()


# Resolution of the simulated device timer, in nanoseconds.  LibSciBench
# advertises one-cycle resolution with ~6 ns overhead; we model the
# profiling clock with 1 ns granularity.
PROFILING_TIMER_RESOLUTION_NS = 1

# Memory base address alignment, in bits, reported by all simulated
# devices (matches common OpenCL implementations).
MEM_BASE_ADDR_ALIGN_BITS = 1024
