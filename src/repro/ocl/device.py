"""Runtime device objects.

A :class:`Device` is the runtime-facing wrapper around a static
:class:`~repro.devices.DeviceSpec`: it answers ``clGetDeviceInfo``-style
queries and is what contexts and queues are created against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.specs import DeviceSpec
from .errors import InvalidValue
from .ndrange import MAX_WORK_GROUP_SIZE
from .types import DeviceType, MEM_BASE_ADDR_ALIGN_BITS, PROFILING_TIMER_RESOLUTION_NS


@dataclass(frozen=True)
class Device:
    """A compute device visible through a platform."""

    spec: DeviceSpec
    #: Index of this device within its platform (the ``-d`` argument).
    index: int = 0
    platform_name: str = ""
    extra_info: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def device_type(self) -> DeviceType:
        return self.spec.device_type

    @property
    def global_mem_size(self) -> int:
        """Global memory capacity in bytes."""
        return self.spec.memory.size_mib * 1024 * 1024

    @property
    def max_compute_units(self) -> int:
        return self.spec.core_count

    @property
    def max_clock_frequency_mhz(self) -> int:
        return self.spec.clock_max_mhz

    def get_info(self, param: str):
        """Answer a ``clGetDeviceInfo`` query by parameter name.

        Supports the parameter subset the benchmarks interrogate.
        Unknown parameters raise :class:`InvalidValue`, as the C API
        returns ``CL_INVALID_VALUE``.
        """
        table = {
            "CL_DEVICE_NAME": self.name,
            "CL_DEVICE_VENDOR": self.spec.vendor.value,
            "CL_DEVICE_TYPE": self.device_type,
            "CL_DEVICE_MAX_COMPUTE_UNITS": self.max_compute_units,
            "CL_DEVICE_MAX_CLOCK_FREQUENCY": self.max_clock_frequency_mhz,
            "CL_DEVICE_GLOBAL_MEM_SIZE": self.global_mem_size,
            "CL_DEVICE_MAX_WORK_GROUP_SIZE": MAX_WORK_GROUP_SIZE,
            "CL_DEVICE_MEM_BASE_ADDR_ALIGN": MEM_BASE_ADDR_ALIGN_BITS,
            "CL_DEVICE_PROFILING_TIMER_RESOLUTION": PROFILING_TIMER_RESOLUTION_NS,
            "CL_DEVICE_VERSION": self.spec.opencl_driver,
            "CL_DEVICE_GLOBAL_MEM_CACHE_SIZE": self.spec.last_level_cache.size_bytes,
            "CL_DEVICE_GLOBAL_MEM_CACHELINE_SIZE": self.spec.caches[0].line_bytes,
        }
        try:
            return table[param]
        except KeyError:
            raise InvalidValue(f"unknown device info parameter {param!r}") from None
