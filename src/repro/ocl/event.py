"""Events with OpenCL-style profiling timestamps.

Every enqueued command yields an :class:`Event` carrying four
nanosecond timestamps on the simulated device clock — QUEUED, SUBMIT,
START, END — exactly the quadruple LibSciBench harvests via
``clGetEventProfilingInfo``.  The paper's per-region analysis (kernel
construction and buffer enqueue overheads, §6) falls out of the deltas
between these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ProfilingInfoNotAvailable
from .types import CommandExecutionStatus, CommandType, ProfilingInfo


@dataclass
class Event:
    """Completion/profiling handle for one enqueued command."""

    command_type: CommandType
    #: Timestamps in ns on the device clock; None until reached.
    queued_ns: int | None = None
    submit_ns: int | None = None
    start_ns: int | None = None
    end_ns: int | None = None
    status: CommandExecutionStatus = CommandExecutionStatus.QUEUED
    #: Whether the owning queue had PROFILING_ENABLE set.
    profiling_enabled: bool = True
    #: Free-form details the runtime attaches (kernel name, bytes moved).
    info: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def wait(self) -> None:
        """Block until the command completes.

        The simulated queue executes commands synchronously, so a
        created event is always complete; ``wait`` just validates that.
        """
        if self.status != CommandExecutionStatus.COMPLETE:
            raise RuntimeError(
                f"event for {self.command_type.value} never completed "
                f"(status={self.status.name})"
            )

    def get_profiling_info(self, param: ProfilingInfo) -> int:
        """Return the requested timestamp in ns (``clGetEventProfilingInfo``)."""
        if not self.profiling_enabled:
            raise ProfilingInfoNotAvailable(
                "queue was created without QueueProperties.PROFILING_ENABLE"
            )
        value = {
            ProfilingInfo.QUEUED: self.queued_ns,
            ProfilingInfo.SUBMIT: self.submit_ns,
            ProfilingInfo.START: self.start_ns,
            ProfilingInfo.END: self.end_ns,
        }[param]
        if value is None:
            raise ProfilingInfoNotAvailable(
                f"{param.value} timestamp not yet available "
                f"(status={self.status.name})"
            )
        return value

    # ------------------------------------------------------------------
    @property
    def duration_ns(self) -> int:
        """START->END device time, the paper's "kernel execution time"."""
        return self.get_profiling_info(ProfilingInfo.END) - self.get_profiling_info(
            ProfilingInfo.START
        )

    @property
    def duration_s(self) -> float:
        return self.duration_ns * 1e-9

    @property
    def queue_delay_ns(self) -> int:
        """QUEUED->START: runtime overhead before execution begins."""
        return self.get_profiling_info(ProfilingInfo.START) - self.get_profiling_info(
            ProfilingInfo.QUEUED
        )
