"""Control-flow graphs and dataflow checks over the kernel AST.

Second stage of the kernel IR pipeline: each :class:`KernelDef` from
:mod:`repro.analysis.frontend` is lowered to a per-statement CFG with
ENTRY/EXIT nodes, on which the module computes dominators,
post-dominators, reachability, and an *exact* barrier-divergence
analysis.

Barrier divergence is decided by control dependence rather than the
PR 3 regex heuristic: a node is *divergently executed* iff it is
control-dependent on a branch whose condition is work-item dependent
(tainted by ``get_global_id``/``get_local_id``/``get_group_id`` or by a
memory load), or on a branch that is itself divergently executed.  A
``barrier()`` that post-dominates both arms of a divergent ``if`` — the
``nw_diagonal`` pattern — is therefore correctly accepted, while a
barrier *inside* the divergent arm is flagged.

The module also hosts the AST-level dataflow checks that need no
abstract domains: definite-assignment (``uninit-local-var``),
constant-index bounds (``constant-index-oob``) and AST use-def for
``unused-param``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .frontend import (
    Assign,
    Bin,
    Block,
    Call,
    Cast,
    Cond,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Ident,
    If,
    Index,
    IntLit,
    KernelDef,
    Member,
    Paren,
    Return,
    Stmt,
    StrLit,
    Unary,
    VectorCtor,
    While,
)

#: Built-ins whose value differs between work items of one work group.
WORK_ITEM_FUNCS = frozenset({
    "get_global_id", "get_local_id", "get_group_id",
})

#: Built-ins that are uniform across a work group.
UNIFORM_FUNCS = frozenset({
    "get_global_size", "get_local_size", "get_num_groups",
    "get_work_dim", "get_global_offset",
})


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------


@dataclass
class CFGNode:
    """One CFG node: a statement, a branch condition, or ENTRY/EXIT."""

    id: int
    kind: str  # "entry" | "exit" | "stmt" | "branch"
    stmt: Stmt | None = None
    expr: Expr | None = None  # the condition, for branch nodes
    line: int = 0
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


class CFG:
    """A kernel's control-flow graph with ENTRY (id 0) and EXIT (id 1)."""

    def __init__(self, kernel: KernelDef) -> None:
        self.kernel = kernel
        self.nodes: list[CFGNode] = [
            CFGNode(id=0, kind="entry"),
            CFGNode(id=1, kind="exit"),
        ]
        fringe = self._build_stmts(kernel.body.stmts, {0})
        for node_id in fringe:
            self._edge(node_id, 1)

    # -- construction ---------------------------------------------------
    def _new(self, kind: str, stmt: Stmt | None = None,
             expr: Expr | None = None, line: int = 0) -> int:
        node = CFGNode(id=len(self.nodes), kind=kind, stmt=stmt,
                       expr=expr, line=line)
        self.nodes.append(node)
        return node.id

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def _build_stmts(self, stmts: list[Stmt], fringe: set[int]) -> set[int]:
        """Lower a statement list; returns the fall-through fringe."""
        for stmt in stmts:
            fringe = self._build_stmt(stmt, fringe)
        return fringe

    def _build_stmt(self, stmt: Stmt, fringe: set[int]) -> set[int]:
        if isinstance(stmt, Block):
            return self._build_stmts(stmt.stmts, fringe)
        if isinstance(stmt, (Decl, ExprStmt)):
            node = self._new("stmt", stmt=stmt, line=stmt.line)
            for p in fringe:
                self._edge(p, node)
            return {node}
        if isinstance(stmt, Return):
            node = self._new("stmt", stmt=stmt, line=stmt.line)
            for p in fringe:
                self._edge(p, node)
            self._edge(node, 1)
            return set()
        if isinstance(stmt, If):
            cond = self._new("branch", stmt=stmt, expr=stmt.cond,
                             line=stmt.line)
            for p in fringe:
                self._edge(p, cond)
            then_fringe = self._build_stmt(stmt.then, {cond})
            if stmt.orelse is not None:
                else_fringe = self._build_stmt(stmt.orelse, {cond})
            else:
                else_fringe = {cond}
            return then_fringe | else_fringe
        if isinstance(stmt, For):
            if stmt.init is not None:
                fringe = self._build_stmt(stmt.init, fringe)
            cond = self._new("branch", stmt=stmt, expr=stmt.cond,
                             line=stmt.line)
            for p in fringe:
                self._edge(p, cond)
            body_fringe = self._build_stmt(stmt.body, {cond})
            if stmt.step is not None:
                step = self._new("stmt",
                                 stmt=ExprStmt(expr=stmt.step,
                                               line=stmt.line),
                                 line=stmt.line)
                for p in body_fringe:
                    self._edge(p, step)
                body_fringe = {step}
            for p in body_fringe:
                self._edge(p, cond)  # back edge
            # the false edge falls through; an omitted condition means
            # the loop only exits via return
            return {cond} if stmt.cond is not None else set()
        if isinstance(stmt, While):
            cond = self._new("branch", stmt=stmt, expr=stmt.cond,
                             line=stmt.line)
            for p in fringe:
                self._edge(p, cond)
            body_fringe = self._build_stmt(stmt.body, {cond})
            for p in body_fringe:
                self._edge(p, cond)
            return {cond}
        raise TypeError(f"unknown statement node {type(stmt).__name__}")

    # -- analyses -------------------------------------------------------
    def reachable(self) -> set[int]:
        """Node ids reachable from ENTRY."""
        seen: set[int] = set()
        stack = [0]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.nodes[node].succs)
        return seen

    def dominators(self) -> dict[int, set[int]]:
        """Iterative dominator sets: ``dom[n]`` contains ``n``."""
        return self._dom_sets(root=0, forward=True)

    def postdominators(self) -> dict[int, set[int]]:
        """Iterative post-dominator sets over the reversed graph."""
        return self._dom_sets(root=1, forward=False)

    def _dom_sets(self, root: int, forward: bool) -> dict[int, set[int]]:
        everything = set(range(len(self.nodes)))
        dom = {n: set(everything) for n in everything}
        dom[root] = {root}
        changed = True
        while changed:
            changed = False
            for node in self.nodes:
                if node.id == root:
                    continue
                edges = node.preds if forward else node.succs
                incoming = [dom[p] for p in edges]
                new = set.intersection(*incoming) if incoming else set()
                new = new | {node.id}
                if new != dom[node.id]:
                    dom[node.id] = new
                    changed = True
        return dom

    def control_dependencies(self) -> dict[int, set[int]]:
        """Map node -> the branch nodes it is control-dependent on.

        ``N`` is control-dependent on branch ``C`` iff ``N``
        post-dominates some successor of ``C`` but does not strictly
        post-dominate ``C`` itself (Ferrante et al.).
        """
        pdom = self.postdominators()
        deps: dict[int, set[int]] = {n.id: set() for n in self.nodes}
        for branch in self.nodes:
            if branch.kind != "branch" or len(branch.succs) < 2:
                continue
            strict = pdom[branch.id] - {branch.id}
            for succ in branch.succs:
                for node_id in range(len(self.nodes)):
                    # N postdominates a successor of C but not C itself
                    if node_id in pdom[succ] and node_id not in strict:
                        deps[node_id].add(branch.id)
        return deps


def build_cfg(kernel: KernelDef) -> CFG:
    """Lower one kernel definition to its control-flow graph."""
    return CFG(kernel)


# ---------------------------------------------------------------------------
# Expression walking helpers
# ---------------------------------------------------------------------------


def walk_expr(expr: Expr | None) -> list[Expr]:
    """Pre-order list of every node in an expression tree."""
    if expr is None:
        return []
    out: list[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, Paren):
            stack.append(node.inner)
        elif isinstance(node, Unary):
            stack.append(node.operand)
        elif isinstance(node, Bin):
            stack.extend((node.lhs, node.rhs))
        elif isinstance(node, Assign):
            stack.extend((node.target, node.value))
        elif isinstance(node, Cond):
            stack.extend((node.cond, node.then, node.other))
        elif isinstance(node, (Call, VectorCtor)):
            stack.extend(node.args)
        elif isinstance(node, Index):
            stack.extend((node.base, node.index))
        elif isinstance(node, Member):
            stack.append(node.base)
        elif isinstance(node, Cast):
            stack.append(node.operand)
    return out


def stmt_exprs(stmt: Stmt) -> list[Expr]:
    """Every expression appearing directly in one statement (not nested
    statements)."""
    if isinstance(stmt, Decl):
        out: list[Expr] = []
        for d in stmt.declarators:
            out.extend(d.array_sizes)
            if d.init is not None:
                out.append(d.init)
        return out
    if isinstance(stmt, ExprStmt):
        return [stmt.expr]
    if isinstance(stmt, Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, For):
        return [e for e in (stmt.cond, stmt.step) if e is not None]
    if isinstance(stmt, While):
        return [stmt.cond]
    return []


def walk_stmts(stmt: Stmt) -> list[Stmt]:
    """Pre-order list of every statement node under ``stmt``."""
    out: list[Stmt] = [stmt]
    if isinstance(stmt, Block):
        for inner in stmt.stmts:
            out.extend(walk_stmts(inner))
    elif isinstance(stmt, If):
        out.extend(walk_stmts(stmt.then))
        if stmt.orelse is not None:
            out.extend(walk_stmts(stmt.orelse))
    elif isinstance(stmt, For):
        if stmt.init is not None:
            out.extend(walk_stmts(stmt.init))
        out.extend(walk_stmts(stmt.body))
    elif isinstance(stmt, While):
        out.extend(walk_stmts(stmt.body))
    return out


def used_names(kernel: KernelDef) -> set[str]:
    """Every identifier the kernel body mentions (AST use-def).

    Unlike the PR 3 regex this cannot be fooled by names inside
    comments or string literals — those never become :class:`Ident`
    nodes.
    """
    names: set[str] = set()
    for stmt in walk_stmts(kernel.body):
        for root in stmt_exprs(stmt):
            for node in walk_expr(root):
                if isinstance(node, Ident):
                    names.add(node.name)
    return names


def _contains_barrier(stmt: Stmt) -> int | None:
    """Line of a ``barrier()`` call directly in this statement, or None."""
    for root in stmt_exprs(stmt):
        for node in walk_expr(root):
            if isinstance(node, Call) and node.func == "barrier":
                return node.line or getattr(stmt, "line", 0)
    return None


# ---------------------------------------------------------------------------
# Divergence analysis
# ---------------------------------------------------------------------------


def _tainted_names(kernel: KernelDef) -> set[str]:
    """Flow-insensitive taint: names whose value may differ per work item.

    Seeds are the work-item id built-ins and memory loads (different
    work items generally load different addresses); taint propagates
    through assignments and declarations to a fixpoint.
    """
    assigns: list[tuple[str, Expr]] = []
    for stmt in walk_stmts(kernel.body):
        if isinstance(stmt, Decl):
            for d in stmt.declarators:
                if d.init is not None:
                    assigns.append((d.name, d.init))
        for root in stmt_exprs(stmt):
            for node in walk_expr(root):
                if isinstance(node, Assign):
                    target = node.target
                    while isinstance(target, Paren):
                        target = target.inner
                    if isinstance(target, Ident):
                        assigns.append((target.name, node.value))

    tainted: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, value in assigns:
            if name not in tainted and expr_tainted(value, tainted):
                tainted.add(name)
                changed = True
    return tainted


def expr_tainted(expr: Expr, tainted: set[str]) -> bool:
    """Whether an expression's value may differ between work items."""
    for node in walk_expr(expr):
        if isinstance(node, Call) and node.func in WORK_ITEM_FUNCS:
            return True
        if isinstance(node, Index):
            return True  # a memory load
        if isinstance(node, Ident) and node.name in tainted:
            return True
        if isinstance(node, Unary) and node.op in ("++", "--"):
            target = node.operand
            while isinstance(target, Paren):
                target = target.inner
            if isinstance(target, Ident) and target.name in tainted:
                return True
    return False


def divergent_barriers(kernel: KernelDef, cfg: CFG | None = None,
                       ) -> list[int]:
    """Lines of barriers reached under divergent control flow (exact).

    Computes the least fixpoint of: *node N is divergently executed iff
    it is control-dependent on a branch C whose condition is tainted,
    or on a branch that is itself divergently executed.*  Barriers in
    the divergent set are reported.
    """
    if cfg is None:
        cfg = build_cfg(kernel)
    tainted = _tainted_names(kernel)
    deps = cfg.control_dependencies()
    tainted_branches = {
        node.id
        for node in cfg.nodes
        if node.kind == "branch" and node.expr is not None
        and expr_tainted(node.expr, tainted)
    }
    divergent: set[int] = set()
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node.id in divergent:
                continue
            for branch_id in deps[node.id]:
                if branch_id in tainted_branches or branch_id in divergent:
                    divergent.add(node.id)
                    changed = True
                    break
    lines: list[int] = []
    for node in cfg.nodes:
        if node.id in divergent and node.stmt is not None:
            line = _contains_barrier(node.stmt)
            if line is not None:
                lines.append(line)
    return sorted(set(lines))


def _load_tainted_names(kernel: KernelDef) -> set[str]:
    """Names whose value may derive from a memory load (data taint).

    Unlike :func:`_tainted_names` this does **not** seed from the
    work-item id built-ins: a branch on ``get_global_id`` partitions
    the NDRange deterministically, while a branch on loaded data is
    genuinely input-dependent.  The static AIWC stage uses the
    distinction to bound branch entropy.
    """
    assigns: list[tuple[str, Expr]] = []
    for stmt in walk_stmts(kernel.body):
        if isinstance(stmt, Decl):
            for d in stmt.declarators:
                if d.init is not None:
                    assigns.append((d.name, d.init))
        for root in stmt_exprs(stmt):
            for node in walk_expr(root):
                if isinstance(node, Assign):
                    target = node.target
                    while isinstance(target, Paren):
                        target = target.inner
                    if isinstance(target, Ident):
                        assigns.append((target.name, node.value))

    def data_tainted(expr: Expr, tainted: set[str]) -> bool:
        for node in walk_expr(expr):
            if isinstance(node, Index):
                return True
            if isinstance(node, Ident) and node.name in tainted:
                return True
        return False

    tainted: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, value in assigns:
            if name not in tainted and data_tainted(value, tainted):
                tainted.add(name)
                changed = True
    return tainted


def branch_entropy_bound(kernel: KernelDef, cfg: CFG | None = None,
                         ) -> float:
    """Upper bound (bits) on the kernel's branch-outcome entropy.

    Each reachable two-way branch (CFG branch node or ternary) whose
    condition derives from a memory load contributes at most one bit
    of outcome entropy; branches on work-item ids or uniform scalars
    contribute none (their outcome is fixed by the launch).  A bound
    of zero therefore proves the kernel has no data-dependent control
    flow at all — the static AIWC stage pins ``branch_fraction`` to
    zero in that case.
    """
    if cfg is None:
        cfg = build_cfg(kernel)
    tainted = _load_tainted_names(kernel)

    def data_dependent(expr: Expr | None) -> bool:
        if expr is None:
            return False
        for node in walk_expr(expr):
            if isinstance(node, Index):
                return True
            if isinstance(node, Ident) and node.name in tainted:
                return True
        return False

    reachable = cfg.reachable()
    bits = sum(
        1 for node in cfg.nodes
        if node.kind == "branch" and node.id in reachable
        and len(node.succs) >= 2 and data_dependent(node.expr)
    )
    # ternaries never become CFG branch nodes; count them separately
    for stmt in walk_stmts(kernel.body):
        for root in stmt_exprs(stmt):
            for node in walk_expr(root):
                if isinstance(node, Cond) and data_dependent(node.cond):
                    bits += 1
    return float(bits)


def sync_phases(kernel: KernelDef, cfg: CFG | None = None) -> int:
    """Number of barrier-separated phases every work item executes.

    Counts the ``barrier()`` statements that dominate EXIT — the
    synchronisation points *every* work item passes — and returns one
    more than that (a kernel with no uniform barrier is one phase).
    Divergent barriers are a defect reported elsewhere
    (:func:`divergent_barriers`) and do not define phases.
    """
    if cfg is None:
        cfg = build_cfg(kernel)
    dom = cfg.dominators()
    barriers = 0
    for node in cfg.nodes:
        if node.stmt is None or node.id not in dom[1]:
            continue
        if _contains_barrier(node.stmt) is not None:
            barriers += 1
    return barriers + 1


def unreachable_statements(kernel: KernelDef, cfg: CFG | None = None,
                           ) -> list[int]:
    """Lines of statements that no path from ENTRY reaches."""
    if cfg is None:
        cfg = build_cfg(kernel)
    reachable = cfg.reachable()
    return sorted({
        node.line
        for node in cfg.nodes
        if node.id not in reachable and node.kind in ("stmt", "branch")
    })


# ---------------------------------------------------------------------------
# Definite assignment (uninit-local-var)
# ---------------------------------------------------------------------------


def uninitialized_uses(kernel: KernelDef) -> list[tuple[str, int]]:
    """``(name, line)`` for reads of locals before any assignment.

    The walk is optimistic about loops (bodies are assumed to execute
    at least once, matching the shipped kernels' macro-sized bounds)
    and joins ``if``/``else`` arms by intersection, treating a
    ``return``-terminated arm as not contributing to the join.  Local
    arrays are summarised as a single cell: one store anywhere marks
    the whole array assigned.
    """
    param_names = {p.name for p in kernel.params}
    findings: list[tuple[str, int]] = []
    seen: set[str] = set()

    def note(name: str, line: int) -> None:
        if name not in seen:
            seen.add(name)
            findings.append((name, line))

    def read_expr(expr: Expr | None, assigned: set[str],
                  declared: set[str], line: int) -> None:
        """Record reads; flag declared-but-unassigned locals."""
        if expr is None:
            return
        if isinstance(expr, Paren):
            read_expr(expr.inner, assigned, declared, line)
        elif isinstance(expr, Unary):
            read_expr(expr.operand, assigned, declared, line)
            if expr.op in ("++", "--"):
                target = expr.operand
                while isinstance(target, Paren):
                    target = target.inner
                if isinstance(target, Ident):
                    assigned.add(target.name)
        elif isinstance(expr, Bin):
            read_expr(expr.lhs, assigned, declared, line)
            read_expr(expr.rhs, assigned, declared, line)
        elif isinstance(expr, Cond):
            read_expr(expr.cond, assigned, declared, line)
            read_expr(expr.then, assigned, declared, line)
            read_expr(expr.other, assigned, declared, line)
        elif isinstance(expr, (Call, VectorCtor)):
            for arg in expr.args:
                read_expr(arg, assigned, declared, line)
        elif isinstance(expr, Index):
            read_expr(expr.base, assigned, declared, line)
            read_expr(expr.index, assigned, declared, line)
        elif isinstance(expr, Member):
            read_expr(expr.base, assigned, declared, line)
        elif isinstance(expr, Cast):
            read_expr(expr.operand, assigned, declared, line)
        elif isinstance(expr, Assign):
            write_expr(expr, assigned, declared, line)
        elif isinstance(expr, Ident):
            name = expr.name
            if name in declared and name not in assigned \
                    and name not in param_names:
                note(name, line)

    def write_expr(expr: Assign, assigned: set[str], declared: set[str],
                   line: int) -> None:
        """Handle an assignment: reads of rhs/indices, then the write."""
        read_expr(expr.value, assigned, declared, line)
        target = expr.target
        while isinstance(target, Paren):
            target = target.inner
        if expr.op != "=":
            # compound assignment reads the target first
            read_expr(target, assigned, declared, line)
        if isinstance(target, Index):
            base = target.base
            while isinstance(base, (Paren, Index)):
                base = base.inner if isinstance(base, Paren) else base.base
            read_expr(target.index, assigned, declared, line)
            if isinstance(base, Ident):
                assigned.add(base.name)
        elif isinstance(target, Member):
            base = target.base
            if isinstance(base, Ident):
                assigned.add(base.name)
        elif isinstance(target, Ident):
            assigned.add(target.name)

    def walk(stmt: Stmt, assigned: set[str], declared: set[str]) -> bool:
        """Walk one statement; returns True when it always returns."""
        if isinstance(stmt, Block):
            for inner in stmt.stmts:
                if walk(inner, assigned, declared):
                    return True
            return False
        if isinstance(stmt, Decl):
            for d in stmt.declarators:
                for size in d.array_sizes:
                    read_expr(size, assigned, declared, stmt.line)
                declared.add(d.name)
                if d.init is not None:
                    read_expr(d.init, assigned, declared, stmt.line)
                    assigned.add(d.name)
            return False
        if isinstance(stmt, ExprStmt):
            read_expr(stmt.expr, assigned, declared, stmt.line)
            return False
        if isinstance(stmt, Return):
            read_expr(stmt.value, assigned, declared, stmt.line)
            return True
        if isinstance(stmt, If):
            read_expr(stmt.cond, assigned, declared, stmt.line)
            then_assigned = set(assigned)
            then_ret = walk(stmt.then, then_assigned, declared)
            else_assigned = set(assigned)
            else_ret = False
            if stmt.orelse is not None:
                else_ret = walk(stmt.orelse, else_assigned, declared)
            if then_ret and else_ret:
                return True
            if then_ret:
                assigned |= else_assigned
            elif else_ret:
                assigned |= then_assigned
            else:
                assigned |= then_assigned & else_assigned
            return False
        if isinstance(stmt, For):
            if stmt.init is not None:
                walk(stmt.init, assigned, declared)
            read_expr(stmt.cond, assigned, declared, stmt.line)
            walk(stmt.body, assigned, declared)
            read_expr(stmt.step, assigned, declared, stmt.line)
            return False
        if isinstance(stmt, While):
            read_expr(stmt.cond, assigned, declared, stmt.line)
            walk(stmt.body, assigned, declared)
            return False
        return False

    walk(kernel.body, set(), set())
    return findings


# ---------------------------------------------------------------------------
# Constant-index bounds (constant-index-oob)
# ---------------------------------------------------------------------------


def const_eval(expr: Expr | None, macros: dict[str, int]) -> int | None:
    """Evaluate a compile-time constant expression, or ``None``."""
    if expr is None:
        return None
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, FloatLit) or isinstance(expr, StrLit):
        return None
    if isinstance(expr, Ident):
        return macros.get(expr.name)
    if isinstance(expr, Paren):
        return const_eval(expr.inner, macros)
    if isinstance(expr, Cast):
        return const_eval(expr.operand, macros)
    if isinstance(expr, Unary) and expr.prefix:
        value = const_eval(expr.operand, macros)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(not value)
        return None
    if isinstance(expr, Bin):
        lhs = const_eval(expr.lhs, macros)
        rhs = const_eval(expr.rhs, macros)
        if lhs is None or rhs is None:
            return None
        if expr.op in ("/", "%") and rhs == 0:
            return None
        try:
            return _APPLY_INT[expr.op](lhs, rhs)
        except KeyError:
            return None
    return None


def _trunc_div(a: int, b: int) -> int:
    """C integer division (truncates toward zero)."""
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


_APPLY_INT = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _trunc_div,
    "%": lambda a, b: a - _trunc_div(a, b) * b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


def constant_index_oob(kernel: KernelDef, macros: dict[str, int] | None = None,
                       ) -> list[tuple[str, int, int, int]]:
    """``(array, line, index, extent)`` for constant out-of-bounds
    subscripts of declared local arrays."""
    macros = macros or {}
    extents: dict[str, int] = {}
    out: list[tuple[str, int, int, int]] = []
    for stmt in walk_stmts(kernel.body):
        if isinstance(stmt, Decl):
            for d in stmt.declarators:
                if len(d.array_sizes) == 1:
                    size = const_eval(d.array_sizes[0], macros)
                    if size is not None:
                        extents[d.name] = size
        for root in stmt_exprs(stmt):
            for node in walk_expr(root):
                if not isinstance(node, Index):
                    continue
                base = node.base
                while isinstance(base, Paren):
                    base = base.inner
                if not isinstance(base, Ident) or base.name not in extents:
                    continue
                index = const_eval(node.index, macros)
                if index is None:
                    continue
                extent = extents[base.name]
                if index < 0 or index >= extent:
                    line = getattr(stmt, "line", 0)
                    out.append((base.name, line, index, extent))
    return out
