"""Symbolic abstract interpretation of kernel memory footprints.

Third stage of the kernel IR pipeline: an interval abstract interpreter
over the :mod:`repro.analysis.frontend` AST whose interval endpoints are
*symbolic expressions* in the kernel's scalar arguments, the NDRange
(``get_global_id`` ranges over ``[0, gsize-1]``) and the build macros.
Running a kernel abstractly yields, per buffer parameter, the symbolic
index range every load/store can touch — the kernel's working set as a
closed-form function of the launch, which is exactly what the paper's
§4.4 derives by hand (Eq. 1 for kmeans).

Substituting a concrete :class:`~repro.dwarfs.base.StaticLaunchModel`
(the per-benchmark launch geometry declared by ``static_launches()``)
evaluates those ranges numerically and sums per-buffer extents into a
*static* footprint that :func:`verify_benchmark_footprint` cross-checks
against the runtime ``footprint_bytes()`` at every size preset.

Precision machinery, in rough order of importance:

* branch refinement — ``if (gid < remaining)`` narrows ``gid`` in the
  taken arm (and the negation narrows the fall-through after an early
  ``return``), including one relational step: when ``row`` was defined
  as ``idx / C`` with constant ``C``, a bound on ``row`` propagates
  back to ``idx`` (the SRAD halo pattern);
* path guards — every access records the comparisons guarding it, and
  a launch whose values make a guard infeasible skips the access (the
  ``hmm_backward`` ``t == T_OBS-1`` special case);
* bounded loop fixpoints — loop-carried scalars are iterated to a join
  fixpoint (with widening to TOP after four passes) before a final
  recording pass;
* indirect fallback — an access whose symbolic bound is unbounded
  (subscripts fed from memory, e.g. CSR's gather) falls back to the
  declared size of the bound buffer.

The same interpretation classifies per-argument access strides
(``uniform`` / ``unit`` / ``strided`` / ``indirect``) via a small
dependency lattice carried next to each interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..ocl.clsource import CLSourceError
from ..telemetry.tracer import get_tracer
from .cfg import stmt_exprs, walk_expr, walk_stmts
from .frontend import (
    Assign,
    Bin,
    Block,
    Call,
    Cast,
    Cond,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Ident,
    If,
    Index,
    IntLit,
    KernelDef,
    Member,
    Paren,
    Return,
    Stmt,
    StrLit,
    Unary,
    VectorCtor,
    While,
    parse_source,
    type_sizeof,
)

INF = float("inf")

# ---------------------------------------------------------------------------
# Symbolic expressions
# ---------------------------------------------------------------------------


class SymExpr:
    """Base class of the symbolic endpoint language."""


@dataclass(frozen=True)
class Const(SymExpr):
    """A numeric constant (possibly ±inf)."""

    value: float

    def __str__(self) -> str:
        if math.isfinite(self.value) and self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class Sym(SymExpr):
    """A named symbol: a scalar kernel argument or an NDRange size."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SBin(SymExpr):
    """A binary operation on symbolic endpoints."""

    op: str
    lhs: SymExpr
    rhs: SymExpr

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class SMin(SymExpr):
    """Minimum of symbolic endpoints."""

    args: tuple[SymExpr, ...]

    def __str__(self) -> str:
        return "min(" + ", ".join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class SMax(SymExpr):
    """Maximum of symbolic endpoints."""

    args: tuple[SymExpr, ...]

    def __str__(self) -> str:
        return "max(" + ", ".join(str(a) for a in self.args) + ")"


NEG_INF_E = Const(-INF)
POS_INF_E = Const(INF)
ZERO = Const(0)
ONE = Const(1)


def _num_mul(a: float, b: float) -> float:
    """Multiplication with the interval convention ``0 * inf == 0``."""
    if a == 0 or b == 0:
        return 0
    return a * b


def _num_div(a: float, b: float) -> float:
    """C-style truncating division, inf-safe."""
    if b == 0:
        return INF if a >= 0 else -INF
    if abs(a) == INF or abs(b) == INF:
        q = a / b if abs(b) != INF else 0.0
        return q
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


_NUM_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": _num_mul,
    "/": _num_div,
    "%": lambda a, b: a - _num_mul(_num_div(a, b), b)
    if abs(a) != INF and b else INF,
    "<<": lambda a, b: _num_mul(a, 2 ** b),
    ">>": lambda a, b: _num_div(a, 2 ** b),
}


def sym_eval(expr: SymExpr, env: dict[str, float]) -> float:
    """Evaluate a symbolic endpoint with concrete launch values."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        if expr.name not in env:
            raise CLSourceError(
                f"unbound symbol {expr.name!r} while evaluating a static "
                f"footprint (missing scalar in the launch model?)"
            )
        return env[expr.name]
    if isinstance(expr, SBin):
        return _NUM_OPS[expr.op](sym_eval(expr.lhs, env),
                                 sym_eval(expr.rhs, env))
    if isinstance(expr, SMin):
        return min(sym_eval(a, env) for a in expr.args)
    if isinstance(expr, SMax):
        return max(sym_eval(a, env) for a in expr.args)
    raise TypeError(f"unknown symbolic node {type(expr).__name__}")


def _fold(op: str, lhs: SymExpr, rhs: SymExpr) -> SymExpr:
    """Build ``lhs op rhs`` with light constant folding."""
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        return Const(_NUM_OPS[op](lhs.value, rhs.value))
    if op == "+":
        if lhs == ZERO:
            return rhs
        if rhs == ZERO:
            return lhs
    if op == "-" and rhs == ZERO:
        return lhs
    if op == "*":
        if lhs == ONE:
            return rhs
        if rhs == ONE:
            return lhs
        if lhs == ZERO or rhs == ZERO:
            return ZERO
        if isinstance(lhs, Const) and abs(lhs.value) == INF:
            return lhs if isinstance(rhs, Const) else SBin(op, lhs, rhs)
    return SBin(op, lhs, rhs)


def s_add(a: SymExpr, b: SymExpr) -> SymExpr:
    """Symbolic addition with folding."""
    return _fold("+", a, b)


def s_sub(a: SymExpr, b: SymExpr) -> SymExpr:
    """Symbolic subtraction with folding."""
    return _fold("-", a, b)


def s_mul(a: SymExpr, b: SymExpr) -> SymExpr:
    """Symbolic multiplication with folding."""
    return _fold("*", a, b)


def s_min(*args: SymExpr) -> SymExpr:
    """Symbolic minimum; collapses infinities and nested mins."""
    flat: list[SymExpr] = []
    for a in args:
        if isinstance(a, SMin):
            flat.extend(a.args)
        else:
            flat.append(a)
    consts = [a for a in flat if isinstance(a, Const)]
    others = [a for a in flat if not isinstance(a, Const)]
    if consts:
        low = min(c.value for c in consts)
        if low == -INF or not others:
            return Const(low)
        others.append(Const(low))
    seen: list[SymExpr] = []
    for a in others:
        if a not in seen:
            seen.append(a)
    if len(seen) == 1:
        return seen[0]
    return SMin(tuple(seen))


def s_max(*args: SymExpr) -> SymExpr:
    """Symbolic maximum; collapses infinities and nested maxes."""
    flat: list[SymExpr] = []
    for a in args:
        if isinstance(a, SMax):
            flat.extend(a.args)
        else:
            flat.append(a)
    consts = [a for a in flat if isinstance(a, Const)]
    others = [a for a in flat if not isinstance(a, Const)]
    if consts:
        high = max(c.value for c in consts)
        if high == INF or not others:
            return Const(high)
        others.append(Const(high))
    seen: list[SymExpr] = []
    for a in others:
        if a not in seen:
            seen.append(a)
    if len(seen) == 1:
        return seen[0]
    return SMax(tuple(seen))


# ---------------------------------------------------------------------------
# Dependency lattice (stride classification)
# ---------------------------------------------------------------------------

#: Dependence of a value on the work-item index:
#: ``("uniform",)`` — identical for all work items;
#: ``("affine", c)`` — base + c * work-item id;
#: ``("nonlinear",)`` — varies, but not affinely;
#: ``("indirect",)`` — derived from a memory load.
Dep = tuple

UNIFORM: Dep = ("uniform",)
NONLINEAR: Dep = ("nonlinear",)
INDIRECT: Dep = ("indirect",)

_DEP_RANK = {"uniform": 0, "affine": 1, "nonlinear": 2, "indirect": 3}


def affine(coeff: int) -> Dep:
    """An affine dependence with the given work-item coefficient."""
    return ("affine", coeff) if coeff else UNIFORM


def dep_rank(dep: Dep) -> int:
    """Lattice rank (higher = less structured)."""
    return _DEP_RANK[dep[0]]


def dep_add(a: Dep, b: Dep, negate_b: bool = False) -> Dep:
    """Dependence of ``a + b`` (or ``a - b`` with ``negate_b``)."""
    if INDIRECT in (a, b):
        return INDIRECT
    if a[0] == "nonlinear" or b[0] == "nonlinear":
        return NONLINEAR
    ca = a[1] if a[0] == "affine" else 0
    cb = b[1] if b[0] == "affine" else 0
    return affine(ca + (-cb if negate_b else cb))


def dep_mul(a: Dep, b: Dep, a_const: float | None,
            b_const: float | None) -> Dep:
    """Dependence of ``a * b``; ``*_const`` is the operand's value when
    it is a compile-time constant."""
    if INDIRECT in (a, b):
        return INDIRECT
    if a == UNIFORM and b == UNIFORM:
        return UNIFORM
    if a[0] == "affine" and b == UNIFORM and b_const is not None:
        return affine(int(a[1] * b_const))
    if b[0] == "affine" and a == UNIFORM and a_const is not None:
        return affine(int(b[1] * a_const))
    return NONLINEAR


def dep_join(a: Dep, b: Dep) -> Dep:
    """Least upper bound of two dependences."""
    if a == b:
        return a
    if dep_rank(a) < dep_rank(b):
        a, b = b, a
    if a[0] == "affine" and b[0] == "affine":
        return a if a == b else NONLINEAR
    if a[0] == "affine" and b == UNIFORM:
        return NONLINEAR  # joining a varying with a uniform value
    return a


def dep_other(a: Dep, b: Dep) -> Dep:
    """Dependence through a non-affine operator (div, mod, shift, ...)."""
    if INDIRECT in (a, b):
        return INDIRECT
    if a == UNIFORM and b == UNIFORM:
        return UNIFORM
    return NONLINEAR


def stride_class(dep: Dep) -> str:
    """Map a dependence to the reported stride class."""
    if dep == UNIFORM:
        return "uniform"
    if dep[0] == "affine":
        return "unit" if dep[1] in (1, -1) else "strided"
    if dep[0] == "nonlinear":
        return "strided"
    return "indirect"


_STRIDE_RANK = {"uniform": 0, "unit": 1, "strided": 2, "indirect": 3}


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A symbolic interval ``[lo, hi]`` with a work-item dependence."""

    lo: SymExpr
    hi: SymExpr
    dep: Dep = UNIFORM

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"

    @property
    def is_point(self) -> bool:
        """Whether both endpoints are the same expression."""
        return self.lo == self.hi

    def const_value(self) -> float | None:
        """The numeric value when this is a constant point interval."""
        if isinstance(self.lo, Const) and self.lo == self.hi:
            return self.lo.value
        return None


def top(dep: Dep = UNIFORM) -> Interval:
    """The unbounded interval with the given dependence."""
    return Interval(NEG_INF_E, POS_INF_E, dep)


def point(expr: SymExpr, dep: Dep = UNIFORM) -> Interval:
    """A single-valued interval."""
    return Interval(expr, expr, dep)


def iv_add(a: Interval, b: Interval) -> Interval:
    """``a + b``."""
    return Interval(s_add(a.lo, b.lo), s_add(a.hi, b.hi),
                    dep_add(a.dep, b.dep))


def iv_sub(a: Interval, b: Interval) -> Interval:
    """``a - b``."""
    return Interval(s_sub(a.lo, b.hi), s_sub(a.hi, b.lo),
                    dep_add(a.dep, b.dep, negate_b=True))


def iv_mul(a: Interval, b: Interval) -> Interval:
    """``a * b`` (endpoint products via symbolic min/max)."""
    dep = dep_mul(a.dep, b.dep, a.const_value(), b.const_value())
    if a.is_point and b.is_point:
        prod = s_mul(a.lo, b.lo)
        return Interval(prod, prod, dep)
    products = [s_mul(a.lo, b.lo), s_mul(a.lo, b.hi),
                s_mul(a.hi, b.lo), s_mul(a.hi, b.hi)]
    return Interval(s_min(*products), s_max(*products), dep)


def iv_binop(op: str, a: Interval, b: Interval) -> Interval:
    """Apply a C binary operator abstractly."""
    if op == "+":
        return iv_add(a, b)
    if op == "-":
        return iv_sub(a, b)
    if op == "*":
        return iv_mul(a, b)
    dep = dep_other(a.dep, b.dep)
    if op in ("/", "<<", ">>"):
        if a.is_point and b.is_point:
            q = _fold(op, a.lo, b.lo)
            return Interval(q, q, dep)
        combos = [_fold(op, a.lo, b.lo), _fold(op, a.lo, b.hi),
                  _fold(op, a.hi, b.lo), _fold(op, a.hi, b.hi)]
        return Interval(s_min(*combos), s_max(*combos), dep)
    if op == "%":
        # divisor assumed positive (all launch scalars are); a
        # non-negative dividend keeps the C result in [0, b-1]
        lo = ZERO if _nonneg(a.lo) else NEG_INF_E
        return Interval(lo, s_min(a.hi, s_sub(b.hi, ONE)), dep)
    if op == "&":
        # a & mask is in [0, mask] for a non-negative mask
        if _nonneg(b.lo):
            return Interval(ZERO, b.hi, dep)
        if _nonneg(a.lo):
            return Interval(ZERO, a.hi, dep)
        return top(dep)
    if op in ("|", "^"):
        return top(dep)
    if op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
        return Interval(ZERO, ONE, dep)
    return top(dep)


def _nonneg(expr: SymExpr) -> bool:
    """Conservatively, is this endpoint provably >= 0?"""
    if isinstance(expr, Const):
        return expr.value >= 0
    if isinstance(expr, (SMin, SMax)):
        check = all if isinstance(expr, SMin) else any
        return check(_nonneg(a) for a in expr.args)
    return False


def iv_join(a: Interval, b: Interval) -> Interval:
    """Least upper bound (interval hull)."""
    return Interval(s_min(a.lo, b.lo), s_max(a.hi, b.hi),
                    dep_join(a.dep, b.dep))


def iv_neg(a: Interval) -> Interval:
    """``-a``."""
    return Interval(s_sub(ZERO, a.hi), s_sub(ZERO, a.lo),
                    dep_add(UNIFORM, a.dep, negate_b=True))


def iv_min(a: Interval, b: Interval) -> Interval:
    """``min(a, b)`` (the OpenCL built-in)."""
    return Interval(s_min(a.lo, b.lo), s_min(a.hi, b.hi),
                    dep_join(a.dep, b.dep))


def iv_max(a: Interval, b: Interval) -> Interval:
    """``max(a, b)`` (the OpenCL built-in)."""
    return Interval(s_max(a.lo, b.lo), s_max(a.hi, b.hi),
                    dep_join(a.dep, b.dep))


# ---------------------------------------------------------------------------
# Path guards
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Guard:
    """One comparison guarding an access, for per-launch feasibility.

    ``mask`` marks guards inherited from an early-return fall-through
    (``if (cond) return;``): the rest of the kernel runs under the
    negated condition, which partitions the NDRange into active and
    inactive lanes rather than expressing data-dependent control flow.
    Masked guards still gate feasibility and op weighting, but the
    static AIWC stage does not count work behind them as divergent.
    """

    lhs: Interval
    op: str
    rhs: Interval
    mask: bool = False

    def feasible(self, env: dict[str, float]) -> bool:
        """Can any value pair in the operand ranges satisfy the guard?"""
        a1 = sym_eval(self.lhs.lo, env)
        a2 = sym_eval(self.lhs.hi, env)
        b1 = sym_eval(self.rhs.lo, env)
        b2 = sym_eval(self.rhs.hi, env)
        if self.op == "==":
            return max(a1, b1) <= min(a2, b2)
        if self.op == "!=":
            return not (a1 == a2 == b1 == b2)
        if self.op == "<":
            return a1 < b2
        if self.op == "<=":
            return a1 <= b2
        if self.op == ">":
            return a2 > b1
        if self.op == ">=":
            return a2 >= b1
        return True


_NEGATED_CMP = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
                "==": "!=", "!=": "=="}


# ---------------------------------------------------------------------------
# Abstract interpreter
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Access:
    """One abstract memory access of a kernel.

    ``space`` is the address space of the accessed object (``global``
    covers ``__constant`` too; ``local`` covers ``__local`` arrays and
    pointer parameters).  ``epoch`` counts the ``barrier()`` calls seen
    before the access: two accesses with different epochs are separated
    by a work-group barrier and cannot race.  ``weight`` is the
    per-work-item repetition count (the enclosing-loop trip product,
    like :attr:`OpEvent.weight`): the static AIWC stage prices a
    site's traffic as ``min(extent, weight * work_items * elem_size)``
    so a wavefront kernel indexing across the whole matrix is charged
    the bytes it touches, not the span it addresses.
    """

    param: str
    index: Interval
    elem_size: int
    is_write: bool
    guards: tuple[Guard, ...]
    line: int
    space: str = "global"
    epoch: int = 0
    weight: SymExpr = ONE


@dataclass(frozen=True)
class OpEvent:
    """One counted arithmetic operation of a kernel body.

    ``weight`` is the per-work-item repetition count: the symbolic
    product of the trip counts of every enclosing loop (data-dependent
    trips appear as ``__trip<n>`` symbols resolved per launch via
    :attr:`KernelSummary.trip_buffers`).  ``guards`` are the path
    conditions active at the operation — the static AIWC stage scales
    the weight by the satisfied fraction of each guard.  ``chain``
    marks operations on a loop-carried load chain (the CRC/FSM
    table-walk idiom); ``divergent`` marks operations behind
    data-dependent (memory-derived) control flow.
    """

    kind: str  # "fp" | "int"
    weight: SymExpr
    guards: tuple[Guard, ...]
    chain: bool = False
    divergent: bool = False
    line: int = 0


@dataclass
class KernelSummary:
    """The abstract result of interpreting one kernel."""

    kernel: str
    accesses: list[Access] = field(default_factory=list)
    opaque: bool = False  # empty body: nothing to interpret
    uses_barrier: bool = False
    ops: list[OpEvent] = field(default_factory=list)
    #: ``__trip<n>`` symbol -> buffer parameters a data-dependent loop
    #: walks via its loop variable (empty when none was identified).
    #: The static AIWC stage resolves such a trip count as the largest
    #: candidate's element count divided by the launch's total work
    #: items (the "segment partition" heuristic: CSR rows split nnz,
    #: CRC pages split the message, BFS vertices split the edge list).
    trip_buffers: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def strides(self) -> dict[str, str]:
        """Worst stride class per accessed global buffer parameter."""
        out: dict[str, str] = {}
        for access in self.accesses:
            if access.space != "global":
                continue
            cls = stride_class(access.index.dep)
            prev = out.get(access.param)
            if prev is None or _STRIDE_RANK[cls] > _STRIDE_RANK[prev]:
                out[access.param] = cls
        return out


#: Work-item builtin ranges: (lo sym, hi sym template, dep).
_GS = ("__gs0", "__gs1", "__gs2")
_LS = ("__ls0", "__ls1", "__ls2")
_NG = ("__ng0", "__ng1", "__ng2")

#: Binary operators counted as arithmetic work.
_ARITH_OPS = frozenset({"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"})

#: OpenCL math built-ins counted as one floating-point operation.
_FLOAT_FUNCS = frozenset({
    "sqrt", "rsqrt", "cbrt", "exp", "exp2", "exp10", "expm1",
    "log", "log2", "log10", "log1p", "pow", "powr", "pown",
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
    "sinh", "cosh", "tanh", "hypot", "fabs", "floor", "ceil",
    "round", "trunc", "rint", "fract", "fmod", "remainder",
    "fmin", "fmax", "mix", "smoothstep", "step", "sign",
    "erf", "erfc", "tgamma", "lgamma",
})


def _is_float_type(type_name: str) -> bool:
    """Whether a C type spelling names a floating-point scalar/vector."""
    base = type_name.split()[-1] if type_name else ""
    return base.rstrip("0123456789") in ("float", "double", "half")


def _has_inf(expr: SymExpr) -> bool:
    """Whether a symbolic endpoint mentions an infinite constant."""
    if isinstance(expr, Const):
        return not math.isfinite(expr.value)
    if isinstance(expr, SBin):
        return _has_inf(expr.lhs) or _has_inf(expr.rhs)
    if isinstance(expr, (SMin, SMax)):
        return any(_has_inf(a) for a in expr.args)
    return False


class _Interp:
    """One abstract execution of a kernel body."""

    def __init__(self, kernel: KernelDef, macros: dict[str, float]) -> None:
        self.kernel = kernel
        self.env: dict[str, Interval] = {}
        self.arrays: dict[str, Interval] = {}  # declared arrays, one cell
        self.local_arrays: dict[str, int] = {}  # __local array -> elem size
        self.defs: dict[str, tuple[str, str, int]] = {}  # v -> (div, u, c)
        self.buffers = {p.name: p for p in kernel.params if p.is_pointer}
        self.accesses: list[Access] = []
        self.guards: list[Guard] = []
        self.record = True
        self.epoch = 0  # barrier() calls seen so far
        # -- opcode accounting state (static AIWC) ----------------------
        self.ops: list[OpEvent] = []
        self.weight: SymExpr = ONE  # product of enclosing loop trips
        self.chain_depth = 0  # > 0 inside a loop-carried load chain
        self.addr_depth = 0  # > 0 inside an Index subscript
        self.ctl_depth = 0  # > 0 inside loop control (cond/step)
        self.trip_counter = 0
        self.trip_buffers: dict[str, str | None] = {}
        self.float_names: set[str] = {
            p.name for p in kernel.params
            if not p.is_pointer and _is_float_type(p.type_name)
        }
        self.float_buffers: set[str] = {
            p.name for p in kernel.params
            if p.is_pointer and _is_float_type(p.type_name)
        }
        for name, value in macros.items():
            self.env[name] = point(Const(value))
        for p in kernel.params:
            if not p.is_pointer:
                self.env[p.name] = point(Sym(p.name))

    # -- entry ----------------------------------------------------------
    def run(self) -> KernelSummary:
        """Interpret the body and return its access summary."""
        summary = KernelSummary(kernel=self.kernel.name,
                                opaque=not self.kernel.body.stmts)
        self.exec_stmt(self.kernel.body)
        summary.accesses = self.accesses
        summary.uses_barrier = self.epoch > 0
        summary.ops = self.ops
        summary.trip_buffers = dict(self.trip_buffers)
        return summary

    # -- statements -----------------------------------------------------
    def exec_stmt(self, stmt: Stmt) -> bool:
        """Execute one statement; True when it always returns."""
        if isinstance(stmt, Block):
            for inner in stmt.stmts:
                if self.exec_stmt(inner):
                    return True
            return False
        if isinstance(stmt, Decl):
            is_local = any(q.lstrip("_") == "local" for q in stmt.quals)
            if _is_float_type(stmt.type_name):
                for d in stmt.declarators:
                    self.float_names.add(d.name)
            for d in stmt.declarators:
                if d.array_sizes:
                    self.arrays[d.name] = top(UNIFORM)
                    if is_local:
                        self.local_arrays[d.name] = type_sizeof(stmt.type_name)
                elif d.init is not None:
                    value = self.eval(d.init)
                    self.env[d.name] = value
                    self._note_def(d.name, d.init)
                else:
                    self.env[d.name] = top(UNIFORM)
            return False
        if isinstance(stmt, ExprStmt):
            self.eval(stmt.expr)
            return False
        if isinstance(stmt, Return):
            if stmt.value is not None:
                self.eval(stmt.value)
            return True
        if isinstance(stmt, If):
            return self._exec_if(stmt)
        if isinstance(stmt, For):
            self._exec_loop(stmt.init, stmt.cond, stmt.step, stmt.body)
            return False
        if isinstance(stmt, While):
            self._exec_loop(None, stmt.cond, None, stmt.body)
            return False
        raise TypeError(f"unknown statement node {type(stmt).__name__}")

    def _exec_if(self, stmt: If) -> bool:
        self.eval(stmt.cond)  # record any loads in the condition
        then_env, then_guards = self._refined(stmt.cond, negate=False)
        else_env, else_guards = self._refined(stmt.cond, negate=True)

        saved_env, saved_guards = self.env, self.guards
        self.env = then_env
        self.guards = saved_guards + then_guards
        then_ret = self.exec_stmt(stmt.then)
        then_env = self.env

        self.env = else_env
        self.guards = saved_guards + else_guards
        else_ret = False
        if stmt.orelse is not None:
            else_ret = self.exec_stmt(stmt.orelse)
        else_env = self.env

        self.guards = saved_guards
        if then_ret and else_ret:
            self.env = saved_env
            return True
        if then_ret:
            self.env = else_env
            # the fall-through keeps the negated guard (early-return
            # idiom: the rest of the kernel runs under !cond); such
            # guards are lane masks, not data-dependent divergence
            self.guards = saved_guards + [replace(g, mask=True)
                                          for g in else_guards]
            return False
        if else_ret:
            self.env = then_env
            self.guards = saved_guards + [replace(g, mask=True)
                                          for g in then_guards]
            return False
        self.env = self._join_envs(then_env, else_env)
        return False

    def _join_envs(self, a: dict[str, Interval],
                   b: dict[str, Interval]) -> dict[str, Interval]:
        out: dict[str, Interval] = {}
        for key in set(a) | set(b):
            if key in a and key in b:
                out[key] = iv_join(a[key], b[key]) if a[key] != b[key] \
                    else a[key]
            else:
                out[key] = a.get(key) or b[key]
        return out

    def _exec_loop(self, init: Stmt | None, cond: Expr | None,
                   step: Expr | None, body: Stmt) -> None:
        if init is not None:
            self.exec_stmt(init)
        loop_var = self._loop_var(init)
        self.ctl_depth += 1  # loop control is not counted work
        try:
            var_range = self._loop_range(loop_var, cond)
            if loop_var is not None and var_range is not None:
                self.env[loop_var] = var_range
            if cond is not None:
                self.eval(cond)  # loads in the condition count as accesses
        finally:
            self.ctl_depth -= 1

        def rebind() -> None:
            if loop_var is not None and var_range is not None:
                self.env[loop_var] = var_range

        # fixpoint passes without recording, then one recording pass
        saved_record = self.record
        self.record = False
        for _ in range(4):
            before = dict(self.env)
            self.exec_stmt(body)
            if step is not None:
                self.eval(step)
            rebind()
            stable = True
            for key, prev in before.items():
                cur = self.env.get(key, prev)
                joined = iv_join(cur, prev) if cur != prev else prev
                if joined != prev:
                    stable = False
                self.env[key] = joined
            if stable:
                break
        else:
            for key, prev in before.items():
                if self.env.get(key) != prev:
                    self.env[key] = top(self.env[key].dep)
            rebind()
        self.record = saved_record
        if self.record:
            trip = self._trip_expr(loop_var, var_range, step, body)
            chain = self._chain_loop(loop_var, body)
            saved_weight = self.weight
            self.weight = s_mul(saved_weight, trip)
            if chain:
                self.chain_depth += 1
            try:
                self.exec_stmt(body)
            finally:
                if chain:
                    self.chain_depth -= 1
                self.weight = saved_weight
            if step is not None:
                self.ctl_depth += 1
                try:
                    self.eval(step)
                finally:
                    self.ctl_depth -= 1
            rebind()

    def _trip_expr(self, loop_var: str | None, var_range: Interval | None,
                   step: Expr | None, body: Stmt) -> SymExpr:
        """Symbolic trip count of one loop (per enclosing iteration).

        A bounded range yields ``ceil((hi - lo + 1) / step)``; a
        data-dependent range (endpoints fed from memory) yields a fresh
        ``__trip<n>`` symbol resolved per launch via the partitioned
        buffer recorded in :attr:`trip_buffers`.
        """
        if (var_range is not None and not _has_inf(var_range.lo)
                and not _has_inf(var_range.hi)):
            step_amount = self._step_amount(loop_var, step)
            span = s_add(s_sub(var_range.hi, var_range.lo), step_amount)
            return _fold("/", span, step_amount)
        name = f"__trip{self.trip_counter}"
        self.trip_counter += 1
        self.trip_buffers[name] = self._partition_buffer(loop_var, body)
        return Sym(name)

    def _step_amount(self, loop_var: str | None,
                     step: Expr | None) -> SymExpr:
        """The per-iteration increment of the loop variable (default 1)."""
        if loop_var is None or step is None:
            return ONE
        expr = _strip(step)
        if isinstance(expr, Unary) and expr.op in ("++", "--"):
            return ONE
        if isinstance(expr, Assign):
            target = _strip(expr.target)
            if not (isinstance(target, Ident) and target.name == loop_var):
                return ONE
            value: Expr | None = None
            if expr.op in ("+=", "-="):
                value = expr.value
            elif expr.op == "=":
                rhs = _strip(expr.value)
                if isinstance(rhs, Bin) and rhs.op in ("+", "-"):
                    lhs = _strip(rhs.lhs)
                    if isinstance(lhs, Ident) and lhs.name == loop_var:
                        value = rhs.rhs
            if value is not None:
                iv = self.eval_pure(value)
                if iv.is_point and not _has_inf(iv.lo):
                    return iv.lo
        return ONE

    def _partition_buffer(self, loop_var: str | None,
                          body: Stmt) -> tuple[str, ...]:
        """Buffers a data-dependent loop walks via its loop variable."""
        if loop_var is None:
            return ()
        found: list[str] = []
        for stmt in walk_stmts(body):
            for root in stmt_exprs(stmt):
                for node in walk_expr(root):
                    if not isinstance(node, Index):
                        continue
                    base = _strip(node.base)
                    if not (isinstance(base, Ident)
                            and base.name in self.buffers):
                        continue
                    if base.name not in found and any(
                        isinstance(n, Ident) and n.name == loop_var
                        for n in walk_expr(node.index)
                    ):
                        found.append(base.name)
        return tuple(found)

    def _chain_loop(self, loop_var: str | None, body: Stmt) -> bool:
        """Whether the loop body carries a load chain (CRC/FSM idiom):
        a scalar (or private cell) is reassigned from a buffer load
        whose subscript depends on the value being replaced."""
        for stmt in walk_stmts(body):
            for root in stmt_exprs(stmt):
                for node in walk_expr(root):
                    if not isinstance(node, Assign):
                        continue
                    target = _strip(node.target)
                    if isinstance(target, Index):
                        tbase = _strip(target.base)
                        tname = tbase.name \
                            if isinstance(tbase, Ident) else None
                    elif isinstance(target, Ident):
                        tname = target.name
                    else:
                        tname = None
                    if tname is None or tname == loop_var:
                        continue
                    for sub in walk_expr(node.value):
                        if not isinstance(sub, Index):
                            continue
                        sbase = _strip(sub.base)
                        if (isinstance(sbase, Ident)
                                and sbase.name in self.buffers
                                and any(isinstance(n, Ident)
                                        and n.name == tname
                                        for n in walk_expr(sub.index))):
                            return True
        return False

    def _loop_var(self, init: Stmt | None) -> str | None:
        if isinstance(init, Decl) and len(init.declarators) == 1:
            return init.declarators[0].name
        if isinstance(init, ExprStmt):
            expr = init.expr
            if isinstance(expr, Assign) and isinstance(expr.target, Ident):
                return expr.target.name
        return None

    def _loop_range(self, loop_var: str | None,
                    cond: Expr | None) -> Interval | None:
        """``[init, bound]`` for an upward-counting loop variable."""
        if loop_var is None or loop_var not in self.env:
            return None
        init_iv = self.env[loop_var]
        for cmp in self._conjuncts(cond):
            lhs = _strip(cmp.lhs)
            if isinstance(lhs, Ident) and lhs.name == loop_var:
                bound = self.eval(cmp.rhs)
                if cmp.op == "<":
                    hi = s_sub(bound.hi, ONE)
                elif cmp.op == "<=":
                    hi = bound.hi
                else:
                    continue
                return Interval(init_iv.lo, s_max(init_iv.lo, hi),
                                dep_join(init_iv.dep, UNIFORM))
        return None

    def _conjuncts(self, cond: Expr | None) -> list[Bin]:
        """The comparison conjuncts of a (possibly ``&&``-ed) condition."""
        out: list[Bin] = []
        stack = [cond] if cond is not None else []
        while stack:
            node = _strip(stack.pop())
            if isinstance(node, Bin) and node.op == "&&":
                stack.extend((node.lhs, node.rhs))
            elif isinstance(node, Bin) and node.op in _NEGATED_CMP:
                out.append(node)
        return out

    def _note_def(self, name: str, init: Expr) -> None:
        """Remember ``name = u / C`` definitions for branch refinement."""
        expr = _strip(init)
        if isinstance(expr, Bin) and expr.op == "/":
            src = _strip(expr.lhs)
            divisor = self.eval(expr.rhs).const_value()
            if isinstance(src, Ident) and divisor and divisor > 0:
                self.defs[name] = ("div", src.name, int(divisor))

    # -- refinement -----------------------------------------------------
    def _refined(self, cond: Expr, negate: bool,
                 ) -> tuple[dict[str, Interval], list[Guard]]:
        """A copy of the env narrowed by the condition, plus its guards."""
        env = dict(self.env)
        guards: list[Guard] = []
        self._refine_into(env, guards, cond, negate)
        return env, guards

    def _refine_into(self, env: dict[str, Interval], guards: list[Guard],
                     cond: Expr, negate: bool) -> None:
        cond = _strip(cond)
        if isinstance(cond, Unary) and cond.op == "!":
            self._refine_into(env, guards, cond.operand, not negate)
            return
        if isinstance(cond, Bin) and cond.op == "&&" and not negate:
            self._refine_into(env, guards, cond.lhs, False)
            self._refine_into(env, guards, cond.rhs, False)
            return
        if isinstance(cond, Bin) and cond.op == "||" and negate:
            self._refine_into(env, guards, cond.lhs, True)
            self._refine_into(env, guards, cond.rhs, True)
            return
        if not (isinstance(cond, Bin) and cond.op in _NEGATED_CMP):
            if isinstance(cond, Bin) and cond.op in ("&&", "||"):
                return
            # bare truth test: ``if (e)`` means ``e != 0`` (negated: == 0)
            iv = self.eval_pure(cond)
            guards.append(Guard(lhs=iv, op="==" if negate else "!=",
                                rhs=point(ZERO)))
            return
        op = _NEGATED_CMP[cond.op] if negate else cond.op
        lhs_iv = self.eval_pure(cond.lhs)
        rhs_iv = self.eval_pure(cond.rhs)
        guards.append(Guard(lhs=lhs_iv, op=op, rhs=rhs_iv))
        lhs = _strip(cond.lhs)
        rhs = _strip(cond.rhs)
        if isinstance(lhs, Ident) and lhs.name in env:
            self._narrow(env, lhs.name, op, rhs_iv)
        if isinstance(rhs, Ident) and rhs.name in env:
            self._narrow(env, rhs.name, _FLIPPED_CMP[op], lhs_iv)

    def _narrow(self, env: dict[str, Interval], name: str, op: str,
                bound: Interval) -> None:
        iv = env[name]
        if iv.is_point:
            # already exact (scalar params, constants); narrowing only
            # perturbs loop fixpoints into widening.  Guards handle the
            # infeasible-branch case.
            return
        new_lo, new_hi = iv.lo, iv.hi
        if op in ("<", "<="):
            hi = bound.hi if op == "<=" else s_sub(bound.hi, ONE)
            new_hi = s_min(new_hi, hi)
        elif op in (">", ">="):
            lo = bound.lo if op == ">=" else s_add(bound.lo, ONE)
            new_lo = s_max(new_lo, lo)
        elif op == "==":
            new_lo = s_max(new_lo, bound.lo)
            new_hi = s_min(new_hi, bound.hi)
        else:
            return
        env[name] = Interval(new_lo, new_hi, iv.dep)
        # relational step: a bound on v with v = u / C bounds u as well
        definition = self.defs.get(name)
        if definition is not None:
            _, src, divisor = definition
            if src in env:
                src_iv = env[src]
                if op in ("<", "<=", "=="):
                    src_hi = s_sub(s_mul(s_add(new_hi, ONE),
                                         Const(divisor)), ONE)
                    src_iv = Interval(src_iv.lo,
                                      s_min(src_iv.hi, src_hi),
                                      src_iv.dep)
                if op in (">", ">=", "=="):
                    src_lo = s_mul(new_lo, Const(divisor))
                    src_iv = Interval(s_max(src_iv.lo, src_lo),
                                      src_iv.hi, src_iv.dep)
                env[src] = src_iv

    # -- opcode accounting ----------------------------------------------
    def _count_op(self, kind: str, divergent: bool = False,
                  line: int = 0) -> None:
        """Record one op at the current loop weight and guard context.

        Loop-control expressions never count; address arithmetic inside
        subscripts counts only on a load chain, where the address
        computation *is* the dependent work (the CRC table walk).
        """
        if not self.record or self.ctl_depth:
            return
        if self.addr_depth and not self.chain_depth:
            return
        if not divergent:
            divergent = any(
                not g.mask and (dep_rank(g.lhs.dep) >= 2
                                or dep_rank(g.rhs.dep) >= 2)
                for g in self.guards
            )
        self.ops.append(OpEvent(
            kind=kind, weight=self.weight, guards=tuple(self.guards),
            chain=self.chain_depth > 0, divergent=divergent, line=line,
        ))

    def _expr_is_float(self, expr: Expr) -> bool:
        """Pure-AST floating-point classification from declared types."""
        expr = _strip(expr)
        if isinstance(expr, FloatLit):
            return True
        if isinstance(expr, (IntLit, StrLit)):
            return False
        if isinstance(expr, Ident):
            return expr.name in self.float_names
        if isinstance(expr, Index):
            base = _strip(expr.base)
            return isinstance(base, Ident) and (
                base.name in self.float_buffers
                or base.name in self.float_names
            )
        if isinstance(expr, Unary):
            return self._expr_is_float(expr.operand)
        if isinstance(expr, Bin):
            if expr.op in _NEGATED_CMP or expr.op in ("&&", "||"):
                return False  # comparisons and logic yield int
            return (self._expr_is_float(expr.lhs)
                    or self._expr_is_float(expr.rhs))
        if isinstance(expr, Assign):
            return self._expr_is_float(expr.target)
        if isinstance(expr, Cond):
            return (self._expr_is_float(expr.then)
                    or self._expr_is_float(expr.other))
        if isinstance(expr, Call):
            if expr.func in _FLOAT_FUNCS \
                    or expr.func.startswith(("native_", "half_")):
                return True
            if expr.func in ("min", "max", "clamp", "abs", "mad", "fma"):
                return any(self._expr_is_float(a) for a in expr.args)
            if expr.func.startswith("convert_"):
                return _is_float_type(expr.func[len("convert_"):])
            return False
        if isinstance(expr, Cast):
            return _is_float_type(expr.type_name)
        if isinstance(expr, Member):
            return self._expr_is_float(expr.base)
        if isinstance(expr, VectorCtor):
            return (_is_float_type(expr.type_name)
                    or any(self._expr_is_float(a) for a in expr.args))
        return False

    # -- expressions ----------------------------------------------------
    def eval_pure(self, expr: Expr) -> Interval:
        """Evaluate without recording accesses (guard snapshots)."""
        saved = self.record
        self.record = False
        try:
            return self.eval(expr)
        finally:
            self.record = saved

    def eval(self, expr: Expr) -> Interval:
        """Abstractly evaluate an expression."""
        if isinstance(expr, IntLit):
            return point(Const(expr.value))
        if isinstance(expr, FloatLit):
            return point(Const(expr.value))
        if isinstance(expr, StrLit):
            return top(UNIFORM)
        if isinstance(expr, Paren):
            return self.eval(expr.inner)
        if isinstance(expr, Ident):
            if expr.name in self.env:
                return self.env[expr.name]
            if expr.name in self.arrays:
                return self.arrays[expr.name]
            return top(UNIFORM)  # FLT_MAX, CLK_* enums, ...
        if isinstance(expr, Unary):
            return self._eval_unary(expr)
        if isinstance(expr, Bin):
            lhs = self.eval(expr.lhs)
            rhs = self.eval(expr.rhs)
            if expr.op in _ARITH_OPS:
                self._count_op(
                    "fp" if self._expr_is_float(expr) else "int")
            elif expr.op in _NEGATED_CMP:
                self._count_op("int", divergent=(
                    dep_rank(lhs.dep) >= 2 or dep_rank(rhs.dep) >= 2))
            return iv_binop(expr.op, lhs, rhs)
        if isinstance(expr, Assign):
            return self._eval_assign(expr)
        if isinstance(expr, Cond):
            return self._eval_cond(expr)
        if isinstance(expr, Call):
            return self._eval_call(expr)
        if isinstance(expr, Index):
            return self._eval_load(expr)
        if isinstance(expr, Member):
            base = self.eval(expr.base)
            return top(base.dep)
        if isinstance(expr, Cast):
            return self.eval(expr.operand)
        if isinstance(expr, VectorCtor):
            dep: Dep = UNIFORM
            for arg in expr.args:
                dep = dep_join(dep, self.eval(arg).dep)
            return top(dep)
        raise TypeError(f"unknown expression node {type(expr).__name__}")

    def _eval_unary(self, expr: Unary) -> Interval:
        if expr.op in ("++", "--"):
            target = _strip(expr.operand)
            value = self.eval(expr.operand)
            delta = ONE if expr.op == "++" else Const(-1)
            updated = iv_add(value, point(delta))
            if isinstance(target, Ident) and target.name in self.env:
                self.env[target.name] = updated
            self._count_op("int")
            return updated if expr.prefix else value
        value = self.eval(expr.operand)
        if expr.op == "-":
            self._count_op(
                "fp" if self._expr_is_float(expr.operand) else "int")
            return iv_neg(value)
        if expr.op == "+":
            return value
        if expr.op == "!":
            self._count_op("int", divergent=dep_rank(value.dep) >= 2)
            return Interval(ZERO, ONE, value.dep)
        self._count_op("int")
        return top(value.dep)  # ~

    def _eval_assign(self, expr: Assign) -> Interval:
        value = self.eval(expr.value)
        target = _strip(expr.target)
        if expr.op != "=":
            current = self.eval_pure(expr.target) \
                if not isinstance(target, Index) else None
            if isinstance(target, Index):
                current = self._eval_load(target, record=False)
            assert current is not None
            value = iv_binop(expr.op[:-1], current, value)
            self._count_op("fp" if (self._expr_is_float(expr.target)
                                    or self._expr_is_float(expr.value))
                           else "int")
        if isinstance(target, Ident):
            self.env[target.name] = value
            if expr.op == "=":
                self._note_def(target.name, expr.value)
            return value
        if isinstance(target, Index):
            base = _strip(target.base)
            self.addr_depth += 1
            try:
                index = self.eval(target.index)
            finally:
                self.addr_depth -= 1
            if isinstance(base, Ident) and base.name in self.buffers:
                self._record(base.name, index, is_write=True,
                             line=_line_of(target))
            elif isinstance(base, Ident) and base.name in self.arrays:
                if base.name in self.local_arrays:
                    self._record(base.name, index, is_write=True,
                                 line=_line_of(target))
                cell = self.arrays[base.name]
                self.arrays[base.name] = iv_join(cell, value) \
                    if cell != value else cell
            return value
        if isinstance(target, Member):
            base = _strip(target.base)
            if isinstance(base, Ident) and base.name in self.env:
                self.env[base.name] = top(value.dep)
            return value
        return value

    def _eval_cond(self, expr: Cond) -> Interval:
        self.eval(expr.cond)
        then_env, then_guards = self._refined(expr.cond, negate=False)
        else_env, else_guards = self._refined(expr.cond, negate=True)
        saved, saved_guards = self.env, self.guards
        self.env = then_env
        self.guards = saved_guards + then_guards
        then_iv = self.eval(expr.then)
        self.env = else_env
        self.guards = saved_guards + else_guards
        else_iv = self.eval(expr.other)
        self.env, self.guards = saved, saved_guards
        then_iv = self._clamp_by_cond(expr.cond, expr.then, then_iv,
                                      negate=False)
        else_iv = self._clamp_by_cond(expr.cond, expr.other, else_iv,
                                      negate=True)
        return iv_join(then_iv, else_iv)

    def _clamp_by_cond(self, cond: Expr, arm: Expr, iv: Interval,
                       negate: bool) -> Interval:
        """Syntactic refinement: ``(E < B) ? E : ...`` clamps the arm
        that *is* the compared expression (the DWT edge-mirror idiom)."""
        cond = _strip(cond)
        if not (isinstance(cond, Bin) and cond.op in _NEGATED_CMP):
            return iv
        if _strip(arm) != _strip(cond.lhs):
            return iv
        op = _NEGATED_CMP[cond.op] if negate else cond.op
        bound = self.eval_pure(cond.rhs)
        if op == "<":
            return Interval(iv.lo, s_min(iv.hi, s_sub(bound.hi, ONE)),
                            iv.dep)
        if op == "<=":
            return Interval(iv.lo, s_min(iv.hi, bound.hi), iv.dep)
        if op == ">":
            return Interval(s_max(iv.lo, s_add(bound.lo, ONE)), iv.hi,
                            iv.dep)
        if op == ">=":
            return Interval(s_max(iv.lo, bound.lo), iv.hi, iv.dep)
        return iv

    def _eval_call(self, expr: Call) -> Interval:
        args = [self.eval(a) for a in expr.args]
        name = expr.func
        if name in ("mad", "fma") and len(args) == 3:
            self._count_op("fp")
            self._count_op("fp")
        elif name in ("min", "max", "clamp", "abs") and args:
            self._count_op(
                "fp" if any(self._expr_is_float(a) for a in expr.args)
                else "int",
                divergent=any(dep_rank(a.dep) >= 2 for a in args))
        elif name in _FLOAT_FUNCS \
                or name.startswith(("native_", "half_")):
            self._count_op("fp")
        if name in ("get_global_id", "get_local_id", "get_group_id"):
            dim = 0
            if expr.args:
                const = args[0].const_value()
                dim = int(const) if const is not None else 0
            syms = {"get_global_id": _GS, "get_local_id": _LS,
                    "get_group_id": _NG}[name]
            hi = s_sub(Sym(syms[dim]), ONE)
            return Interval(ZERO, hi, affine(1))
        if name == "get_global_size":
            dim = int(args[0].const_value() or 0) if args else 0
            return point(Sym(_GS[dim]))
        if name == "get_local_size":
            dim = int(args[0].const_value() or 0) if args else 0
            return point(Sym(_LS[dim]))
        if name == "get_num_groups":
            dim = int(args[0].const_value() or 0) if args else 0
            return point(Sym(_NG[dim]))
        if name == "min" and len(args) == 2:
            return iv_min(args[0], args[1])
        if name == "max" and len(args) == 2:
            return iv_max(args[0], args[1])
        if name == "clamp" and len(args) == 3:
            return iv_min(iv_max(args[0], args[1]), args[2])
        if name == "abs" and len(args) == 1:
            return iv_max(args[0], iv_neg(args[0]))
        if name in ("barrier", "work_group_barrier"):
            # accesses before and after a work-group barrier are in
            # different epochs and cannot race with each other
            self.epoch += 1
            return top(UNIFORM)
        dep: Dep = UNIFORM
        for arg in args:
            dep = dep_join(dep, arg.dep)
        return top(dep)  # math built-ins, barrier, ...

    def _eval_load(self, expr: Index, record: bool = True) -> Interval:
        base = _strip(expr.base)
        self.addr_depth += 1
        try:
            index = self.eval(expr.index)
        finally:
            self.addr_depth -= 1
        if isinstance(base, Ident) and base.name in self.buffers:
            if record:
                self._record(base.name, index, is_write=False,
                             line=_line_of(expr))
            return top(INDIRECT)
        if isinstance(base, Ident) and base.name in self.arrays:
            if record and base.name in self.local_arrays:
                self._record(base.name, index, is_write=False,
                             line=_line_of(expr))
            return self.arrays[base.name]
        self.eval(expr.base)
        return top(INDIRECT)

    def _record(self, param: str, index: Interval, is_write: bool,
                line: int) -> None:
        if not self.record:
            return
        if param in self.buffers:
            buf = self.buffers[param]
            elem_size = type_sizeof(buf.type_name)
            space = "local" if buf.address_space == "local" else "global"
        else:
            elem_size = self.local_arrays[param]
            space = "local"
        self.accesses.append(Access(
            param=param, index=index, elem_size=elem_size,
            is_write=is_write, guards=tuple(self.guards), line=line,
            space=space, epoch=self.epoch, weight=self.weight,
        ))


_FLIPPED_CMP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                "==": "==", "!=": "!="}


def _strip(expr: Expr) -> Expr:
    """Remove redundant parentheses."""
    while isinstance(expr, Paren):
        expr = expr.inner
    return expr


def _line_of(expr: Expr) -> int:
    """Best-effort source line for an access (via an embedded call)."""
    if isinstance(expr, Call):
        return expr.line
    return 0


def interpret_kernel(kernel: KernelDef,
                     macros: dict[str, float] | None = None) -> KernelSummary:
    """Abstractly interpret one kernel under the given build macros."""
    with get_tracer().span("absint_interpret", phase="absint",
                           kernel=kernel.name):
        return _Interp(kernel, macros or {}).run()


# ---------------------------------------------------------------------------
# Launch-model evaluation: the §4.4 working-set cross-check
# ---------------------------------------------------------------------------

#: Bytes of per-buffer disagreement tolerated by the cross-check
#: (sub-buffer alignment padding; see docs/analysis.md).
SLACK_PER_BUFFER = 64


@dataclass
class StaticFootprint:
    """Per-buffer extents derived by abstract interpretation."""

    per_buffer: dict[str, int]
    fallbacks: tuple[str, ...]  # buffers priced at their declared size
    strides: dict[str, dict[str, str]]  # kernel -> param -> class
    symbolic: dict[str, dict[str, str]]  # kernel -> param -> index range

    @property
    def total_bytes(self) -> int:
        """The static working-set estimate for the whole model."""
        return sum(self.per_buffer.values())


@dataclass
class FootprintComparison:
    """Static-vs-runtime working-set comparison for one benchmark/size."""

    benchmark: str
    size: str
    static_bytes: int
    runtime_bytes: int
    slack_bytes: int
    per_buffer: dict[str, int]
    fallbacks: tuple[str, ...]

    @property
    def delta(self) -> int:
        """Signed static-minus-runtime difference in bytes."""
        return self.static_bytes - self.runtime_bytes

    @property
    def ok(self) -> bool:
        """Whether the two working sets agree within the slack."""
        return abs(self.delta) <= self.slack_bytes


def _launch_env(launch: "object") -> dict[str, float]:
    """Numeric symbol environment for one launch."""
    env: dict[str, float] = {}
    for name, value in launch.scalars.items():  # type: ignore[attr-defined]
        env[name] = float(value)
    gsize = tuple(launch.global_size)  # type: ignore[attr-defined]
    lsize = launch.local_size  # type: ignore[attr-defined]
    gs = gsize + (1,) * (3 - len(gsize))
    if lsize is None:
        # the NDRange default: groups of up to 64 along dimension 0
        ls = (min(64, gs[0]) or 1, 1, 1)
    else:
        padded = tuple(lsize) + (1,) * (3 - len(lsize))
        ls = (padded[0] or 1, padded[1] or 1, padded[2] or 1)
    for dim in range(3):
        env[_GS[dim]] = float(gs[dim])
        env[_LS[dim]] = float(ls[dim])
        env[_NG[dim]] = float(-(-gs[dim] // ls[dim]))
    return env


def static_footprint(model: "object") -> StaticFootprint:
    """Evaluate a :class:`~repro.dwarfs.base.StaticLaunchModel`.

    Every launch substitutes its scalars and NDRange into the symbolic
    access ranges of its kernel; per-buffer extents are the maximum
    touched byte over all launches.  A buffer whose index bound is
    unbounded (indirect addressing) or that only a body-less kernel
    binds is priced at its declared size, as is a buffer the kernels
    never see (host-side staging).
    """
    with get_tracer().span("absint_static_footprint", phase="absint"):
        return _static_footprint(model)


def _static_footprint(model: "object") -> StaticFootprint:
    """The :func:`static_footprint` evaluation, outside its phase span."""
    kernels = {k.name: k for k in parse_source(model.source).kernels}  # type: ignore[attr-defined]
    macros = dict(model.macros)  # type: ignore[attr-defined]
    summaries: dict[str, KernelSummary] = {}
    computed: dict[str, int] = {key: 0 for key in model.buffers}  # type: ignore[attr-defined]
    fallback: set[str] = set()
    strides: dict[str, dict[str, str]] = {}
    symbolic: dict[str, dict[str, str]] = {}

    for launch in model.launches:  # type: ignore[attr-defined]
        name = launch.kernel
        if name not in summaries:
            if name not in kernels:
                raise CLSourceError(
                    f"launch model references unknown kernel {name!r}"
                )
            summaries[name] = interpret_kernel(kernels[name], macros)
            strides[name] = summaries[name].strides()
            symbolic[name] = {
                a.param: str(a.index)
                for a in summaries[name].accesses
            }
        summary = summaries[name]
        if summary.opaque:
            # nothing to interpret: price every bound buffer at its
            # declared size
            for key, _offset in launch.buffers.values():
                fallback.add(key)
            continue
        env = _launch_env(launch)
        for access in summary.accesses:
            bound = launch.buffers.get(access.param)
            if bound is None:
                continue
            key, offset = bound
            if not all(g.feasible(env) for g in access.guards):
                continue
            hi = sym_eval(access.index.hi, env)
            if not math.isfinite(hi):
                fallback.add(key)
                continue
            if hi < 0:
                continue
            extent = offset + (int(hi) + 1) * access.elem_size
            if extent > computed[key]:
                computed[key] = extent

    per_buffer: dict[str, int] = {}
    for key, buf in model.buffers.items():  # type: ignore[attr-defined]
        if key in fallback or not buf.kernel_bound:
            per_buffer[key] = max(buf.nbytes, computed.get(key, 0))
        else:
            per_buffer[key] = computed.get(key, 0)
    return StaticFootprint(
        per_buffer=per_buffer,
        fallbacks=tuple(sorted(fallback)),
        strides=strides,
        symbolic=symbolic,
    )


def verify_benchmark_footprint(
    name: str, size: str
) -> FootprintComparison | None:
    """Cross-check one benchmark's static vs runtime working set.

    Returns ``None`` when the benchmark has no such size preset or
    declares no static launch model.  The comparison's ``ok`` property
    is the §4.4 acceptance test: agreement within
    :data:`SLACK_PER_BUFFER` bytes per buffer.
    """
    from ..dwarfs import registry

    cls = registry.get_benchmark(name)
    if size not in cls.presets:
        return None
    bench = cls.from_size(size)
    model = bench.static_launches()
    if model is None:
        return None
    static = static_footprint(model)
    runtime = bench.footprint_bytes()
    return FootprintComparison(
        benchmark=name,
        size=size,
        static_bytes=static.total_bytes,
        runtime_bytes=runtime,
        slack_bytes=SLACK_PER_BUFFER * len(model.buffers),
        per_buffer=static.per_buffer,
        fallbacks=static.fallbacks,
    )


def benchmark_strides(name: str, size: str | None = None,
                      ) -> dict[str, dict[str, str]]:
    """Per-kernel, per-parameter stride classes for one benchmark."""
    from ..dwarfs import registry

    cls = registry.get_benchmark(name)
    sizes = cls.available_sizes()
    chosen = size if size in sizes else sizes[0]
    bench = cls.from_size(chosen)
    model = bench.static_launches()
    if model is None:
        return {}
    return static_footprint(model).strides
