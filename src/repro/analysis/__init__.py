"""Kernel sanitizer and lint suite for the simulated OpenCL runtime.

An Oclgrind-style analysis layer (paper §4.4's verification step,
automated): a **static lint** pass over OpenCL C sources and host-side
argument bindings (:mod:`repro.analysis.lint`) and an opt-in **runtime
sanitizer** that executes kernels against shadow-memory guards
(:mod:`repro.analysis.sanitize`).  Both emit :class:`Finding` records
collected by a :class:`Report`; :func:`run_suite` drives the whole
thing and backs the ``repro lint`` CLI subcommand.

On top of the textual pass sits the **kernel IR** pipeline: an OpenCL
C frontend (:mod:`repro.analysis.frontend`), per-kernel control-flow
graphs with dominator analyses (:mod:`repro.analysis.cfg`), and an
abstract interpreter deriving symbolic memory footprints
(:mod:`repro.analysis.absint`).  :func:`run_deep_suite` (``repro lint
--deep``) layers the IR-exact checks and the §4.4 static-vs-runtime
working-set verification on the shallow suite.

See docs/analysis.md for the check catalogue, severity semantics,
suppression directives and the JSON report schema.
"""

from .absint import (
    SLACK_PER_BUFFER,
    benchmark_strides,
    interpret_kernel,
    static_footprint,
    verify_benchmark_footprint,
)
from .accessmodel import (
    TRACE_SOURCE_ENV,
    TRACE_SOURCES,
    access_model_findings,
    classify_launch_sites,
    compare_benchmark_traces,
    ir_access_trace,
    resolve_access_trace,
    reuse_distance_summary,
    synthesize_trace,
    trace_source,
)
from .deep import deep_analyze_benchmark, run_deep_suite
from .findings import (
    FAIL_ON_CHOICES,
    JSON_SCHEMA_VERSION,
    SEVERITIES,
    Finding,
    Report,
    default_severity,
    severity_rank,
)
from .frontend import CLSyntaxError, parse_source, strip_noncode, tokenize
from .lint import lint_cl_source, lint_program
from .sanitize import GuardedNDArray, Sanitizer, sanitized
from .suite import DEFAULT_DEVICE, analyze_benchmark, run_suite

__all__ = [
    "CLSyntaxError",
    "DEFAULT_DEVICE",
    "FAIL_ON_CHOICES",
    "Finding",
    "GuardedNDArray",
    "JSON_SCHEMA_VERSION",
    "Report",
    "SEVERITIES",
    "SLACK_PER_BUFFER",
    "Sanitizer",
    "TRACE_SOURCES",
    "TRACE_SOURCE_ENV",
    "access_model_findings",
    "analyze_benchmark",
    "benchmark_strides",
    "classify_launch_sites",
    "compare_benchmark_traces",
    "deep_analyze_benchmark",
    "default_severity",
    "interpret_kernel",
    "ir_access_trace",
    "lint_cl_source",
    "lint_program",
    "parse_source",
    "resolve_access_trace",
    "reuse_distance_summary",
    "run_deep_suite",
    "run_suite",
    "sanitized",
    "severity_rank",
    "static_footprint",
    "strip_noncode",
    "synthesize_trace",
    "tokenize",
    "trace_source",
    "verify_benchmark_footprint",
]
