"""Kernel sanitizer and lint suite for the simulated OpenCL runtime.

An Oclgrind-style analysis layer (paper §4.4's verification step,
automated): a **static lint** pass over OpenCL C sources and host-side
argument bindings (:mod:`repro.analysis.lint`) and an opt-in **runtime
sanitizer** that executes kernels against shadow-memory guards
(:mod:`repro.analysis.sanitize`).  Both emit :class:`Finding` records
collected by a :class:`Report`; :func:`run_suite` drives the whole
thing and backs the ``repro lint`` CLI subcommand.

See docs/analysis.md for the check catalogue, severity semantics,
suppression directives and the JSON report schema.
"""

from .findings import JSON_SCHEMA_VERSION, Finding, Report, SEVERITIES, severity_rank
from .lint import lint_cl_source, lint_program
from .sanitize import GuardedNDArray, Sanitizer, sanitized
from .suite import DEFAULT_DEVICE, analyze_benchmark, run_suite

__all__ = [
    "DEFAULT_DEVICE",
    "Finding",
    "GuardedNDArray",
    "JSON_SCHEMA_VERSION",
    "Report",
    "SEVERITIES",
    "Sanitizer",
    "analyze_benchmark",
    "lint_cl_source",
    "lint_program",
    "run_suite",
    "sanitized",
    "severity_rank",
]
