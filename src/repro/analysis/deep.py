"""Deep (IR-exact) analysis: the engine behind ``repro lint --deep``.

The shallow pass in :mod:`repro.analysis.lint` works on the kernel
source *text* — fast, but its ``unused-param`` and
``barrier-divergence`` checks are regex approximations.  This module
re-implements both on the typed IR (:mod:`repro.analysis.frontend` →
:mod:`repro.analysis.cfg`), adds checks only an IR can express
(definite assignment, constant-index bounds, reachability,
``reqd_work_group_size`` vs the host's enqueue), and runs the paper's
§4.4 working-set verification: each benchmark's symbolic global-memory
footprint (:mod:`repro.analysis.absint`) is cross-checked against its
runtime ``footprint_bytes()`` at every size preset.

Deep mode *composes* with the shallow suite: :func:`run_deep_suite`
runs the full lifecycle suite with the superseded regex checks
ignored, then layers the IR findings and the footprint cross-check on
top, so one report gates CI end to end.
"""

from __future__ import annotations

from ..dwarfs import registry
from ..dwarfs.base import StaticLaunchModel
from ..ocl.clsource import CLSourceError, kernel_suppressions
from .absint import static_footprint, verify_benchmark_footprint
from .accessmodel import (
    access_model_findings,
    compare_benchmark_traces,
    reuse_distance_summary,
)
from .cfg import (
    constant_index_oob,
    divergent_barriers,
    uninitialized_uses,
    unreachable_statements,
    used_names,
)
from .findings import Finding, Report, default_severity
from .frontend import KernelDef, parse_source
from .suite import DEFAULT_DEVICE, run_suite

#: Shallow regex checks replaced by their IR-exact versions in deep
#: mode (the regex findings are dropped from the composed report so a
#: defect is never double-counted).
SUPERSEDED_CHECKS = ("unused-param", "barrier-divergence")


def _suppressed(allows: set, check: str, name: str | None = None) -> bool:
    """Whether ``// repro-lint: allow(...)`` covers this finding."""
    return (check, None) in allows or (
        name is not None and (check, name) in allows
    )


def _int_macros(macros: dict[str, float]) -> dict[str, int]:
    """The integer-valued subset of a launch model's build macros."""
    return {
        name: int(value)
        for name, value in macros.items()
        if float(value) == int(value)
    }


def _padded(size: tuple[int, ...]) -> tuple[int, int, int]:
    """A work-group size padded to three dimensions."""
    full = tuple(size) + (1,) * (3 - len(size))
    return (full[0], full[1], full[2])


# ---------------------------------------------------------------------------
# IR checks over one kernel
# ---------------------------------------------------------------------------
def deep_lint_kernel(
    kernel: KernelDef,
    allows: set,
    benchmark: str | None = None,
    macros: dict[str, int] | None = None,
    launch_locals: list[tuple[int, ...] | None] | None = None,
) -> list[Finding]:
    """IR-exact checks for one parsed kernel.

    ``launch_locals`` lists the host's work-group size per enqueue of
    this kernel (``None`` for the runtime default) and feeds the
    ``reqd-work-group-size`` cross-check.  Kernels with an elided body
    (documentation-only sources) skip the body-dependent checks.
    """
    findings: list[Finding] = []
    name = kernel.name
    has_body = bool(kernel.body.stmts)

    if has_body:
        uses = used_names(kernel)
        for index, param in enumerate(kernel.params):
            if param.name in uses:
                continue
            if _suppressed(allows, "unused-param", param.name):
                continue
            findings.append(Finding(
                check="unused-param",
                severity=default_severity("unused-param"),
                benchmark=benchmark, kernel=name, argument=param.name,
                location=f"argument {index}",
                message=f"kernel parameter {param.name!r} is never used "
                        "(IR use-def)",
                hint="remove the parameter (and its host-side set_arg) or "
                     "suppress with // repro-lint: allow(unused-param: "
                     f"{param.name})",
            ))

        if not _suppressed(allows, "barrier-divergence"):
            for line in divergent_barriers(kernel):
                findings.append(Finding(
                    check="barrier-divergence",
                    severity=default_severity("barrier-divergence"),
                    benchmark=benchmark, kernel=name,
                    location=f"line {line}",
                    message="barrier() is control-dependent on a "
                            "work-item-variant branch; not every work item "
                            "of a group reaches it (post-dominator exact)",
                    hint="hoist the barrier out of the divergent branch",
                ))

        if not _suppressed(allows, "unreachable-code"):
            for line in unreachable_statements(kernel):
                findings.append(Finding(
                    check="unreachable-code",
                    severity=default_severity("unreachable-code"),
                    benchmark=benchmark, kernel=name,
                    location=f"line {line}",
                    message="statement is unreachable from kernel entry",
                    hint="delete the dead statement or fix the control flow "
                         "above it",
                ))

        for var, line in uninitialized_uses(kernel):
            if _suppressed(allows, "uninit-local-var", var):
                continue
            findings.append(Finding(
                check="uninit-local-var",
                severity=default_severity("uninit-local-var"),
                benchmark=benchmark, kernel=name, argument=var,
                location=f"line {line}",
                message=f"local variable {var!r} may be read before any "
                        "assignment",
                hint="initialise the variable at its declaration",
            ))

        for array, line, index_val, extent in constant_index_oob(
            kernel, macros or {}
        ):
            if _suppressed(allows, "constant-index-oob", array):
                continue
            findings.append(Finding(
                check="constant-index-oob",
                severity=default_severity("constant-index-oob"),
                benchmark=benchmark, kernel=name, argument=array,
                location=f"line {line}",
                message=f"constant subscript {index_val} is out of bounds "
                        f"for local array {array!r} of extent {extent}",
                hint="fix the index or grow the array",
            ))

    if (
        kernel.reqd_work_group_size is not None
        and launch_locals is not None
        and not _suppressed(allows, "reqd-work-group-size")
    ):
        reqd = kernel.reqd_work_group_size
        for local in launch_locals:
            if local is None:
                findings.append(Finding(
                    check="reqd-work-group-size",
                    severity=default_severity("reqd-work-group-size"),
                    benchmark=benchmark, kernel=name,
                    message="kernel declares "
                            f"reqd_work_group_size{reqd} but the host "
                            "enqueues with no explicit work-group size "
                            "(CL_INVALID_WORK_GROUP_SIZE on a real device)",
                    hint="pass the declared size as local_size at enqueue",
                ))
                break
            if _padded(local) != reqd:
                findings.append(Finding(
                    check="reqd-work-group-size",
                    severity=default_severity("reqd-work-group-size"),
                    benchmark=benchmark, kernel=name,
                    message="host enqueues work-group size "
                            f"{_padded(local)} but the kernel declares "
                            f"reqd_work_group_size{reqd}",
                    hint="make the enqueue local size match the attribute",
                ))
                break
    return findings


# ---------------------------------------------------------------------------
# Launch-model driver: one benchmark
# ---------------------------------------------------------------------------
def deep_lint_model(
    model: StaticLaunchModel, benchmark: str | None = None
) -> list[Finding]:
    """IR checks over every kernel of one static launch model."""
    findings: list[Finding] = []
    try:
        program = parse_source(model.source)
    except CLSourceError as exc:
        findings.append(Finding(
            check="build-failure", severity="error", benchmark=benchmark,
            message=f"OpenCL C source failed to parse: {exc}",
        ))
        return findings
    suppressions = kernel_suppressions(model.source)
    macros = _int_macros(dict(model.macros))

    launch_locals: dict[str, list[tuple[int, ...] | None]] = {}
    for launch in model.launches:
        launch_locals.setdefault(launch.kernel, []).append(launch.local_size)

    for kernel in program.kernels:
        findings.extend(deep_lint_kernel(
            kernel,
            suppressions.get(kernel.name, set()),
            benchmark=benchmark,
            macros=macros,
            launch_locals=launch_locals.get(kernel.name),
        ))
    findings.extend(access_model_findings(
        model, benchmark=benchmark, suppressions=suppressions))
    return findings


def deep_analyze_benchmark(
    name: str, sizes: tuple[str, ...] | None = None
) -> tuple[list[Finding], dict]:
    """Deep-analyse one registered benchmark.

    Runs the IR checks over the benchmark's static launch model and
    cross-checks the symbolic working set against ``footprint_bytes()``
    at each requested size preset (all available sizes by default).
    Returns ``(findings, extras)`` where ``extras`` holds the JSON
    payload for the report: per-kernel stride classes and the
    per-size footprint comparison.
    """
    cls = registry.get_benchmark(name)
    available = cls.available_sizes()
    if sizes is None:
        sizes = available
    bench = cls.from_size(available[0])
    model = bench.static_launches()
    if model is None:
        return [], {}

    findings = deep_lint_model(model, benchmark=name)
    extras: dict = {
        "strides": static_footprint(model).strides,
        "footprint": {},
        "reuse": reuse_distance_summary(model),
    }

    for size in sizes:
        comparison = verify_benchmark_footprint(name, size)
        if comparison is None:
            continue
        extras["footprint"][size] = {
            "static_bytes": comparison.static_bytes,
            "runtime_bytes": comparison.runtime_bytes,
            "delta": comparison.delta,
            "slack_bytes": comparison.slack_bytes,
            "fallbacks": list(comparison.fallbacks),
            "ok": comparison.ok,
        }
        if not comparison.ok:
            findings.append(Finding(
                check="footprint-mismatch",
                severity=default_severity("footprint-mismatch"),
                benchmark=name, location=f"size {size}",
                message="symbolic working set "
                        f"({comparison.static_bytes} B) disagrees with "
                        f"runtime footprint_bytes() "
                        f"({comparison.runtime_bytes} B) by "
                        f"{comparison.delta:+d} B, beyond the "
                        f"{comparison.slack_bytes} B alignment slack",
                hint="the static launch model or the footprint formula is "
                     "wrong; reconcile them (docs/analysis.md, §4.4)",
            ))
    return findings, extras


# ---------------------------------------------------------------------------
# The composed suite
# ---------------------------------------------------------------------------
def run_deep_suite(
    benchmarks: list[str] | None = None,
    size: str | None = None,
    sanitize: bool = False,
    device_name: str = DEFAULT_DEVICE,
    ignore: tuple[str, ...] = (),
    emit_metrics: bool = True,
    traces: bool = False,
    aiwc: bool = False,
) -> Report:
    """Shallow suite plus IR checks plus the §4.4 footprint gate.

    The shallow pass runs with its regex ``unused-param`` and
    ``barrier-divergence`` ignored (the IR versions subsume them); the
    deep findings honour the caller's ``ignore`` the same way the
    shallow ones do.  Per-benchmark stride classes, footprint
    comparisons and reuse-distance summaries land in ``Report.extras``.

    ``traces`` adds the differential trace gate: for every benchmark
    the IR-synthesised trace is cross-checked against the hand-authored
    one (footprint span, indirect access, touched cache lines) at each
    size preset, emitting ``trace-divergence`` findings on disagreement
    and the comparison table under ``extras["trace_differential"]``.

    ``aiwc`` adds the AIWC differential gate: the static workload
    characterization (:mod:`repro.analysis.staticaiwc`) is compared
    metric-by-metric against the dynamic one at each size preset,
    emitting ``aiwc-divergence`` findings beyond the tolerance bands
    and both vectors under ``extras["aiwc_differential"]``.
    """
    report = run_suite(
        benchmarks=benchmarks,
        size=size,
        sanitize=sanitize,
        device_name=device_name,
        ignore=tuple(set(ignore) | set(SUPERSEDED_CHECKS)),
        emit_metrics=emit_metrics,
    )
    if benchmarks is None:
        benchmarks = [*registry.BENCHMARKS, *registry.EXTENSIONS]
    ignored = set(ignore)
    strides: dict = {}
    footprints: dict = {}
    reuse: dict = {}
    differential: dict = {}
    aiwc_differential: dict = {}
    for name in benchmarks:
        sizes = None if size is None else (size,)
        findings, extras = deep_analyze_benchmark(name, sizes=sizes)
        if traces:
            trace_findings, table = compare_benchmark_traces(
                name, sizes=sizes)
            findings.extend(trace_findings)
            if table:
                differential[name] = table
        if aiwc:
            from .staticaiwc import compare_benchmark_aiwc

            aiwc_findings, aiwc_table = compare_benchmark_aiwc(
                name, sizes=sizes)
            findings.extend(aiwc_findings)
            if aiwc_table:
                aiwc_differential[name] = aiwc_table
        for finding in findings:
            if finding.check not in ignored:
                report.add(finding)
        if extras.get("strides"):
            strides[name] = extras["strides"]
        if extras.get("footprint"):
            footprints[name] = extras["footprint"]
        if extras.get("reuse"):
            reuse[name] = extras["reuse"]
    if strides:
        report.extras["access_strides"] = strides
    if footprints:
        report.extras["footprint_verification"] = footprints
    if reuse:
        report.extras["reuse_distance"] = reuse
    if differential:
        report.extras["trace_differential"] = differential
    if aiwc_differential:
        report.extras["aiwc_differential"] = aiwc_differential
    return report
