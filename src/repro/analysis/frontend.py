"""OpenCL C frontend: tokenizer, typed AST and recursive-descent parser.

This is the first stage of the kernel IR pipeline (ISSUE 5): it turns
the OpenCL C subset used by the shipped dwarf kernels into a typed AST
that :mod:`repro.analysis.cfg` and :mod:`repro.analysis.absint` analyse
*soundly*, replacing the regex heuristics of the original lint pass.

The subset is deliberately the language of ``repro.dwarfs.kernels_cl``:
scalar/vector arithmetic, ``if``/``for``/``while``/``return``, local
array declarations, calls, subscripts, member access (``.x``), casts and
vector constructors (``(float2)(re, im)``).  Anything outside it raises
:class:`CLSyntaxError` — a :class:`~repro.ocl.clsource.CLSourceError`
subclass carrying the offending line and column.

The pretty-printer is the frontend's own correctness witness: for every
shipped kernel, ``tokenize(print_program(parse_source(src)))`` must
yield the same token sequence as ``tokenize(src)`` (asserted in the
golden-parse tests).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..ocl.clsource import CLSourceError

# ---------------------------------------------------------------------------
# Tokens
# ---------------------------------------------------------------------------

#: Token kinds produced by :func:`tokenize`.
KIND_ID = "id"
KIND_NUM = "num"
KIND_STR = "str"
KIND_CHAR = "char"
KIND_PUNCT = "punct"

_PREPROC_RE = re.compile(r"^[ \t]*#[^\n]*", re.M)

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<num>
          0[xX][0-9a-fA-F]+[uUlL]*
        | (?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fF]?
        | \d+[eE][+-]?\d+[fF]?
        | \d+(?:[fF]|[uUlL]*)
      )
    | (?P<id>[A-Za-z_]\w*)
    | (?P<str>"(?:\\.|[^"\\\n])*")
    | (?P<char>'(?:\\.|[^'\\\n])*')
    | (?P<punct>
          <<=|>>=|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|
        | [+\-*/%&|^]=
        | [-+*/%<>=!&|^~?:;,.(){}\[\]]
      )
    """,
    re.X | re.S,
)


class CLSyntaxError(CLSourceError):
    """Tokenizer/parser failure, located at ``line``/``col`` (1-based)."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} (line {line}, column {col})")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: str
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # compact, for parser error messages
        """Render as ``kind:'text'@line:col``."""
        return f"{self.kind}:{self.text!r}@{self.line}:{self.col}"


def tokenize(source: str) -> list[Token]:
    """Tokenize OpenCL C, dropping comments and preprocessor lines.

    String and character literals become single tokens (so identifier
    text inside them can never be mistaken for a use — the PR 3 lint
    false positive).  Raises :class:`CLSyntaxError` on any character
    outside the language.
    """
    blanked = _PREPROC_RE.sub(lambda m: " " * len(m.group(0)), source)
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(blanked):
        match = _TOKEN_RE.match(blanked, pos)
        if match is None:
            raise CLSyntaxError(
                f"unexpected character {blanked[pos]!r}",
                line, pos - line_start + 1,
            )
        text = match.group(0)
        kind = match.lastgroup
        if kind not in ("ws", "comment"):
            tokens.append(Token(
                kind=str(kind), text=text,
                line=line, col=pos - line_start + 1,
            ))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rfind("\n") + 1
        pos = match.end()
    return tokens


#: The tokenizer's non-code alternates, reused for position-preserving
#: stripping: comments and string/char literals (in that order, so a
#: ``//`` inside a string does not start a comment and vice versa).
_NONCODE_RE = re.compile(
    r"""//[^\n]*|/\*.*?\*/|"(?:\\.|[^"\\\n])*"|'(?:\\.|[^'\\\n])*'""",
    re.S,
)


def strip_noncode(text: str) -> str:
    """Blank comments and string/char literals, preserving positions.

    Every non-code character (except newlines, kept for line numbers)
    becomes a space, so byte offsets, line and column numbers are
    unchanged.  This is the comment/string stripping the regex lint
    checks route through: an identifier inside a comment or literal can
    no longer count as a "use".
    """
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return _NONCODE_RE.sub(blank, text)


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

#: Byte width of every scalar type in the subset.
SCALAR_SIZEOF = {
    "bool": 1, "char": 1, "uchar": 1,
    "short": 2, "ushort": 2,
    "int": 4, "uint": 4, "float": 4,
    "long": 8, "ulong": 8, "double": 8,
    "size_t": 8, "void": 0,
}

_VECTOR_RE = re.compile(
    r"^(char|uchar|short|ushort|int|uint|long|ulong|float|double)"
    r"(2|3|4|8|16)$"
)

#: Address-space and access qualifiers legal before a type.
QUALIFIER_NAMES = frozenset({
    "__global", "global", "__local", "local", "__constant", "constant",
    "__private", "private", "const", "restrict", "volatile",
    "__read_only", "__write_only", "read_only", "write_only",
})


def is_type_name(name: str) -> bool:
    """Whether ``name`` spells a scalar or vector type of the subset."""
    return name in SCALAR_SIZEOF or _VECTOR_RE.match(name) is not None


def type_sizeof(name: str) -> int:
    """Byte width of a scalar or vector type name.

    Vector types follow the OpenCL rule that a 3-vector is stored like
    a 4-vector.  Unknown names raise :class:`CLSourceError`.
    """
    if name in SCALAR_SIZEOF:
        return SCALAR_SIZEOF[name]
    match = _VECTOR_RE.match(name)
    if match is None:
        raise CLSourceError(f"unknown OpenCL C type {name!r}")
    lanes = int(match.group(2))
    if lanes == 3:
        lanes = 4
    return SCALAR_SIZEOF[match.group(1)] * lanes


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Node:
    """Base class for every AST node (expressions and statements)."""


class Expr(Node):
    """Base class for expression nodes."""


@dataclass
class Ident(Expr):
    """A name use."""

    name: str


@dataclass
class IntLit(Expr):
    """Integer literal; ``text`` preserves the source spelling."""

    value: int
    text: str


@dataclass
class FloatLit(Expr):
    """Floating literal; ``text`` preserves the source spelling."""

    value: float
    text: str


@dataclass
class StrLit(Expr):
    """String or character literal (spelling kept verbatim)."""

    text: str


@dataclass
class Paren(Expr):
    """An explicitly parenthesised expression (kept for round-trip)."""

    inner: Expr


@dataclass
class Unary(Expr):
    """Prefix (``-x``, ``!x``, ``~x``, ``++x``) or postfix (``x++``)."""

    op: str
    operand: Expr
    prefix: bool = True


@dataclass
class Bin(Expr):
    """A binary operator application."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    """Assignment, plain (``=``) or compound (``+=``, ``>>=``, ...)."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Cond(Expr):
    """The ternary ``cond ? then : other``."""

    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Call(Expr):
    """A function call; ``func`` is the callee name."""

    func: str
    args: list[Expr]
    line: int = 0


@dataclass
class Index(Expr):
    """Array subscript ``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    """Member access ``base.name`` (vector components)."""

    base: Expr
    name: str


@dataclass
class Cast(Expr):
    """A C cast ``(type) operand``."""

    type_name: str
    operand: Expr


@dataclass
class VectorCtor(Expr):
    """OpenCL vector constructor ``(float2)(re, im)``."""

    type_name: str
    args: list[Expr]


class Stmt(Node):
    """Base class for statement nodes."""


@dataclass
class Declarator:
    """One name in a declaration: ``name[array]... = init``."""

    name: str
    array_sizes: list[Expr] = field(default_factory=list)
    init: Expr | None = None


@dataclass
class Decl(Stmt):
    """A declaration statement: qualifiers, a type, declarators."""

    quals: tuple[str, ...]
    type_name: str
    declarators: list[Declarator]
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect (assignment, call, ...)."""

    expr: Expr
    line: int = 0


@dataclass
class If(Stmt):
    """An ``if``/``else`` statement."""

    cond: Expr
    then: Stmt
    orelse: Stmt | None = None
    line: int = 0


@dataclass
class For(Stmt):
    """A ``for`` loop; ``init`` may be a declaration."""

    init: Stmt | None
    cond: Expr | None
    step: Expr | None
    body: Stmt
    line: int = 0


@dataclass
class While(Stmt):
    """A ``while`` loop."""

    cond: Expr
    body: Stmt
    line: int = 0


@dataclass
class Return(Stmt):
    """A ``return`` statement (kernels return void)."""

    value: Expr | None = None
    line: int = 0


@dataclass
class Block(Stmt):
    """A brace-delimited statement list."""

    stmts: list[Stmt]
    line: int = 0


@dataclass
class ParamDecl:
    """One kernel parameter, with its exact token spelling preserved."""

    tokens: tuple[str, ...]
    type_name: str
    name: str
    is_pointer: bool
    address_space: str  # global / local / constant / private

    @property
    def is_buffer(self) -> bool:
        """Whether this is a global/constant pointer (a device buffer)."""
        return self.is_pointer and self.address_space in ("global", "constant")


@dataclass
class KernelDef:
    """A parsed ``__kernel void name(...) { ... }`` definition."""

    name: str
    params: list[ParamDecl]
    body: Block
    reqd_work_group_size: tuple[int, int, int] | None = None
    line: int = 0

    def param(self, name: str) -> ParamDecl:
        """Look up a parameter by name (raises ``KeyError`` if absent)."""
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)


@dataclass
class ProgramAST:
    """A parsed translation unit: the kernels of one ``.cl`` source."""

    kernels: list[KernelDef]

    def kernel(self, name: str) -> KernelDef:
        """Look up a kernel by name (raises ``KeyError`` if absent)."""
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

#: Binary operator precedence (C), higher binds tighter.
_BIN_PREC = {
    "*": 10, "/": 10, "%": 10,
    "+": 9, "-": 9,
    "<<": 8, ">>": 8,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "==": 6, "!=": 6,
    "&": 5, "^": 4, "|": 3,
    "&&": 2, "||": 1,
}

_ASSIGN_OPS = frozenset({
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
})

_PREFIX_OPS = frozenset({"+", "-", "!", "~", "++", "--"})


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        # position of the last token, for EOF errors
        if tokens:
            last = tokens[-1]
            self._eof = (last.line, last.col + len(last.text))
        else:
            self._eof = (1, 1)

    # -- token plumbing -------------------------------------------------
    def peek(self, offset: int = 0) -> Token | None:
        """The token ``offset`` ahead, or ``None`` at end of input."""
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> Token:
        """Consume and return the next token."""
        token = self.peek()
        if token is None:
            line, col = self._eof
            raise CLSyntaxError("unexpected end of input", line, col)
        self.pos += 1
        return token

    def at(self, text: str) -> bool:
        """Whether the next token has exactly this text."""
        token = self.peek()
        return token is not None and token.text == text

    def accept(self, text: str) -> bool:
        """Consume the next token iff its text matches."""
        if self.at(text):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        """Consume the next token, failing loudly if it differs."""
        token = self.peek()
        if token is None:
            line, col = self._eof
            raise CLSyntaxError(f"expected {text!r}, got end of input",
                                line, col)
        if token.text != text:
            raise CLSyntaxError(
                f"expected {text!r}, got {token.text!r}",
                token.line, token.col,
            )
        self.pos += 1
        return token

    def error(self, message: str) -> CLSyntaxError:
        """Build a syntax error at the current token."""
        token = self.peek()
        if token is None:
            line, col = self._eof
        else:
            line, col = token.line, token.col
        return CLSyntaxError(message, line, col)

    # -- translation unit ----------------------------------------------
    def parse_program(self) -> ProgramAST:
        """Parse the whole source: a sequence of kernel definitions."""
        kernels: list[KernelDef] = []
        while self.peek() is not None:
            kernels.append(self.parse_kernel())
        return ProgramAST(kernels=kernels)

    def parse_kernel(self) -> KernelDef:
        """Parse one ``__kernel void name(params) { body }``."""
        start = self.peek()
        assert start is not None
        if start.text not in ("__kernel", "kernel"):
            raise self.error(
                f"expected '__kernel', got {start.text!r}"
            )
        self.next()
        reqd = self._parse_attributes()
        self.expect("void")
        name_tok = self.next()
        if name_tok.kind != KIND_ID:
            raise CLSyntaxError(
                f"expected kernel name, got {name_tok.text!r}",
                name_tok.line, name_tok.col,
            )
        self.expect("(")
        params: list[ParamDecl] = []
        if not self.at(")"):
            params.append(self._parse_param())
            while self.accept(","):
                params.append(self._parse_param())
        self.expect(")")
        if reqd is None:
            reqd = self._parse_attributes()
        body = self.parse_block()
        return KernelDef(name=name_tok.text, params=params, body=body,
                         reqd_work_group_size=reqd, line=start.line)

    def _parse_attributes(self) -> tuple[int, int, int] | None:
        """Parse ``__attribute__((reqd_work_group_size(x,y,z)))`` if present."""
        reqd: tuple[int, int, int] | None = None
        while self.at("__attribute__"):
            self.next()
            self.expect("(")
            self.expect("(")
            attr = self.next()
            self.expect("(")
            args: list[int] = []
            while not self.at(")"):
                tok = self.next()
                if tok.kind == KIND_NUM:
                    args.append(int(tok.text.rstrip("uUlL"), 0))
                if not self.at(")"):
                    self.expect(",")
            self.expect(")")
            self.expect(")")
            self.expect(")")
            if attr.text == "reqd_work_group_size" and len(args) == 3:
                reqd = (args[0], args[1], args[2])
        return reqd

    def _parse_param(self) -> ParamDecl:
        """Parse one parameter, keeping its exact token spelling."""
        tokens: list[str] = []
        quals: list[str] = []
        type_name: str | None = None
        name: str | None = None
        is_pointer = False
        while not self.at(",") and not self.at(")"):
            token = self.next()
            tokens.append(token.text)
            if token.text == "*":
                is_pointer = True
            elif token.text in QUALIFIER_NAMES:
                quals.append(token.text)
            elif token.kind == KIND_ID:
                if type_name is None:
                    type_name = token.text
                elif name is None:
                    name = token.text
                else:
                    raise CLSyntaxError(
                        f"unexpected token {token.text!r} in parameter",
                        token.line, token.col,
                    )
            else:
                raise CLSyntaxError(
                    f"unexpected token {token.text!r} in parameter",
                    token.line, token.col,
                )
        if type_name is None or name is None:
            raise self.error("incomplete kernel parameter")
        address_space = "private"
        for qual in quals:
            cleaned = qual.lstrip("_")
            if cleaned in ("global", "local", "constant", "private"):
                address_space = cleaned
        return ParamDecl(
            tokens=tuple(tokens), type_name=type_name, name=name,
            is_pointer=is_pointer,
            address_space=address_space if is_pointer else "private",
        )

    # -- statements -----------------------------------------------------
    def parse_block(self) -> Block:
        """Parse ``{ stmt* }``."""
        brace = self.expect("{")
        stmts: list[Stmt] = []
        while not self.at("}"):
            stmts.append(self.parse_stmt())
        self.expect("}")
        return Block(stmts=stmts, line=brace.line)

    def _at_decl(self) -> bool:
        """Whether the upcoming tokens start a declaration."""
        token = self.peek()
        if token is None or token.kind != KIND_ID:
            return False
        if token.text in QUALIFIER_NAMES:
            return True
        # `type name` — a type keyword followed by an identifier
        nxt = self.peek(1)
        return (
            is_type_name(token.text)
            and nxt is not None
            and nxt.kind == KIND_ID
        )

    def parse_stmt(self) -> Stmt:
        """Parse one statement."""
        token = self.peek()
        if token is None:
            raise self.error("expected a statement")
        if token.text == "{":
            return self.parse_block()
        if token.text == "if":
            return self._parse_if()
        if token.text == "for":
            return self._parse_for()
        if token.text == "while":
            return self._parse_while()
        if token.text == "return":
            self.next()
            value = None if self.at(";") else self.parse_expr()
            self.expect(";")
            return Return(value=value, line=token.line)
        if self._at_decl():
            decl = self._parse_decl()
            self.expect(";")
            return decl
        expr = self.parse_expr()
        self.expect(";")
        return ExprStmt(expr=expr, line=token.line)

    def _parse_if(self) -> If:
        """Parse ``if (cond) stmt [else stmt]``."""
        token = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_stmt()
        orelse = self.parse_stmt() if self.accept("else") else None
        return If(cond=cond, then=then, orelse=orelse, line=token.line)

    def _parse_for(self) -> For:
        """Parse ``for (init; cond; step) stmt``."""
        token = self.expect("for")
        self.expect("(")
        init: Stmt | None = None
        if not self.at(";"):
            if self._at_decl():
                init = self._parse_decl()
            else:
                first = self.peek()
                assert first is not None
                init = ExprStmt(expr=self.parse_expr(), line=first.line)
        self.expect(";")
        cond = None if self.at(";") else self.parse_expr()
        self.expect(";")
        step = None if self.at(")") else self.parse_expr()
        self.expect(")")
        body = self.parse_stmt()
        return For(init=init, cond=cond, step=step, body=body,
                   line=token.line)

    def _parse_while(self) -> While:
        """Parse ``while (cond) stmt``."""
        token = self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_stmt()
        return While(cond=cond, body=body, line=token.line)

    def _parse_decl(self) -> Decl:
        """Parse ``quals type declarator (, declarator)*`` (no ``;``)."""
        start = self.peek()
        assert start is not None
        quals: list[str] = []
        while True:
            token = self.peek()
            if token is not None and token.text in QUALIFIER_NAMES:
                quals.append(self.next().text)
            else:
                break
        type_tok = self.next()
        if type_tok.kind != KIND_ID:
            raise CLSyntaxError(
                f"expected a type name, got {type_tok.text!r}",
                type_tok.line, type_tok.col,
            )
        declarators = [self._parse_declarator()]
        while self.accept(","):
            declarators.append(self._parse_declarator())
        return Decl(quals=tuple(quals), type_name=type_tok.text,
                    declarators=declarators, line=start.line)

    def _parse_declarator(self) -> Declarator:
        """Parse ``name ([size])* (= init)?``."""
        name_tok = self.next()
        if name_tok.kind != KIND_ID:
            raise CLSyntaxError(
                f"expected a declared name, got {name_tok.text!r}",
                name_tok.line, name_tok.col,
            )
        array_sizes: list[Expr] = []
        while self.accept("["):
            array_sizes.append(self.parse_expr())
            self.expect("]")
        init = self._parse_assign() if self.accept("=") else None
        return Declarator(name=name_tok.text, array_sizes=array_sizes,
                          init=init)

    # -- expressions ----------------------------------------------------
    def parse_expr(self) -> Expr:
        """Parse a full expression (assignment level, no comma operator)."""
        return self._parse_assign()

    def _parse_assign(self) -> Expr:
        expr = self._parse_ternary()
        token = self.peek()
        if token is not None and token.text in _ASSIGN_OPS:
            self.next()
            value = self._parse_assign()  # right-associative
            return Assign(op=token.text, target=expr, value=value)
        return expr

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(1)
        if self.accept("?"):
            then = self._parse_assign()
            self.expect(":")
            other = self._parse_assign()
            return Cond(cond=cond, then=then, other=other)
        return cond

    def _parse_binary(self, min_prec: int) -> Expr:
        lhs = self._parse_unary()
        while True:
            token = self.peek()
            if token is None:
                return lhs
            prec = _BIN_PREC.get(token.text)
            if prec is None or prec < min_prec:
                return lhs
            self.next()
            rhs = self._parse_binary(prec + 1)
            lhs = Bin(op=token.text, lhs=lhs, rhs=rhs)

    def _parse_unary(self) -> Expr:
        token = self.peek()
        if token is not None and token.text in _PREFIX_OPS:
            self.next()
            operand = self._parse_unary()
            return Unary(op=token.text, operand=operand, prefix=True)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            token = self.peek()
            if token is None:
                return expr
            if token.text == "[":
                self.next()
                index = self.parse_expr()
                self.expect("]")
                expr = Index(base=expr, index=index)
            elif token.text == ".":
                self.next()
                member = self.next()
                if member.kind != KIND_ID:
                    raise CLSyntaxError(
                        f"expected a member name, got {member.text!r}",
                        member.line, member.col,
                    )
                expr = Member(base=expr, name=member.text)
            elif token.text == "(" and isinstance(expr, Ident):
                self.next()
                args: list[Expr] = []
                if not self.at(")"):
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                expr = Call(func=expr.name, args=args, line=token.line)
            elif token.text in ("++", "--"):
                self.next()
                expr = Unary(op=token.text, operand=expr, prefix=False)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if token is None:
            raise self.error("expected an expression")
        if token.text == "(":
            # cast, vector constructor, or parenthesised expression
            nxt = self.peek(1)
            after = self.peek(2)
            if (
                nxt is not None and nxt.kind == KIND_ID
                and is_type_name(nxt.text)
                and after is not None and after.text == ")"
            ):
                self.next()
                type_name = self.next().text
                self.expect(")")
                if _VECTOR_RE.match(type_name) and self.at("("):
                    self.next()
                    args = [self.parse_expr()]
                    while self.accept(","):
                        args.append(self.parse_expr())
                    self.expect(")")
                    return VectorCtor(type_name=type_name, args=args)
                return Cast(type_name=type_name,
                            operand=self._parse_unary())
            self.next()
            inner = self.parse_expr()
            self.expect(")")
            return Paren(inner=inner)
        if token.kind == KIND_NUM:
            self.next()
            return _make_number(token)
        if token.kind in (KIND_STR, KIND_CHAR):
            self.next()
            return StrLit(text=token.text)
        if token.kind == KIND_ID:
            self.next()
            return Ident(name=token.text)
        raise self.error(f"unexpected token {token.text!r}")


def _make_number(token: Token) -> Expr:
    """Build an :class:`IntLit` or :class:`FloatLit` from a num token."""
    text = token.text
    lowered = text.lower()
    if lowered.startswith("0x"):
        return IntLit(value=int(lowered.rstrip("ul"), 16), text=text)
    if "." in text or "e" in lowered.strip("f") or lowered.endswith("f"):
        return FloatLit(value=float(lowered.rstrip("f")), text=text)
    return IntLit(value=int(lowered.rstrip("ul")), text=text)


def parse_source(source: str) -> ProgramAST:
    """Tokenize and parse one OpenCL C source string."""
    return _Parser(tokenize(source), source).parse_program()


def kernel_asts(source: str) -> dict[str, KernelDef]:
    """Parse a source and return its kernels keyed by name."""
    program = parse_source(source)
    return {k.name: k for k in program.kernels}


# ---------------------------------------------------------------------------
# Pretty-printer
# ---------------------------------------------------------------------------


def _expr_tokens(expr: Expr, out: list[str]) -> None:
    """Append the token spelling of ``expr`` to ``out``."""
    if isinstance(expr, Ident):
        out.append(expr.name)
    elif isinstance(expr, (IntLit, FloatLit, StrLit)):
        out.append(expr.text)
    elif isinstance(expr, Paren):
        out.append("(")
        _expr_tokens(expr.inner, out)
        out.append(")")
    elif isinstance(expr, Unary):
        if expr.prefix:
            out.append(expr.op)
            _expr_tokens(expr.operand, out)
        else:
            _expr_tokens(expr.operand, out)
            out.append(expr.op)
    elif isinstance(expr, Bin):
        _expr_tokens(expr.lhs, out)
        out.append(expr.op)
        _expr_tokens(expr.rhs, out)
    elif isinstance(expr, Assign):
        _expr_tokens(expr.target, out)
        out.append(expr.op)
        _expr_tokens(expr.value, out)
    elif isinstance(expr, Cond):
        _expr_tokens(expr.cond, out)
        out.append("?")
        _expr_tokens(expr.then, out)
        out.append(":")
        _expr_tokens(expr.other, out)
    elif isinstance(expr, Call):
        out.append(expr.func)
        out.append("(")
        for i, arg in enumerate(expr.args):
            if i:
                out.append(",")
            _expr_tokens(arg, out)
        out.append(")")
    elif isinstance(expr, Index):
        _expr_tokens(expr.base, out)
        out.append("[")
        _expr_tokens(expr.index, out)
        out.append("]")
    elif isinstance(expr, Member):
        _expr_tokens(expr.base, out)
        out.append(".")
        out.append(expr.name)
    elif isinstance(expr, Cast):
        out.extend(["(", expr.type_name, ")"])
        _expr_tokens(expr.operand, out)
    elif isinstance(expr, VectorCtor):
        out.extend(["(", expr.type_name, ")", "("])
        for i, arg in enumerate(expr.args):
            if i:
                out.append(",")
            _expr_tokens(arg, out)
        out.append(")")
    else:  # pragma: no cover - exhaustive over the AST
        raise TypeError(f"unknown expression node {type(expr).__name__}")


def _stmt_lines(stmt: Stmt, indent: int, out: list[str]) -> None:
    """Append the pretty-printed lines of ``stmt`` to ``out``."""
    pad = "    " * indent
    if isinstance(stmt, Block):
        out.append(pad + "{")
        for inner in stmt.stmts:
            _stmt_lines(inner, indent + 1, out)
        out.append(pad + "}")
    elif isinstance(stmt, Decl):
        out.append(pad + _decl_text(stmt) + ";")
    elif isinstance(stmt, ExprStmt):
        tokens: list[str] = []
        _expr_tokens(stmt.expr, tokens)
        out.append(pad + " ".join(tokens) + ";")
    elif isinstance(stmt, Return):
        if stmt.value is None:
            out.append(pad + "return;")
        else:
            tokens = []
            _expr_tokens(stmt.value, tokens)
            out.append(pad + "return " + " ".join(tokens) + ";")
    elif isinstance(stmt, If):
        tokens = []
        _expr_tokens(stmt.cond, tokens)
        out.append(pad + "if (" + " ".join(tokens) + ")")
        _body_lines(stmt.then, indent, out)
        if stmt.orelse is not None:
            out.append(pad + "else")
            _body_lines(stmt.orelse, indent, out)
    elif isinstance(stmt, For):
        init = ""
        if isinstance(stmt.init, Decl):
            init = _decl_text(stmt.init)
        elif isinstance(stmt.init, ExprStmt):
            tokens = []
            _expr_tokens(stmt.init.expr, tokens)
            init = " ".join(tokens)
        cond = ""
        if stmt.cond is not None:
            tokens = []
            _expr_tokens(stmt.cond, tokens)
            cond = " " + " ".join(tokens)
        step = ""
        if stmt.step is not None:
            tokens = []
            _expr_tokens(stmt.step, tokens)
            step = " " + " ".join(tokens)
        out.append(pad + f"for ({init};{cond};{step})")
        _body_lines(stmt.body, indent, out)
    elif isinstance(stmt, While):
        tokens = []
        _expr_tokens(stmt.cond, tokens)
        out.append(pad + "while (" + " ".join(tokens) + ")")
        _body_lines(stmt.body, indent, out)
    else:  # pragma: no cover - exhaustive over the AST
        raise TypeError(f"unknown statement node {type(stmt).__name__}")


def _body_lines(stmt: Stmt, indent: int, out: list[str]) -> None:
    """Print a branch/loop body: blocks keep braces, lone stmts indent.

    Braces are never *added* — that would break the token-equivalence
    guarantee of the round-trip test.
    """
    if isinstance(stmt, Block):
        _stmt_lines(stmt, indent, out)
    else:
        _stmt_lines(stmt, indent + 1, out)


def _decl_text(decl: Decl) -> str:
    """Render a declaration without the trailing semicolon."""
    parts = list(decl.quals) + [decl.type_name]
    decls: list[str] = []
    for d in decl.declarators:
        text = d.name
        for size in d.array_sizes:
            tokens: list[str] = []
            _expr_tokens(size, tokens)
            text += "[" + " ".join(tokens) + "]"
        if d.init is not None:
            tokens = []
            _expr_tokens(d.init, tokens)
            text += " = " + " ".join(tokens)
        decls.append(text)
    return " ".join(parts) + " " + ", ".join(decls)


def print_kernel(kernel: KernelDef) -> str:
    """Pretty-print one kernel back to (token-equivalent) OpenCL C."""
    params = ", ".join(" ".join(p.tokens) for p in kernel.params)
    lines = [f"__kernel void {kernel.name}({params})"]
    if kernel.reqd_work_group_size is not None:
        x, y, z = kernel.reqd_work_group_size
        lines[0] = (
            f"__kernel __attribute__((reqd_work_group_size({x}, {y}, {z}))) "
            f"void {kernel.name}({params})"
        )
    _stmt_lines(kernel.body, 0, lines)
    return "\n".join(lines)


def print_program(program: ProgramAST) -> str:
    """Pretty-print a whole translation unit."""
    return "\n\n".join(print_kernel(k) for k in program.kernels) + "\n"


def token_texts(source: str) -> list[tuple[str, str]]:
    """The ``(kind, text)`` sequence of a source — round-trip witness."""
    return [(t.kind, t.text) for t in tokenize(source)]
