"""IR-derived memory-access model: traces, races, coalescing, reuse.

Fourth stage of the kernel IR pipeline.  The abstract interpreter
(:mod:`repro.analysis.absint`) already enumerates every global and
local memory reference of a kernel with a symbolic index interval and
a work-item dependence; this module turns that summary into the
artefacts the rest of the system consumes:

* **static trace synthesis** — :func:`synthesize_trace` lays the
  static launch model's buffers out back to back and emits a
  representative byte-address trace per launch directly from the
  classified access sites (unit/strided sweeps for affine indices,
  full-extent sweeps for loop-carried ones, deterministic uniform
  gathers for indirect ones).  :func:`resolve_access_trace` selects
  between this and the hand-authored ``Benchmark.access_trace()``
  oracle via the ``REPRO_TRACE_SOURCE`` environment toggle, so the
  cache simulator and the per-cell counter replay can run any kernel
  with a launch model — no matching hand-written trace required;

* **IR-exact checks** (``repro lint --deep``) — inter-work-item
  data-race detection (:func:`access_model_findings`; write/write and
  read/write overlap modulo the barrier epochs recorded by the
  interpreter), uncoalesced-global-access and local-memory
  bank-conflict findings;

* **reuse-distance summaries** — per-buffer LRU stack distances over
  the synthesized trace (:func:`reuse_distance_summary`), attached to
  the deep-lint extras;

* the **differential trace gate** (``repro lint --traces``) —
  :func:`compare_benchmark_traces` cross-checks the IR-derived trace
  against the hand-authored oracle per size preset: byte spans against
  the runtime footprint, indirect-access agreement against the
  declarative :class:`~repro.cache.trace.TraceSpec`, and touched
  cache-line counts within a calibrated band.

The race detector is deliberately conservative: it only reports
*provable* overlaps (identical affine coefficient, congruent bases,
numerically overlapping ranges under a concrete launch; or an
unguarded uniform-index write with more than one work item) plus
lower-confidence "potential" findings for indirect writes.  Guards
that pin an access to a single work item (``if (gid == 0))``) and
accesses separated by a barrier epoch are excluded.  Cross-work-group
races that a barrier does *not* order are out of scope (documented in
docs/analysis.md).
"""

from __future__ import annotations

import dataclasses
import math
import os
import zlib
from dataclasses import dataclass

import numpy as np

from ..cache import trace as trace_mod
from ..ocl.clsource import CLSourceError
from ..telemetry.tracer import get_tracer
from .absint import (
    Access,
    KernelSummary,
    _launch_env,
    interpret_kernel,
    stride_class,
    sym_eval,
)
from .findings import Finding, default_severity
from .frontend import parse_source

#: Environment toggle selecting the trace provenance for the cache
#: simulator and counter replay.
TRACE_SOURCE_ENV = "REPRO_TRACE_SOURCE"

#: Valid values of :data:`TRACE_SOURCE_ENV`.
TRACE_SOURCES = ("handwritten", "ir")

#: Local-memory bank model (the ubiquitous 32 x 4-byte layout).
NUM_BANKS = 32
BANK_BYTES = 4

#: A global access whose inter-work-item byte stride reaches a full
#: cache line puts every lane on its own line: fully uncoalesced.
COALESCE_LINE_BYTES = 64

#: Cache-line granularity of the differential gate and reuse summary.
LINE_BYTES = 64

#: Trace length used by the differential gate (shorter than the
#: simulator default: the gate runs over every benchmark x size).
GATE_TRACE_LEN = 50_000

#: Trace length for the reuse-distance summary (the stack-distance
#: computation is O(n log n) in pure Python).
REUSE_TRACE_LEN = 20_000

#: Differential-gate tolerance: spans and touched-line counts must
#: agree within this multiplicative factor.
SPAN_TOLERANCE = 4.0
TOUCHED_TOLERANCE = 8.0


def trace_source() -> str:
    """The selected trace provenance (``handwritten`` unless overridden)."""
    value = os.environ.get(TRACE_SOURCE_ENV, "handwritten").strip().lower()
    if value not in TRACE_SOURCES:
        raise ValueError(
            f"{TRACE_SOURCE_ENV} must be one of {TRACE_SOURCES}, "
            f"got {value!r}"
        )
    return value


# ---------------------------------------------------------------------------
# Site classification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AccessSite:
    """One classified memory reference under a concrete launch."""

    kernel: str
    param: str
    space: str  # global / local
    is_write: bool
    stride: str  # uniform / unit / strided / indirect
    coeff: int | None  # affine work-item coefficient, in elements
    elem_size: int
    lo: float  # concrete index bounds under the launch env
    hi: float
    epoch: int
    line: int
    multiplicity: int = 1  # identical references collapsed


def _affine_coeff(access: Access) -> int | None:
    """The work-item coefficient of an affine access, else ``None``."""
    dep = access.index.dep
    if dep[0] == "affine":
        return int(dep[1])
    return None


def classify_launch_sites(summary: KernelSummary,
                          env: dict[str, float]) -> list[AccessSite]:
    """Feasible access sites of one kernel under one launch env.

    Identical references (same parameter, bounds, stride and access
    kind) collapse into one site with a multiplicity count, so a loop
    body that touches ``a[i]`` three times yields one site replayed
    three times rather than three budget shares.
    """
    merged: dict[tuple, AccessSite] = {}
    for access in summary.accesses:
        if not all(g.feasible(env) for g in access.guards):
            continue
        lo = sym_eval(access.index.lo, env)
        hi = sym_eval(access.index.hi, env)
        cls = stride_class(access.index.dep)
        if not (math.isfinite(lo) and math.isfinite(hi)):
            cls = "indirect"
            lo, hi = 0.0, math.inf
        site = AccessSite(
            kernel=summary.kernel, param=access.param, space=access.space,
            is_write=access.is_write, stride=cls,
            coeff=_affine_coeff(access), elem_size=access.elem_size,
            lo=lo, hi=hi, epoch=access.epoch, line=access.line,
        )
        key = (site.param, site.space, site.is_write, site.stride,
               site.coeff, site.lo, site.hi, site.epoch)
        prev = merged.get(key)
        if prev is None:
            merged[key] = site
        else:
            merged[key] = dataclasses.replace(
                prev, multiplicity=prev.multiplicity + 1)
    return list(merged.values())


# ---------------------------------------------------------------------------
# Static trace synthesis
# ---------------------------------------------------------------------------


def buffer_layout(model: object) -> dict[str, tuple[int, int]]:
    """Back-to-back base addresses: buffer key -> (base, nbytes)."""
    layout: dict[str, tuple[int, int]] = {}
    base = 0
    for key, buf in model.buffers.items():  # type: ignore[attr-defined]
        nbytes = max(int(buf.nbytes), 0)
        layout[key] = (base, nbytes)
        base += nbytes
    return layout


def _site_stream(site: AccessSite, base: int, buf_bytes: int,
                 budget: int) -> np.ndarray:
    """Synthesize the address stream of one global-memory site."""
    esz = max(site.elem_size, 1)
    passes = min(site.multiplicity, 8)
    if site.stride == "indirect":
        span = max(buf_bytes, esz)
        seed = zlib.crc32(f"{site.kernel}:{site.param}:{site.line}".encode())
        rng = np.random.default_rng(seed)
        return trace_mod.offset_trace(
            trace_mod.random_uniform(span, budget, rng, element_bytes=esz),
            base)
    lo = int(max(site.lo, 0))
    hi = int(site.hi)
    if hi < lo:
        return np.empty(0, dtype=np.int64)
    start = base + lo * esz
    extent = (hi - lo + 1) * esz
    if buf_bytes > 0:
        extent = min(extent, max(buf_bytes - lo * esz, 0))
    if extent <= 0:
        return np.empty(0, dtype=np.int64)
    if site.stride == "uniform":
        return np.full(max(budget, 1), start, dtype=np.int64)
    byte_stride = abs(site.coeff) * esz if site.coeff else esz
    if byte_stride <= esz:
        stream = trace_mod.sequential(extent, element_bytes=esz,
                                      passes=passes, max_len=budget)
    else:
        stream = trace_mod.strided(extent, byte_stride, element_bytes=esz,
                                   passes=passes, max_len=budget)
    return trace_mod.offset_trace(stream, start)


def synthesize_trace(
    model: object, max_len: int = trace_mod.DEFAULT_MAX_LEN
) -> tuple[np.ndarray, dict[str, tuple[int, int]]]:
    """Synthesize a byte-address trace from a static launch model.

    Returns ``(trace, layout)``: the int64 trace and the back-to-back
    buffer layout it addresses into.  Launch order is preserved (a
    launch per trace segment, its sites round-robin interleaved), so
    temporal locality between kernels of one iteration survives.
    """
    with get_tracer().span("accessmodel_synthesize", phase="absint"):
        return _synthesize_trace(model, max_len)


def _synthesize_trace(
    model: object, max_len: int
) -> tuple[np.ndarray, dict[str, tuple[int, int]]]:
    kernels = {k.name: k for k in parse_source(model.source).kernels}  # type: ignore[attr-defined]
    macros = dict(model.macros)  # type: ignore[attr-defined]
    layout = buffer_layout(model)
    launches = list(model.launches)  # type: ignore[attr-defined]
    per_launch = max(max_len // max(len(launches), 1), 64)
    summaries: dict[str, KernelSummary] = {}
    parts: list[np.ndarray] = []
    for launch in launches:
        name = launch.kernel
        if name not in kernels:
            raise CLSourceError(
                f"launch model references unknown kernel {name!r}"
            )
        if name not in summaries:
            summaries[name] = interpret_kernel(kernels[name], macros)
        summary = summaries[name]
        bound = dict(launch.buffers)
        if summary.opaque:
            # body-less kernel: stream every bound buffer once
            streams = []
            for key, _offset in bound.values():
                base, nbytes = layout[key]
                streams.append(trace_mod.offset_trace(
                    trace_mod.sequential(
                        nbytes, passes=1,
                        max_len=per_launch // max(len(bound), 1)),
                    base))
            parts.append(trace_mod.interleaved(streams))
            continue
        env = _launch_env(launch)
        sites = [
            s for s in classify_launch_sites(summary, env)
            if s.space == "global" and s.param in bound
        ]
        budget = max(per_launch // max(len(sites), 1), 16)
        streams = []
        for site in sites:
            key, offset = bound[site.param]
            base, nbytes = layout[key]
            streams.append(_site_stream(
                site, base + offset, max(nbytes - offset, 0), budget))
        parts.append(trace_mod.interleaved(streams))
    parts = [p for p in parts if len(p)]
    if not parts:
        return np.empty(0, dtype=np.int64), layout
    trace = parts[0] if len(parts) == 1 else np.concatenate(parts)
    if len(trace) > max_len:
        idx = np.linspace(0, len(trace) - 1, max_len).astype(np.int64)
        trace = trace[idx]
    return trace, layout


def ir_access_trace(bench: object,
                    max_len: int = trace_mod.DEFAULT_MAX_LEN,
                    ) -> np.ndarray | None:
    """The IR-derived trace of one benchmark instance.

    ``None`` when the benchmark declares no static launch model (the
    hand-authored trace is the only option then).
    """
    model = bench.static_launches()  # type: ignore[attr-defined]
    if model is None:
        return None
    trace, _layout = synthesize_trace(model, max_len=max_len)
    return trace


def resolve_access_trace(bench: object,
                         max_len: int = trace_mod.DEFAULT_MAX_LEN,
                         source: str | None = None) -> np.ndarray:
    """The access trace under the selected provenance.

    ``source=None`` reads :data:`TRACE_SOURCE_ENV`.  The ``ir`` source
    falls back to the hand-authored trace for benchmarks without a
    static launch model, so sweeps never lose coverage by flipping the
    toggle.
    """
    chosen = source if source is not None else trace_source()
    if chosen not in TRACE_SOURCES:
        raise ValueError(
            f"trace source must be one of {TRACE_SOURCES}, got {chosen!r}"
        )
    if chosen == "ir":
        trace = ir_access_trace(bench, max_len=max_len)
        if trace is not None:
            return trace
    return bench.access_trace(max_len=max_len)  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# IR-exact checks: races, coalescing, bank conflicts
# ---------------------------------------------------------------------------


def _pinned_to_one_work_item(access: Access) -> bool:
    """Whether a guard pins the access to (at most) one work item.

    The ``if (gid == 0)`` / ``if (lid == 0)`` idiom: an equality guard
    between a work-item-dependent value and a uniform one restricts
    the access to a single lane, so a uniform-index write under it is
    not a whole-NDRange race.
    """
    for guard in access.guards:
        if guard.op != "==":
            continue
        deps = (guard.lhs.dep[0], guard.rhs.dep[0])
        if "uniform" in deps and deps != ("uniform", "uniform"):
            return True
    return False


def _total_work_items(launch: object) -> int:
    total = 1
    for dim in launch.global_size:  # type: ignore[attr-defined]
        total *= max(int(dim), 1)
    return total


def _race_pair(a: AccessSite, b: AccessSite, sweep_items: int) -> bool:
    """Provable overlap between two affine sites of one buffer.

    Only *pure gid sweeps* qualify: each site's interval width must be
    exactly ``|coeff| * (work items - 1)``, so the index is provably
    ``base + coeff * gid`` with nothing else varying.  Loop-widened
    intervals (a store covering a whole row panel) are skipped — their
    overlap says nothing about per-work-item aliasing.
    """
    if a.coeff is None or b.coeff is None or a.coeff != b.coeff:
        return False
    if a.coeff == 0 or sweep_items <= 1:
        return False
    expected_width = abs(a.coeff) * (sweep_items - 1)
    if int(a.hi - a.lo) != expected_width or int(b.hi - b.lo) != expected_width:
        return False
    if (a.lo, a.hi) == (b.lo, b.hi):
        # the same per-work-item cell: no *inter*-work-item overlap
        return False
    if (int(a.lo) - int(b.lo)) % abs(a.coeff) != 0:
        # different residues: the address sets are disjoint
        return False
    return a.lo <= b.hi and b.lo <= a.hi


def _race_findings(summary: KernelSummary, launch: object,
                   env: dict[str, float], benchmark: str | None,
                   allows: set) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[tuple[str, str]] = set()
    work_items = _total_work_items(launch)
    accesses = [a for a in summary.accesses if a.space == "global"]

    def add(param: str, kind: str, message: str, severity: str,
            hint: str) -> None:
        if (param, kind) in reported:
            return
        if _suppressed(allows, "data-race", param):
            return
        reported.add((param, kind))
        findings.append(Finding(
            check="data-race", severity=severity, benchmark=benchmark,
            kernel=summary.kernel, argument=param, message=message,
            hint=hint,
        ))

    # (a) uniform-index writes: every work item stores to the same cell
    if work_items > 1:
        for access in accesses:
            if not access.is_write:
                continue
            if access.index.dep != ("uniform",):
                continue
            if not all(g.feasible(env) for g in access.guards):
                continue
            if _pinned_to_one_work_item(access):
                continue
            add(access.param, "uniform",
                f"all {work_items} work items write the same "
                f"{access.param!r} cell (uniform index, no guard pins "
                "the store to one work item)",
                default_severity("data-race"),
                "guard the store with a single-work-item check or make "
                "the index depend on get_global_id")

    # (b) affine write vs read/write with a congruent, shifted base
    sweep_items = max(int(launch.global_size[0]), 1)  # type: ignore[attr-defined]
    sites = [s for s in classify_launch_sites(summary, env)
             if s.space == "global"]
    for a in sites:
        if not a.is_write or a.coeff is None:
            continue
        for b in sites:
            if b is a or b.param != a.param or b.epoch != a.epoch:
                continue
            if not _race_pair(a, b, sweep_items):
                continue
            other = "write" if b.is_write else "read"
            add(a.param, "affine",
                f"work items overlap on {a.param!r}: a store at stride "
                f"{a.coeff} (index range [{int(a.lo)}, {int(a.hi)}]) "
                f"aliases a {other} of the same stride at a shifted "
                f"base (range [{int(b.lo)}, {int(b.hi)}]) with no "
                "intervening barrier",
                default_severity("data-race"),
                "separate the conflicting accesses with a barrier or "
                "privatise the overlapping cells")
            break

    # (c) indirect writes: cannot prove disjointness
    for access in accesses:
        if not access.is_write:
            continue
        if access.index.dep != ("indirect",):
            continue
        if not all(g.feasible(env) for g in access.guards):
            continue
        add(access.param, "indirect",
            f"store to {access.param!r} through a data-dependent index; "
            "work items may collide (not provably disjoint)",
            "warning",
            "if collisions are benign (idempotent stores), suppress "
            f"with // repro-lint: allow(data-race: {access.param})")
    return findings


def _coalescing_findings(summary: KernelSummary, env: dict[str, float],
                         benchmark: str | None,
                         allows: set) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[str] = set()
    for access in summary.accesses:
        if access.space != "global":
            continue
        coeff = _affine_coeff(access)
        if coeff is None:
            continue
        stride_bytes = abs(coeff) * access.elem_size
        if stride_bytes < COALESCE_LINE_BYTES:
            continue
        if access.param in reported:
            continue
        if _suppressed(allows, "uncoalesced-access", access.param):
            continue
        if not all(g.feasible(env) for g in access.guards):
            continue
        reported.add(access.param)
        findings.append(Finding(
            check="uncoalesced-access",
            severity=default_severity("uncoalesced-access"),
            benchmark=benchmark, kernel=summary.kernel,
            argument=access.param,
            message=f"consecutive work items touch {access.param!r} "
                    f"{stride_bytes} bytes apart (>= the "
                    f"{COALESCE_LINE_BYTES}-byte line): every lane "
                    "fetches its own cache line",
            hint="transpose the layout so adjacent work items touch "
                 "adjacent elements, or suppress with // repro-lint: "
                 f"allow(uncoalesced-access: {access.param})",
        ))
    return findings


def _bank_conflict_findings(summary: KernelSummary, env: dict[str, float],
                            benchmark: str | None,
                            allows: set) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[str] = set()
    for access in summary.accesses:
        if access.space != "local":
            continue
        coeff = _affine_coeff(access)
        if coeff is None or coeff == 0:
            continue
        stride_bytes = abs(coeff) * access.elem_size
        if stride_bytes % BANK_BYTES:
            continue
        words = stride_bytes // BANK_BYTES
        degree = math.gcd(words, NUM_BANKS)
        if degree <= 1:
            continue
        if access.param in reported:
            continue
        if _suppressed(allows, "bank-conflict", access.param):
            continue
        if not all(g.feasible(env) for g in access.guards):
            continue
        reported.add(access.param)
        findings.append(Finding(
            check="bank-conflict",
            severity=default_severity("bank-conflict"),
            benchmark=benchmark, kernel=summary.kernel,
            argument=access.param,
            message=f"local array {access.param!r} is accessed at a "
                    f"{words}-word stride: a {degree}-way bank conflict "
                    f"on a {NUM_BANKS}-bank local memory",
            hint="pad the array (stride + 1) or swap the indexing so "
                 "consecutive work items hit consecutive banks",
        ))
    return findings


def _suppressed(allows: set, check: str, name: str | None = None) -> bool:
    """Whether ``// repro-lint: allow(...)`` covers this finding."""
    return (check, None) in allows or (
        name is not None and (check, name) in allows
    )


def access_model_findings(
    model: object,
    benchmark: str | None = None,
    suppressions: dict[str, set] | None = None,
) -> list[Finding]:
    """Race / coalescing / bank-conflict findings for one launch model."""
    try:
        kernels = {k.name: k for k in parse_source(model.source).kernels}  # type: ignore[attr-defined]
    except CLSourceError:
        return []  # the build-failure finding is reported elsewhere
    macros = dict(model.macros)  # type: ignore[attr-defined]
    suppressions = suppressions or {}
    findings: list[Finding] = []
    summaries: dict[str, KernelSummary] = {}
    seen: set[str] = set()
    for launch in model.launches:  # type: ignore[attr-defined]
        name = launch.kernel
        if name in seen or name not in kernels:
            continue
        seen.add(name)
        if name not in summaries:
            summaries[name] = interpret_kernel(kernels[name], macros)
        summary = summaries[name]
        if summary.opaque:
            continue
        env = _launch_env(launch)
        allows = suppressions.get(name, set())
        findings.extend(_race_findings(summary, launch, env, benchmark,
                                       allows))
        findings.extend(_coalescing_findings(summary, env, benchmark,
                                             allows))
        findings.extend(_bank_conflict_findings(summary, env, benchmark,
                                                allows))
    return findings


# ---------------------------------------------------------------------------
# Reuse-distance summary
# ---------------------------------------------------------------------------


def stack_distances(lines: np.ndarray) -> np.ndarray:
    """LRU stack distance per access of a cache-line trace.

    ``-1`` marks cold (first-touch) accesses; otherwise the count of
    *distinct* lines touched since the previous access to the same
    line.  O(n log n) via a Fenwick tree over last-occurrence markers.
    """
    n = len(lines)
    out = np.empty(n, dtype=np.int64)
    tree = [0] * (n + 1)

    def update(pos: int, delta: int) -> None:
        i = pos + 1
        while i <= n:
            tree[i] += delta
            i += i & -i

    def prefix(pos: int) -> int:
        i = pos + 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total

    last: dict[int, int] = {}
    for i, line in enumerate(lines.tolist()):
        prev = last.get(line)
        if prev is None:
            out[i] = -1
        else:
            out[i] = prefix(i - 1) - prefix(prev)
            update(prev, -1)
        update(i, 1)
        last[line] = i
    return out


def reuse_distance_summary(model: object,
                           max_len: int = REUSE_TRACE_LEN,
                           line_bytes: int = LINE_BYTES) -> dict:
    """Per-buffer reuse-distance statistics over the IR-derived trace.

    Returns a JSON-ready mapping ``buffer key -> {accesses, lines,
    cold_fraction, mean, median}`` where distances are in distinct
    cache lines (the classic LRU stack distance).
    """
    trace, layout = synthesize_trace(model, max_len=max_len)
    if not len(trace):
        return {}
    distances = stack_distances(trace // line_bytes)
    summary: dict[str, dict] = {}
    for key, (base, nbytes) in layout.items():
        if nbytes <= 0:
            continue
        mask = (trace >= base) & (trace < base + nbytes)
        if not mask.any():
            continue
        dist = distances[mask]
        warm = dist[dist >= 0]
        summary[key] = {
            "accesses": int(mask.sum()),
            "lines": int(len(np.unique(trace[mask] // line_bytes))),
            "cold_fraction": round(float((dist < 0).mean()), 4),
            "mean": round(float(warm.mean()), 2) if len(warm) else None,
            "median": round(float(np.median(warm)), 2) if len(warm) else None,
        }
    return summary


# ---------------------------------------------------------------------------
# Differential trace gate (repro lint --traces)
# ---------------------------------------------------------------------------


def _ratio(a: float, b: float) -> float:
    """Symmetric ratio >= 1 (``inf`` when only one side is zero)."""
    if a <= 0 and b <= 0:
        return 1.0
    if a <= 0 or b <= 0:
        return math.inf
    return max(a / b, b / a)


def _span_bytes(trace: np.ndarray) -> int:
    if not len(trace):
        return 0
    return int(trace.max() - trace.min()) + 1


def compare_benchmark_traces(
    name: str,
    sizes: tuple[str, ...] | None = None,
    max_len: int = GATE_TRACE_LEN,
) -> tuple[list[Finding], dict]:
    """Cross-check IR-derived vs hand-authored traces for one benchmark.

    Per size preset, three agreements are required:

    1. both traces span the same order of magnitude of address space
       as the runtime footprint (within :data:`SPAN_TOLERANCE`);
    2. every random component of the hand-authored
       :class:`~repro.cache.trace.TraceSpec` has a matching indirect
       access in the IR model (the IR may discover more);
    3. the touched cache-line counts agree within
       :data:`TOUCHED_TOLERANCE`.

    Returns ``(findings, extras)``; a ``trace-divergence`` finding per
    disagreeing size, and the JSON-ready comparison table either way.
    Benchmarks without a static launch model return ``([], {})``.
    """
    from ..dwarfs import registry

    cls = registry.get_benchmark(name)
    sizes = sizes or cls.available_sizes()
    findings: list[Finding] = []
    table: dict[str, dict] = {}
    for size in sizes:
        bench = cls.from_size(size)
        model = bench.static_launches()
        if model is None:
            return [], {}
        hand = bench.access_trace(max_len=max_len)
        ir, _layout = synthesize_trace(model, max_len=max_len)
        spec = bench.trace_spec()
        footprint = max(bench.footprint_bytes(), 1)

        ir_classes = ir_stride_classes(model)
        hand_indirect = "indirect" in spec.stride_classes()
        ir_indirect = "indirect" in ir_classes

        span_hand = _span_bytes(hand)
        span_ir = _span_bytes(ir)
        touched_hand = len(np.unique(hand // LINE_BYTES))
        touched_ir = len(np.unique(ir // LINE_BYTES))

        span_ok = (_ratio(span_ir, footprint) <= SPAN_TOLERANCE
                   and _ratio(span_hand, footprint) <= SPAN_TOLERANCE)
        # one-directional: indirection the oracle models must be found
        # by the IR; extra IR-discovered indirection (hmm's b[obs[t]]
        # gather) is a refinement, not a divergence
        indirect_ok = ir_indirect or not hand_indirect
        touched_ok = _ratio(touched_ir, touched_hand) <= TOUCHED_TOLERANCE
        ok = span_ok and indirect_ok and touched_ok

        table[size] = {
            "footprint_bytes": int(footprint),
            "span_hand": span_hand,
            "span_ir": span_ir,
            "touched_lines_hand": int(touched_hand),
            "touched_lines_ir": int(touched_ir),
            "indirect_hand": hand_indirect,
            "indirect_ir": ir_indirect,
            "ok": ok,
        }
        if not ok:
            reasons = []
            if not span_ok:
                reasons.append(
                    f"span {span_ir} B (ir) / {span_hand} B (hand) vs "
                    f"footprint {footprint} B")
            if not indirect_ok:
                reasons.append(
                    f"indirect access: ir={ir_indirect} hand={hand_indirect}")
            if not touched_ok:
                reasons.append(
                    f"touched lines {touched_ir} (ir) vs {touched_hand} "
                    "(hand)")
            findings.append(Finding(
                check="trace-divergence",
                severity=default_severity("trace-divergence"),
                benchmark=name, location=f"size {size}",
                message="IR-derived trace disagrees with the hand-authored "
                        "oracle: " + "; ".join(reasons),
                hint="reconcile the static launch model with the "
                     "benchmark's trace_spec() (docs/analysis.md)",
            ))
    return findings, table


def ir_stride_classes(model: object) -> set[str]:
    """All stride classes of the model's global accesses (any launch)."""
    kernels = {k.name: k for k in parse_source(model.source).kernels}  # type: ignore[attr-defined]
    macros = dict(model.macros)  # type: ignore[attr-defined]
    classes: set[str] = set()
    summaries: dict[str, KernelSummary] = {}
    for launch in model.launches:  # type: ignore[attr-defined]
        name = launch.kernel
        if name not in kernels:
            continue
        if name not in summaries:
            summaries[name] = interpret_kernel(kernels[name], macros)
        env = _launch_env(launch)
        for site in classify_launch_sites(summaries[name], env):
            if site.space == "global" and site.param in launch.buffers:
                classes.add(site.stride)
    return classes
