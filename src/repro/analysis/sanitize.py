"""Runtime sanitizer: shadow-memory guards over buffer accesses.

The Oclgrind analogue for the simulated runtime.  Attaching a
:class:`Sanitizer` to a :class:`~repro.ocl.context.Context` makes every
kernel launch execute against :class:`GuardedNDArray` views of the
buffers' backing arrays.  The guards detect:

``oob-access``
    An index at or beyond the end of the buffer (numpy would raise
    ``IndexError``; the guard records the kernel/element first).  A
    *negative* integer or fancy index is reported as a ``note`` — it
    wraps legally in numpy but addresses out-of-bounds memory in
    OpenCL C.
``uninit-read``
    A read of an element never written since allocation, for buffers
    created without host data (``clCreateBuffer`` without
    ``COPY_HOST_PTR`` leaves contents undefined on a real device; the
    simulation's zero-fill hides that).
``data-race``
    Two work items of one NDRange touching the same element with at
    least one write, unordered by a work-group barrier.  Work-item
    attribution exists only under the scalar
    :func:`~repro.ocl.program.work_item_kernel` adapter — vectorised
    kernel bodies act as a single actor and cannot race with
    themselves.
``use-after-release`` / ``kernel-abort`` / ``buffer-leak`` /
``queue-leak``
    Lifecycle probes fed by hooks in the queue and context.

Guarding is strictly opt-in: an unattached context takes a single
``is None`` branch per hook site.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from ..ocl.context import Context
from ..ocl.memory import Buffer
from ..ocl.ndrange import NDRange
from ..ocl.program import (
    Kernel,
    current_work_item,
    disable_work_item_tracking,
    enable_work_item_tracking,
)
from .findings import Finding


def _has_negative_index(idx: Any) -> bool:
    """Negative *element* indices (ints / fancy arrays), not slices.

    Negative slice bounds (``a[:-1]``) are idiomatic Python and stay
    in bounds, so they are deliberately not flagged.
    """
    if isinstance(idx, (int, np.integer)):
        return idx < 0
    if isinstance(idx, tuple):
        return any(_has_negative_index(i) for i in idx)
    if isinstance(idx, np.ndarray) and idx.dtype != np.bool_:
        return bool((idx < 0).any())
    if isinstance(idx, (list,)):
        return _has_negative_index(np.asarray(idx))
    return False


class _Shadow:
    """Per-buffer shadow state: init mask + per-launch access history."""

    __slots__ = ("buffer", "initialized", "flat", "writers", "readers")

    def __init__(self, buf: Buffer, array: np.ndarray) -> None:
        self.buffer = buf
        #: One bool per element of the backing array; False means the
        #: element has never been written since allocation.
        self.initialized = np.full(array.shape, buf._host_initialized, dtype=bool)
        #: Companion array mapping any indexing expression to the flat
        #: element offsets it selects (lazily built at first guard use).
        self.flat: np.ndarray | None = None
        #: element -> (work item, group, epoch) of last access in the
        #: current launch; reset by :meth:`Sanitizer.after_kernel`.
        self.writers: dict = {}
        self.readers: dict = {}

    def flat_for(self, array: np.ndarray) -> np.ndarray:
        if self.flat is None or self.flat.shape != array.shape:
            self.flat = np.arange(array.size).reshape(array.shape)
        return self.flat


class _Guard:
    """Access hooks for one guarded kernel argument in one launch."""

    __slots__ = ("san", "shadow", "kernel_name", "argument")

    def __init__(self, san: "Sanitizer", shadow: _Shadow,
                 kernel_name: str, argument: str | None) -> None:
        self.san = san
        self.shadow = shadow
        self.kernel_name = kernel_name
        self.argument = argument

    # ------------------------------------------------------------------
    def _select(self, view: np.ndarray, idx: Any) -> np.ndarray:
        """Flat element offsets selected by ``idx``; records OOB."""
        flat = self.shadow.flat_for(view)
        try:
            sel = np.asarray(flat[idx]).ravel()
        except IndexError as exc:
            self.san.record(Finding(
                check="oob-access", severity="error",
                benchmark=self.san.benchmark, kernel=self.kernel_name,
                argument=self.argument, location=f"index {idx!r}",
                message=f"out-of-bounds access on a buffer of "
                        f"{view.size} element(s): {exc}",
                hint="guard the access with the problem size, or fix the "
                     "index arithmetic",
            ))
            raise
        if _has_negative_index(idx):
            self.san.record(Finding(
                check="oob-access", severity="note",
                benchmark=self.san.benchmark, kernel=self.kernel_name,
                argument=self.argument, location=f"index {idx!r}",
                message="negative index wraps in numpy but is out of "
                        "bounds in OpenCL C",
            ), dedup=("oob-wrap", self.kernel_name, id(self.shadow)))
        return sel

    def on_read(self, view: np.ndarray, idx: Any) -> None:
        sel = self._select(view, idx)
        self._check_uninit(sel)
        self._record_race(sel, is_write=False)

    def on_write(self, view: np.ndarray, idx: Any) -> None:
        sel = self._select(view, idx)
        self._record_race(sel, is_write=True)
        self.shadow.initialized.ravel()[sel] = True

    def on_read_all(self, view: np.ndarray) -> None:
        self._check_uninit(None)
        if current_work_item() is not None:
            self._record_race(
                np.arange(self.shadow.initialized.size), is_write=False
            )

    def on_write_all(self, view: np.ndarray) -> None:
        if current_work_item() is not None:
            self._record_race(
                np.arange(self.shadow.initialized.size), is_write=True
            )
        self.shadow.initialized[...] = True

    def on_escape(self, sel: np.ndarray | None = None) -> None:
        """A mutable view escaped the guard (slice result, reshape).

        Writes through the escaped view are untracked, so the escaped
        elements are conservatively marked initialized to keep the
        uninit-read check free of false positives.
        """
        if sel is None:
            self.shadow.initialized[...] = True
        else:
            self.shadow.initialized.ravel()[sel] = True

    # ------------------------------------------------------------------
    def _check_uninit(self, sel: np.ndarray | None) -> None:
        init = self.shadow.initialized.ravel()
        mask = init if sel is None else init[sel]
        if mask.all():
            return
        if sel is None:
            first = int(np.flatnonzero(~init)[0])
        else:
            first = int(sel[np.flatnonzero(~mask)[0]])
        count = int((~mask).sum())
        self.san.record(Finding(
            check="uninit-read", severity="error",
            benchmark=self.san.benchmark, kernel=self.kernel_name,
            argument=self.argument, location=f"element {first}",
            message=f"read of element {first}, which was never written "
                    f"since allocation ({count} of the selected elements "
                    "are uninitialized)",
            hint="initialise the buffer with a host write or fill before "
                 "launching, or create it from a host array",
        ), dedup=("uninit", self.kernel_name, id(self.shadow)))

    def _record_race(self, sel: np.ndarray, is_write: bool) -> None:
        state = current_work_item()
        if state is None:
            return  # vectorised body: a single actor cannot race
        actor = (state.gid, state.group, state.epoch)
        writers, readers = self.shadow.writers, self.shadow.readers
        for element in sel.tolist():
            prior_write = writers.get(element)
            if prior_write is not None and self._conflicts(prior_write, actor):
                self._race(element, prior_write, actor,
                           "write/write" if is_write else "read/write")
            if is_write:
                prior_read = readers.get(element)
                if prior_read is not None and self._conflicts(prior_read, actor):
                    self._race(element, prior_read, actor, "read/write")
                writers[element] = actor
            else:
                readers[element] = actor

    @staticmethod
    def _conflicts(prev: tuple, cur: tuple) -> bool:
        """Unordered accesses: distinct work items, not barrier-separated.

        Accesses by the same work item are program-ordered.  Within a
        work group, a differing barrier epoch means a barrier executed
        between the two accesses, ordering them; across groups no
        barrier synchronises, so distinct items always conflict.
        """
        (prev_item, prev_group, prev_epoch) = prev
        (cur_item, cur_group, cur_epoch) = cur
        if prev_item == cur_item:
            return False
        if prev_group != cur_group:
            return True
        return prev_epoch == cur_epoch

    def _race(self, element: int, prev: tuple, cur: tuple, kind: str) -> None:
        self.san.record(Finding(
            check="data-race", severity="error",
            benchmark=self.san.benchmark, kernel=self.kernel_name,
            argument=self.argument, location=f"element {element}",
            message=f"{kind} race on element {element}: work items "
                    f"{prev[0]} and {cur[0]} access it without an "
                    "ordering barrier",
            hint="give each work item a disjoint output slot, or separate "
                 "the accesses with work_group_barrier()",
        ), dedup=("race", self.kernel_name, id(self.shadow), element))


class GuardedNDArray(np.ndarray):
    """ndarray subclass that reports element accesses to a :class:`_Guard`.

    Only the top-level array handed to the kernel body carries a guard;
    any derived array (slice, reshape, ufunc result) degrades to plain
    ndarray behaviour via ``__array_finalize__``.  Derivation is
    recorded as a view *escape* so untracked writes cannot fake
    uninitialized reads later.
    """

    _guard: _Guard | None = None

    def __array_finalize__(self, obj: Any) -> None:
        self._guard = None

    # ------------------------------------------------------------------
    def __getitem__(self, idx: Any) -> Any:
        guard = self._guard
        if guard is not None:
            guard.on_read(self, idx)
        out = np.ndarray.__getitem__(self, idx)
        if guard is not None and isinstance(out, np.ndarray) and out.base is not None:
            # a mutable view escaped: further writes are invisible
            guard.on_escape(guard._select(self, idx))
        return out

    def __setitem__(self, idx: Any, value: Any) -> None:
        guard = self._guard
        if guard is not None:
            guard.on_write(self, idx)
        np.ndarray.__setitem__(self, idx, value)

    # ------------------------------------------------------------------
    def __array_ufunc__(self, ufunc: Any, method: str, *inputs: Any,
                        out: Any = None, **kwargs: Any) -> Any:
        # Every GuardedNDArray (guarded or a derived, guard-less one)
        # must be demoted to a base view, or the delegated ufunc call
        # would re-enter this hook and recurse.
        base_inputs = []
        for value in inputs:
            if isinstance(value, GuardedNDArray):
                if value._guard is not None:
                    value._guard.on_read_all(value)
                base_inputs.append(np.ndarray.view(value, np.ndarray))
            else:
                base_inputs.append(value)
        if out is not None:
            base_out = []
            for target in out:
                if isinstance(target, GuardedNDArray):
                    if target._guard is not None:
                        target._guard.on_write_all(target)
                    base_out.append(np.ndarray.view(target, np.ndarray))
                else:
                    base_out.append(target)
            kwargs["out"] = tuple(base_out)
        result = getattr(ufunc, method)(*base_inputs, **kwargs)
        if out is not None and len(out) == 1:
            return out[0]
        return result

    # ------------------------------------------------------------------
    def _escaped(self) -> None:
        if self._guard is not None:
            self._guard.on_escape()

    def reshape(self, *shape: Any, **kwargs: Any) -> Any:
        self._escaped()
        return np.ndarray.reshape(self, *shape, **kwargs)

    def ravel(self, *args: Any, **kwargs: Any) -> Any:
        self._escaped()
        return np.ndarray.ravel(self, *args, **kwargs)

    def view(self, *args: Any, **kwargs: Any) -> Any:
        self._escaped()
        return np.ndarray.view(self, *args, **kwargs)

    def transpose(self, *axes: Any) -> Any:
        self._escaped()
        return np.ndarray.transpose(self, *axes)


class Sanitizer:
    """Collects runtime findings for contexts it is attached to.

    Use :func:`sanitized` for scoped attachment, or ``attach``/
    ``detach`` directly.  Findings accumulate on :attr:`findings`.
    """

    def __init__(self, benchmark: str | None = None) -> None:
        self.benchmark = benchmark
        self.findings: list[Finding] = []
        self._shadows: dict[int, _Shadow] = {}
        self._contexts: list[Context] = []
        self._seen: set = set()

    # ------------------------------------------------------------------
    def attach(self, context: Context) -> "Sanitizer":
        """Instrument a context (and pre-shadow its live buffers)."""
        if context.sanitizer is not None and context.sanitizer is not self:
            raise ValueError("context already has a sanitizer attached")
        if context not in self._contexts:
            context.sanitizer = self
            self._contexts.append(context)
            enable_work_item_tracking()
            for buf in context._allocations.values():
                self.on_alloc(buf)
        return self

    def detach(self) -> None:
        """Remove instrumentation from all attached contexts."""
        for context in self._contexts:
            context.sanitizer = None
            disable_work_item_tracking()
        self._contexts.clear()

    # ------------------------------------------------------------------
    def record(self, finding: Finding, dedup: tuple | None = None) -> None:
        """Append a finding, optionally collapsing repeats by key."""
        if dedup is not None:
            if dedup in self._seen:
                return
            self._seen.add(dedup)
        self.findings.append(finding)

    # ------------------------------------------------------------------
    # Context / queue hooks (all no-ops unless attached)
    # ------------------------------------------------------------------
    def on_alloc(self, buf: Buffer) -> None:
        self._shadows[id(buf)] = _Shadow(buf, buf.array)

    def on_release(self, buf: Buffer) -> None:
        self._shadows.pop(id(buf), None)

    def on_host_write(self, buf: Buffer) -> None:
        shadow = self._shadows.get(id(buf))
        if shadow is not None:
            shadow.initialized[...] = True

    def on_host_read(self, buf: Buffer) -> None:
        shadow = self._shadows.get(id(buf))
        if shadow is not None and not shadow.initialized.all():
            first = int(np.flatnonzero(~shadow.initialized.ravel())[0])
            self.record(Finding(
                check="uninit-read", severity="error",
                benchmark=self.benchmark,
                location=f"element {first}",
                message=f"host read of a buffer whose element {first} was "
                        "never written since allocation",
                hint="write or fill the buffer before reading it back",
            ), dedup=("uninit-host", id(shadow)))

    def on_use_after_release(self, kernel: Kernel, exc: Exception) -> None:
        self.record(Finding(
            check="use-after-release", severity="error",
            benchmark=self.benchmark, kernel=kernel.name,
            message=f"kernel launch uses a released buffer: {exc}",
            hint="release buffers only after the last launch that binds them",
        ))

    def on_kernel_abort(self, kernel: Kernel, nd: NDRange,
                        exc: Exception) -> None:
        self.record(Finding(
            check="kernel-abort", severity="error",
            benchmark=self.benchmark, kernel=kernel.name,
            message=f"kernel body aborted with {type(exc).__name__}: {exc}",
        ))

    # ------------------------------------------------------------------
    def _shadow_for(self, buf: Buffer) -> _Shadow:
        shadow = self._shadows.get(id(buf))
        if shadow is None:
            shadow = _Shadow(buf, buf.array)
            self._shadows[id(buf)] = shadow
        return shadow

    def wrap_args(self, kernel: Kernel, nd: NDRange,
                  raw_args: list, resolved: list) -> list:
        """Swap resolved buffer arrays for guarded views for one launch."""
        signature = kernel.signature
        wrapped = []
        for index, (raw, value) in enumerate(zip(raw_args, resolved)):
            if isinstance(raw, Buffer) and isinstance(value, np.ndarray):
                argument = None
                if signature is not None and index < signature.arity:
                    argument = signature.params[index].name
                shadow = self._shadow_for(raw)
                guarded = value.view(GuardedNDArray)
                guarded._guard = _Guard(self, shadow, kernel.name, argument)
                wrapped.append(guarded)
            else:
                wrapped.append(value)
        return wrapped

    def after_kernel(self, kernel: Kernel, nd: NDRange) -> None:
        """Reset per-launch race state (shadows persist across launches)."""
        for shadow in self._shadows.values():
            shadow.writers.clear()
            shadow.readers.clear()

    # ------------------------------------------------------------------
    def check_leaks(self) -> list[Finding]:
        """Report live buffers/queues on every attached context.

        Call at benchmark-teardown time; the returned findings are also
        appended to :attr:`findings`.
        """
        found: list[Finding] = []
        for context in self._contexts:
            for buf in context._allocations.values():
                found.append(Finding(
                    check="buffer-leak", severity="warning",
                    benchmark=self.benchmark,
                    location=f"{buf.size}-byte buffer",
                    message=f"buffer of {buf.size} bytes is still allocated "
                            "at teardown",
                    hint="release it in teardown(), or use the buffer as a "
                         "context manager",
                ))
            for queue in context._queues:
                if not queue.released:
                    found.append(Finding(
                        check="queue-leak", severity="note",
                        benchmark=self.benchmark,
                        message="command queue was never released",
                    ))
        for finding in found:
            self.record(finding)
        return found


@contextmanager
def sanitized(context: Context,
              benchmark: str | None = None) -> Iterator["Sanitizer"]:
    """Scoped sanitizer attachment::

        with sanitized(ctx, "lud") as san:
            ...run the benchmark...
        report.extend(san.findings)
    """
    san = Sanitizer(benchmark=benchmark)
    san.attach(context)
    try:
        yield san
    finally:
        san.detach()
