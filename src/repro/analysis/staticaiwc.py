"""Static AIWC: the full workload-characterization vector from the IR.

Sixth stage of the kernel IR pipeline.  The dynamic AIWC stage
(:mod:`repro.aiwc.metrics`) derives its feature vector from
hand-authored :class:`~repro.perfmodel.characterization.KernelProfile`
numbers; this module computes the *same* :class:`AIWCMetrics` vector
purely statically from a :class:`~repro.dwarfs.base.StaticLaunchModel`:

* **compute group** — the abstract interpreter's per-statement
  :class:`~repro.analysis.absint.OpEvent` stream (fp vs int vs chain
  ops classified from the typed AST), weighted by interval-derived
  trip counts and guard-occupancy fractions, then multiplied by each
  launch's NDRange;
* **parallelism group** — NDRange sizes and launch counts straight
  from the model, chain work from loop-carried dependence detection;
* **memory group** — :func:`repro.analysis.accessmodel.classify_launch_sites`
  site extents and stride classes replace the synthetic traces, and
  the unique footprint comes from
  :func:`repro.analysis.absint.static_footprint`;
* **control group** — guard dependence ranks bound the divergent-op
  share, capped by the CFG-level
  :func:`repro.analysis.cfg.branch_entropy_bound`.

The **differential gate** (``repro lint --aiwc``) compares the static
vector against the dynamic one per metric with per-group tolerance
bands and emits ``aiwc-divergence`` findings — the static analogue of
the PR 8 trace gate, keeping the two characterization sources honest
against each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..ocl.clsource import CLSourceError, kernel_suppressions
from .absint import (
    Guard,
    KernelSummary,
    OpEvent,
    _launch_env,
    interpret_kernel,
    static_footprint,
    sym_eval,
)
from .accessmodel import AccessSite, classify_launch_sites
from .cfg import branch_entropy_bound, sync_phases
from .findings import Finding, default_severity
from .frontend import KernelDef, parse_source

#: Per-metric divergence scale: a static-vs-dynamic difference equal to
#: the scale scores 1.0 (the finding threshold).  Log-domain metrics
#: (``*_log``, ``opcode_total``, ``granularity``) tolerate about an
#: order of magnitude; fractions roughly half their range; arithmetic
#: intensity is compared in log10(1 + x) space.
METRIC_SCALES: dict[str, float] = {
    "opcode_total": 1.25,
    "fp_fraction": 0.55,
    "arithmetic_intensity": 0.8,
    "work_items_log": 0.75,
    "granularity": 1.25,
    "serial_fraction": 0.55,
    "launch_intensity": 0.5,
    "memory_entropy": 1.1,
    "unique_footprint_log": 1.0,
    "branch_fraction": 0.45,
}

#: AIWC metric groups (mirrors the AIWCMetrics docstring grouping).
METRIC_GROUPS: dict[str, tuple[str, ...]] = {
    "compute": ("opcode_total", "fp_fraction", "arithmetic_intensity"),
    "parallelism": ("work_items_log", "granularity", "serial_fraction",
                    "launch_intensity"),
    "memory": ("memory_entropy", "unique_footprint_log"),
    "control": ("branch_fraction",),
}

#: metric -> group reverse map.
GROUP_OF: dict[str, str] = {
    metric: group
    for group, metrics in METRIC_GROUPS.items()
    for metric in metrics
}

#: Per-group band multiplier applied on top of the metric scales; all
#: 1.0 today, kept explicit so a group can be loosened without touching
#: every metric in it.
GROUP_BANDS: dict[str, float] = {
    "compute": 1.0, "parallelism": 1.0, "memory": 1.0, "control": 1.0,
}

#: Metrics compared in ``log10(1 + x)`` space because their raw range
#: spans orders of magnitude (everything else is already a log or a
#: bounded fraction).
_LOG_COMPARED = frozenset({"arithmetic_intensity"})

#: Arithmetic intensity saturates here before comparison: every device
#: in the catalog has its roofline ridge far below 256 FLOPs/byte, so
#: past this point any value means "compute bound" and differences
#: carry no architectural information (gem's pairwise kernel reaches
#: tens of thousands).
AI_SATURATION = 256.0


# ---------------------------------------------------------------------------
# Guard occupancy
# ---------------------------------------------------------------------------


def guard_fraction(guard: Guard, env: dict[str, float]) -> float:
    """Fraction of the guarded interval that satisfies the comparison.

    An op behind ``if (gid % w == 0)`` executes on ``1/w`` of the
    lanes; the static op count scales accordingly.  The fraction is
    estimated from the interval endpoints under the launch env: an
    infeasible guard contributes 0, an unbounded or indirect operand
    contributes 1 (no information), otherwise the satisfied share of
    the left operand's integer span against the right operand's
    midpoint.
    """
    if not guard.feasible(env):
        return 0.0
    a1 = sym_eval(guard.lhs.lo, env)
    a2 = sym_eval(guard.lhs.hi, env)
    b1 = sym_eval(guard.rhs.lo, env)
    b2 = sym_eval(guard.rhs.hi, env)
    if not (math.isfinite(a1) and math.isfinite(a2)):
        return 1.0
    span = a2 - a1 + 1.0
    if span <= 1.0:
        return 1.0  # point operand and feasible: always satisfied
    if not (math.isfinite(b1) and math.isfinite(b2)):
        return 1.0
    b = (b1 + b2) / 2.0
    op = guard.op
    if op == "==":
        frac = 1.0 / span
    elif op == "!=":
        frac = 1.0 - 1.0 / span
    elif op == "<":
        frac = (b - a1) / span
    elif op == "<=":
        frac = (b - a1 + 1.0) / span
    elif op == ">":
        frac = (a2 - b) / span
    elif op == ">=":
        frac = (a2 - b + 1.0) / span
    else:
        return 1.0
    return min(1.0, max(0.0, frac))


# ---------------------------------------------------------------------------
# Trip-count resolution
# ---------------------------------------------------------------------------


def _param_elem_sizes(summary: KernelSummary) -> dict[str, int]:
    """Element size per accessed buffer parameter (from the accesses)."""
    sizes: dict[str, int] = {}
    for access in summary.accesses:
        sizes[access.param] = max(sizes.get(access.param, 0),
                                  access.elem_size)
    return sizes


def resolve_trips(summary: KernelSummary, launch: object, model: object,
                  env: dict[str, float]) -> dict[str, float]:
    """Bind each ``__trip<n>`` symbol for one launch.

    A data-dependent loop (``for (i = row_ptr[gid]; i < row_ptr[gid+1];
    ...)``) walks a segment of some buffer; the partition heuristic
    prices its trip count as the largest candidate buffer's element
    count divided by the launch's total work items (CSR rows split the
    nnz array, CRC pages split the page matrix, BFS vertices split the
    edge list), never less than one iteration.
    """
    if not summary.trip_buffers:
        return {}
    work_items = 1.0
    for extent in launch.global_size:  # type: ignore[attr-defined]
        work_items *= max(float(extent), 1.0)
    elem_sizes = _param_elem_sizes(summary)
    bindings = launch.buffers  # type: ignore[attr-defined]
    buffers = model.buffers  # type: ignore[attr-defined]
    out: dict[str, float] = {}
    for sym, candidates in summary.trip_buffers.items():
        elems = 0.0
        for param in candidates:
            bound = bindings.get(param)
            if bound is None:
                continue
            key, offset = bound
            nbytes = max(float(buffers[key].nbytes) - float(offset), 0.0)
            elems = max(elems, nbytes / max(elem_sizes.get(param, 4), 1))
        out[sym] = max(1.0, elems / work_items) if elems else 1.0
    return out


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


@dataclass
class _KernelAgg:
    """Per-kernel accumulator across the launches that enqueue it."""

    fp: float = 0.0
    int_ops: float = 0.0
    chain: float = 0.0
    divergent: float = 0.0
    launches: int = 0
    max_items: float = 1.0
    total_items: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    working_set: float = 0.0
    class_bytes: list[float] = field(default_factory=lambda: [0.0, 0.0, 0.0])

    @property
    def total_ops(self) -> float:
        """All statically counted operations (fp + int + chain)."""
        return self.fp + self.int_ops + self.chain


def _op_total(op: OpEvent, env: dict[str, float], work_items: float) -> float:
    """One op event's total count under a launch env (0 if guarded off)."""
    frac = 1.0
    for g in op.guards:
        frac *= guard_fraction(g, env)
        if frac == 0.0:
            return 0.0
    weight = sym_eval(op.weight, env)
    if not math.isfinite(weight):
        weight = 1.0
    return max(weight, 0.0) * frac * work_items


def _site_extent_bytes(site: AccessSite, launch: object,
                       model: object) -> float:
    """Byte extent of one global access site, clamped to its buffer."""
    bound = launch.buffers.get(site.param)  # type: ignore[attr-defined]
    if bound is None:
        return 0.0
    key, offset = bound
    avail = max(float(model.buffers[key].nbytes) - float(offset), 0.0)  # type: ignore[attr-defined]
    if site.stride == "indirect" or not math.isfinite(site.hi):
        return avail
    lo = max(site.lo, 0.0)
    extent = (site.hi - lo + 1.0) * site.elem_size
    return min(max(extent, 0.0), avail)


def _class_split(stride: str,
                 coeff: int | None) -> tuple[float, float, float]:
    """(seq, strided, random) traffic split of one access pattern."""
    if stride in ("unit", "uniform"):
        return (1.0, 0.0, 0.0)
    if stride == "indirect":
        return (0.0, 0.0, 1.0)
    if coeff is not None:
        return (0.0, 1.0, 0.0)
    # nonlinear index (blocked/transposed sweeps): no single stride
    # class captures it; spread evenly like AIWC's mixed bucket
    third = 1.0 / 3.0
    return (third, third, third)


def _accumulate_launch(agg: _KernelAgg, summary: KernelSummary,
                       launch: object, model: object,
                       env: dict[str, float]) -> None:
    """Fold one launch's ops and memory accesses into its kernel's agg.

    Traffic is priced per raw access as ``min(extent, touched)``:
    ``extent`` is the byte span the index interval addresses (clamped
    to the bound buffer) and ``touched`` is the access count —
    trip weight x guard occupancy x NDRange x element size.  A
    wavefront kernel whose indices span the whole matrix is charged
    only the band its launch touches; a broadcast read collapses to
    one element.  The working set stays extent-based (merged sites):
    it prices residency, not volume.
    """
    work_items = 1.0
    for extent in launch.global_size:  # type: ignore[attr-defined]
        work_items *= max(float(extent), 1.0)
    agg.launches += 1
    agg.max_items = max(agg.max_items, work_items)
    agg.total_items += work_items
    for op in summary.ops:
        total = _op_total(op, env, work_items)
        if total <= 0.0:
            continue
        if op.chain:
            agg.chain += total
        elif op.kind == "fp":
            agg.fp += total
        else:
            agg.int_ops += total
        if op.divergent:
            agg.divergent += total

    from .absint import stride_class

    for access in summary.accesses:
        if access.space != "global":
            continue
        bound = launch.buffers.get(access.param)  # type: ignore[attr-defined]
        if bound is None:
            continue
        key, offset = bound
        avail = max(float(model.buffers[key].nbytes) - float(offset), 0.0)  # type: ignore[attr-defined]
        if avail <= 0.0:
            continue
        frac = 1.0
        for g in access.guards:
            frac *= guard_fraction(g, env)
            if frac == 0.0:
                break
        if frac == 0.0:
            continue
        lo = sym_eval(access.index.lo, env)
        hi = sym_eval(access.index.hi, env)
        cls = stride_class(access.index.dep)
        if not (math.isfinite(lo) and math.isfinite(hi)):
            cls = "indirect"
            extent = avail
        else:
            extent = min(
                max((hi - max(lo, 0.0) + 1.0) * access.elem_size, 0.0),
                avail)
        if extent <= 0.0:
            continue
        weight = sym_eval(access.weight, env)
        if not math.isfinite(weight):
            weight = 1.0
        touched = max(weight, 0.0) * frac * work_items * access.elem_size
        traffic = min(extent, touched)
        if traffic <= 0.0:
            continue
        if access.is_write:
            agg.bytes_written += traffic
        else:
            agg.bytes_read += traffic
        dep = access.index.dep
        coeff = int(dep[1]) if dep[0] == "affine" else None
        seq, strided, random = _class_split(cls, coeff)
        agg.class_bytes[0] += traffic * seq
        agg.class_bytes[1] += traffic * strided
        agg.class_bytes[2] += traffic * random

    launch_extent = 0.0
    for site in classify_launch_sites(summary, env):
        if site.space != "global":
            continue
        launch_extent += _site_extent_bytes(site, launch, model)
    agg.working_set = max(agg.working_set, launch_extent)


# ---------------------------------------------------------------------------
# Characterization
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticCharacterization:
    """Static AIWC result: the vector plus per-kernel diagnostics."""

    metrics: object  # AIWCMetrics (typed loosely to avoid an import cycle)
    per_kernel: dict[str, dict[str, float]]
    footprint_bytes: float


def _interpret_model(model: object) -> tuple[
        dict[str, KernelDef], dict[str, KernelSummary]]:
    """Parse and abstractly interpret every kernel of a launch model."""
    kernels = {k.name: k for k in parse_source(model.source).kernels}  # type: ignore[attr-defined]
    macros = {k: float(v) for k, v in dict(model.macros).items()}  # type: ignore[attr-defined]
    summaries = {name: interpret_kernel(kernel, macros)
                 for name, kernel in kernels.items()}
    return kernels, summaries


def characterize_model(model: object, name: str = "kernel",
                       dwarf: str = "static") -> StaticCharacterization:
    """Compute the static AIWC vector of a static launch model.

    Mirrors :func:`repro.aiwc.metrics.characterize` formula by formula,
    with every input derived from the IR: op totals from weighted
    :class:`OpEvent` streams, traffic and pattern mix from classified
    access sites, the footprint from the symbolic §4.4 evaluation, and
    the branch share zeroed when the CFG proves no data-dependent
    branch exists (:func:`branch_entropy_bound` = 0 everywhere).
    """
    from ..aiwc.metrics import AIWCMetrics, pattern_entropy_from_weights

    kernels, summaries = _interpret_model(model)
    aggs: dict[str, _KernelAgg] = {}
    for launch in model.launches:  # type: ignore[attr-defined]
        kname = launch.kernel
        if kname not in summaries:
            raise CLSourceError(
                f"launch model references unknown kernel {kname!r}")
        summary = summaries[kname]
        env = _launch_env(launch)
        for macro, value in dict(model.macros).items():  # type: ignore[attr-defined]
            env.setdefault(macro, float(value))
        env.update(resolve_trips(summary, launch, model, env))
        agg = aggs.setdefault(kname, _KernelAgg())
        _accumulate_launch(agg, summary, launch, model, env)

    fp = sum(a.fp for a in aggs.values())
    int_ops = sum(a.int_ops for a in aggs.values())
    chain = sum(a.chain for a in aggs.values())
    divergent = sum(a.divergent for a in aggs.values())
    total_ops = fp + int_ops + chain
    bytes_total = sum(a.bytes_read + a.bytes_written for a in aggs.values())
    launches = sum(a.launches for a in aggs.values())
    max_items = max((a.max_items for a in aggs.values()), default=1.0)
    class_bytes = [
        sum(a.class_bytes[i] for a in aggs.values()) for i in range(3)
    ]
    footprint = float(static_footprint(model).total_bytes)

    entropy_bits = sum(
        branch_entropy_bound(kernels[kname]) for kname in aggs
    )
    branch = divergent / total_ops if total_ops else 0.0
    if entropy_bits == 0.0:
        branch = 0.0

    per_kernel = {
        kname: {
            "flops": agg.fp,
            "int_ops": agg.int_ops,
            "chain_ops": agg.chain,
            "divergent_ops": agg.divergent,
            "launches": float(agg.launches),
            "work_items": agg.max_items,
            "bytes_read": agg.bytes_read,
            "bytes_written": agg.bytes_written,
            "branch_entropy_bits": branch_entropy_bound(kernels[kname]),
            "sync_phases": float(sync_phases(kernels[kname])),
        }
        for kname, agg in aggs.items()
    }

    metrics = AIWCMetrics(
        benchmark=name,
        dwarf=dwarf,
        opcode_total=math.log10(max(total_ops, 1.0)),
        fp_fraction=fp / total_ops if total_ops else 0.0,
        arithmetic_intensity=fp / bytes_total if bytes_total else 0.0,
        work_items_log=math.log10(max(max_items, 1.0)),
        granularity=math.log10(
            max(total_ops / max(max_items * launches, 1.0), 1.0)),
        serial_fraction=min(chain / total_ops, 1.0) if total_ops else 0.0,
        launch_intensity=math.log10(max(launches, 1)),
        memory_entropy=pattern_entropy_from_weights(class_bytes),
        unique_footprint_log=math.log10(max(footprint, 1.0)),
        branch_fraction=float(branch),
    )
    return StaticCharacterization(
        metrics=metrics, per_kernel=per_kernel, footprint_bytes=footprint)


def characterize_static(bench: object) -> object:
    """Static AIWC vector of a sized benchmark (no dynamic profile).

    Raises ``ValueError`` when the benchmark ships no static launch
    model (nothing to analyse).
    """
    model = bench.static_launches()  # type: ignore[attr-defined]
    if model is None:
        raise ValueError(
            f"{bench.name} has no static launch model to characterize")  # type: ignore[attr-defined]
    return characterize_model(
        model, name=bench.name, dwarf=bench.dwarf).metrics  # type: ignore[attr-defined]


def characterize_suite_static(size: str = "large") -> list:
    """Static vectors for every registered benchmark at a size preset.

    Mirrors :func:`repro.aiwc.metrics.characterize_suite` (falling back
    to each benchmark's largest preset) but over the paper set *and*
    the extensions, since the static path needs no hand-written
    profile.
    """
    from ..dwarfs import registry

    out = []
    for cls in {**registry.BENCHMARKS, **registry.EXTENSIONS}.values():
        use = size if size in cls.presets else cls.available_sizes()[-1]
        out.append(characterize_static(cls.from_size(use)))
    return out


def model_from_source(source: str, global_size: int = 1024,
                      buffer_elems: int = 1024) -> object:
    """A default launch model for a bare ``.cl`` source.

    Lets ``repro aiwc --static FILE.cl`` characterize a user-supplied
    kernel that ships no host program: every kernel with a body gets
    one launch of ``global_size`` work items, each global/constant
    pointer parameter is bound to a fresh ``buffer_elems``-element
    buffer of its declared element type, and every scalar parameter
    defaults to ``buffer_elems`` (the conventional "problem size"
    argument).  Raises :class:`~repro.ocl.clsource.CLSourceError` when
    the source does not parse.
    """
    from ..dwarfs.base import StaticBuffer, StaticLaunch, StaticLaunchModel
    from .frontend import type_sizeof

    program = parse_source(source)
    buffers: dict[str, StaticBuffer] = {}
    launches: list[StaticLaunch] = []
    for kernel in program.kernels:
        if not kernel.body.stmts:
            continue
        bound: dict[str, tuple[str, int]] = {}
        scalars: dict[str, float] = {}
        for param in kernel.params:
            if param.is_buffer:
                key = f"{kernel.name}.{param.name}"
                elem = max(type_sizeof(param.type_name), 1)
                buffers[key] = StaticBuffer(
                    key=key, nbytes=buffer_elems * elem)
                bound[param.name] = (key, 0)
            elif not param.is_pointer:
                scalars[param.name] = float(buffer_elems)
        launches.append(StaticLaunch(
            kernel=kernel.name, global_size=(global_size,),
            scalars=scalars, buffers=bound))
    if not launches:
        raise CLSourceError("source defines no kernel with a body")
    return StaticLaunchModel(source=source, buffers=buffers,
                             launches=tuple(launches))


# ---------------------------------------------------------------------------
# Static kernel profiles (the scheduler path)
# ---------------------------------------------------------------------------


def profiles_from_model(model: object) -> list:
    """Synthesize :class:`KernelProfile` objects from the IR.

    The inverse of :func:`repro.aiwc.metrics.characterize`'s
    aggregation: per-kernel op/byte totals are divided back into
    per-launch averages so the analytic roofline model and the
    scheduler can price a kernel that has never run.  Ordered by first
    launch for determinism.
    """
    from ..perfmodel.characterization import KernelProfile

    _, summaries = _interpret_model(model)
    aggs: dict[str, _KernelAgg] = {}
    for launch in model.launches:  # type: ignore[attr-defined]
        summary = summaries[launch.kernel]
        env = _launch_env(launch)
        for macro, value in dict(model.macros).items():  # type: ignore[attr-defined]
            env.setdefault(macro, float(value))
        env.update(resolve_trips(summary, launch, model, env))
        agg = aggs.setdefault(launch.kernel, _KernelAgg())
        _accumulate_launch(agg, summary, launch, model, env)

    profiles = []
    for kname, agg in aggs.items():
        launches = max(agg.launches, 1)
        total = agg.total_ops
        class_total = sum(agg.class_bytes)
        if class_total > 0:
            seq = agg.class_bytes[0] / class_total
            strided = agg.class_bytes[1] / class_total
            random = max(1.0 - seq - strided, 0.0)
        else:
            seq, strided, random = 1.0, 0.0, 0.0
        chain_ops = (agg.chain / (agg.max_items * launches)
                     if agg.chain else 0.0)
        branch = min(agg.divergent / total, 1.0) if total else 0.0
        profiles.append(KernelProfile(
            name=kname,
            flops=agg.fp / launches,
            int_ops=agg.int_ops / launches,
            bytes_read=agg.bytes_read / launches,
            bytes_written=agg.bytes_written / launches,
            working_set_bytes=agg.working_set,
            work_items=max(int(agg.max_items), 1),
            seq_fraction=seq,
            strided_fraction=strided,
            random_fraction=random,
            branch_fraction=branch,
            serial_ops=0.0,
            chain_ops=chain_ops,
            launches=launches,
        ))
    return profiles


# ---------------------------------------------------------------------------
# The differential gate
# ---------------------------------------------------------------------------


def metric_scores(static: object, dynamic: object) -> dict[str, float]:
    """Scaled per-metric divergence scores (1.0 = tolerance boundary)."""
    scores: dict[str, float] = {}
    for metric in static.NUMERIC_FIELDS:  # type: ignore[attr-defined]
        s = float(getattr(static, metric))
        d = float(getattr(dynamic, metric))
        if metric in _LOG_COMPARED:
            s = math.log10(1.0 + min(max(s, 0.0), AI_SATURATION))
            d = math.log10(1.0 + min(max(d, 0.0), AI_SATURATION))
        band = METRIC_SCALES[metric] * GROUP_BANDS[GROUP_OF[metric]]
        scores[metric] = abs(s - d) / band
    return scores


def _model_allows(model: object) -> set[tuple[str, str | None]]:
    """Union of per-kernel lint suppressions over the model's source."""
    allows: set[tuple[str, str | None]] = set()
    for entries in kernel_suppressions(model.source).values():  # type: ignore[attr-defined]
        allows |= entries
    return allows


def compare_bench_aiwc(bench: object) -> tuple[list[Finding], dict]:
    """Static-vs-dynamic AIWC comparison for one sized benchmark.

    Returns the ``aiwc-divergence`` findings (one per out-of-band
    metric, unless its group is suppressed with ``// repro-lint:
    allow(aiwc-divergence: <group>)`` in the kernel source) and a table
    row carrying both vectors and the scaled scores.
    """
    from ..aiwc.metrics import characterize

    model = bench.static_launches()  # type: ignore[attr-defined]
    if model is None:
        return [], {}
    name = bench.name  # type: ignore[attr-defined]
    static = characterize_model(
        model, name=name, dwarf=bench.dwarf).metrics  # type: ignore[attr-defined]
    dynamic = characterize(bench)
    scores = metric_scores(static, dynamic)
    allows = _model_allows(model)
    suppressed = sorted(
        group for group in METRIC_GROUPS
        if ("aiwc-divergence", group) in allows
        or ("aiwc-divergence", None) in allows
    )
    findings: list[Finding] = []
    for metric in sorted(scores):
        score = scores[metric]
        group = GROUP_OF[metric]
        if score <= 1.0 or group in suppressed:
            continue
        s = float(getattr(static, metric))
        d = float(getattr(dynamic, metric))
        findings.append(Finding(
            check="aiwc-divergence",
            severity=default_severity("aiwc-divergence"),
            message=(
                f"static {metric} {s:.3f} vs dynamic {d:.3f} "
                f"({score:.2f}x the {group}-group tolerance)"
            ),
            benchmark=name,
            argument=metric,
            hint=(
                "reconcile the static accounting with the KernelProfile "
                "numbers, or suppress the group with // repro-lint: "
                f"allow(aiwc-divergence: {group})"
            ),
        ))
    row = {
        "static": {m: round(float(getattr(static, m)), 3)
                   for m in static.NUMERIC_FIELDS},  # type: ignore[attr-defined]
        "dynamic": {m: round(float(getattr(dynamic, m)), 3)
                    for m in dynamic.NUMERIC_FIELDS},  # type: ignore[attr-defined]
        "scores": {m: round(v, 3) for m, v in sorted(scores.items())},
        "suppressed_groups": suppressed,
    }
    return findings, row


def compare_benchmark_aiwc(
    name: str, sizes: tuple[str, ...] | None = None
) -> tuple[list[Finding], dict]:
    """Run the AIWC differential gate over a benchmark's size presets.

    Returns all findings plus ``{size: comparison-row}`` for the lint
    extras.  Sizes default to every preset the benchmark declares.
    """
    from ..dwarfs import registry

    cls = registry.get_benchmark(name)
    use = sizes if sizes is not None else tuple(cls.available_sizes())
    findings: list[Finding] = []
    table: dict[str, dict] = {}
    for size in use:
        if size not in cls.presets:
            continue
        bench_findings, row = compare_bench_aiwc(cls.from_size(size))
        if row:
            table[size] = row
        for finding in bench_findings:
            findings.append(Finding(
                check=finding.check, severity=finding.severity,
                message=f"[{size}] {finding.message}",
                benchmark=finding.benchmark, argument=finding.argument,
                hint=finding.hint,
            ))
    return findings, table
