"""Finding model and reporting for the analysis suite.

Both passes — the static lint over OpenCL C sources and the runtime
sanitizer — emit :class:`Finding` records.  A :class:`Report` collects
them, renders text or JSON output, and decides the exit status of the
``repro lint`` CLI gate.  Each added finding also increments the
``analysis_findings_total`` telemetry counter so sweeps and CI can
track finding volume over time.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Iterator

#: Severity levels, least to most severe.  ``info`` is purely
#: informational output (schema v2; e.g. stride-class reports);
#: ``note`` records something worth a look but idiomatic in simulation
#: (e.g. a wrapped negative index, legal numpy but out-of-bounds in
#: OpenCL C); ``warning`` is a likely defect that does not corrupt
#: results by itself; ``error`` is a correctness violation.
SEVERITIES = ("info", "note", "warning", "error")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Version stamp of the JSON report schema (see docs/analysis.md).
#: v2 adds the ``info`` severity, per-check default severities and the
#: report-level ``extras`` object; every v1 field is unchanged, so v1
#: consumers parse v2 documents.
JSON_SCHEMA_VERSION = 2

#: ``--fail-on`` accepts any severity plus ``any`` (= every finding,
#: whatever its severity, trips the gate).
FAIL_ON_CHOICES = ("any",) + SEVERITIES

#: Default severity per check identifier (schema v2).  Checks absent
#: from the map default to ``warning``; emitters may still override
#: per finding (e.g. ``build-failure`` escalating a parse error).
DEFAULT_SEVERITIES: dict[str, str] = {
    # static lint (regex + IR)
    "build-failure": "error",
    "constant-write": "error",
    "local-from-global": "error",
    "missing-kernel-body": "warning",
    "missing-cl-source": "note",
    "unused-param": "warning",
    "barrier-divergence": "warning",
    # IR-only checks (repro.analysis.deep)
    "uninit-local-var": "error",
    "constant-index-oob": "error",
    "unreachable-code": "warning",
    "reqd-work-group-size": "error",
    "footprint-mismatch": "error",
    "access-stride": "info",
    # access-model checks (repro.analysis.accessmodel)
    "data-race": "error",
    "uncoalesced-access": "warning",
    "bank-conflict": "warning",
    "trace-divergence": "error",
    "aiwc-divergence": "error",
    # runtime sanitizer / suite
    "scalar-dtype": "error",
    "validation-failure": "error",
    "run-failure": "error",
    "oob-access": "error",
    "uninit-read": "warning",
    "write-race": "warning",
    "buffer-leak": "warning",
}


def default_severity(check: str) -> str:
    """The schema-v2 default severity for a check identifier."""
    return DEFAULT_SEVERITIES.get(check, "warning")


@dataclass(frozen=True)
class Finding:
    """One defect located by a lint check or sanitizer probe.

    Parameters
    ----------
    check:
        Stable check identifier (``oob-access``, ``unused-param``, ...;
        the catalogue lives in docs/analysis.md).
    severity:
        One of :data:`SEVERITIES`.
    message:
        Human-readable description of the defect.
    benchmark, kernel, argument, location:
        Progressively finer location: the registered benchmark, the
        ``__kernel`` name, the parameter name, and a free-form element
        or argument position (``"element 132"``, ``"argument 3"``).
    hint:
        Suggested fix, when one is mechanical.
    """

    check: str
    severity: str
    message: str
    benchmark: str | None = None
    kernel: str | None = None
    argument: str | None = None
    location: str | None = None
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def rank(self) -> int:
        """Numeric severity (higher is worse)."""
        return _SEVERITY_RANK[self.severity]

    @property
    def where(self) -> str:
        """Joined location path, coarse to fine."""
        parts = [p for p in (self.benchmark, self.kernel, self.argument,
                             self.location) if p]
        return "/".join(parts) if parts else "<suite>"

    def format(self) -> str:
        """One-line text rendering (the ``repro lint`` output format)."""
        line = f"{self.severity}: [{self.check}] {self.where}: {self.message}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line

    def to_dict(self) -> dict:
        """JSON-ready mapping; unset location fields are omitted."""
        return {k: v for k, v in asdict(self).items() if v is not None}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity name (for ``--fail-on`` thresholds).

    ``any`` ranks below every severity, so ``fails("any")`` trips on
    the first finding of whatever level.
    """
    if severity == "any":
        return 0
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


class Report:
    """An ordered collection of findings with rendering and gating.

    Parameters
    ----------
    emit_metrics:
        When true (the default), every added finding increments the
        ``analysis_findings_total`` counter in the process-global
        telemetry registry, tagged by check, severity and benchmark.
    """

    def __init__(self, emit_metrics: bool = True) -> None:
        self.findings: list[Finding] = []
        #: Structured non-finding payloads (schema v2): a JSON-ready
        #: mapping attached to the report, e.g. the per-benchmark
        #: access-stride classes from the deep pass.
        self.extras: dict = {}
        self._emit_metrics = emit_metrics

    # ------------------------------------------------------------------
    def add(self, finding: Finding) -> None:
        """Record one finding (and bump the telemetry counter)."""
        self.findings.append(finding)
        if self._emit_metrics:
            from ..telemetry.metrics import default_registry

            default_registry().counter(
                "analysis_findings_total",
                "Findings reported by the repro.analysis lint/sanitizer suite",
            ).inc(
                check=finding.check,
                severity=finding.severity,
                benchmark=finding.benchmark or "-",
            )

    def extend(self, findings: Iterable[Finding]) -> None:
        """Record findings in order (each through :meth:`add`)."""
        for finding in findings:
            self.add(finding)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    # ------------------------------------------------------------------
    def count(self, severity: str | None = None) -> int:
        """Number of findings, optionally restricted to one severity."""
        if severity is None:
            return len(self.findings)
        return sum(1 for f in self.findings if f.severity == severity)

    def worst(self) -> str | None:
        """The most severe level present, or ``None`` when empty."""
        if not self.findings:
            return None
        return max(self.findings, key=lambda f: f.rank).severity

    def fails(self, fail_on: str = "error") -> bool:
        """Whether any finding meets the failure threshold."""
        threshold = severity_rank(fail_on)
        return any(f.rank >= threshold for f in self.findings)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        return {severity: self.count(severity) for severity in SEVERITIES}

    def render_text(self) -> str:
        """Multi-line report: findings (most severe first) + totals."""
        lines = [
            f.format()
            for f in sorted(self.findings, key=lambda f: -f.rank)
        ]
        counts = self.summary()
        lines.append(
            "analysis: "
            + ", ".join(f"{counts[s]} {s}(s)" for s in reversed(SEVERITIES))
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """JSON rendering (schema documented in docs/analysis.md).

        v2 keeps every v1 key; ``extras`` appears only when populated,
        so v1 consumers keep parsing v2 documents unchanged.

        Findings are emitted in a stable location-then-check order (and
        ``sort_keys`` orders every mapping), so two runs over the same
        inputs produce byte-identical documents that diff cleanly in
        CI, whatever order the passes discovered them in.
        """
        ordered = sorted(
            self.findings,
            key=lambda f: (f.benchmark or "", f.kernel or "",
                           f.argument or "", f.location or "",
                           f.check, f.severity, f.message),
        )
        document: dict = {
            "schema_version": JSON_SCHEMA_VERSION,
            "summary": self.summary(),
            "findings": [f.to_dict() for f in ordered],
        }
        if self.extras:
            document["extras"] = self.extras
        return json.dumps(document, indent=2, sort_keys=True)
