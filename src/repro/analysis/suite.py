"""Analysis driver: run the lint/sanitizer suite over benchmarks.

This is the engine behind ``repro lint``: for each registered dwarf it
executes the full benchmark life cycle at the smallest problem size on
a simulated device, statically lints every program built on the
context, and (optionally) attaches the runtime sanitizer for the run.
The result is a :class:`~repro.analysis.findings.Report` suitable for
text/JSON output and CI gating.
"""

from __future__ import annotations

from ..dwarfs import registry
from ..dwarfs.base import ValidationError
from ..ocl import CLError, CLSourceError, CommandQueue, Context, find_device
from ..ocl.errors import BuildProgramFailure
from .findings import Finding, Report
from .lint import lint_program
from .sanitize import sanitized

#: Device used for analysis runs.  Any catalog device works — kernels
#: execute functionally regardless — so the suite standardises on the
#: paper's CPU baseline.
DEFAULT_DEVICE = "i7-6700K"


def analyze_benchmark(
    name: str,
    size: str | None = None,
    sanitize: bool = False,
    device_name: str = DEFAULT_DEVICE,
) -> list[Finding]:
    """Run the analysis suite over one benchmark.

    ``size=None`` picks the benchmark's smallest available size (tiny,
    except for the fixed-size benchmarks).  With ``sanitize=True`` the
    life cycle runs under an attached :class:`Sanitizer` and its
    findings (plus a teardown leak check) are included.
    """
    cls = registry.get_benchmark(name)
    if size is None or size not in cls.presets:
        size = cls.available_sizes()[0]
    bench = cls.from_size(size)
    context = Context(find_device(device_name))
    findings: list[Finding] = []

    def run_lifecycle() -> None:
        queue = CommandQueue(context)
        try:
            bench.host_setup(context)
            bench.transfer_inputs(queue)
            bench.run_iteration(queue)
            bench.collect_results(queue)
            bench.validate()
        except CLSourceError as exc:
            findings.append(Finding(
                check="scalar-dtype", severity="error", benchmark=name,
                message=f"host/kernel argument mismatch: {exc}",
                hint="fix the bound value or the OpenCL C signature",
            ))
        except BuildProgramFailure as exc:
            findings.append(Finding(
                check="build-failure", severity="error", benchmark=name,
                message=f"program failed to build: {exc}",
            ))
        except ValidationError as exc:
            findings.append(Finding(
                check="validation-failure", severity="error", benchmark=name,
                message=f"results disagree with the serial reference: {exc}",
            ))
        except CLError as exc:
            findings.append(Finding(
                check="run-failure", severity="error", benchmark=name,
                message=f"benchmark run failed: {type(exc).__name__}: {exc}",
            ))
        finally:
            queue.release()

    if sanitize:
        with sanitized(context, benchmark=name) as san:
            run_lifecycle()
            bench.teardown()
            san.check_leaks()
        findings.extend(san.findings)
    else:
        run_lifecycle()

    for program in context.programs:
        findings.extend(lint_program(program, benchmark=name))

    bench.teardown()
    return findings


def run_suite(
    benchmarks: list[str] | None = None,
    size: str | None = None,
    sanitize: bool = False,
    device_name: str = DEFAULT_DEVICE,
    ignore: tuple[str, ...] = (),
    emit_metrics: bool = True,
) -> Report:
    """Run the suite over many benchmarks and collect a :class:`Report`.

    ``benchmarks=None`` covers every registered dwarf (the paper set
    plus extensions).  Checks named in ``ignore`` are dropped from the
    report (the CLI's ``--ignore``).
    """
    if benchmarks is None:
        benchmarks = [*registry.BENCHMARKS, *registry.EXTENSIONS]
    report = Report(emit_metrics=emit_metrics)
    ignored = set(ignore)
    for name in benchmarks:
        for finding in analyze_benchmark(
            name, size=size, sanitize=sanitize, device_name=device_name
        ):
            if finding.check not in ignored:
                report.add(finding)
    return report
