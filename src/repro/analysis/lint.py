"""Static lint over OpenCL C kernel sources and host-side bindings.

The checks target the host/kernel mismatch class the paper's curation
fought (§4.4): parameters the kernel never reads, writes through
``__constant`` memory, ``__local`` parameters fed from global buffers,
kernels that exist only on one side of the host/device boundary, and
barriers reached under thread-divergent control flow (undefined
behaviour on real devices, invisible in a sequential simulation).

Everything here is textual/structural — no kernel executes.  The
runtime complement lives in :mod:`repro.analysis.sanitize`.
"""

from __future__ import annotations

import re

from ..ocl.clsource import (
    CLKernelSignature,
    CLSourceError,
    kernel_bodies,
    kernel_suppressions,
    parse_kernels,
)
from ..ocl.memory import Buffer
from ..ocl.program import Program
from .findings import Finding
from .frontend import strip_noncode

#: Identifiers whose appearance in an ``if`` condition marks the branch
#: as (potentially) thread-divergent.
_ID_RE = re.compile(
    r"get_global_id|get_local_id|get_group_id|\bgid\b|\btid\b|\blid\b"
)

_BARRIER_RE = re.compile(r"\bbarrier\s*\(")

_IF_RE = re.compile(r"\bif\s*\(")


def _word_re(name: str) -> re.Pattern:
    return re.compile(rf"\b{re.escape(name)}\b")


#: ``name[...] op=``, ``name[...]++`` and ``++name[...]`` — a store
#: through the subscripted pointer.
def _write_through(name: str) -> re.Pattern:
    sub = rf"\b{re.escape(name)}\s*\[[^\]]*\]"
    return re.compile(
        rf"({sub}\s*(\+\+|--|[-+*/%&|^]?=(?!=)))|((\+\+|--)\s*{re.escape(name)}\s*\[)"
    )


def _match_delim(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Offset just past the delimiter matching ``text[start]``, or -1."""
    depth = 0
    for pos in range(start, len(text)):
        if text[pos] == open_ch:
            depth += 1
        elif text[pos] == close_ch:
            depth -= 1
            if depth == 0:
                return pos + 1
    return -1


def _divergent_barrier(body: str) -> bool:
    """Does any work-item-dependent ``if`` body contain a barrier?

    Heuristic: an ``if`` whose condition mentions a work-item id
    (``get_global_id`` etc.) guards a region not all work items reach;
    a ``barrier()`` inside it deadlocks real devices.  Early-exit
    guards (``if (gid >= n) return;``) do not trip this because the
    barrier must be *inside* the divergent block.
    """
    for match in _IF_RE.finditer(body):
        cond_start = match.end() - 1
        cond_end = _match_delim(body, cond_start, "(", ")")
        if cond_end < 0:
            continue
        if not _ID_RE.search(body[cond_start:cond_end]):
            continue
        rest = body[cond_end:]
        block_match = re.match(r"\s*\{", rest)
        if block_match:
            brace_at = cond_end + block_match.end() - 1
            block_end = _match_delim(body, brace_at, "{", "}")
            block = body[brace_at:block_end] if block_end > 0 else body[brace_at:]
        else:
            # single-statement branch: up to the next semicolon
            semi = rest.find(";")
            block = rest if semi < 0 else rest[: semi + 1]
        if _BARRIER_RE.search(block):
            return True
    return False


def _suppressed(allows: set, check: str, name: str | None = None) -> bool:
    return (check, None) in allows or (name is not None and (check, name) in allows)


# ---------------------------------------------------------------------------
def lint_cl_source(
    source: str,
    python_bodies: set[str] | None = None,
    benchmark: str | None = None,
) -> list[Finding]:
    """Lint one OpenCL C source string.

    ``python_bodies`` is the set of kernel names for which the program
    registered a Python body; ``__kernel`` functions outside it are
    flagged (a kernel shipped in ``.cl`` that the simulation never
    executes drifts silently).
    """
    findings: list[Finding] = []
    try:
        signatures = parse_kernels(source)
    except CLSourceError as exc:
        findings.append(Finding(
            check="build-failure", severity="error", benchmark=benchmark,
            message=f"OpenCL C source failed to parse: {exc}",
        ))
        return findings
    bodies = kernel_bodies(source)
    suppressions = kernel_suppressions(source)

    for name, signature in signatures.items():
        body = bodies.get(name)  # None when brace matching failed
        allows = suppressions.get(name, set())
        findings.extend(
            _lint_kernel(signature, body, allows, benchmark, python_bodies)
        )
    return findings


def _lint_kernel(
    signature: CLKernelSignature,
    body: str | None,
    allows: set,
    benchmark: str | None,
    python_bodies: set[str] | None,
) -> list[Finding]:
    name = signature.name
    findings: list[Finding] = []
    # The regex checks below must not see comments or string literals:
    # a parameter named in a comment is not a use (PR 3 false positive)
    code = strip_noncode(body) if body is not None else None

    if (
        python_bodies is not None
        and name not in python_bodies
        and not _suppressed(allows, "missing-kernel-body")
    ):
        findings.append(Finding(
            check="missing-kernel-body", severity="warning",
            benchmark=benchmark, kernel=name,
            message="__kernel is declared in the OpenCL C source but the "
                    "program registers no Python body for it",
            hint="register a KernelSource of the same name, or drop the "
                 "kernel from the .cl source",
        ))

    for index, param in enumerate(signature.params):
        if (
            code is not None
            and not _word_re(param.name).search(code)
            and not _suppressed(allows, "unused-param", param.name)
        ):
            findings.append(Finding(
                check="unused-param", severity="warning",
                benchmark=benchmark, kernel=name, argument=param.name,
                location=f"argument {index}",
                message=f"kernel parameter {param.name!r} is never used in "
                        "the kernel body",
                hint="remove the parameter (and its host-side set_arg) or "
                     "suppress with // repro-lint: allow(unused-param: "
                     f"{param.name})",
            ))
        if (
            param.is_pointer
            and param.address_space == "constant"
            and code
            and _write_through(param.name).search(code)
            and not _suppressed(allows, "constant-write", param.name)
        ):
            findings.append(Finding(
                check="constant-write", severity="error",
                benchmark=benchmark, kernel=name, argument=param.name,
                location=f"argument {index}",
                message=f"kernel writes through __constant pointer "
                        f"{param.name!r}",
                hint="move the parameter to __global, or drop the store",
            ))

    if (
        code
        and _BARRIER_RE.search(code)
        and _divergent_barrier(code)
        and not _suppressed(allows, "barrier-divergence")
    ):
        findings.append(Finding(
            check="barrier-divergence", severity="warning",
            benchmark=benchmark, kernel=name,
            message="barrier() is reached inside a branch conditioned on a "
                    "work-item id; not all work items of a group would reach "
                    "it on a real device",
            hint="hoist the barrier out of the divergent branch",
        ))
    return findings


# ---------------------------------------------------------------------------
def lint_program(program: Program, benchmark: str | None = None) -> list[Finding]:
    """Lint every kernel of a built program plus its host bindings."""
    findings: list[Finding] = []
    python_bodies = set(program.kernel_names)
    seen_sources: set[str] = set()

    for src in program._sources:
        if src.cl_source is None:
            findings.append(Finding(
                check="missing-cl-source", severity="note",
                benchmark=benchmark, kernel=src.name,
                message="kernel has a Python body but carries no OpenCL C "
                        "source; signature checks cannot run",
                hint="attach the .cl text via KernelSource(cl_source=...)",
            ))
            continue
        if src.cl_source in seen_sources:
            continue  # several kernels sharing one .cl file
        seen_sources.add(src.cl_source)
        findings.extend(
            lint_cl_source(src.cl_source, python_bodies, benchmark)
        )

    findings.extend(_lint_bound_args(program, benchmark))
    return findings


def _lint_bound_args(program: Program, benchmark: str | None) -> list[Finding]:
    """Cross-check host-side ``set_args`` bindings against signatures.

    Scalar dtype mismatches raise at ``set_arg`` time; what remains to
    lint is address-space misuse the runtime tolerates, i.e. a
    ``__local`` pointer fed from a global :class:`Buffer` (real OpenCL
    passes only a *size* for ``__local`` parameters).
    """
    findings: list[Finding] = []
    for kernel in program._kernels:
        if kernel.signature is None or kernel._args is None:
            continue
        for index, param in enumerate(kernel.signature.params):
            if index >= len(kernel._args):
                break
            value = kernel._args[index]
            if (
                param.is_pointer
                and param.address_space == "local"
                and isinstance(value, Buffer)
            ):
                findings.append(Finding(
                    check="local-from-global", severity="error",
                    benchmark=benchmark, kernel=kernel.name,
                    argument=param.name, location=f"argument {index}",
                    message="a global Buffer is bound to a __local pointer "
                            "parameter; OpenCL passes __local arguments as a "
                            "size, not a buffer",
                    hint="bind the scratch size instead, or change the "
                         "parameter's address space",
                ))
    return findings
