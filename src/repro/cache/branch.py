"""Branch predictor model (2-bit saturating counters).

Provides the ``PAPI_BR_INS`` / ``PAPI_BR_MSP`` counters of the paper's
verification set.  A classic bimodal predictor: a table of 2-bit
saturating counters indexed by (hashed) branch PC.
"""

from __future__ import annotations

import numpy as np

# 2-bit counter states: 0,1 predict not-taken; 2,3 predict taken.
_WEAK_NOT_TAKEN = 1


class BranchPredictor:
    """Bimodal predictor with a power-of-two counter table."""

    def __init__(self, table_size: int = 4096):
        if table_size & (table_size - 1) or table_size < 1:
            raise ValueError(f"table size must be a power of two, got {table_size}")
        self.table_size = table_size
        self._mask = table_size - 1
        self._table = np.full(table_size, _WEAK_NOT_TAKEN, dtype=np.int8)
        self.branches = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict one branch, update the counter; returns the prediction."""
        idx = (int(pc) >> 2) & self._mask
        counter = self._table[idx]
        prediction = counter >= 2
        self.branches += 1
        if prediction != bool(taken):
            self.mispredictions += 1
        if taken:
            self._table[idx] = min(counter + 1, 3)
        else:
            self._table[idx] = max(counter - 1, 0)
        return bool(prediction)

    def run_trace(self, pcs, outcomes) -> int:
        """Feed parallel arrays of PCs and outcomes; returns new mispredictions."""
        pcs = np.asarray(pcs)
        outcomes = np.asarray(outcomes, dtype=bool)
        if pcs.shape != outcomes.shape:
            raise ValueError(
                f"pc/outcome traces differ in length: {pcs.shape} vs {outcomes.shape}"
            )
        before = self.mispredictions
        for pc, taken in zip(pcs.tolist(), outcomes.tolist()):
            self.predict_and_update(pc, taken)
        return self.mispredictions - before

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    def reset(self) -> None:
        self._table.fill(_WEAK_NOT_TAKEN)
        self.branches = 0
        self.mispredictions = 0
