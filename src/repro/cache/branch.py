"""Branch predictor model (2-bit saturating counters).

Provides the ``PAPI_BR_INS`` / ``PAPI_BR_MSP`` counters of the paper's
verification set.  A classic bimodal predictor: a table of 2-bit
saturating counters indexed by (hashed) branch PC.

``run_trace`` has a vectorized path (see :mod:`repro.cache.batch`)
that groups the trace by table slot and run-length-encodes each
slot's outcome stream: a run of ``L`` taken branches starting from
counter ``c`` mispredicts exactly ``clamp(2 - c, 0, L)`` times and
leaves the counter at ``min(3, c + L)`` (symmetrically for
not-taken), so each run costs O(1) instead of O(L).  Slots are
independent and per-slot order is preserved, so the batch result is
bit-exact against the scalar :meth:`BranchPredictor.predict_and_update`
oracle.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..telemetry.tracer import get_tracer
from .batch import batch_enabled

# 2-bit counter states: 0,1 predict not-taken; 2,3 predict taken.
_WEAK_NOT_TAKEN = 1


class BranchPredictor:
    """Bimodal predictor with a power-of-two counter table."""

    def __init__(self, table_size: int = 4096) -> None:
        if table_size & (table_size - 1) or table_size < 1:
            raise ValueError(f"table size must be a power of two, got {table_size}")
        self.table_size = table_size
        self._mask = table_size - 1
        self._table = np.full(table_size, _WEAK_NOT_TAKEN, dtype=np.int8)
        self.branches = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict one branch, update the counter; returns the prediction."""
        idx = (int(pc) >> 2) & self._mask
        counter = self._table[idx]
        prediction = counter >= 2
        self.branches += 1
        if prediction != bool(taken):
            self.mispredictions += 1
        if taken:
            self._table[idx] = min(counter + 1, 3)
        else:
            self._table[idx] = max(counter - 1, 0)
        return bool(prediction)

    def run_trace(self, pcs: Iterable[int] | np.ndarray,
                  outcomes: Iterable[bool] | np.ndarray) -> int:
        """Feed parallel arrays of PCs and outcomes; returns new mispredictions."""
        pcs = np.asarray(pcs)
        outcomes = np.asarray(outcomes, dtype=bool)
        if pcs.shape != outcomes.shape:
            raise ValueError(
                f"pc/outcome traces differ in length: {pcs.shape} vs {outcomes.shape}"
            )
        with get_tracer().span("branch_trace", phase="cache_sim") as sp:
            sp.set_attribute("branches", int(pcs.size))
            before = self.mispredictions
            if batch_enabled():
                self._run_batch(pcs.ravel(), outcomes.ravel())
            else:
                for pc, taken in zip(pcs.tolist(), outcomes.tolist()):
                    self.predict_and_update(pc, taken)
            return self.mispredictions - before

    def _run_batch(self, pcs: np.ndarray, outcomes: np.ndarray) -> None:
        """Grouped run-length replay; exact against the scalar oracle."""
        n = int(pcs.size)
        if n == 0:
            return
        slots = (pcs.astype(np.int64) >> 2) & self._mask
        order = np.argsort(slots, kind="stable")
        sorted_slots = slots[order]
        sorted_outs = outcomes[order]
        bounds = np.flatnonzero(sorted_slots[1:] != sorted_slots[:-1]) + 1
        starts = np.concatenate(([0], bounds)).tolist()
        ends = np.concatenate((bounds, [n])).tolist()
        table = self._table
        mispredicted = 0
        for gs, ge in zip(starts, ends):
            slot = int(sorted_slots[gs])
            counter = int(table[slot])
            outs = sorted_outs[gs:ge]
            m = ge - gs
            change = np.flatnonzero(outs[1:] != outs[:-1]) + 1
            run_starts = np.concatenate(([0], change)).tolist()
            run_ends = np.concatenate((change, [m])).tolist()
            for rs, re in zip(run_starts, run_ends):
                length = re - rs
                if outs[rs]:
                    mispredicted += min(max(2 - counter, 0), length)
                    counter = min(3, counter + length)
                else:
                    mispredicted += min(max(counter - 1, 0), length)
                    counter = max(0, counter - length)
            table[slot] = counter
        self.branches += n
        self.mispredictions += int(mispredicted)

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    def reset(self) -> None:
        self._table.fill(_WEAK_NOT_TAKEN)
        self.branches = 0
        self.mispredictions = 0
