"""Batch-simulation toggle shared by the cache/TLB/branch models.

The simulators in this package each keep two equivalent
implementations of their trace entry point (``access_many`` /
``run_trace``):

* the **scalar oracle** — the original per-address Python loop, kept
  byte-for-byte as the reference semantics;
* the **batch path** — a numpy rewrite that decomposes whole address
  arrays at once and only drops to tight Python loops over the
  irreducibly sequential state updates (per-set LRU stacks,
  saturating counters).

Both paths mutate the *same* canonical state (the per-set LRU dicts,
the counter table), so scalar and batch calls can interleave freely
and property tests can pin the batch results against the oracle
bit-exactly (``tests/test_cache_batch.py``).

The batch path is on by default.  ``REPRO_SIM_BATCH=0`` (or ``false``
/ ``off``) falls back to the scalar oracle everywhere — the knob the
benchmark trajectory uses to record honest before/after points, and
an escape hatch should a platform's numpy misbehave.  The variable is
read at call time, so worker processes and the
:func:`scalar_mode` / :func:`batch_mode` context managers all see
changes immediately.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterable, Iterator

import numpy as np

#: Environment variable controlling the batch fast path.
ENV_VAR = "REPRO_SIM_BATCH"

_FALSEY = {"0", "false", "off", "no"}


def batch_enabled() -> bool:
    """Whether the vectorized trace paths are active (default: yes)."""
    return os.environ.get(ENV_VAR, "1").strip().lower() not in _FALSEY


@contextmanager
def scalar_mode() -> Iterator[None]:
    """Force the scalar oracle within the block (tests, baselines)."""
    prior = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = "0"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = prior


@contextmanager
def batch_mode() -> Iterator[None]:
    """Force the batch path within the block (symmetry with scalar_mode)."""
    prior = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = "1"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = prior


def as_addresses(addresses: Iterable[int] | np.ndarray) -> np.ndarray:
    """Coerce any address iterable to a 1-D int64 numpy array.

    Accepts ndarrays (cast without copy when already int64), ranges,
    lists and generators — everything the scalar paths accepted.
    """
    if isinstance(addresses, np.ndarray):
        arr = addresses.astype(np.int64, copy=False)
    else:
        arr = np.fromiter((int(a) for a in addresses), dtype=np.int64) \
            if not isinstance(addresses, (list, tuple, range)) \
            else np.asarray(addresses, dtype=np.int64)
    return np.ravel(arr)
