"""Synthetic memory-access trace builders.

The sizing verifier replays a short, representative address trace per
benchmark through the cache simulator to confirm that *tiny/small/
medium/large* working sets produce the expected per-level miss-rate
transitions — the role PAPI counters play in the paper (§4.4).

Traces are numpy int64 arrays of byte addresses.  Builders cap trace
length (``max_len``) and scale strides up instead, so verification of
multi-megabyte working sets stays fast while still sweeping the whole
footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DEFAULT_MAX_LEN = 200_000


def sequential(working_set_bytes: int, element_bytes: int = 4, passes: int = 2,
               max_len: int = DEFAULT_MAX_LEN) -> np.ndarray:
    """Stream through the working set ``passes`` times, unit stride.

    If the trace would exceed ``max_len`` accesses, the stride is
    raised (still touching every cache line proportionally) so the
    footprint is preserved.
    """
    if working_set_bytes <= 0:
        return np.empty(0, dtype=np.int64)
    n = max(1, working_set_bytes // element_bytes)
    per_pass = max_len // max(passes, 1)
    step = max(1, int(np.ceil(n / max(per_pass, 1))))
    offsets = (np.arange(0, n, step, dtype=np.int64) * element_bytes)
    return np.tile(offsets, passes)


def strided(working_set_bytes: int, stride_bytes: int, element_bytes: int = 4,
            passes: int = 2, max_len: int = DEFAULT_MAX_LEN) -> np.ndarray:
    """Constant-stride sweep of the working set."""
    if working_set_bytes <= 0:
        return np.empty(0, dtype=np.int64)
    addresses = np.arange(0, working_set_bytes, stride_bytes, dtype=np.int64)
    if passes * len(addresses) > max_len:
        keep = max(1, max_len // max(passes, 1))
        idx = np.linspace(0, len(addresses) - 1, keep).astype(np.int64)
        addresses = addresses[idx]
    return np.tile(addresses, passes)


def random_uniform(working_set_bytes: int, n_accesses: int,
                   rng: np.random.Generator, element_bytes: int = 4) -> np.ndarray:
    """Uniformly random element accesses within the working set."""
    if working_set_bytes <= 0 or n_accesses <= 0:
        return np.empty(0, dtype=np.int64)
    n_elements = max(1, working_set_bytes // element_bytes)
    return rng.integers(0, n_elements, size=n_accesses, dtype=np.int64) * element_bytes


def blocked(working_set_bytes: int, block_bytes: int, reuse: int = 4,
            max_len: int = DEFAULT_MAX_LEN) -> np.ndarray:
    """Block-wise traversal: stream each block ``reuse`` times in turn.

    Models tiled kernels (``lud``) whose inner loops re-touch a block
    before moving on.
    """
    if working_set_bytes <= 0:
        return np.empty(0, dtype=np.int64)
    block_bytes = min(block_bytes, working_set_bytes)
    n_blocks = max(1, working_set_bytes // block_bytes)
    per_block = max(8, max_len // (n_blocks * max(reuse, 1)))
    step = max(4, block_bytes // per_block)
    parts = []
    for b in range(n_blocks):
        base = b * block_bytes
        once = np.arange(base, base + block_bytes, step, dtype=np.int64)
        parts.append(np.tile(once, reuse))
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def interleaved(traces: list[np.ndarray]) -> np.ndarray:
    """Round-robin interleave several traces (multi-array kernels).

    Shorter traces are exhausted first; remaining entries of longer
    traces follow in order.
    """
    traces = [t for t in traces if len(t)]
    if not traces:
        return np.empty(0, dtype=np.int64)
    longest = max(len(t) for t in traces)
    out = []
    for i in range(longest):
        for t in traces:
            if i < len(t):
                out.append(t[i])
    return np.asarray(out, dtype=np.int64)


def offset_trace(trace: np.ndarray, base_address: int) -> np.ndarray:
    """Rebase a trace at ``base_address`` (distinct arrays in memory)."""
    if len(trace) == 0:
        return trace
    return trace + np.int64(base_address)


# ---------------------------------------------------------------------------
# Declarative trace specs
# ---------------------------------------------------------------------------
#
# Every dwarf used to carry a hand-written ``access_trace`` body that
# composed the builders above.  The patterns were all instances of the
# same small grammar — interleave a few component streams, each with a
# share of the ``max_len`` budget, concatenate groups — so the per-dwarf
# knowledge is now expressed as data (`TraceSpec`) and interpreted by
# ``TraceSpec.build``.  The spec doubles as machine-readable ground
# truth for the differential trace gate: each component kind maps onto
# a stride class that the IR-derived model must agree with.

def _resolve_budget(budget: tuple[str, float] | None, max_len: int) -> int:
    # ("floordiv", k) → max_len // k; ("mul", f) → int(max_len * f); None →
    # max_len.  Budgets stay as exact forms (not collapsed to one float) so
    # rebuilt traces are bit-identical to the historical hand-written ones.
    if budget is None:
        return max_len
    op, arg = budget
    if op == "floordiv":
        return max_len // int(arg)
    if op == "mul":
        return int(max_len * arg)
    raise ValueError(f"unknown budget op: {op!r}")


@dataclass(frozen=True)
class TraceComponent:
    """One address stream inside a trace spec.

    ``kind`` selects the builder: ``sequential``, ``strided``,
    ``random`` or ``blocked``.  ``offset`` rebases the stream (distinct
    arrays laid out back to back); ``budget`` is this component's share
    of the overall ``max_len`` cap.
    """

    kind: str
    nbytes: int
    element_bytes: int = 4
    passes: int = 2
    stride_bytes: int = 0
    block_bytes: int = 0
    reuse: int = 4
    seed_offset: int = 0
    offset: int = 0
    budget: tuple[str, float] | None = None

    def build(self, max_len: int, seed: int) -> np.ndarray:
        cap = _resolve_budget(self.budget, max_len)
        if self.kind == "sequential":
            t = sequential(self.nbytes, element_bytes=self.element_bytes,
                           passes=self.passes, max_len=cap)
        elif self.kind == "strided":
            t = strided(self.nbytes, self.stride_bytes,
                        element_bytes=self.element_bytes,
                        passes=self.passes, max_len=cap)
        elif self.kind == "random":
            rng = np.random.default_rng(seed + self.seed_offset)
            t = random_uniform(self.nbytes, cap, rng,
                               element_bytes=self.element_bytes)
        elif self.kind == "blocked":
            t = blocked(self.nbytes, self.block_bytes, reuse=self.reuse,
                        max_len=cap)
        else:
            raise ValueError(f"unknown trace component kind: {self.kind!r}")
        return offset_trace(t, self.offset) if self.offset else t

    @property
    def stride_class(self) -> str:
        """The stride class this component models (differential gate)."""
        if self.kind == "sequential":
            return "unit"
        if self.kind in ("strided", "blocked"):
            return "strided"
        if self.kind == "random":
            return "indirect"
        raise ValueError(f"unknown trace component kind: {self.kind!r}")


@dataclass(frozen=True)
class TraceSpec:
    """Declarative access-trace description: groups of interleaved components.

    Components within a group are round-robin interleaved; groups are
    concatenated in order (``fft`` emits one group per butterfly stage).
    """

    groups: tuple[tuple[TraceComponent, ...], ...]

    @classmethod
    def single(cls, *components: TraceComponent) -> "TraceSpec":
        return cls(groups=(tuple(components),))

    def build(self, max_len: int = DEFAULT_MAX_LEN, seed: int = 0) -> np.ndarray:
        parts = [
            interleaved([c.build(max_len, seed) for c in group])
            for group in self.groups
        ]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def components(self) -> list[TraceComponent]:
        return [c for group in self.groups for c in group]

    def stride_classes(self) -> set[str]:
        return {c.stride_class for c in self.components()}

    def span_bytes(self) -> int:
        """Upper bound on the byte span the built trace covers."""
        hi = 0
        for c in self.components():
            if c.nbytes > 0:
                hi = max(hi, c.offset + c.nbytes)
        return hi


def seq(nbytes: int, *, element_bytes: int = 4, passes: int = 2,
        offset: int = 0, budget: tuple[str, float] | None = None) -> TraceComponent:
    """Shorthand for a sequential component."""
    return TraceComponent(kind="sequential", nbytes=nbytes,
                          element_bytes=element_bytes, passes=passes,
                          offset=offset, budget=budget)


def strided_component(nbytes: int, stride_bytes: int, *, passes: int = 2,
                      offset: int = 0,
                      budget: tuple[str, float] | None = None) -> TraceComponent:
    """Shorthand for a constant-stride component."""
    return TraceComponent(kind="strided", nbytes=nbytes,
                          stride_bytes=stride_bytes, passes=passes,
                          offset=offset, budget=budget)


def random_component(nbytes: int, *, element_bytes: int = 4, seed_offset: int = 0,
                     offset: int = 0,
                     budget: tuple[str, float] | None = None) -> TraceComponent:
    """Shorthand for a uniformly random (gather) component."""
    return TraceComponent(kind="random", nbytes=nbytes,
                          element_bytes=element_bytes, seed_offset=seed_offset,
                          offset=offset, budget=budget)


def blocked_component(nbytes: int, block_bytes: int, *, reuse: int = 4,
                      offset: int = 0,
                      budget: tuple[str, float] | None = None) -> TraceComponent:
    """Shorthand for a block-reuse (tiled) component."""
    return TraceComponent(kind="blocked", nbytes=nbytes,
                          block_bytes=block_bytes, reuse=reuse,
                          offset=offset, budget=budget)
