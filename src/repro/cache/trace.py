"""Synthetic memory-access trace builders.

The sizing verifier replays a short, representative address trace per
benchmark through the cache simulator to confirm that *tiny/small/
medium/large* working sets produce the expected per-level miss-rate
transitions — the role PAPI counters play in the paper (§4.4).

Traces are numpy int64 arrays of byte addresses.  Builders cap trace
length (``max_len``) and scale strides up instead, so verification of
multi-megabyte working sets stays fast while still sweeping the whole
footprint.
"""

from __future__ import annotations

import numpy as np

DEFAULT_MAX_LEN = 200_000


def sequential(working_set_bytes: int, element_bytes: int = 4, passes: int = 2,
               max_len: int = DEFAULT_MAX_LEN) -> np.ndarray:
    """Stream through the working set ``passes`` times, unit stride.

    If the trace would exceed ``max_len`` accesses, the stride is
    raised (still touching every cache line proportionally) so the
    footprint is preserved.
    """
    if working_set_bytes <= 0:
        return np.empty(0, dtype=np.int64)
    n = max(1, working_set_bytes // element_bytes)
    per_pass = max_len // max(passes, 1)
    step = max(1, int(np.ceil(n / max(per_pass, 1))))
    offsets = (np.arange(0, n, step, dtype=np.int64) * element_bytes)
    return np.tile(offsets, passes)


def strided(working_set_bytes: int, stride_bytes: int, element_bytes: int = 4,
            passes: int = 2, max_len: int = DEFAULT_MAX_LEN) -> np.ndarray:
    """Constant-stride sweep of the working set."""
    if working_set_bytes <= 0:
        return np.empty(0, dtype=np.int64)
    addresses = np.arange(0, working_set_bytes, stride_bytes, dtype=np.int64)
    if passes * len(addresses) > max_len:
        keep = max(1, max_len // max(passes, 1))
        idx = np.linspace(0, len(addresses) - 1, keep).astype(np.int64)
        addresses = addresses[idx]
    return np.tile(addresses, passes)


def random_uniform(working_set_bytes: int, n_accesses: int,
                   rng: np.random.Generator, element_bytes: int = 4) -> np.ndarray:
    """Uniformly random element accesses within the working set."""
    if working_set_bytes <= 0 or n_accesses <= 0:
        return np.empty(0, dtype=np.int64)
    n_elements = max(1, working_set_bytes // element_bytes)
    return rng.integers(0, n_elements, size=n_accesses, dtype=np.int64) * element_bytes


def blocked(working_set_bytes: int, block_bytes: int, reuse: int = 4,
            max_len: int = DEFAULT_MAX_LEN) -> np.ndarray:
    """Block-wise traversal: stream each block ``reuse`` times in turn.

    Models tiled kernels (``lud``) whose inner loops re-touch a block
    before moving on.
    """
    if working_set_bytes <= 0:
        return np.empty(0, dtype=np.int64)
    block_bytes = min(block_bytes, working_set_bytes)
    n_blocks = max(1, working_set_bytes // block_bytes)
    per_block = max(8, max_len // (n_blocks * max(reuse, 1)))
    step = max(4, block_bytes // per_block)
    parts = []
    for b in range(n_blocks):
        base = b * block_bytes
        once = np.arange(base, base + block_bytes, step, dtype=np.int64)
        parts.append(np.tile(once, reuse))
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def interleaved(traces: list[np.ndarray]) -> np.ndarray:
    """Round-robin interleave several traces (multi-array kernels).

    Shorter traces are exhausted first; remaining entries of longer
    traces follow in order.
    """
    traces = [t for t in traces if len(t)]
    if not traces:
        return np.empty(0, dtype=np.int64)
    longest = max(len(t) for t in traces)
    out = []
    for i in range(longest):
        for t in traces:
            if i < len(t):
                out.append(t[i])
    return np.asarray(out, dtype=np.int64)


def offset_trace(trace: np.ndarray, base_address: int) -> np.ndarray:
    """Rebase a trace at ``base_address`` (distinct arrays in memory)."""
    if len(trace) == 0:
        return trace
    return trace + np.int64(base_address)
