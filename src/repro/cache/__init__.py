"""Cache, TLB and branch-predictor simulators.

These substrates stand in for the PAPI hardware counters the paper
uses to verify its problem-size selection (DESIGN.md §2).
"""

from .batch import batch_enabled, batch_mode, scalar_mode
from .branch import BranchPredictor
from .hierarchy import CacheHierarchy
from .prefetch import PrefetchStats, StreamPrefetcher
from .setassoc import CacheStats, SetAssociativeCache
from .tlb import TLB
from . import trace

__all__ = [
    "BranchPredictor",
    "CacheHierarchy",
    "PrefetchStats",
    "StreamPrefetcher",
    "CacheStats",
    "SetAssociativeCache",
    "TLB",
    "batch_enabled",
    "batch_mode",
    "scalar_mode",
    "trace",
]
