"""Multi-level cache hierarchy.

Chains :class:`SetAssociativeCache` levels the way the paper's CPU
platforms do (L1 -> L2 -> L3 -> memory): an access probes levels
inward-out, allocating in every level it missed (inclusive fill).
Per-level counters map onto the PAPI events the paper collects
(``PAPI_L1_DCM``, ``PAPI_L2_DCM``, ``PAPI_L3_TCM``).
"""

from __future__ import annotations

from typing import Iterable

from ..devices.specs import DeviceSpec
from ..telemetry.tracer import get_tracer
from .batch import as_addresses, batch_enabled
from .setassoc import SetAssociativeCache


class CacheHierarchy:
    """An inclusive multi-level cache fed with byte addresses."""

    def __init__(self, levels: list[SetAssociativeCache]) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        sizes = [l.size_bytes for l in levels]
        if sizes != sorted(sizes):
            raise ValueError(f"levels must grow outward, got sizes {sizes}")
        self.levels = levels
        #: Number of accesses that missed every level (went to memory).
        self.memory_accesses = 0

    @classmethod
    def for_device(cls, spec: DeviceSpec) -> "CacheHierarchy":
        """Build the hierarchy described by a device's spec.

        Cache sizes are rounded down to the nearest valid power-of-two
        set count (the i5-3550's 6 MiB L3, for instance, is 12-way with
        a non-power-of-two capacity; modelling it as the nearest valid
        geometry at the same capacity-per-way keeps miss behaviour
        realistic).
        """
        levels = []
        names = ("L1", "L2", "L3")
        for i, level in enumerate(spec.caches):
            size = level.size_kib * 1024
            line = level.line_bytes
            ways = level.associativity
            n_sets = max(1, size // (line * ways))
            pow2_sets = 1 << (n_sets.bit_length() - 1)
            levels.append(
                SetAssociativeCache(
                    size_bytes=pow2_sets * line * ways,
                    line_bytes=line,
                    associativity=ways,
                    name=names[i] if i < len(names) else f"L{i + 1}",
                )
            )
        return cls(levels)

    # ------------------------------------------------------------------
    def access(self, address: int) -> int:
        """Access an address; returns the level index that hit.

        ``len(levels)`` means main memory.  Fills are inclusive: a miss
        at level *i* allocates the line in levels ``0..i``.
        """
        for i, cache in enumerate(self.levels):
            if cache.access(address):
                return i
        self.memory_accesses += 1
        return len(self.levels)

    def access_many(self, addresses: Iterable[int]) -> None:
        """Feed a whole trace (iterable of byte addresses).

        With batch simulation enabled (the default, see
        :mod:`repro.cache.batch`) the whole trace runs through each
        level's vectorized ``access_batch`` with level-filtered miss
        propagation: L2 only sees L1's miss subset, in original order.
        Each level's state depends only on its own input stream, and
        that stream is identical to the scalar walk's, so the result
        is bit-exact against the per-address oracle.
        """
        with get_tracer().span("cache_sim_trace", phase="cache_sim") as sp:
            if batch_enabled():
                pending = as_addresses(addresses)
                count = int(pending.size)
                for cache in self.levels:
                    if pending.size == 0:
                        break
                    hit_mask = cache.access_batch(pending)
                    pending = pending[~hit_mask]
                self.memory_accesses += int(pending.size)
            else:
                access = self.access
                count = 0
                for a in addresses:
                    access(int(a))
                    count += 1
            sp.set_attribute("accesses", count)

    # ------------------------------------------------------------------
    def miss_counts(self) -> dict[str, int]:
        """Misses per level keyed by level name."""
        return {c.name: c.stats.misses for c in self.levels}

    def miss_rates(self) -> dict[str, float]:
        """Miss rate per level (misses / accesses at that level)."""
        return {c.name: c.stats.miss_rate for c in self.levels}

    def reset(self) -> None:
        for c in self.levels:
            c.reset()
        self.memory_accesses = 0

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.levels)
        return f"<CacheHierarchy [{inner}]>"
