"""Hardware prefetcher model (next-line / stride stream prefetcher).

CPU prefetchers are why the paper's sequential *tiny/small* workloads
show near-zero demand misses after warm-up and why small-stride codes
retain most of their streaming bandwidth.  This module wraps a
:class:`CacheHierarchy` with a simple stream prefetcher: it detects
up to ``streams`` concurrent constant-stride access streams and, on a
match, prefetches ``depth`` lines ahead into the hierarchy.

Counters distinguish demand misses from prefetch-covered accesses, so
the prefetcher's coverage is directly measurable — the classic metric
for evaluating these units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .batch import as_addresses, batch_enabled
from .hierarchy import CacheHierarchy


@dataclass
class StreamState:
    """One tracked access stream."""

    last_line: int
    stride: int
    confidence: int = 0


@dataclass
class PrefetchStats:
    demand_accesses: int = 0
    demand_misses: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0  # demand accesses that hit a prefetched line

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses covered by prefetching."""
        would_miss = self.demand_misses + self.prefetch_hits
        return self.prefetch_hits / would_miss if would_miss else 0.0

    @property
    def demand_miss_rate(self) -> float:
        return (self.demand_misses / self.demand_accesses
                if self.demand_accesses else 0.0)


class StreamPrefetcher:
    """Stride-detecting stream prefetcher in front of a hierarchy.

    Parameters
    ----------
    hierarchy:
        The cache hierarchy to train on and prefetch into.
    streams:
        Concurrent stream trackers (LRU-replaced).
    depth:
        Lines prefetched ahead on a confident stream hit.
    trigger_confidence:
        Consecutive same-stride accesses before prefetching starts.
    """

    def __init__(self, hierarchy: CacheHierarchy, streams: int = 8,
                 depth: int = 2, trigger_confidence: int = 2) -> None:
        if streams < 1 or depth < 1 or trigger_confidence < 1:
            raise ValueError("streams, depth and trigger_confidence must be >= 1")
        self.hierarchy = hierarchy
        self.streams = streams
        self.depth = depth
        self.trigger_confidence = trigger_confidence
        self.line_bytes = hierarchy.levels[0].line_bytes
        self._trackers: dict[int, StreamState] = {}  # keyed by stream id
        self._next_id = 0
        self._prefetched_lines: set[int] = set()
        self.stats = PrefetchStats()

    # ------------------------------------------------------------------
    def _match_stream(self, line: int) -> StreamState | None:
        """Find (and update) the tracker whose prediction this line fits."""
        for state in self._trackers.values():
            stride = line - state.last_line
            if stride == 0:
                state.last_line = line
                return state
            if stride == state.stride:
                state.confidence += 1
                state.last_line = line
                return state
            # one-off re-train: adopt the new stride at low confidence
            if abs(stride) <= 8 and state.confidence == 0:
                state.stride = stride
                state.last_line = line
                return state
        return None

    def _allocate_stream(self, line: int) -> None:
        if len(self._trackers) >= self.streams:
            oldest = next(iter(self._trackers))
            del self._trackers[oldest]
        self._trackers[self._next_id] = StreamState(last_line=line, stride=1)
        self._next_id += 1

    # ------------------------------------------------------------------
    def access(self, address: int) -> bool:
        """One demand access; returns True if it hit (incl. prefetched)."""
        return self._access_line(int(address), int(address) // self.line_bytes)

    def _access_line(self, address: int, line: int) -> bool:
        """The :meth:`access` body with the line split precomputed."""
        self.stats.demand_accesses += 1

        was_prefetched = line in self._prefetched_lines
        level = self.hierarchy.access(int(address))
        hit = level < len(self.hierarchy.levels)
        if hit and was_prefetched:
            self.stats.prefetch_hits += 1
            self._prefetched_lines.discard(line)
        if not hit:
            self.stats.demand_misses += 1

        state = self._match_stream(line)
        if state is None:
            self._allocate_stream(line)
        elif state.confidence >= self.trigger_confidence:
            for ahead in range(1, self.depth + 1):
                target = line + state.stride * ahead
                if target < 0 or target in self._prefetched_lines:
                    continue
                self.hierarchy.access(target * self.line_bytes)
                self._prefetched_lines.add(target)
                self.stats.prefetches_issued += 1
        return hit

    def access_many(self, addresses: Iterable[int]) -> None:
        """Feed a demand trace.

        Unlike the pure cache models, the prefetcher is irreducibly
        sequential: each access both *reads* hierarchy state (was the
        line prefetched? did the demand hit?) and *writes* it (issues
        prefetches whose targets depend on the just-updated stream
        trackers).  The batch path therefore only vectorizes the
        address→line decomposition and localizes the per-access loop;
        results are trivially identical to the scalar walk.
        """
        if batch_enabled():
            arr = as_addresses(addresses)
            access_line = self._access_line
            for address, line in zip(arr.tolist(),
                                     (arr // self.line_bytes).tolist()):
                access_line(address, line)
        else:
            for a in addresses:
                self.access(int(a))

    def reset(self) -> None:
        self.hierarchy.reset()
        self._trackers.clear()
        self._prefetched_lines.clear()
        self.stats = PrefetchStats()
