"""Set-associative cache with LRU replacement.

A faithful (if simple) single-level cache model: addresses are split
into line offset / set index / tag; each set holds ``associativity``
tags in LRU order.  Used by the problem-size verifier to reproduce the
paper's PAPI-counter methodology: miss rates jump when a benchmark's
working set no longer fits a level.
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = 0


class SetAssociativeCache:
    """One level of set-associative, write-allocate, LRU cache.

    Parameters
    ----------
    size_bytes:
        Total capacity; must be a power-of-two multiple of
        ``line_bytes * associativity``.
    line_bytes:
        Cache line size (power of two).
    associativity:
        Ways per set.
    name:
        Label used in reports ("L1", "L2", ...).
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, associativity: int = 8,
                 name: str = "cache"):
        if not _is_pow2(line_bytes):
            raise ValueError(f"line size must be a power of two, got {line_bytes}")
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {associativity}")
        if size_bytes < line_bytes * associativity:
            raise ValueError(
                f"cache of {size_bytes} B cannot hold one set of "
                f"{associativity} x {line_bytes} B lines"
            )
        n_sets = size_bytes // (line_bytes * associativity)
        if not _is_pow2(n_sets):
            raise ValueError(
                f"size {size_bytes} / (line {line_bytes} x ways {associativity}) "
                f"gives {n_sets} sets, which is not a power of two"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.n_sets = n_sets
        self._offset_bits = line_bytes.bit_length() - 1
        self._index_mask = n_sets - 1
        # Per-set LRU stacks: dicts preserve insertion order; the first
        # key is the LRU line, the last the MRU.
        self._sets: list[dict[int, None]] = [dict() for _ in range(n_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _split(self, address: int) -> tuple[int, int]:
        line = address >> self._offset_bits
        return line & self._index_mask, line >> (self.n_sets.bit_length() - 1)

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit.

        Misses allocate the line, evicting LRU if the set is full.
        """
        set_index, tag = self._split(int(address))
        ways = self._sets[set_index]
        self.stats.accesses += 1
        if tag in ways:
            # refresh LRU position
            del ways[tag]
            ways[tag] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.associativity:
            ways.pop(next(iter(ways)))  # evict LRU
        ways[tag] = None
        return False

    def access_many(self, addresses) -> int:
        """Run a sequence of byte addresses; returns the miss count added."""
        before = self.stats.misses
        access = self.access
        for a in addresses:
            access(a)
        return self.stats.misses - before

    # ------------------------------------------------------------------
    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident (no LRU update)."""
        set_index, tag = self._split(int(address))
        return tag in self._sets[set_index]

    @property
    def lines_resident(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        """Invalidate all lines (counters are preserved)."""
        for s in self._sets:
            s.clear()

    def reset(self) -> None:
        """Invalidate all lines and zero the counters."""
        self.flush()
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"<{self.name}: {self.size_bytes >> 10} KiB, "
            f"{self.associativity}-way, {self.n_sets} sets>"
        )
