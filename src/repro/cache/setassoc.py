"""Set-associative cache with LRU replacement.

A faithful (if simple) single-level cache model: addresses are split
into line offset / set index / tag; each set holds ``associativity``
tags in LRU order.  Used by the problem-size verifier to reproduce the
paper's PAPI-counter methodology: miss rates jump when a benchmark's
working set no longer fits a level.

Two trace entry points share the same canonical state (the per-set
LRU dicts): the scalar :meth:`SetAssociativeCache.access` oracle and
the vectorized :meth:`SetAssociativeCache.access_batch` used by
``access_many`` when batch simulation is enabled (see
:mod:`repro.cache.batch` and ``docs/performance.md``).  The batch
path is bit-exact against the oracle: sets are mutually independent,
so grouping a trace by set index and replaying each group in order
produces the same final state and the same per-access hit/miss
outcomes as the interleaved scalar walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .batch import as_addresses, batch_enabled


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level.

    Counters are always Python ``int``s: batch updates pass through
    :meth:`record_batch`, which coerces at the boundary so JSON
    serialization of metrics never sees a ``np.int64``.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def record_batch(self, accesses: int | np.integer,
                     hits: int | np.integer) -> None:
        """Accumulate one batch's counts, coercing numpy ints to ``int``."""
        accesses = int(accesses)
        hits = int(hits)
        self.accesses += accesses
        self.hits += hits
        self.misses += accesses - hits

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0


class SetAssociativeCache:
    """One level of set-associative, write-allocate, LRU cache.

    Parameters
    ----------
    size_bytes:
        Total capacity; must be a power-of-two multiple of
        ``line_bytes * associativity``.
    line_bytes:
        Cache line size (power of two).
    associativity:
        Ways per set.
    name:
        Label used in reports ("L1", "L2", ...).
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, associativity: int = 8,
                 name: str = "cache") -> None:
        if not _is_pow2(line_bytes):
            raise ValueError(f"line size must be a power of two, got {line_bytes}")
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {associativity}")
        if size_bytes < line_bytes * associativity:
            raise ValueError(
                f"cache of {size_bytes} B cannot hold one set of "
                f"{associativity} x {line_bytes} B lines"
            )
        n_sets = size_bytes // (line_bytes * associativity)
        if not _is_pow2(n_sets):
            raise ValueError(
                f"size {size_bytes} / (line {line_bytes} x ways {associativity}) "
                f"gives {n_sets} sets, which is not a power of two"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.n_sets = n_sets
        self._offset_bits = line_bytes.bit_length() - 1
        self._set_bits = n_sets.bit_length() - 1
        self._index_mask = n_sets - 1
        # Per-set LRU stacks: dicts preserve insertion order; the first
        # key is the LRU line, the last the MRU.
        self._sets: list[dict[int, None]] = [dict() for _ in range(n_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _split(self, address: int) -> tuple[int, int]:
        line = address >> self._offset_bits
        return line & self._index_mask, line >> self._set_bits

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit.

        Misses allocate the line, evicting LRU if the set is full.
        """
        set_index, tag = self._split(int(address))
        ways = self._sets[set_index]
        self.stats.accesses += 1
        if tag in ways:
            # refresh LRU position
            del ways[tag]
            ways[tag] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.associativity:
            ways.pop(next(iter(ways)))  # evict LRU
        ways[tag] = None
        return False

    def access_many(self, addresses: Iterable[int]) -> int:
        """Run a sequence of byte addresses; returns the miss count added."""
        if not batch_enabled():
            before = self.stats.misses
            access = self.access
            for a in addresses:
                access(a)
            return self.stats.misses - before
        hit_mask = self.access_batch(as_addresses(addresses))
        return int(hit_mask.size - np.count_nonzero(hit_mask))

    # ------------------------------------------------------------------
    def access_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Access a whole int64 address array; returns the hit mask.

        Bit-exact against a scalar :meth:`access` loop: the trace is
        decomposed into (set, tag) with one vector shift, grouped by
        set (sets never interact, so per-set replay order equals the
        scalar interleaving restricted to that set), and within each
        set consecutive repeats of the same tag — guaranteed MRU hits
        that cannot change state — are compressed away before the
        remaining tags walk the LRU dict in a tight local loop.
        """
        addresses = np.asarray(addresses, dtype=np.int64).ravel()
        n = int(addresses.size)
        hit_mask = np.empty(n, dtype=bool)
        if n == 0:
            return hit_mask
        lines = addresses >> self._offset_bits
        tags = lines >> self._set_bits
        if self.n_sets == 1:
            self._replay_set(0, np.arange(n), tags, hit_mask)
        else:
            set_idx = lines & self._index_mask
            order = np.argsort(set_idx, kind="stable")
            sorted_sets = set_idx[order]
            bounds = np.flatnonzero(sorted_sets[1:] != sorted_sets[:-1]) + 1
            starts = np.concatenate(([0], bounds)).tolist()
            ends = np.concatenate((bounds, [n])).tolist()
            for gs, ge in zip(starts, ends):
                positions = order[gs:ge]
                self._replay_set(int(sorted_sets[gs]), positions,
                                 tags[positions], hit_mask)
        self.stats.record_batch(n, np.count_nonzero(hit_mask))
        return hit_mask

    def _replay_set(self, set_index: int, positions: np.ndarray,
                    tags_g: np.ndarray, hit_mask: np.ndarray) -> None:
        """Replay one set's tag subsequence, writing its hit outcomes."""
        m = int(tags_g.size)
        if m == 0:
            return
        # Consecutive equal tags within a set are MRU re-hits: no state
        # change, so only the run heads need to touch the LRU dict.
        keep = np.empty(m, dtype=bool)
        keep[0] = True
        np.not_equal(tags_g[1:], tags_g[:-1], out=keep[1:])
        ways = self._sets[set_index]
        assoc = self.associativity
        run_hits: list[bool] = []
        append = run_hits.append
        for tag in tags_g[keep].tolist():
            if tag in ways:
                del ways[tag]
                ways[tag] = None
                append(True)
            else:
                if len(ways) >= assoc:
                    ways.pop(next(iter(ways)))
                ways[tag] = None
                append(False)
        hit_mask[positions] = True  # compressed repeats always hit
        hit_mask[positions[keep]] = run_hits

    # ------------------------------------------------------------------
    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident (no LRU update)."""
        set_index, tag = self._split(int(address))
        return tag in self._sets[set_index]

    @property
    def lines_resident(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        """Invalidate all lines (counters are preserved)."""
        for s in self._sets:
            s.clear()

    def reset(self) -> None:
        """Invalidate all lines and zero the counters."""
        self.flush()
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"<{self.name}: {self.size_bytes >> 10} KiB, "
            f"{self.associativity}-way, {self.n_sets} sets>"
        )
