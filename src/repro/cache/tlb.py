"""Data TLB model.

The paper collects the data-TLB miss rate (misses / instructions) as
one of its verification counters (§4.3).  We model a single-level,
fully-associative, LRU data TLB — adequate for the page-locality
question the counter answers.
"""

from __future__ import annotations

from ..telemetry.tracer import get_tracer
from .setassoc import CacheStats


class TLB:
    """Fully-associative LRU translation look-aside buffer."""

    def __init__(self, entries: int = 64, page_bytes: int = 4096, name: str = "dTLB"):
        if entries < 1:
            raise ValueError(f"TLB needs at least one entry, got {entries}")
        if page_bytes & (page_bytes - 1):
            raise ValueError(f"page size must be a power of two, got {page_bytes}")
        self.name = name
        self.entries = entries
        self.page_bytes = page_bytes
        self._shift = page_bytes.bit_length() - 1
        self._pages: dict[int, None] = {}
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Translate one byte address; returns True on TLB hit."""
        page = int(address) >> self._shift
        self.stats.accesses += 1
        if page in self._pages:
            del self._pages[page]
            self._pages[page] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.pop(next(iter(self._pages)))
        self._pages[page] = None
        return False

    def access_many(self, addresses) -> int:
        """Translate a trace; returns misses added."""
        with get_tracer().span("tlb_trace", phase="cache_sim") as sp:
            before = self.stats.misses
            count = 0
            for a in addresses:
                self.access(a)
                count += 1
            sp.set_attribute("accesses", count)
            return self.stats.misses - before

    def reset(self) -> None:
        self._pages.clear()
        self.stats.reset()

    @property
    def reach_bytes(self) -> int:
        """Address range covered by a full TLB."""
        return self.entries * self.page_bytes

    def __repr__(self) -> str:
        return f"<{self.name}: {self.entries} entries x {self.page_bytes} B pages>"
