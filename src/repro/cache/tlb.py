"""Data TLB model.

The paper collects the data-TLB miss rate (misses / instructions) as
one of its verification counters (§4.3).  We model a single-level,
fully-associative, LRU data TLB — adequate for the page-locality
question the counter answers.

``access_many`` has a vectorized path (see :mod:`repro.cache.batch`)
that is bit-exact against the scalar :meth:`TLB.access` oracle: when
the pages a trace touches plus the already-resident set provably fit
the TLB, no eviction can occur, so the hit/miss outcome of every
access and the final recency order are computed in closed form from
numpy set operations; otherwise the trace is compressed (consecutive
same-page accesses are guaranteed MRU hits) and replayed through the
same LRU dict the oracle uses.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..telemetry.tracer import get_tracer
from .batch import as_addresses, batch_enabled
from .setassoc import CacheStats


class TLB:
    """Fully-associative LRU translation look-aside buffer."""

    def __init__(self, entries: int = 64, page_bytes: int = 4096,
                 name: str = "dTLB") -> None:
        if entries < 1:
            raise ValueError(f"TLB needs at least one entry, got {entries}")
        if page_bytes & (page_bytes - 1):
            raise ValueError(f"page size must be a power of two, got {page_bytes}")
        self.name = name
        self.entries = entries
        self.page_bytes = page_bytes
        self._shift = page_bytes.bit_length() - 1
        self._pages: dict[int, None] = {}
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Translate one byte address; returns True on TLB hit."""
        page = int(address) >> self._shift
        self.stats.accesses += 1
        if page in self._pages:
            del self._pages[page]
            self._pages[page] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.pop(next(iter(self._pages)))
        self._pages[page] = None
        return False

    def access_many(self, addresses: Iterable[int]) -> int:
        """Translate a trace; returns misses added."""
        with get_tracer().span("tlb_trace", phase="cache_sim") as sp:
            before = self.stats.misses
            if batch_enabled():
                arr = as_addresses(addresses)
                count = int(arr.size)
                if count:
                    self._translate_batch(arr >> self._shift)
            else:
                count = 0
                for a in addresses:
                    self.access(a)
                    count += 1
            sp.set_attribute("accesses", count)
            return self.stats.misses - before

    def _translate_batch(self, pages: np.ndarray) -> None:
        """Replay a page trace; exact against the scalar oracle."""
        n = int(pages.size)
        resident = self._pages
        # Last-occurrence order of the touched pages: unique over the
        # reversed trace gives each page's distance from the end.
        rev_first = np.unique(pages[::-1], return_index=True)
        uniq, rev_idx = rev_first
        touched = set(uniq.tolist())
        if len(touched | resident.keys()) <= self.entries:
            # Capacity shortcut: no eviction can ever occur, so every
            # non-resident page misses exactly once (first occurrence)
            # and everything else hits.  Final recency order: untouched
            # residents keep their relative order; touched pages move
            # to MRU in order of their *last* access.
            misses = len(touched - resident.keys())
            last_order = uniq[np.argsort(rev_idx)[::-1]]
            for page in last_order.tolist():
                resident.pop(page, None)
                resident[page] = None
            self.stats.record_batch(n, n - misses)
            return
        # Eviction-prone: compress guaranteed MRU re-hits (consecutive
        # same-page accesses) and replay the rest through the LRU dict.
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.not_equal(pages[1:], pages[:-1], out=keep[1:])
        compressed = pages[keep].tolist()
        hits = n - len(compressed)
        entries = self.entries
        for page in compressed:
            if page in resident:
                del resident[page]
                resident[page] = None
                hits += 1
            else:
                if len(resident) >= entries:
                    resident.pop(next(iter(resident)))
                resident[page] = None
        self.stats.record_batch(n, hits)

    def reset(self) -> None:
        self._pages.clear()
        self.stats.reset()

    @property
    def reach_bytes(self) -> int:
        """Address range covered by a full TLB."""
        return self.entries * self.page_bytes

    def __repr__(self) -> str:
        return f"<{self.name}: {self.entries} entries x {self.page_bytes} B pages>"
