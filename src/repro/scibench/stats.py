"""Statistical kit for benchmark measurements.

Implements the statistical discipline of the paper's methodology
(§4.3): summary statistics with confidence intervals, coefficient of
variation, and the t-test power computation that fixes the sample size
at 50 runs per (benchmark, problem size) group — chosen "to ensure that
sufficient statistical power (beta = 0.8) would be available to detect
a significant difference in means on the scale of half a standard
deviation of separation".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of one measurement group."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    q1: float
    q3: float
    ci_low: float
    ci_high: float

    @property
    def cov(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def summarize(samples, confidence: float = 0.95) -> SampleSummary:
    """Summary statistics with a t-based CI on the mean."""
    x = np.asarray(samples, dtype=float)
    if x.size == 0:
        raise ValueError("cannot summarise an empty sample")
    n = int(x.size)
    lo, hi = float(x.min()), float(x.max())
    # Pairwise summation can drift a ULP outside [min, max]; the true
    # arithmetic mean never does, so clamp before deriving the CI.
    mean = min(max(float(x.mean()), lo), hi)
    std = float(x.std(ddof=1)) if n > 1 else 0.0
    if n > 1 and std > 0:
        half = sps.t.ppf(0.5 + confidence / 2.0, df=n - 1) * std / math.sqrt(n)
    else:
        half = 0.0
    q1, med, q3 = (float(v) for v in np.percentile(x, [25, 50, 75]))
    return SampleSummary(
        n=n,
        mean=mean,
        std=std,
        minimum=lo,
        maximum=hi,
        median=med,
        q1=q1,
        q3=q3,
        ci_low=mean - half,
        ci_high=mean + half,
    )


def required_sample_size(
    effect_size: float = 0.5,
    power: float = 0.8,
    alpha: float = 0.05,
    two_sided: bool = False,
) -> int:
    """Per-group sample size for a two-sample t-test (normal approximation).

    With the paper's parameters — detecting a difference of half a
    standard deviation (``effect_size=0.5``) with power 0.8 at
    ``alpha=0.05`` — this returns **50**, the sample size used for every
    (benchmark, problem size) group.
    """
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if not 0 < power < 1:
        raise ValueError(f"power must be in (0, 1), got {power}")
    if effect_size <= 0:
        raise ValueError(f"effect size must be positive, got {effect_size}")
    z_alpha = sps.norm.ppf(1 - alpha / (2 if two_sided else 1))
    z_beta = sps.norm.ppf(power)
    n = 2.0 * ((z_alpha + z_beta) / effect_size) ** 2
    return math.ceil(n)


def achieved_power(
    n: int,
    effect_size: float = 0.5,
    alpha: float = 0.05,
    two_sided: bool = False,
) -> float:
    """Power achieved by a two-sample t-test with ``n`` per group."""
    if n < 2:
        return 0.0
    z_alpha = sps.norm.ppf(1 - alpha / (2 if two_sided else 1))
    shift = effect_size * math.sqrt(n / 2.0)
    return float(sps.norm.cdf(shift - z_alpha))


def welch_t_test(a, b) -> tuple[float, float]:
    """Welch's t-test between two groups; returns (t statistic, p value)."""
    result = sps.ttest_ind(np.asarray(a, float), np.asarray(b, float), equal_var=False)
    return float(result.statistic), float(result.pvalue)


def coefficient_of_variation(samples) -> float:
    """std/mean of a sample (the dispersion measure of paper §5.1)."""
    x = np.asarray(samples, dtype=float)
    if x.size < 2:
        return 0.0
    m = x.mean()
    return float(x.std(ddof=1) / m) if m else 0.0
