"""Statistical kit for benchmark measurements.

Implements the statistical discipline of the paper's methodology
(§4.3): summary statistics with confidence intervals, coefficient of
variation, and the t-test power computation that fixes the sample size
at 50 runs per (benchmark, problem size) group — chosen "to ensure that
sufficient statistical power (beta = 0.8) would be available to detect
a significant difference in means on the scale of half a standard
deviation of separation".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of one measurement group."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    q1: float
    q3: float
    ci_low: float
    ci_high: float

    @property
    def cov(self) -> float:
        """Coefficient of variation (std / mean).

        Undefined (``nan``) when the mean is zero but the samples vary:
        a zero-mean group with nonzero spread must not masquerade as
        perfectly stable.  A genuinely constant zero group is 0.0.
        """
        if self.mean:
            return self.std / self.mean
        return 0.0 if self.std == 0.0 else math.nan

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def summarize(samples, confidence: float = 0.95) -> SampleSummary:
    """Summary statistics with a t-based CI on the mean."""
    x = np.asarray(samples, dtype=float)
    if x.size == 0:
        raise ValueError("cannot summarise an empty sample")
    n = int(x.size)
    lo, hi = float(x.min()), float(x.max())
    # Pairwise summation can drift a ULP outside [min, max]; the true
    # arithmetic mean never does, so clamp before deriving the CI.
    mean = min(max(float(x.mean()), lo), hi)
    std = float(x.std(ddof=1)) if n > 1 else 0.0
    if n > 1 and std > 0:
        half = sps.t.ppf(0.5 + confidence / 2.0, df=n - 1) * std / math.sqrt(n)
    else:
        half = 0.0
    q1, med, q3 = (float(v) for v in np.percentile(x, [25, 50, 75]))
    return SampleSummary(
        n=n,
        mean=mean,
        std=std,
        minimum=lo,
        maximum=hi,
        median=med,
        q1=q1,
        q3=q3,
        ci_low=mean - half,
        ci_high=mean + half,
    )


def required_sample_size(
    effect_size: float = 0.5,
    power: float = 0.8,
    alpha: float = 0.05,
    two_sided: bool = False,
) -> int:
    """Per-group sample size for a two-sample t-test (normal approximation).

    With the paper's parameters — detecting a difference of half a
    standard deviation (``effect_size=0.5``) with power 0.8 at
    ``alpha=0.05`` — this returns **50**, the sample size used for every
    (benchmark, problem size) group.
    """
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if not 0 < power < 1:
        raise ValueError(f"power must be in (0, 1), got {power}")
    if effect_size <= 0:
        raise ValueError(f"effect size must be positive, got {effect_size}")
    z_alpha = sps.norm.ppf(1 - alpha / (2 if two_sided else 1))
    z_beta = sps.norm.ppf(power)
    n = 2.0 * ((z_alpha + z_beta) / effect_size) ** 2
    return math.ceil(n)


def achieved_power(
    n: int,
    effect_size: float = 0.5,
    alpha: float = 0.05,
    two_sided: bool = False,
) -> float:
    """Power achieved by a two-sample t-test with ``n`` per group."""
    if n < 2:
        return 0.0
    z_alpha = sps.norm.ppf(1 - alpha / (2 if two_sided else 1))
    shift = effect_size * math.sqrt(n / 2.0)
    return float(sps.norm.cdf(shift - z_alpha))


def welch_t_test(a, b) -> tuple[float, float]:
    """Welch's t-test between two groups; returns (t statistic, p value)."""
    result = sps.ttest_ind(np.asarray(a, float), np.asarray(b, float), equal_var=False)
    return float(result.statistic), float(result.pvalue)


def coefficient_of_variation(samples) -> float:
    """std/mean of a sample (the dispersion measure of paper §5.1).

    ``nan`` when the mean is zero but the spread is not (see
    :attr:`SampleSummary.cov`).
    """
    x = np.asarray(samples, dtype=float)
    if x.size < 2:
        return 0.0
    m = x.mean()
    s = x.std(ddof=1)
    if m:
        return float(s / m)
    return 0.0 if s == 0.0 else math.nan


def cohens_d(a, b) -> float:
    """Cohen's d effect size between two groups (pooled-std units).

    The paper's power analysis (§4.3) is phrased in exactly these
    units: 50 samples per group detect a shift of ``d = 0.5`` — half a
    pooled standard deviation — with power 0.8.  The sign follows
    ``mean(b) - mean(a)``, so a positive d means group ``b`` is larger
    (slower, for timing samples).

    Returns 0.0 when both groups are constant and equal, ``inf`` (with
    the shift's sign) when they are constant but different.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size < 2 or y.size < 2:
        raise ValueError("cohens_d needs at least 2 samples per group")
    shift = float(y.mean() - x.mean())
    var_x = float(x.var(ddof=1))
    var_y = float(y.var(ddof=1))
    pooled = math.sqrt(
        ((x.size - 1) * var_x + (y.size - 1) * var_y)
        / (x.size + y.size - 2)
    )
    if pooled == 0.0:
        return 0.0 if shift == 0.0 else math.copysign(math.inf, shift)
    return shift / pooled


def bootstrap_ratio_ci(
    a,
    b,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap percentile CI on the ratio of means ``mean(b)/mean(a)``.

    Welch's test answers "is there a difference?"; this answers "how
    big is it, multiplicatively?" — the form a regression report needs
    ("1.12x slower, CI [1.08, 1.16]").  Resampling is deterministic for
    a given ``seed`` so reports are reproducible.

    Parameters
    ----------
    a, b : array-like
        Baseline and fresh samples.  ``mean(a)`` must be nonzero.
    confidence : float
        Central coverage of the interval (default 95%).
    n_boot : int
        Bootstrap replicates.
    seed : int
        RNG seed for the resampling.

    Returns
    -------
    (low, high) : tuple of float
        The percentile interval on the ratio of means.
    """
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValueError("bootstrap_ratio_ci needs non-empty groups")
    if x.mean() == 0.0:
        raise ValueError("baseline mean is zero; ratio undefined")
    rng = np.random.default_rng(seed)
    means_x = x[rng.integers(0, x.size, size=(n_boot, x.size))].mean(axis=1)
    means_y = y[rng.integers(0, y.size, size=(n_boot, y.size))].mean(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = means_y / means_x
    ratios = ratios[np.isfinite(ratios)]
    if ratios.size == 0:
        raise ValueError("all bootstrap resamples had zero baseline mean")
    tail = (1.0 - confidence) / 2.0 * 100.0
    lo, hi = np.percentile(ratios, [tail, 100.0 - tail])
    return float(lo), float(hi)
