"""LibSciBench-format output files.

LibSciBench writes per-process measurement files (``lsb.<name>.r<rank>``)
consumed by its R analysis scripts: a commented header describing the
system, then whitespace-aligned columns of per-record values with the
measured time in microseconds and the timer overhead.  The paper's
statistical analysis and visualisation pipeline reads these files
(§2, §6); this module writes and parses the same layout so our
recorders interoperate with that tooling.

One extension over stock LibSciBench: a trailing ``energy_j`` column
(``-`` when a record has no energy sample) so RAPL/NVML measurements
round-trip through save/load.  Four-column files written by real
LibSciBench still parse.
"""

from __future__ import annotations

import io
from pathlib import Path

from .recorder import Recorder
from .timer import TIMER_OVERHEAD_NS

#: File-format version string written into the header.
FORMAT_VERSION = "0.2.2"  # the LibSciBench release the paper used


def dumps(recorder: Recorder, system: str = "", rank: int = 0) -> str:
    """Serialise a recorder in LibSciBench ``.r`` layout."""
    out = io.StringIO()
    out.write(f"# LibSciBench (repro) version {FORMAT_VERSION}\n")
    out.write(f"# Rank: {rank}\n")
    if system:
        out.write(f"# System: {system}\n")
    if recorder.name:
        out.write(f"# Benchmark: {recorder.name}\n")
    out.write(f"# Timer overhead: {TIMER_OVERHEAD_NS} ns\n")
    out.write(
        f"{'id':>8} {'region':>16} {'time_us':>18} {'overhead_ns':>12} "
        f"{'energy_j':>14}\n"
    )
    for i, m in enumerate(recorder._measurements):
        energy = "-" if m.energy_j is None else f"{m.energy_j:.9g}"
        out.write(
            f"{i:>8} {m.region:>16} {m.time_s * 1e6:>18.6f} "
            f"{TIMER_OVERHEAD_NS:>12} {energy:>14}\n"
        )
    return out.getvalue()


def loads(text: str) -> Recorder:
    """Parse a LibSciBench-layout file back into a recorder."""
    recorder = Recorder()
    header_seen = False
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# Benchmark:"):
                recorder.name = line.split(":", 1)[1].strip()
            continue
        parts = line.split()
        if not header_seen:
            if parts[0] == "id":
                header_seen = True
                continue
            raise ValueError(f"malformed LSB file: expected header, got {line!r}")
        if len(parts) == 4:  # pre-energy files (LibSciBench's own layout)
            _, region, time_us, _ = parts
            energy_j = None
        elif len(parts) == 5:
            _, region, time_us, _, energy = parts
            energy_j = None if energy == "-" else float(energy)
        else:
            raise ValueError(f"malformed LSB record: {line!r}")
        recorder.record(region, float(time_us) * 1e-6, energy_j=energy_j)
    return recorder


def save(path, recorder: Recorder, system: str = "", rank: int = 0) -> None:
    """Write ``lsb.<name>.r<rank>``-style output to ``path``."""
    Path(path).write_text(dumps(recorder, system=system, rank=rank))


def load(path) -> Recorder:
    return loads(Path(path).read_text())


def default_filename(benchmark: str, rank: int = 0) -> str:
    """LibSciBench's conventional output file name."""
    return f"lsb.{benchmark}.r{rank}"
